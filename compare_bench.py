#!/usr/bin/env python
"""Diff two ``BENCH_perf.json`` artifacts and flag perf regressions.

Thin launcher for :mod:`repro.perf.compare` that works from a clean
checkout (adds ``src/`` to ``sys.path`` first)::

    python compare_bench.py baseline/BENCH_perf.json new/BENCH_perf.json

See ``docs/benchmarking.md`` for the workflow.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent / "src"))

from repro.perf.compare import main  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(main())
