"""Fig. 24: Cicero vs NeuRex vs NGPC on Instant-NGP.

Paper claims: Cicero-without-SPARW beats NeuRex ~2x (conflict elimination)
and roughly matches NGPC (which needs an unrealistic 16 MB buffer); adding
SPARW multiplies the lead by the window's work reduction.
"""

from conftest import run_once

from repro.harness import EXPERIMENTS, print_table


def test_fig24_rival_accelerators(benchmark, bench_config):
    rows = run_once(benchmark, lambda: EXPERIMENTS["fig24"](bench_config))
    print_table(rows, title="Fig. 24 — speed-up over GPU, Instant-NGP")

    by_design = {r["design"]: r["speedup_vs_gpu"] for r in rows}
    assert by_design["cicero_no_sparw"] > by_design["neurex"]
    ratio_vs_ngpc = by_design["cicero_no_sparw"] / by_design["ngpc"]
    assert 0.4 < ratio_vs_ngpc < 2.5, "Cicero-no-SPARW ~ NGPC"
    assert by_design["cicero"] > 2.0 * by_design["cicero_no_sparw"], (
        "SPARW must multiply the advantage")
    assert all(s > 1.0 for s in by_design.values())
