"""Fig. 18: GPU execution-time distribution under SPARW.

Paper claims: with a window of 6 most time is still full-frame (reference)
NeRF (~86%); at window 16 sparse NeRF grows to a comparable share; the
warping operations themselves are negligible.
"""

from conftest import run_once

from repro.harness import EXPERIMENTS, print_table


def test_fig18_time_distribution(benchmark, bench_config):
    rows = run_once(benchmark, lambda: EXPERIMENTS["fig18"](
        bench_config, windows=(6, 16)))
    print_table(rows, title="Fig. 18 — Cicero GPU time distribution")

    by_cfg = {r["config"]: r for r in rows}
    w6, w16 = by_cfg["cicero_6"], by_cfg["cicero_16"]
    # Reference rendering dominates at short windows and shrinks with N.
    assert w6["full_frame_nerf"] > 0.6
    assert w16["full_frame_nerf"] < w6["full_frame_nerf"]
    assert w16["sparse_nerf"] > w6["sparse_nerf"]
    # Warping overhead is negligible (paper: "Others" ~ 0).
    for row in rows:
        assert row["others"] < 0.1
        total = row["full_frame_nerf"] + row["sparse_nerf"] + row["others"]
        assert abs(total - 1.0) < 1e-6
