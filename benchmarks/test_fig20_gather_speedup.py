"""Fig. 20: Gathering Unit speed-up/energy vs GPU feature gathering.

Paper claims: the GU delivers large (tens-x) gather speed-ups and nearly
all of the gather energy reduction, with the biggest win on the
hash-grid algorithm whose conflicts it eliminates.
"""

from conftest import run_once

from repro.harness import EXPERIMENTS, print_table
from repro.metrics import geometric_mean


def test_fig20_gather_unit(benchmark, bench_config):
    rows = run_once(benchmark, lambda: EXPERIMENTS["fig20"](bench_config))
    print_table(rows, title="Fig. 20 — GU gather speed-up / energy")

    mean_speed = geometric_mean([r["gather_speedup"] for r in rows])
    assert mean_speed > 10.0, "GU gathers an order of magnitude faster"
    # The algorithm whose layout conflicts worst gains the most from the
    # conflict-free GU (the causal link the paper draws).
    most_conflicted = max(rows, key=lambda r: r["conflict_slowdown_removed"])
    fastest_gain = max(rows, key=lambda r: r["gather_speedup"])
    assert most_conflicted["algorithm"] == fastest_gain["algorithm"]
    for row in rows:
        assert row["gather_energy_saving"] > 5.0
        assert row["conflict_slowdown_removed"] >= 1.0
