"""Shared benchmark plumbing.

Every bench regenerates one paper figure: it runs the experiment once under
pytest-benchmark (rounds=1 — these are workload reproductions, not
microbenchmarks), prints the figure's rows, and asserts the qualitative
shape the paper reports.
"""

from __future__ import annotations

import pytest

from repro.harness.configs import DEFAULT, ExperimentConfig

# Benchmark scale: DEFAULT geometry, slightly shorter sequences so the full
# suite completes in minutes.
BENCH = ExperimentConfig(
    image_size=DEFAULT.image_size,
    samples_per_ray=DEFAULT.samples_per_ray,
    grid_resolution=DEFAULT.grid_resolution,
    hash_levels=DEFAULT.hash_levels,
    hash_finest_resolution=DEFAULT.hash_finest_resolution,
    hash_table_size=1 << 15,
    tensorf_resolution=DEFAULT.tensorf_resolution,
    tensorf_rank=DEFAULT.tensorf_rank,
    num_frames=12,
    window=16,
)


@pytest.fixture(scope="session")
def bench_config():
    return BENCH


def run_once(benchmark, fn):
    """Execute an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
