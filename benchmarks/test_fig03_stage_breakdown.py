"""Fig. 3: normalised execution breakdown (I / G / F) on the mobile GPU.

Paper claim: all stages take non-trivial time, with Feature Gathering
dominating (>56% on average).
"""

import numpy as np
from conftest import run_once

from repro.harness import EXPERIMENTS, print_table


def test_fig03_stage_breakdown(benchmark, bench_config):
    rows = run_once(benchmark, lambda: EXPERIMENTS["fig03"](bench_config))
    print_table(rows, title="Fig. 3 — GPU execution breakdown")

    for row in rows:
        total = row["indexing"] + row["gathering"] + row["computation"]
        assert total == 1.0 or abs(total - 1.0) < 1e-9
        assert row["gathering"] > row["indexing"]
    mean_gather = np.mean([r["gathering"] for r in rows])
    assert mean_gather > 0.5, "gathering must dominate execution"
