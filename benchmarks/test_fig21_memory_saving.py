"""Fig. 21: decomposition of the DRAM energy saving.

Paper claims: most of the DRAM energy reduction comes from traffic
reduction (each voxel streamed once), the rest from converting the
remaining accesses to streaming.  At reproduction scale the fully
streamable algorithms (grid, tensor) show the saving; Instant-NGP's hashed
levels revert to pixel-centric traffic (Sec. IV-A) and its cached baseline
is already cheap at our frame/model ratio, so its saving is marginal —
EXPERIMENTS.md discusses the scale mapping.
"""

from conftest import run_once

from repro.harness import EXPERIMENTS, print_table


def test_fig21_memory_energy_split(benchmark, bench_config):
    rows = run_once(benchmark, lambda: EXPERIMENTS["fig21"](bench_config))
    print_table(rows, title="Fig. 21 — DRAM energy saving decomposition")

    by_algo = {r["algorithm"]: r for r in rows}
    for name in ("directvoxgo", "tensorf"):
        row = by_algo[name]
        assert row["dram_energy_saving"] > 1.2, (
            f"{name}: fully-streaming must save DRAM energy")
        split = row["from_traffic_reduction"] + row["from_streaming"]
        assert abs(split - 1.0) < 1e-6, "decomposition must be exhaustive"
        assert row["from_streaming"] > 0.0
    # TensoRF streams tiny factor planes: strongest traffic reduction.
    assert by_algo["tensorf"]["traffic_reduction"] > (
        by_algo["directvoxgo"]["traffic_reduction"])
