"""Fig. 7: inter-frame overlap across the synthetic scene suite.

Paper claim: >98% of pixels overlap between adjacent frames (std 1.7%) at
VR frame rates, so <2% need re-rendering.  At our reduced resolution the
disocclusion band is relatively wider; the shape claim is overlap >> 90%
with small variance across scenes.
"""

import numpy as np
from conftest import run_once

from repro.harness import EXPERIMENTS, print_table


def test_fig07_scene_overlap(benchmark, bench_config):
    rows = run_once(benchmark, lambda: EXPERIMENTS["fig07"](bench_config))
    print_table(rows, title="Fig. 7 — adjacent-frame overlap, 8 scenes")

    assert len(rows) == 8
    overlaps = [r["overlap_mean"] for r in rows]
    assert min(overlaps) > 0.93
    assert np.std(overlaps) < 0.05
    for row in rows:
        assert row["overlap_std"] < 0.05
