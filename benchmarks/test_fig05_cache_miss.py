"""Fig. 5: oracle (Belady) cache miss rate of feature gathering.

Paper claim: even with oracle replacement, pixel-centric gathering misses
substantially on models much larger than the buffer.  At reproduction scale
the dense grid (largest model, working set >> cache) shows the effect most;
the coarse hash pyramid and small tensor factors cache better than their
full-scale counterparts (EXPERIMENTS.md discusses the mapping).
"""

from conftest import run_once

from repro.harness import EXPERIMENTS, print_table


def test_fig05_oracle_miss_rate(benchmark, bench_config):
    rows = run_once(benchmark, lambda: EXPERIMENTS["fig05"](bench_config))
    print_table(rows, title="Fig. 5 — Belady miss rate, scaled buffer")

    by_algo = {r["algorithm"]: r for r in rows}
    # The large dense grid must show real capacity misses under the oracle.
    assert by_algo["directvoxgo"]["oracle_miss_rate"] > 0.02
    for row in rows:
        assert 0.0 <= row["oracle_miss_rate"] <= 1.0
        assert row["accesses"] > 10_000
        # Misses exist for every algorithm (compulsory at minimum).
        assert row["oracle_miss_rate"] > 0.0
