"""Fig. 17: pure-software Cicero on the mobile GPU vs DS-2.

Paper claims: software-only Cicero-16 achieves ~8x speed-up and energy
saving over the GPU baseline; DS-2 only reaches ~4x.
"""

from conftest import run_once

from repro.harness import EXPERIMENTS, print_table
from repro.metrics import geometric_mean


def test_fig17_software_speedup(benchmark, bench_config):
    rows = run_once(benchmark, lambda: EXPERIMENTS["fig17"](bench_config))
    print_table(rows, title="Fig. 17 — GPU-only speed-up / energy vs DS-2")

    cicero_speed = geometric_mean([r["cicero_speedup"] for r in rows])
    ds2_speed = geometric_mean([r["ds2_speedup"] for r in rows])
    assert cicero_speed > ds2_speed, "Cicero must beat DS-2 in speed"
    assert 4.0 < cicero_speed < 30.0, "software Cicero lands near ~8-15x"
    assert abs(ds2_speed - 4.0) < 0.5, "DS-2 is a fixed ~4x ray reduction"
    for row in rows:
        assert row["cicero_energy_saving"] > row["ds2_energy_saving"]
