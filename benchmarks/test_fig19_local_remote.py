"""Fig. 19: end-to-end speed-up and energy, local and remote rendering.

Paper claims (local): SPARW ~8x, +FS adds ~1.2x, full Cicero ~28x speed-up
with energy savings exceeding the speed-up.  Remote: Cicero ~8x faster than
the render-remotely baseline, but the baseline wins on device energy.
"""

from conftest import run_once

from repro.harness import EXPERIMENTS, print_table
from repro.metrics import geometric_mean


def test_fig19_local_and_remote(benchmark, bench_config):
    rows = run_once(benchmark, lambda: EXPERIMENTS["fig19"](bench_config))
    print_table(rows, title="Fig. 19 — end-to-end speed-up / energy")

    sparw = geometric_mean([r["sparw_speedup"] for r in rows])
    fs = geometric_mean([r["sparw_fs_speedup"] for r in rows])
    cicero = geometric_mean([r["cicero_speedup"] for r in rows])

    # Monotone improvement across the variant ladder.
    assert sparw < fs < cicero
    assert 4.0 < sparw < 20.0, "SPARW alone lands near ~8x"
    assert cicero > 15.0, "full Cicero exceeds an order of magnitude"

    for row in rows:
        # Energy is normalised-to-baseline: smaller is better, <1 required.
        assert row["cicero_energy"] < row["sparw_fs_energy"] < row["sparw_energy"] < 1.0
        # Remote: Cicero is fastest but pays more device energy than the
        # everything-offloaded baseline (normalised energy > 1).
        assert row["cicero_remote_speedup"] > 1.0
        assert row["sparw_remote_energy"] > 1.0
