"""Fig. 25: quality on the real-world scene at 1 FPS vs 30 FPS capture.

Paper claims: at sparse 1 FPS capture (huge pose deltas) warping quality
drops noticeably below the baseline; on the dense 30 FPS sequence Cicero's
loss is small — the low-FPS weakness is the dataset's, not the algorithm's.
"""

from conftest import run_once

from repro.harness import EXPERIMENTS, print_table


def test_fig25_capture_rate_sensitivity(benchmark, bench_config):
    rows = run_once(benchmark, lambda: EXPERIMENTS["fig25"](bench_config))
    print_table(rows, title="Fig. 25 — Ignatius, sparse vs dense capture")

    by_capture = {r["capture"]: r for r in rows}
    dense = by_capture["dense_30fps"]
    sparse = by_capture["sparse_1fps"]

    dense_drop = dense["baseline"] - dense["cicero_16"]
    sparse_drop = sparse["baseline"] - sparse["cicero_16"]
    assert dense_drop < 1.5, "dense capture: little quality loss"
    assert sparse_drop > dense_drop, (
        "sparse capture must hurt warping more than dense capture")
