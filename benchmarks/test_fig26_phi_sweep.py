"""Fig. 26: warping-threshold (phi) sweep on the sparse 1 FPS sequence.

Paper claims: lowering phi re-renders more pixels, recovering quality at
the cost of speed; a moderate threshold (~4 deg) retains most speed-up
with a small quality drop.
"""

from conftest import run_once

from repro.harness import EXPERIMENTS, print_table


def test_fig26_threshold_sweep(benchmark, bench_config):
    phis = (1.0, 4.0, 16.0, None)
    rows = run_once(benchmark, lambda: EXPERIMENTS["fig26"](
        bench_config, phis=phis))
    print_table(rows, title="Fig. 26 — warping threshold phi sweep (1 FPS)")

    # Tighter threshold -> fewer pixels warped, more re-rendered.
    warped = [r["warped_fraction"] for r in rows]
    assert warped[0] <= warped[-1] + 1e-9
    assert warped[0] < warped[2], "phi=1 deg must warp fewer pixels than 16"

    # Tighter threshold -> slower but at least as accurate.
    speeds = [r["speedup"] for r in rows]
    assert speeds[0] <= speeds[-1] + 1e-9
    psnrs = [r["psnr"] for r in rows]
    assert psnrs[0] >= psnrs[-1] - 0.3, "phi=1 deg must not lose quality"
