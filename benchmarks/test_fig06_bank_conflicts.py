"""Fig. 6: SRAM bank-conflict rate in feature gathering.

Paper claims: feature-major layouts conflict heavily (52% average at 16
banks/16 rays), more concurrent rays conflict more, and the channel-major
layout eliminates conflicts entirely.
"""

import numpy as np
from conftest import run_once

from repro.harness import EXPERIMENTS, print_table


def test_fig06_bank_conflict_rates(benchmark, bench_config):
    rows = run_once(benchmark, lambda: EXPERIMENTS["fig06"](bench_config))
    print_table(rows, title="Fig. 6 — bank conflict rate (16 banks)")

    mean16 = np.mean([r["feature_major_16rays"] for r in rows])
    assert mean16 > 0.25, "feature-major must conflict substantially"
    for row in rows:
        # More concurrent rays -> more conflicts (paper: 64-ray escalation).
        assert row["feature_major_64rays"] >= row["feature_major_16rays"]
        # Cicero's layout: zero conflicts by construction.
        assert row["channel_major"] == 0.0
