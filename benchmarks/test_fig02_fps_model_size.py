"""Fig. 2: frame rate vs model size across NeRF algorithms.

Paper claim: no algorithm reaches real-time on the mobile GPU, and model
sizes vary by orders of magnitude (grid largest, factorised smallest).
"""

from conftest import run_once

from repro.harness import EXPERIMENTS, print_table


def test_fig02_fps_vs_model_size(benchmark, bench_config):
    rows = run_once(benchmark, lambda: EXPERIMENTS["fig02"](bench_config))
    print_table(rows, title="Fig. 2 — simulated FPS vs model size")

    by_algo = {r["algorithm"]: r for r in rows}
    # Dense grid has the largest model; factorised tensor the smallest.
    assert by_algo["directvoxgo"]["model_mb"] > by_algo["instant_ngp"]["model_mb"]
    assert by_algo["tensorf"]["model_mb"] < by_algo["instant_ngp"]["model_mb"]
    # Instant-NGP (many levels per sample) is the slowest of the three.
    assert by_algo["instant_ngp"]["fps"] < by_algo["directvoxgo"]["fps"]
    assert by_algo["instant_ngp"]["fps"] < by_algo["tensorf"]["fps"]
