"""Fig. 9: naive warping leaves holes; SPARW's sparse NeRF pass fills them.

Paper claim (qualitative figure): the naively warped frame has visible
disocclusion holes; SPARW eliminates them with a large quality gain.
"""

from conftest import run_once

from repro.harness import EXPERIMENTS, print_table


def test_fig09_hole_filling(benchmark, bench_config):
    summary = run_once(benchmark, lambda: EXPERIMENTS["fig09"](bench_config))
    print_table([summary], title="Fig. 9 — disocclusion repair")

    assert summary["hole_pixels_naive"] > 0
    assert summary["hole_pixels_sparw"] == 0
    assert summary["psnr_sparw"] > summary["psnr_naive"] + 3.0
    assert summary["disoccluded_fraction"] < 0.25
