"""Fig. 22: sensitivity to the warping-window size.

Paper claims: quality decreases monotonically with window size; local
speed-up grows then saturates as sparse work accumulates; remote speed-up
grows nearly linearly until the on-device path stops hiding.
"""

from conftest import run_once

from repro.harness import EXPERIMENTS, print_table


def test_fig22_window_sweep(benchmark, bench_config):
    windows = (1, 4, 8, 12, 16)
    rows = run_once(benchmark, lambda: EXPERIMENTS["fig22"](
        bench_config, windows=windows))
    print_table(rows, title="Fig. 22 — warping-window sensitivity")

    speedups = [r["local_speedup"] for r in rows]
    psnrs = [r["psnr"] for r in rows]
    disocc = [r["disoccluded_fraction"] for r in rows]

    # Speed-up strictly benefits from amortising the reference further.
    assert speedups[-1] > speedups[0] * 3.0
    # Quality decreases (allow small non-monotonic jitter).
    assert psnrs[-1] < psnrs[0] + 0.2
    # Disocclusion work grows with window size: the saturation mechanism.
    assert disocc[-1] > disocc[0]
    # Remote speed-up also grows with the window.
    assert rows[-1]["remote_speedup"] > rows[0]["remote_speedup"]
