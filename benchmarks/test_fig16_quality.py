"""Fig. 16: rendering quality of Cicero vs baselines.

Paper claims: Cicero-6 stays within ~1 dB of the baseline; Cicero-16 drops
a little more but beats DS-2 on the synthetic suite; TEMP-16 is the worst
(chained warping accumulates error).
"""

import numpy as np
from conftest import run_once

from repro.harness import EXPERIMENTS, print_table


def test_fig16_quality_synthetic(benchmark, bench_config):
    rows = run_once(benchmark, lambda: EXPERIMENTS["fig16"](
        bench_config, scene_names=("lego", "materials"),
        algorithms=("directvoxgo", "tensorf", "instant_ngp")))
    print_table(rows, title="Fig. 16a — PSNR (dB), synthetic scenes")

    drops6 = [r["baseline"] - r["cicero_6"] for r in rows]
    assert np.mean(drops6) < 1.2, "Cicero-6 must stay near the baseline"
    for row in rows:
        assert row["cicero_6"] >= row["cicero_16"] - 0.2, (
            "longer windows must not improve quality")
        assert row["temp16"] <= row["cicero_16"] + 0.3, (
            "TEMP-16 accumulates error and must be worst-or-equal")
    # Grid/tensor algorithms: Cicero-16 beats DS-2 (paper's synthetic claim).
    solid = [r for r in rows if r["algorithm"] in ("directvoxgo", "tensorf")]
    wins = sum(1 for r in solid if r["cicero_16"] > r["ds2"] - 0.35)
    assert wins >= len(solid) - 1


def test_fig16_quality_real_world(benchmark, bench_config):
    rows = run_once(benchmark, lambda: EXPERIMENTS["fig16"](
        bench_config, scene_names=("ignatius",),
        algorithms=("directvoxgo",)))
    print_table(rows, title="Fig. 16b — PSNR (dB), real-world scene")

    row = rows[0]
    assert row["baseline"] - row["cicero_6"] < 1.5
    assert row["temp16"] < row["baseline"]
