"""Fig. 4: fraction of non-streaming DRAM accesses in feature gathering.

Paper claim: pixel-centric gathering is >81% non-streaming on average;
the fully-streaming dataflow makes grid traffic fully sequential (hashed
Instant-NGP levels revert, leaving roughly half its traffic non-streaming).
"""

import numpy as np
from conftest import run_once

from repro.harness import EXPERIMENTS, print_table


def test_fig04_nonstreaming_fraction(benchmark, bench_config):
    rows = run_once(benchmark, lambda: EXPERIMENTS["fig04"](bench_config))
    print_table(rows, title="Fig. 4 — non-streaming DRAM access fraction")

    mean_pixel_centric = np.mean([r["pixel_centric_nonstreaming"]
                                  for r in rows])
    assert mean_pixel_centric > 0.6, "pixel-centric must be mostly random"

    by_algo = {r["algorithm"]: r for r in rows}
    # Pure grid/tensor traffic becomes fully streaming.
    assert by_algo["directvoxgo"]["fully_streaming_nonstreaming"] < 0.01
    assert by_algo["tensorf"]["fully_streaming_nonstreaming"] < 0.01
    # Hashed levels revert: Instant-NGP keeps a non-streaming residue.
    assert by_algo["instant_ngp"]["fully_streaming_nonstreaming"] > 0.1
    for row in rows:
        assert (row["fully_streaming_nonstreaming"]
                < row["pixel_centric_nonstreaming"])
