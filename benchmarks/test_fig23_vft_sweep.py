"""Fig. 23: GU energy sensitivity to the VFT buffer size.

Paper claim: energy stays roughly flat from 8 KB to 64 KB, then rises for
larger buffers (bigger arrays cost more per access).
"""

from conftest import run_once

from repro.harness import EXPERIMENTS, print_table


def test_fig23_vft_energy_sweep(benchmark, bench_config):
    rows = run_once(benchmark, lambda: EXPERIMENTS["fig23"](
        bench_config, sizes_kb=(8, 16, 32, 64, 128, 256)))
    print_table(rows, title="Fig. 23 — GU energy vs VFT size")

    by_kb = {r["vft_kb"]: r["normalized_energy"] for r in rows}
    # Flat-ish region at small sizes.
    assert by_kb[8] < 1.1
    assert abs(by_kb[32] - 1.0) < 1e-9  # normalisation point
    # Rising beyond 64 KB.
    assert by_kb[256] > by_kb[64] > by_kb[32] - 1e-9
    assert by_kb[256] > 1.5
