"""Ablation: the design choices DESIGN.md calls out.

(a) Off-trajectory (extrapolated) vs on-trajectory reference scheduling
    (Fig. 11): the overlapped policy removes the window-boundary stall
    entirely, and with dedicated remote resources hides reference rendering
    behind target rendering.
(b) Depth-test void skipping (Sec. III-B step 4): without the depth test,
    every background hole would be NeRF-rendered; the classifier keeps
    sparse work proportional to true disocclusion only.
"""

from conftest import run_once

from repro.core.sparw import classify_pixels, warp_frame
from repro.harness import print_table
from repro.harness.configs import ground_truth_sequence, make_camera
from repro.harness.figures import full_frame_profile, run_sparw, sparw_workloads_from_result
from repro.hw import SoCModel, overlapped_timeline, serialized_timeline


def test_ablation_reference_scheduling(benchmark, bench_config):
    def run():
        profile = full_frame_profile("directvoxgo", "lego", bench_config)
        result = run_sparw("directvoxgo", "lego", bench_config, window=16)
        wls = sparw_workloads_from_result(result, profile, 16)
        soc = SoCModel(feature_dim=bench_config.feature_dim)
        target = soc.price_nerf(wls.target, "cicero").time_s
        reference = soc.price_nerf(wls.reference, "cicero").time_s
        return {
            "serialized": serialized_timeline(target, reference, 16),
            "overlapped_shared": overlapped_timeline(target, reference, 16,
                                                     shared_resources=True),
            "overlapped_remote": overlapped_timeline(target, reference / 10,
                                                     16,
                                                     shared_resources=False),
        }

    timelines = run_once(benchmark, run)
    rows = [{"policy": name, "mean_ms": t.mean_frame_time * 1e3,
             "worst_ms": t.worst_frame_time * 1e3,
             "stall_ms": t.reference_stall * 1e3}
            for name, t in timelines.items()]
    print_table(rows, title="Ablation — reference scheduling (Fig. 11)")

    ser = timelines["serialized"]
    shared = timelines["overlapped_shared"]
    remote = timelines["overlapped_remote"]
    # Same average under contention, but no boundary stall when overlapped.
    assert shared.mean_frame_time <= ser.mean_frame_time * 1.001
    assert shared.worst_frame_time < ser.worst_frame_time
    assert ser.reference_stall > 0.0 and shared.reference_stall == 0.0
    # Dedicated remote resources hide the reference entirely.
    assert remote.mean_frame_time <= shared.mean_frame_time


def test_ablation_void_skipping(benchmark, bench_config):
    def run():
        trajectory, gt = ground_truth_sequence("lego", bench_config)
        camera = make_camera(bench_config)
        mid = len(trajectory.poses) // 2
        warp = warp_frame(gt[0], camera.with_pose(trajectory[0]),
                          camera.with_pose(trajectory[mid]))
        cls = classify_pixels(warp)
        holes_without_depth_test = int((~warp.covered).sum())
        return cls, holes_without_depth_test

    cls, naive_holes = run_once(benchmark, run)
    rerendered = int(cls.disoccluded.sum())
    print_table([{
        "uncovered_pixels_total": naive_holes,
        "rerendered_with_depth_test": rerendered,
        "skipped_void_pixels": int(cls.void.sum()),
        "sparse_work_reduction": naive_holes / max(rerendered, 1),
    }], title="Ablation — depth-test void skipping")

    # The depth test must eliminate the (large) void portion of the holes.
    assert rerendered < 0.35 * naive_holes
    assert not (cls.disoccluded & cls.void).any()
