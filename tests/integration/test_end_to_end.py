"""Integration tests: full pipelines across module boundaries."""

import numpy as np
import pytest

from repro.core.sparw import SparwRenderer
from repro.core.streaming import FullyStreamingScheduler
from repro.harness import FAST, full_frame_profile
from repro.harness.configs import build_renderer, ground_truth_sequence, make_camera
from repro.harness.figures import run_sparw, sparw_workloads_from_result
from repro.hw import RemoteConfig, RemoteScenario, SoCModel
from repro.metrics import mean_psnr, psnr


class TestFullStack:
    """Render -> analyse -> price, across all three algorithms."""

    @pytest.mark.parametrize("algorithm",
                             ["directvoxgo", "instant_ngp", "tensorf"])
    def test_profile_and_price(self, algorithm):
        profile = full_frame_profile(algorithm, "lego", FAST)
        soc = SoCModel(feature_dim=FAST.feature_dim)
        base = soc.price_nerf(profile.workload, "baseline")
        cicero = soc.price_nerf(profile.workload, "cicero")
        assert base.time_s > cicero.time_s > 0.0
        assert base.energy_j > cicero.energy_j > 0.0

    @pytest.mark.parametrize("algorithm",
                             ["directvoxgo", "instant_ngp", "tensorf"])
    def test_render_quality_floor(self, algorithm):
        _, gt = ground_truth_sequence("lego", FAST)
        renderer = build_renderer(algorithm, "lego", FAST)
        camera = make_camera(FAST, gt[0].c2w)
        frame, _ = renderer.render_frame(camera)
        assert psnr(frame.image, gt[0].image) > 13.0


class TestSparwEndToEnd:
    def test_speedup_and_quality_tradeoff(self):
        """The headline result at test scale: real speed-up, small PSNR drop."""
        _, gt = ground_truth_sequence("lego", FAST)
        gt_images = [f.image for f in gt]
        profile = full_frame_profile("directvoxgo", "lego", FAST)
        result = run_sparw("directvoxgo", "lego", FAST, window=4)
        wls = sparw_workloads_from_result(result, profile, window=4)

        soc = SoCModel(feature_dim=FAST.feature_dim)
        base = soc.price_nerf(profile.workload, "baseline")
        cicero = soc.price_sparw_local(wls, "cicero")
        speedup = base.time_s / cicero.time_s
        assert speedup > 3.0

        sparw_psnr = mean_psnr([f.image for f in result.frames], gt_images)
        renderer = build_renderer("directvoxgo", "lego", FAST)
        camera = make_camera(FAST)
        trajectory, _ = ground_truth_sequence("lego", FAST)
        baseline_frames = [renderer.render_frame(camera.with_pose(p))[0]
                           for p in trajectory.poses]
        base_psnr = mean_psnr([f.image for f in baseline_frames], gt_images)
        assert sparw_psnr > base_psnr - 1.5

    def test_remote_scenario_prices(self):
        profile = full_frame_profile("directvoxgo", "lego", FAST)
        result = run_sparw("directvoxgo", "lego", FAST, window=4)
        wls = sparw_workloads_from_result(result, profile, window=4)
        soc = SoCModel(feature_dim=FAST.feature_dim)
        remote = RemoteScenario(soc, RemoteConfig())
        frame_bytes = FAST.image_size**2 * 4
        base = remote.price_baseline_remote(profile.workload, frame_bytes)
        cic = remote.price_sparw_remote(wls, "cicero", frame_bytes)
        assert cic.time_s < base.time_s
        assert base.energy_j < cic.energy_j  # offloading wins on energy


class TestStreamingEquivalence:
    def test_memory_centric_rendering_is_lossless(self):
        """Reordering samples by MVoxel must not change the rendered frame.

        This is the correctness property behind fully-streaming rendering:
        gather results are order-independent, so the memory-centric schedule
        can only change *when* features are fetched, never what is computed.
        """
        from repro.core.streaming import streaming_execution_order
        renderer = build_renderer("directvoxgo", "lego", FAST)
        field = renderer.field
        rng = np.random.default_rng(0)
        pts = rng.uniform(-1.4, 1.4, size=(2000, 3))
        dirs = rng.normal(size=(2000, 3))
        dirs /= np.linalg.norm(dirs, axis=1, keepdims=True)

        group = field.gather_plan(pts)[0]
        order = streaming_execution_order(group,
                                          buffer_bytes=FAST.vft_buffer_bytes)
        sigma_direct, rgb_direct = field.query(pts, dirs)
        sigma_stream, rgb_stream = field.query(pts[order], dirs[order])
        np.testing.assert_allclose(sigma_stream, sigma_direct[order],
                                   atol=1e-10)
        np.testing.assert_allclose(rgb_stream, rgb_direct[order], atol=1e-10)

    def test_fs_traffic_less_than_uncached_baseline(self):
        profile = full_frame_profile("directvoxgo", "lego", FAST)
        scheduler = FullyStreamingScheduler(baseline_cache_bytes=None)
        report = scheduler.analyze(profile.gather_groups)
        assert report.fs_bytes < report.baseline_bytes
        assert report.fs_streaming_fraction == pytest.approx(1.0)


class TestDeterminism:
    def test_sequences_are_reproducible(self):
        a = run_sparw("directvoxgo", "lego", FAST, window=4)
        renderer = build_renderer("directvoxgo", "lego", FAST)
        camera = make_camera(FAST)
        trajectory, _ = ground_truth_sequence("lego", FAST)
        fresh = SparwRenderer(renderer, camera,
                              window=4).render_sequence(trajectory.poses)
        np.testing.assert_allclose(a.frames[3].image, fresh.frames[3].image,
                                   atol=1e-12)
