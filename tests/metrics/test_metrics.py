"""Tests for quality metrics and summary statistics."""

import numpy as np
import pytest

from repro.metrics import (
    arithmetic_mean,
    geometric_mean,
    mean_psnr,
    mse,
    normalize_to,
    psnr,
    psnr_sequence,
    speedup,
)


class TestMSEPSNR:
    def test_identical_images(self):
        img = np.random.default_rng(0).uniform(size=(8, 8, 3))
        assert mse(img, img) == 0.0
        assert psnr(img, img) == float("inf")

    def test_known_value(self):
        a = np.zeros((4, 4, 3))
        b = np.full((4, 4, 3), 0.1)
        assert mse(a, b) == pytest.approx(0.01)
        assert psnr(a, b) == pytest.approx(20.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            mse(np.zeros((4, 4, 3)), np.zeros((5, 4, 3)))

    def test_masked(self):
        a = np.zeros((4, 4, 3))
        b = np.zeros((4, 4, 3))
        b[0, 0] = 1.0
        mask = np.zeros((4, 4), dtype=bool)
        mask[1:, :] = True
        assert mse(a, b, mask=mask) == 0.0
        assert mse(a, b) > 0.0

    def test_empty_mask(self):
        a = np.zeros((4, 4, 3))
        assert mse(a, a, mask=np.zeros((4, 4), dtype=bool)) == 0.0

    def test_sequence_helpers(self):
        a = [np.zeros((4, 4, 3))] * 3
        b = [np.full((4, 4, 3), 0.1)] * 3
        per_frame = psnr_sequence(a, b)
        assert len(per_frame) == 3
        assert mean_psnr(a, b) == pytest.approx(20.0)

    def test_sequence_length_mismatch(self):
        with pytest.raises(ValueError):
            psnr_sequence([np.zeros((2, 2, 3))], [])

    def test_mean_psnr_pools_mse(self):
        """Pooled PSNR differs from averaging per-frame PSNRs."""
        a = [np.zeros((2, 2, 3)), np.zeros((2, 2, 3))]
        b = [np.full((2, 2, 3), 0.1), np.full((2, 2, 3), 0.2)]
        pooled = mean_psnr(a, b)
        expected = 10 * np.log10(1.0 / np.mean([0.01, 0.04]))
        assert pooled == pytest.approx(expected)


class TestStats:
    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geometric_mean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_arithmetic_mean(self):
        assert arithmetic_mean([1.0, 3.0]) == pytest.approx(2.0)

    def test_speedup(self):
        assert speedup(10.0, 2.0) == pytest.approx(5.0)
        with pytest.raises(ValueError):
            speedup(10.0, 0.0)

    def test_normalize_to(self):
        out = normalize_to({"a": 2.0, "b": 6.0}, "a")
        assert out == {"a": 1.0, "b": 3.0}
        with pytest.raises(ValueError):
            normalize_to({"a": 0.0, "b": 1.0}, "a")
