"""Tests for DS-2 and TEMP-N baselines."""

import numpy as np
import pytest

from repro.baselines import DS2Renderer, TemporalWarpRenderer, bilinear_upsample
from repro.harness.configs import make_camera
from repro.metrics import mean_psnr


class TestBilinearUpsample:
    def test_shape(self):
        out = bilinear_upsample(np.zeros((4, 4, 3)), 8, 8)
        assert out.shape == (8, 8, 3)

    def test_constant_preserved(self):
        image = np.full((4, 4, 3), 0.7)
        out = bilinear_upsample(image, 8, 8)
        np.testing.assert_allclose(out, 0.7, atol=1e-12)

    def test_linear_ramp_preserved(self):
        """Bilinear upsampling reproduces linear gradients (interior)."""
        x = np.linspace(0.0, 1.0, 8)
        image = np.tile(x[None, :, None], (8, 1, 3))
        out = bilinear_upsample(image, 16, 16)
        interior = out[4:-4, 4:-4, 0]
        grad = np.diff(interior, axis=1)
        assert (grad > 0).all()

    def test_identity_size(self):
        rng = np.random.default_rng(0)
        image = rng.uniform(size=(6, 6, 3))
        out = bilinear_upsample(image, 6, 6)
        np.testing.assert_allclose(out, image, atol=1e-9)

    def test_2d_input(self):
        out = bilinear_upsample(np.ones((4, 4)), 8, 8)
        assert out.shape == (8, 8)


class TestDS2:
    def test_renders_full_resolution(self, fast_renderer, fast_sequence,
                                     fast_config):
        trajectory, _ = fast_sequence
        ds2 = DS2Renderer(fast_renderer, make_camera(fast_config))
        frame, stats = ds2.render_frame(trajectory[0])
        assert frame.image.shape == (fast_config.image_size,
                                     fast_config.image_size, 3)

    def test_quarter_ray_count(self, fast_renderer, fast_sequence,
                               fast_config):
        trajectory, _ = fast_sequence
        ds2 = DS2Renderer(fast_renderer, make_camera(fast_config))
        _, stats = ds2.render_frame(trajectory[0])
        full_rays = fast_config.image_size**2
        assert stats.num_rays == full_rays // 4

    def test_quality_below_full_render(self, fast_renderer, fast_sequence,
                                       fast_config):
        trajectory, gt = fast_sequence
        camera = make_camera(fast_config)
        ds2 = DS2Renderer(fast_renderer, camera)
        frames, _ = ds2.render_sequence(trajectory.poses[:3])
        full = [fast_renderer.render_frame(camera.with_pose(p))[0]
                for p in trajectory.poses[:3]]
        gt_images = [f.image for f in gt[:3]]
        assert (mean_psnr([f.image for f in frames], gt_images)
                <= mean_psnr([f.image for f in full], gt_images) + 0.3)

    def test_invalid_factor_rejected(self, fast_renderer, fast_config):
        with pytest.raises(ValueError):
            DS2Renderer(fast_renderer, make_camera(fast_config), factor=0)


class TestTemporal:
    def test_renders_sequence(self, fast_renderer, fast_sequence, fast_config):
        trajectory, _ = fast_sequence
        temp = TemporalWarpRenderer(fast_renderer, make_camera(fast_config),
                                    window=4)
        result = temp.render_sequence(trajectory.poses)
        assert result.num_frames == len(trajectory.poses)

    def test_only_bootstrap_reference(self, fast_renderer, fast_sequence,
                                      fast_config):
        """Chained policy renders one full frame, then reuses outputs."""
        trajectory, _ = fast_sequence
        temp = TemporalWarpRenderer(fast_renderer, make_camera(fast_config),
                                    window=4)
        result = temp.render_sequence(trajectory.poses)
        assert result.num_references == 1

    def test_worse_than_sparw(self, fast_renderer, fast_sequence,
                              fast_config):
        """The paper's claim: TEMP accumulates error; SPARW does not."""
        from repro.core.sparw import SparwRenderer
        trajectory, gt = fast_sequence
        camera = make_camera(fast_config)
        gt_images = [f.image for f in gt]

        temp = TemporalWarpRenderer(fast_renderer, camera, window=4)
        temp_psnr = mean_psnr(
            [f.image for f in temp.render_sequence(trajectory.poses).frames],
            gt_images)
        sparw = SparwRenderer(fast_renderer, camera, window=4)
        sparw_psnr = mean_psnr(
            [f.image for f in sparw.render_sequence(trajectory.poses).frames],
            gt_images)
        # At the 8-frame test scale TEMP's accumulation barely bites; demand
        # parity here (the fig16 bench shows the multi-dB gap at full scale).
        assert sparw_psnr >= temp_psnr - 0.3
