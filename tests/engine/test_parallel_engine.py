"""Serial vs parallel-backend engine runs are bit-identical.

The ``parallel`` backend fans deterministic sessions' ray bundles to the
worker pool, so the whole :class:`EngineResult` — frames, per-frame
records, batch statistics, and scheduler/session order — must match the
serial run exactly on a seeded mixed workload.
"""

import numpy as np
import pytest

from repro.engine import MultiSessionEngine
from repro.harness.configs import FAST
from repro.workloads import build_mixed_sessions

MIX = "vr-lego:2,dolly-chair"
FRAMES = 3
SEED = 11


def _run(backend=None, engine_workers=None):
    sessions = build_mixed_sessions(MIX, FAST, frames=FRAMES, seed=SEED)
    engine = MultiSessionEngine(sessions, backend=backend,
                                engine_workers=engine_workers)
    return engine.run()


@pytest.fixture(scope="module")
def serial_result():
    return _run()


@pytest.fixture(scope="module")
def parallel_result():
    return _run(backend="parallel", engine_workers=2)


class TestSerialParallelParity:
    def test_session_order_identical(self, serial_result, parallel_result):
        assert ([s.session_id for s in serial_result.sessions]
                == [s.session_id for s in parallel_result.sessions])

    def test_batch_stats_identical(self, serial_result, parallel_result):
        serial, parallel = serial_result.batch, parallel_result.batch
        assert serial.nerf_calls == parallel.nerf_calls
        assert serial.requests == parallel.requests
        assert serial.total_rays == parallel.total_rays
        assert serial.max_batch_rays == parallel.max_batch_rays
        assert serial.rounds == parallel.rounds

    def test_frames_identical(self, serial_result, parallel_result):
        assert serial_result.total_frames == parallel_result.total_frames
        for ss, ps in zip(serial_result.sessions, parallel_result.sessions):
            for sf, pf in zip(ss.result.frames, ps.result.frames):
                assert np.array_equal(sf.image, pf.image)
                assert np.array_equal(sf.depth, pf.depth, equal_nan=True)

    def test_records_identical(self, serial_result, parallel_result):
        for ss, ps in zip(serial_result.sessions, parallel_result.sessions):
            for sr, pr in zip(ss.result.records, ps.result.records):
                assert sr.frame_index == pr.frame_index
                assert sr.new_reference == pr.new_reference
                assert sr.sparse_stats == pr.sparse_stats
                assert sr.reference_stats == pr.reference_stats
