"""Regression: batched multi-session rendering == N single-user pipelines.

The engine's whole contract is that interleaving sessions and answering
their ray requests from shared vectorized field queries changes *nothing*
about what each session produces: frames, pixel classifications, and work
statistics must be identical to driving each session alone through
``SparwRenderer.render_sequence``.
"""

import numpy as np
import pytest

from repro.core.sparw import SparwRenderer
from repro.engine import MultiSessionEngine, RenderSession, RoundRobinScheduler
from repro.harness.configs import make_camera
from repro.scenes import orbit_trajectory

START_ANGLES = (0.0, 40.0, 95.0)
NUM_POSES = 5
WINDOW = 4


@pytest.fixture(scope="module")
def trajectories(fast_config):
    return [orbit_trajectory(NUM_POSES, radius=fast_config.orbit_radius,
                             degrees_per_frame=1.0, start_angle_deg=angle)
            for angle in START_ANGLES]


@pytest.fixture(scope="module")
def solo_results(fast_renderer, fast_config, trajectories):
    camera = make_camera(fast_config)
    return [SparwRenderer(fast_renderer, camera,
                          window=WINDOW).render_sequence(t.poses)
            for t in trajectories]


@pytest.fixture(scope="module")
def engine_result(fast_renderer, fast_config, trajectories):
    camera = make_camera(fast_config)
    sessions = [
        RenderSession(f"s{i}",
                      SparwRenderer(fast_renderer, camera, window=WINDOW),
                      t.poses)
        for i, t in enumerate(trajectories)
    ]
    return MultiSessionEngine(sessions,
                              scheduler=RoundRobinScheduler()).run()


class TestParity:
    def test_all_sessions_complete(self, engine_result):
        assert all(s.done for s in engine_result.sessions)
        assert engine_result.total_frames == len(START_ANGLES) * NUM_POSES

    def test_frame_stats_identical(self, engine_result, solo_results):
        for i, solo in enumerate(solo_results):
            batched = engine_result.session(f"s{i}").result
            assert batched.num_frames == solo.num_frames
            for br, sr in zip(batched.records, solo.records):
                assert br.frame_index == sr.frame_index
                assert br.new_reference == sr.new_reference
                assert br.sparse_stats == sr.sparse_stats
                assert br.reference_stats == sr.reference_stats
                assert br.warp_points == sr.warp_points
                assert br.overlap == sr.overlap
                assert br.mean_warp_angle_deg == sr.mean_warp_angle_deg

    def test_classifications_identical(self, engine_result, solo_results):
        for i, solo in enumerate(solo_results):
            batched = engine_result.session(f"s{i}").result
            for br, sr in zip(batched.records, solo.records):
                assert np.array_equal(br.classification.warped,
                                      sr.classification.warped)
                assert np.array_equal(br.classification.disoccluded,
                                      sr.classification.disoccluded)
                assert np.array_equal(br.classification.void,
                                      sr.classification.void)

    def test_frames_identical(self, engine_result, solo_results):
        for i, solo in enumerate(solo_results):
            batched = engine_result.session(f"s{i}").result
            for bf, sf in zip(batched.frames, solo.frames):
                assert np.array_equal(bf.image, sf.image)
                assert np.array_equal(bf.depth, sf.depth)
                assert np.array_equal(bf.hit, sf.hit)

    def test_rays_were_actually_batched(self, engine_result):
        batch = engine_result.batch
        assert batch.nerf_calls < batch.requests
        assert batch.requests_per_call > 1.5
        # The biggest batch spans several sessions' full reference frames.
        assert batch.max_batch_rays > 2 * 48 * 48

    def test_deadline_scheduler_same_outputs(self, fast_renderer, fast_config,
                                             trajectories, solo_results):
        from repro.engine import DeadlineScheduler
        camera = make_camera(fast_config)
        sessions = [
            RenderSession(f"s{i}",
                          SparwRenderer(fast_renderer, camera, window=WINDOW),
                          t.poses)
            for i, t in enumerate(trajectories)
        ]
        result = MultiSessionEngine(sessions,
                                    scheduler=DeadlineScheduler()).run()
        for i, solo in enumerate(solo_results):
            batched = result.session(f"s{i}").result
            for br, sr in zip(batched.records, solo.records):
                assert br.sparse_stats == sr.sparse_stats
                assert np.array_equal(br.frame.image, sr.frame.image)
