"""Unit tests for sessions, schedulers, and engine batching mechanics.

Uses a scripted fake pipeline so these run in microseconds — the real
NeRF-backed parity checks live in test_engine_parity.py.
"""

import numpy as np
import pytest

from repro.core.sparw.pipeline import RayRequest, TargetFrameRecord
from repro.engine import (
    DeadlineScheduler,
    MultiSessionEngine,
    RenderSession,
    RoundRobinScheduler,
    make_scheduler,
)
from repro.engine.engine import batch_key


class FakeSampler:
    jitter = False
    num_samples = 8


class FakeRenderer:
    """Counts batched calls; echoes one output per bundle."""

    def __init__(self, field_id=0):
        self.sampler = FakeSampler()
        self.field = ("field", field_id)
        self.chunk_size = 1024
        self.batch_calls = []

    def render_ray_batch(self, bundles):
        self.batch_calls.append([o.shape[0] for o, _ in bundles])
        return [f"out-{o.shape[0]}" for o, _ in bundles]


class FakePipeline:
    """Emits `rays_per_frame` single-request frames through step()."""

    def __init__(self, renderer, num_frames, rays_per_frame=4):
        self.renderer = renderer
        self.num_frames = num_frames
        self.rays_per_frame = rays_per_frame

    def step(self, poses):
        for i in range(self.num_frames):
            rays = np.zeros((self.rays_per_frame, 3))
            out = yield RayRequest(kind="sparse", frame_index=i,
                                   origins=rays, directions=rays)
            yield TargetFrameRecord(
                frame_index=i, frame=out, classification=None, overlap=1.0,
                new_reference=False, sparse_stats=None, reference_stats=None,
                warp_points=0, mean_warp_angle_deg=0.0)


def make_session(sid, renderer, frames=2, rays=4, fps=30.0):
    return RenderSession(sid, FakePipeline(renderer, frames, rays),
                         poses=[None] * frames, fps_target=fps)


class TestSession:
    def test_pending_and_deliver(self):
        session = make_session("a", FakeRenderer(), frames=2)
        assert not session.done
        assert session.pending_request.kind == "sparse"
        session.deliver("first")
        assert session.frames_completed == 1
        assert session.result.records[0].frame == "first"
        session.deliver("second")
        assert session.done
        assert session.pending_request is None

    def test_deliver_without_pending_raises(self):
        session = make_session("a", FakeRenderer(), frames=1)
        session.deliver("only")
        with pytest.raises(RuntimeError):
            session.deliver("extra")

    def test_empty_trajectory_is_done(self):
        session = RenderSession("e", FakePipeline(FakeRenderer(), 0), [])
        assert session.done

    def test_deadline_advances_with_progress(self):
        session = make_session("a", FakeRenderer(), frames=2, fps=10.0)
        assert session.next_deadline == 0.0
        session.deliver("f0")
        assert session.next_deadline == pytest.approx(0.1)

    def test_invalid_fps_rejected(self):
        with pytest.raises(ValueError):
            make_session("a", FakeRenderer(), fps=0.0)


class TestSchedulers:
    def test_round_robin_rotates(self):
        sessions = ["a", "b", "c"]
        sched = RoundRobinScheduler()
        assert sched.order(sessions, 0) == ["a", "b", "c"]
        assert sched.order(sessions, 1) == ["b", "c", "a"]
        assert sched.order(sessions, 4) == ["b", "c", "a"]

    def test_deadline_orders_most_behind_first(self):
        renderer = FakeRenderer()
        fast = make_session("fast", renderer, frames=3, fps=90.0)
        slow = make_session("slow", renderer, frames=3, fps=30.0)
        fast.deliver("f0")
        slow.deliver("f0")
        # fast owes its next frame sooner (1/90 < 1/30).
        order = DeadlineScheduler().order([slow, fast], 0)
        assert [s.session_id for s in order] == ["fast", "slow"]

    def test_make_scheduler(self):
        assert isinstance(make_scheduler("round_robin"), RoundRobinScheduler)
        assert isinstance(make_scheduler("deadline"), DeadlineScheduler)
        with pytest.raises(ValueError):
            make_scheduler("fifo")


class TestEngineBatching:
    def test_shared_renderer_batches_into_one_call(self):
        renderer = FakeRenderer()
        sessions = [make_session(f"s{i}", renderer, frames=2, rays=3)
                    for i in range(4)]
        result = MultiSessionEngine(sessions).run()
        assert all(s.done for s in sessions)
        # 2 frames x 4 sessions, one batched call per round.
        assert result.batch.rounds == 2
        assert result.batch.nerf_calls == 2
        assert result.batch.requests == 8
        assert result.batch.requests_per_call == pytest.approx(4.0)
        assert result.batch.max_batch_rays == 12

    def test_distinct_fields_do_not_share_calls(self):
        a, b = FakeRenderer(field_id=1), FakeRenderer(field_id=2)
        sessions = [make_session("a", a, frames=1),
                    make_session("b", b, frames=1)]
        result = MultiSessionEngine(sessions).run()
        assert result.batch.nerf_calls == 2
        assert len(a.batch_calls) == 1 and len(b.batch_calls) == 1

    def test_jittered_sampler_never_shares(self):
        renderer = FakeRenderer()
        renderer.sampler = FakeSampler()
        renderer.sampler.jitter = True
        assert batch_key(renderer) is None
        # Even two sessions on the SAME jittered renderer get separate
        # render calls — combined chunks would reorder its RNG stream.
        sessions = [make_session("a", renderer, frames=1),
                    make_session("b", renderer, frames=1)]
        result = MultiSessionEngine(sessions).run()
        assert result.batch.nerf_calls == 2
        assert all(len(call) == 1 for call in renderer.batch_calls)

    def test_deterministic_sampler_key_is_stable(self):
        renderer = FakeRenderer()
        assert batch_key(renderer) == batch_key(renderer)

    def test_ray_budget_limits_round_but_serves_everyone(self):
        renderer = FakeRenderer()
        sessions = [make_session(f"s{i}", renderer, frames=1, rays=10)
                    for i in range(3)]
        result = MultiSessionEngine(sessions, ray_budget=10).run()
        assert all(s.done for s in sessions)
        # One session per round under the 10-ray budget.
        assert result.batch.rounds == 3
        assert result.batch.max_batch_rays == 10

    def test_budget_always_serves_at_least_one(self):
        renderer = FakeRenderer()
        sessions = [make_session("big", renderer, frames=1, rays=50)]
        result = MultiSessionEngine(sessions, ray_budget=1).run()
        assert sessions[0].done
        assert result.batch.total_rays == 50

    def test_duplicate_ids_rejected(self):
        renderer = FakeRenderer()
        with pytest.raises(ValueError):
            MultiSessionEngine([make_session("x", renderer),
                                make_session("x", renderer)])

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError):
            MultiSessionEngine([], ray_budget=0)
