"""Engine runs release scratch arenas and geometry memos at exit.

``MultiSessionEngine.run()`` must leave no per-run working memory
behind: the sampling scratch arenas, memoised camera direction grids,
and depth-lift grids are cleared in its ``finally`` block (and pool
workers clear their own on a ``release`` broadcast), so repeated runs
in one process cannot accumulate arena growth.
"""

from repro.engine import MultiSessionEngine
from repro.harness.configs import FAST
from repro.workloads import build_mixed_sessions


def _arena_sizes() -> tuple:
    from repro.geometry.camera import _DIR_GRID_CACHE
    from repro.geometry.pointcloud import _LIFT_CACHE
    from repro.nerf.sampling import _SCRATCH
    return (len(_SCRATCH), len(_DIR_GRID_CACHE), len(_LIFT_CACHE))


def _run():
    sessions = build_mixed_sessions("vr-lego,dolly-chair", FAST,
                                    frames=2, seed=5)
    return MultiSessionEngine(sessions).run()


class TestMemoryRelease:
    def test_run_exit_clears_arenas(self):
        result = _run()
        assert result.total_frames > 0  # the run really rendered
        assert _arena_sizes() == (0, 0, 0)

    def test_no_cross_run_growth(self):
        sizes = []
        for _ in range(3):
            _run()
            sizes.append(_arena_sizes())
        assert sizes == [(0, 0, 0)] * 3

    def test_release_hook_clears_populated_arenas(self):
        import numpy as np

        from repro.backend.parallel import release_process_memory
        from repro.geometry.camera import _DIR_GRID_CACHE
        from repro.nerf.sampling import _scratch

        _scratch("test-slot", (64,), np.float64)
        _DIR_GRID_CACHE["sentinel"] = None
        assert _arena_sizes() != (0, 0, 0)
        release_process_memory()
        assert _arena_sizes() == (0, 0, 0)
