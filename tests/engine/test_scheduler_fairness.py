"""Property-style fairness tests for scheduling under tight ray budgets.

With a per-round ray budget smaller than the fleet's demand, only a
prefix of the scheduler's ordering renders each round — exactly where an
unfair policy would starve someone.  These tests instrument real engine
runs (scripted fake pipelines, so hundreds of property cases stay fast)
and assert the two contracts: round-robin never starves a session, and
deadline scheduling catches a lagging session up instead of widening the
gap.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sparw.pipeline import RayRequest, TargetFrameRecord
from repro.engine import (
    DeadlineScheduler,
    MultiSessionEngine,
    RenderSession,
    RoundRobinScheduler,
)


class FakeSampler:
    jitter = False
    num_samples = 8


class FakeRenderer:
    def __init__(self):
        self.sampler = FakeSampler()
        self.field = ("field", 0)
        self.chunk_size = 1024

    def render_ray_batch(self, bundles):
        return [f"out-{origins.shape[0]}" for origins, _ in bundles]


class FakePipeline:
    def __init__(self, renderer, num_frames, rays_per_frame):
        self.renderer = renderer
        self.num_frames = num_frames
        self.rays_per_frame = rays_per_frame

    def step(self, poses):
        for i in range(self.num_frames):
            rays = np.zeros((self.rays_per_frame, 3))
            out = yield RayRequest(kind="sparse", frame_index=i,
                                   origins=rays, directions=rays)
            yield TargetFrameRecord(
                frame_index=i, frame=out, classification=None, overlap=1.0,
                new_reference=False, sparse_stats=None,
                reference_stats=None, warp_points=0,
                mean_warp_angle_deg=0.0)


def make_session(sid, renderer, frames, rays=4, fps=30.0):
    return RenderSession(sid, FakePipeline(renderer, frames, rays),
                         poses=[None] * frames, fps_target=fps)


class RecordingScheduler:
    """Wraps a scheduler; snapshots per-session progress every round."""

    def __init__(self, inner, all_sessions):
        self.inner = inner
        self.all_sessions = all_sessions
        self.snapshots = []  # per-round {session_id: frames_completed}
        self.orders = []  # per-round ordering of active session ids

    def order(self, sessions, round_index):
        ordered = self.inner.order(sessions, round_index)
        self.snapshots.append({s.session_id: s.frames_completed
                               for s in self.all_sessions})
        self.orders.append([s.session_id for s in ordered])
        return ordered


def run_recorded(sessions, scheduler, ray_budget):
    recorder = RecordingScheduler(scheduler, sessions)
    result = MultiSessionEngine(sessions, scheduler=recorder,
                                ray_budget=ray_budget).run()
    return result, recorder


class TestRoundRobinNeverStarves:
    @settings(max_examples=40, deadline=None)
    @given(num_sessions=st.integers(2, 8), frames=st.integers(1, 6),
           served_per_round=st.integers(1, 3))
    def test_progress_spread_stays_bounded(self, num_sessions, frames,
                                           served_per_round):
        """Under any tight budget, no session ever falls more than the
        per-round service width behind any other, and everyone finishes."""
        rays = 4
        renderer = FakeRenderer()
        sessions = [make_session(f"s{i}", renderer, frames, rays=rays)
                    for i in range(num_sessions)]
        # Budget admits exactly `served_per_round` requests per round.
        result, recorder = run_recorded(sessions, RoundRobinScheduler(),
                                        ray_budget=rays * served_per_round)
        assert all(s.done for s in sessions)
        assert result.total_frames == num_sessions * frames
        for snapshot in recorder.snapshots:
            progress = list(snapshot.values())
            assert max(progress) - min(progress) <= served_per_round

    @settings(max_examples=25, deadline=None)
    @given(num_sessions=st.integers(2, 6), frames=st.integers(2, 5))
    def test_service_gap_is_bounded(self, num_sessions, frames):
        """Every unfinished session is served at least once in any window
        of `2 * num_sessions` consecutive rounds — the starvation bound.
        (Rotation is over the *shrinking* active list, so the gap can
        exceed one full lap of the fleet, but never two.)"""
        rays = 4
        renderer = FakeRenderer()
        sessions = [make_session(f"s{i}", renderer, frames, rays=rays)
                    for i in range(num_sessions)]
        _, recorder = run_recorded(sessions, RoundRobinScheduler(),
                                   ray_budget=rays)  # one session per round
        served_per_round = [order[0] for order in recorder.orders]
        last_served = {f"s{i}": -1 for i in range(num_sessions)}
        for round_index, sid in enumerate(served_per_round):
            for other, last in last_served.items():
                if other in recorder.orders[round_index]:  # still active
                    assert round_index - last <= 2 * num_sessions, (
                        f"{other} unserved for {round_index - last} rounds")
            last_served[sid] = round_index


class TestDeadlineCatchesUp:
    def test_lagging_session_served_until_caught_up(self):
        """A session three frames behind is served exclusively until it
        rejoins the pack, then progress stays level."""
        rays = 4
        lag = 3
        renderer = FakeRenderer()
        ahead_a = make_session("ahead-a", renderer, frames=6, rays=rays)
        ahead_b = make_session("ahead-b", renderer, frames=6, rays=rays)
        behind = make_session("behind", renderer, frames=6, rays=rays)
        for _ in range(lag):  # pre-advance two sessions outside the engine
            ahead_a.deliver("warm")
            ahead_b.deliver("warm")
        _, recorder = run_recorded([ahead_a, ahead_b, behind],
                                   DeadlineScheduler(), ray_budget=rays)
        served = [order[0] for order in recorder.orders]
        # The first `lag` rounds all go to the lagging session...
        assert served[:lag] == ["behind"] * lag
        # ...after which nobody drifts more than one frame apart again.
        for snapshot in recorder.snapshots[lag:]:
            progress = list(snapshot.values())
            assert max(progress) - min(progress) <= 1
        assert all(s.done for s in (ahead_a, ahead_b, behind))

    @settings(max_examples=25, deadline=None)
    @given(num_sessions=st.integers(2, 6), frames=st.integers(2, 6),
           lag=st.integers(1, 4))
    def test_catch_up_property(self, num_sessions, frames, lag):
        """However far one session starts behind, deadline scheduling
        serves it first until the spread collapses to <= 1 and never lets
        it grow past the initial lag."""
        rays = 4
        renderer = FakeRenderer()
        sessions = [make_session(f"s{i}", renderer, frames + lag,
                                 rays=rays)
                    for i in range(num_sessions)]
        for session in sessions[:-1]:
            for _ in range(lag):
                session.deliver("warm")
        _, recorder = run_recorded(sessions, DeadlineScheduler(),
                                   ray_budget=rays)
        spreads = [max(s.values()) - min(s.values())
                   for s in recorder.snapshots]
        assert all(s.done for s in sessions)
        assert max(spreads) <= lag  # the gap never widens
        caught_up = next(i for i, s in enumerate(spreads) if s <= 1)
        # Once caught up, the pack stays level.
        assert all(s <= 1 for s in spreads[caught_up:])
