"""Thread-safe mid-serve admission: the live frame server's engine API.

``admit``/``retire``/``run_round`` let the frame server add and remove
sessions while a dedicated host thread drives rounds.  Two properties
matter: admissions racing against rounds never corrupt the engine, and
a round-driven drain renders frames bit-identical to the one-shot
``run()`` path (same batching, same caches).
"""

from __future__ import annotations

import threading

import pytest

from repro.engine import MultiSessionEngine
from repro.harness.configs import FAST
from repro.workloads import get_workload, reset_caches


@pytest.fixture(autouse=True)
def _fresh_caches():
    reset_caches()
    yield
    reset_caches()


def _session(name: str, session_id: str, frames: int = 2):
    spec = get_workload(name).with_overrides(frames=frames)
    return spec.build_session(session_id, FAST)


def _drain(engine) -> dict:
    """Round-driven drain; returns {session_id: [records...]}.

    Loops on the sessions' ``done`` flags, not on ``run_round()``'s
    return value: a round that lands on a mid-sequence reference
    refresh completes zero frames while still making progress.
    """
    served: dict = {}
    with engine.serving():
        while any(not s.done for s in engine.sessions):
            for session, records in engine.run_round():
                served.setdefault(session.session_id, []).extend(records)
    return served


class TestAdmission:
    def test_admit_then_drain_serves_all_frames(self):
        engine = MultiSessionEngine([])
        engine.admit(_session("vr-lego", "a", frames=2))
        engine.admit(_session("vr-lego", "b", frames=2))
        served = _drain(engine)
        assert {sid: len(records) for sid, records in served.items()} == \
            {"a": 2, "b": 2}

    def test_duplicate_id_rejected(self):
        engine = MultiSessionEngine([])
        engine.admit(_session("vr-lego", "a"))
        with pytest.raises(ValueError, match="already admitted"):
            engine.admit(_session("vr-lego", "a"))

    def test_retire_unknown_raises(self):
        engine = MultiSessionEngine([])
        with pytest.raises(KeyError):
            engine.retire("ghost")

    def test_retired_session_stops_being_served(self):
        engine = MultiSessionEngine([])
        engine.admit(_session("vr-lego", "a", frames=4))
        engine.admit(_session("vr-lego", "b", frames=4))
        with engine.serving():
            engine.run_round()
            retired = engine.retire("a")
            while any(not s.done for s in engine.sessions):
                engine.run_round()
        assert retired.session_id == "a"
        assert not retired.done  # stopped early, not finished
        assert [s.session_id for s in engine.sessions] == ["b"]
        assert engine.sessions[0].done

    def test_round_results_match_one_shot_run(self, frames_digest):
        one_shot = MultiSessionEngine(
            [_session("vr-lego", "a", 2), _session("dolly-chair", "b", 2)])
        expected = one_shot.run()
        reset_caches()
        engine = MultiSessionEngine([])
        engine.admit(_session("vr-lego", "a", 2))
        engine.admit(_session("dolly-chair", "b", 2))
        served = _drain(engine)
        for session in expected.sessions:
            live = [record.frame for record
                    in served[session.session_id]]
            solo = [record.frame for record in session.result.records]
            assert frames_digest(live) == frames_digest(solo)

    def test_admission_races_against_rounds(self):
        """Admit/retire from another thread while rounds are running."""
        engine = MultiSessionEngine([])
        engine.admit(_session("vr-lego", "keep", frames=6))
        failures = []
        done = threading.Event()

        def churn():
            try:
                for index in range(5):
                    engine.admit(_session("vr-lego", f"s{index}",
                                          frames=2))
                for index in range(5):
                    engine.retire(f"s{index}")
            except Exception as exc:  # pragma: no cover - failure path
                failures.append(exc)
            finally:
                done.set()

        thread = threading.Thread(target=churn)
        with engine.serving():
            thread.start()
            # Drain on done flags: empty rounds also happen when a
            # reference refresh splits a frame across two rounds.
            while not (done.is_set()
                       and all(s.done for s in engine.sessions)):
                engine.run_round()
        thread.join(timeout=30.0)
        assert not failures
        keep = next(s for s in engine.sessions
                    if s.session_id == "keep")
        assert keep.done and keep.frames_completed == 6
