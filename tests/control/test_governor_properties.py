"""Hypothesis invariants of the quality governor and budget splitter.

The three contracts the serving stack leans on:

* the tier floor — no latency history may push a session below its
  workload's ``min_quality_tier``,
* monotone hysteretic recovery — under sustained headroom the level only
  climbs back toward full quality, never oscillates, and
* ray-budget conservation — splitting a round's budget by *any* weight
  assignment hands out exactly the budget, no more, no less.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.control import GovernorPolicy, QualityGovernor, split_budget

TARGET = 1.0  # target latency; latencies are drawn around it

latencies = st.lists(
    st.floats(min_value=0.0, max_value=10.0 * TARGET,
              allow_nan=False, allow_infinity=False),
    min_size=0, max_size=60)


class TestTierFloor:
    @given(seq=latencies, max_level=st.integers(min_value=0, max_value=2))
    @settings(max_examples=200, deadline=None)
    def test_level_never_leaves_bounds(self, seq, max_level):
        governor = QualityGovernor("adaptive")
        governor.register("s", TARGET, max_level)
        for latency in seq:
            governor.observe("s", latency)
            level = governor.level_of("s")
            assert 0 <= level <= max_level

    @given(seq=latencies)
    @settings(max_examples=100, deadline=None)
    def test_min_tier_full_never_degrades(self, seq):
        # max_level 0 == min_quality_tier "full": pinned whatever happens.
        governor = QualityGovernor("adaptive")
        governor.register("s", TARGET, 0)
        for latency in seq:
            assert governor.observe("s", latency) is None
            assert governor.level_of("s") == 0


class TestMonotoneRecovery:
    @given(prefix=latencies,
           max_level=st.integers(min_value=1, max_value=2))
    @settings(max_examples=150, deadline=None)
    def test_sustained_headroom_recovers_monotonically(self, prefix,
                                                       max_level):
        policy = GovernorPolicy()
        governor = QualityGovernor("adaptive", policy)
        governor.register("s", TARGET, max_level)
        for latency in prefix:  # arbitrary history first
            governor.observe("s", latency)
        start = governor.level_of("s")
        headroom = 0.25 * policy.headroom_ratio * TARGET
        levels = []
        # Enough comfortable frames to unwind every rung.
        for _ in range(policy.recover_after * (max_level + 1)):
            governor.observe("s", headroom)
            levels.append(governor.level_of("s"))
        # Never re-degrades under headroom, steps down one rung at a
        # time, and fully recovers to native quality.
        assert all(b <= a for a, b in zip([start] + levels, levels))
        assert all(a - b <= 1 for a, b in zip([start] + levels, levels))
        assert levels[-1] == 0

    @given(max_level=st.integers(min_value=1, max_value=2))
    @settings(max_examples=20, deadline=None)
    def test_recovery_is_hysteretic_not_immediate(self, max_level):
        policy = GovernorPolicy()
        governor = QualityGovernor("adaptive", policy)
        control = governor.register("s", TARGET, max_level)
        control.level = max_level  # start degraded
        for _ in range(policy.recover_after - 1):
            governor.observe("s", 0.0)
        assert governor.level_of("s") == max_level  # not yet
        governor.observe("s", 0.0)
        assert governor.level_of("s") == max_level - 1  # exactly then


class TestBudgetConservation:
    @given(total=st.integers(min_value=0, max_value=1_000_000),
           weights=st.lists(
               st.floats(min_value=0.0, max_value=1e6,
                         allow_nan=False, allow_infinity=False),
               min_size=1, max_size=32))
    @settings(max_examples=300, deadline=None)
    def test_shares_sum_to_total(self, total, weights):
        shares = split_budget(total, weights)
        assert len(shares) == len(weights)
        assert all(s >= 0 for s in shares)
        assert sum(shares) == total

    @given(total=st.integers(min_value=0, max_value=10_000),
           weights=st.lists(st.floats(allow_nan=True), min_size=1,
                            max_size=8))
    @settings(max_examples=200, deadline=None)
    def test_degenerate_weights_still_conserve(self, total, weights):
        # NaN/inf/negative weight assignments fall back to an equal
        # split — the total is conserved no matter what.
        assert sum(split_budget(total, weights)) == total

    def test_proportionality(self):
        assert split_budget(100, [1.0, 1.0, 2.0]) == [25, 25, 50]
        assert split_budget(0, [3.0, 1.0]) == [0, 0]
        assert split_budget(5, []) == []
