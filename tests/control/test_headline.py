"""The PR's headline result, locked as a regression.

On an overloaded seeded cluster mix, the adaptive governor must achieve
*strictly* lower reject rate and *strictly* lower p99 frame latency than
running ungoverned — while every workload's served mean probe PSNR stays
at or above the quality floor implied by its ``min_quality_tier``.  And
``cli frontier`` must emit a strictly valid ``BENCH_frontier.json`` with
at least three load points per governor mode.
"""

import json

import pytest

from repro.cluster import simulate_cluster
from repro.control import quality_floor
from repro.harness.cli import main
from repro.harness.cluster import quality_summary, run_cluster
from repro.harness.configs import FAST
from repro.workloads import apply_slo

# One worker, shallow queue, ~20 arrivals in half a virtual second, with
# an SLO tight enough that full-quality reference frames violate it.
OVERLOAD = dict(arrivals="poisson", rate_hz=40.0, duration_s=0.5,
                workers=1, queue_limit=2, frames=3, seed=2)
MIX = "vr-lego:3,dolly-chair:1"
SLO_FPS = 3000.0


@pytest.fixture(scope="module")
def off_report():
    return simulate_cluster(MIX, FAST, governor="off", **OVERLOAD)


@pytest.fixture(scope="module")
def adaptive_report():
    return simulate_cluster(MIX, FAST, governor="adaptive",
                            slo_fps=SLO_FPS, **OVERLOAD)


class TestHeadline:
    def test_overload_really_overloads(self, off_report):
        assert off_report.rejected > 0
        assert off_report.reject_reasons.get("queue_full", 0) > 0

    def test_adaptive_strictly_lowers_reject_rate(self, off_report,
                                                  adaptive_report):
        assert adaptive_report.reject_rate < off_report.reject_rate
        assert adaptive_report.admitted > off_report.admitted

    def test_adaptive_strictly_lowers_p99_latency(self, off_report,
                                                  adaptive_report):
        assert adaptive_report.p99_latency_s < off_report.p99_latency_s

    def test_adaptive_actually_governed(self, adaptive_report):
        assert adaptive_report.governor == "adaptive"
        assert adaptive_report.tier_transitions > 0
        assert adaptive_report.overflow_admissions > 0
        assert adaptive_report.governor_events

    def test_psnr_stays_above_every_min_tier_floor(self, adaptive_report):
        specs = {spec.name: spec for spec, _ in apply_slo(MIX, SLO_FPS)}
        for name, buckets in adaptive_report.quality_by_level.items():
            spec = specs[name]
            # The governor never rendered below the allowed ladder rung...
            assert all(int(lvl) <= spec.max_quality_level
                       for lvl in buckets)
        # ...so every workload's served mean PSNR clears its floor.
        quality = quality_summary(apply_slo(MIX, SLO_FPS), FAST,
                                  adaptive_report)
        assert quality["quality_floor_ok"]
        for name, psnr in quality["psnr_per_workload"].items():
            assert psnr >= quality_floor(specs[name], FAST) - 1e-9

    def test_run_cluster_surfaces_quality_summary(self):
        _, summary = run_cluster(
            FAST, mix=MIX, governor="adaptive", slo_fps=SLO_FPS,
            **{k: v for k, v in OVERLOAD.items()
               if k not in ("rate_hz", "duration_s")},
            rate_hz=OVERLOAD["rate_hz"], duration_s=OVERLOAD["duration_s"])
        assert summary["governor"] == "adaptive"
        assert summary["quality_floor_ok"]
        assert summary["mean_psnr"] > 0.0
        json.dumps(summary)  # stays artifact-safe


class TestFrontierArtifact:
    def test_cli_frontier_writes_valid_artifact(self, tmp_path):
        rc = main(["frontier", "--fast", "--frames", "2",
                   "--duration", "0.4", "--rates", "10,30,90",
                   "--slo", "3000", "--workers", "1",
                   "--queue-limit", "2",
                   "--json-out", str(tmp_path)])
        assert rc == 0
        path = tmp_path / "BENCH_frontier.json"
        payload = json.loads(
            path.read_text(),
            parse_constant=lambda c: pytest.fail(
                f"non-compliant JSON constant {c!r} in {path}"))
        rows = payload["rows"]
        by_mode = {}
        for row in rows:
            by_mode.setdefault(row["governor"], []).append(row)
        assert set(by_mode) == {"off", "static", "adaptive"}
        for mode, cells in by_mode.items():
            assert len(cells) >= 3, f"{mode} needs >= 3 load points"
        # The frontier's point: adaptive admits at least as much as off
        # at every offered load, without breaking the quality floor.
        for off_row, ad_row in zip(by_mode["off"], by_mode["adaptive"]):
            assert off_row["offered"] == ad_row["offered"]
            assert ad_row["admitted"] >= off_row["admitted"]
            assert ad_row["quality_floor_ok"] is True
