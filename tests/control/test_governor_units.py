"""Unit tests: quality ladder, SLO spec fields, and the governor shims."""

import dataclasses

import pytest

from repro.control import (
    ClusterGovernor,
    GovernorPolicy,
    QualityGovernor,
    ladder_config,
    level_quality,
    quality_floor,
    spec_at_level,
)
from repro.harness.configs import FAST
from repro.workloads import QUALITY_LEVELS, WorkloadSpec, apply_slo, get_workload


class TestSpecSLOFields:
    def test_defaults(self):
        spec = WorkloadSpec.make("w")
        assert spec.effective_slo_fps == spec.fps_target
        assert spec.slo_latency_s == pytest.approx(1.0 / spec.fps_target)
        assert spec.max_quality_level == len(QUALITY_LEVELS) - 1

    def test_explicit_slo_decouples_from_fps(self):
        spec = WorkloadSpec.make("w", fps_target=30.0, slo_fps=24.0)
        assert spec.effective_slo_fps == 24.0

    def test_min_tier_validated(self):
        with pytest.raises(ValueError, match="min_quality_tier"):
            WorkloadSpec.make("w", min_quality_tier="potato")
        assert WorkloadSpec.make(
            "w", min_quality_tier="full").max_quality_level == 0

    def test_slo_validated(self):
        with pytest.raises(ValueError, match="slo_fps"):
            WorkloadSpec.make("w", slo_fps=0.0)

    def test_apply_slo_overrides_whole_mix(self):
        mix = apply_slo("vr-lego:2,dolly-chair", 12.0)
        assert all(spec.slo_fps == 12.0 for spec, _ in mix)
        assert [count for _, count in mix] == [2, 1]

    def test_apply_slo_none_keeps_spec_slo(self):
        mix = apply_slo("dolly-chair", None)
        assert mix[0][0].slo_fps == 24.0  # the registry's own value


class TestQualityLadder:
    def test_strictly_ordered_at_fast_scale(self):
        spec = get_workload("vr-lego")
        configs = [ladder_config(spec, FAST, level) for level in range(3)]
        sizes = [c.image_size for c in configs]
        depths = [c.samples_per_ray for c in configs]
        assert sizes == sorted(sizes, reverse=True) and len(set(sizes)) == 3
        assert depths == sorted(depths, reverse=True)

    def test_level_zero_is_native(self):
        spec = get_workload("vr-lego")
        assert ladder_config(spec, FAST, 0) == spec.resolve_config(FAST)

    def test_field_params_untouched(self):
        # The ladder only touches imaging parameters, which is what makes
        # tier switches re-resolve against the same baked field.
        spec = get_workload("vr-lego")
        base, degraded = (ladder_config(spec, FAST, lvl) for lvl in (0, 2))
        assert degraded.grid_resolution == base.grid_resolution
        assert degraded.feature_dim == base.feature_dim

    def test_out_of_range_level(self):
        with pytest.raises(ValueError, match="quality level"):
            ladder_config(get_workload("vr-lego"), FAST, 3)

    def test_levels_get_distinct_cache_keys(self):
        spec = get_workload("vr-lego")
        keys = {spec_at_level(spec, FAST, lvl)[0].cache_key(
            spec_at_level(spec, FAST, lvl)[1]) for lvl in range(3)}
        assert len(keys) == 3

    def test_tier_switch_shares_baked_field(self):
        spec = get_workload("vr-lego")
        r0 = spec_at_level(spec, FAST, 0)[0].build_renderer(
            spec_at_level(spec, FAST, 0)[1])
        r2 = spec_at_level(spec, FAST, 2)[0].build_renderer(
            spec_at_level(spec, FAST, 2)[1])
        assert r0 is not r2  # different sampler depth...
        assert r0.field is r2.field  # ...same baked field: no re-bake

    def test_probe_psnr_floor(self):
        spec = get_workload("vr-lego")
        floor = quality_floor(spec, FAST)
        assert 0.0 < floor <= level_quality(spec, FAST, 0)


class TestGovernorModes:
    def test_static_pins_deepest_rung(self):
        governor = QualityGovernor("static")
        control = governor.register("s", 0.01, 2)
        assert control.level == 2
        assert governor.observe("s", 5.0) is None  # no feedback

    def test_off_mode_never_moves(self):
        governor = QualityGovernor("off")
        governor.register("s", 0.01, 2)
        for _ in range(10):
            assert governor.observe("s", 99.0) is None
        assert governor.level_of("s") == 0

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="governor mode"):
            QualityGovernor("turbo")

    def test_degrade_needs_consecutive_violations(self):
        policy = GovernorPolicy(degrade_after=3)
        governor = QualityGovernor("adaptive", policy)
        governor.register("s", 1.0, 2)
        governor.observe("s", 2.0)
        governor.observe("s", 2.0)
        governor.observe("s", 0.8)  # dead band resets the streak
        governor.observe("s", 2.0)
        governor.observe("s", 2.0)
        assert governor.level_of("s") == 0
        assert governor.observe("s", 2.0) == 1

    def test_weight_tracks_slo_pressure(self):
        governor = QualityGovernor("adaptive")
        governor.register("a", 1.0, 2)
        governor.register("b", 1.0, 2)
        for _ in range(4):
            governor.observe("a", 3.0)  # far behind
            governor.observe("b", 0.1)  # comfortable
        assert governor.weight("a") > 1.0 > governor.weight("b")
        assert governor.weight("b") >= governor.policy.min_weight
        assert governor.weight("missing") == 1.0


class TestClusterGovernorPolicy:
    class Stub:
        def __init__(self, worker_id, load):
            self.worker_id, self.load = worker_id, load

    def test_admission_level_scales_with_pressure(self):
        governor = ClusterGovernor(FAST, "adaptive", queue_limit=4)
        spec = get_workload("vr-lego")  # max level 2
        levels = [governor.admission_level(spec, self.Stub("w", load))
                  for load in range(5)]
        assert levels[0] == 0
        assert levels == sorted(levels)
        assert levels[-1] == spec.max_quality_level

    def test_admission_respects_min_tier(self):
        governor = ClusterGovernor(FAST, "adaptive", queue_limit=2)
        pinned = dataclasses.replace(get_workload("vr-lego"),
                                     min_quality_tier="full")
        assert governor.admission_level(pinned, self.Stub("w", 2)) == 0

    def test_static_pins_admission(self):
        governor = ClusterGovernor(FAST, "static", queue_limit=4)
        spec = get_workload("vr-lego")
        assert governor.admission_level(spec, self.Stub("w", 0)) \
            == spec.max_quality_level

    def test_overflow_target_bounded(self):
        governor = ClusterGovernor(FAST, "adaptive", queue_limit=2,
                                   overflow_slots=1)
        full = [self.Stub("w00", 2), self.Stub("w01", 2)]
        target = governor.overflow_target(full)
        assert target.worker_id == "w00"  # least-loaded tie by id
        saturated = [self.Stub("w00", 3), self.Stub("w01", 3)]
        assert governor.overflow_target(saturated) is None
        assert governor.overflow_admissions == 1  # only the granted one
