"""Engine-layer governor integration: mid-stream tier switches that work.

Runs the real batched engine with the governor attached and checks the
closed loop end to end: overload degrades sessions mid-stream (and the
degraded frames really are smaller), the tier floor holds, static mode
pins, and an ungoverned engine is untouched.
"""

import dataclasses

import pytest

from repro.control import EngineGovernor
from repro.engine import MultiSessionEngine
from repro.harness.configs import FAST
from repro.workloads import build_mixed_sessions, get_workload

FRAMES = 8


def overloaded_mix(count=3, **spec_changes):
    """Sessions whose open-loop request rate no SoC can keep up with."""
    spec = dataclasses.replace(get_workload("vr-lego"),
                               fps_target=100000.0, **spec_changes)
    return [(spec, count)]


def run_governed(mix, mode="adaptive", **governor_kwargs):
    sessions = build_mixed_sessions(mix, FAST, frames=FRAMES)
    governor = EngineGovernor(FAST, mode=mode, **governor_kwargs)
    result = MultiSessionEngine(sessions, ray_budget=4096,
                                governor=governor).run()
    return sessions, governor, result


class TestAdaptiveEngine:
    def test_overload_degrades_mid_stream(self):
        sessions, governor, result = run_governed(
            overloaded_mix())
        assert governor.events  # tier transitions happened
        assert all(s.done and s.frames_completed == FRAMES
                   for s in sessions)
        assert any(s.quality_level > 0 for s in sessions)

    def test_degraded_frames_shrink(self):
        sessions, _, _ = run_governed(overloaded_mix(count=2))
        frames = sessions[0].result.frames
        first, last = frames[0].image.shape[0], frames[-1].image.shape[0]
        assert first == FAST.image_size  # starts native
        assert last < first              # ends degraded

    def test_floor_respected_under_overload(self):
        sessions, governor, _ = run_governed(
            overloaded_mix(min_quality_tier="reduced"))
        assert all(s.quality_level <= 1 for s in sessions)
        assert all(c.level <= c.max_level
                   for c in governor.governor.sessions.values())

    def test_light_load_never_degrades(self):
        # Native 30 fps pacing leaves plenty of headroom at FAST scale.
        sessions, governor, _ = run_governed([(get_workload("vr-lego"), 2)])
        assert not governor.events
        assert all(s.quality_level == 0 for s in sessions)

    def test_deterministic(self):
        def digest():
            sessions, governor, result = run_governed(
                overloaded_mix())
            return ([s.quality_level for s in sessions],
                    governor.events, result.batch.total_rays)
        assert digest() == digest()


class TestStaticEngine:
    def test_serve_static_degrades_from_frame_zero(self):
        # The harness builds static sessions already pinned, so even the
        # first frame renders at the min_quality_tier rung (an attach-time
        # retune could only land from frame one onward).
        from repro.harness.serve import run_serve
        rows, summary = run_serve(FAST, workloads="vr-lego:1", frames=2,
                                  governor="static")
        assert rows[0]["quality_level"] == 2
        assert summary["tier_transitions"] == 0  # born pinned, no retunes

    def test_static_pins_min_tier(self):
        sessions, governor, _ = run_governed([(get_workload("vr-lego"), 2)],
                                             mode="static")
        assert all(s.quality_level == s.workload.max_quality_level
                   for s in sessions)
        assert governor.summary()["governor"] == "static"

    def test_static_respects_full_pin(self):
        pinned = dataclasses.replace(get_workload("vr-lego"),
                                     min_quality_tier="full")
        sessions, _, _ = run_governed([(pinned, 2)], mode="static")
        assert all(s.quality_level == 0 for s in sessions)


class TestUngovernedUnchanged:
    def test_plain_engine_has_no_governor_surface(self):
        sessions = build_mixed_sessions("vr-lego:2", FAST, frames=3)
        result = MultiSessionEngine(sessions).run()
        assert all(s.quality_level == 0 for s in sessions)
        assert result.total_frames == 6

    def test_weighted_budget_requires_governor(self):
        # Without a governor the budget path is the historical prefix
        # selection; summing a weighted split there would be a bug.
        sessions = build_mixed_sessions("vr-lego:2", FAST, frames=3)
        engine = MultiSessionEngine(sessions, ray_budget=1)
        result = engine.run()  # undersized budget still completes
        assert result.total_frames == 6

    def test_governed_run_completes_under_tiny_budget(self):
        sessions, _, result = run_governed(overloaded_mix(count=2))
        assert result.total_frames == 2 * FRAMES

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="governor mode"):
            EngineGovernor(FAST, mode="banana")
