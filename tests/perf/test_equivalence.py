"""Vectorized hot-path kernels are bit-identical to their predecessors.

Every optimization in this PR moved its previous implementation into
:mod:`repro.perf.reference`; these tests pin the optimized kernels to
those predecessors with exact (``array_equal``) comparisons on inputs
that include the awkward cases — coordinates exactly on cell boundaries,
out-of-bounds points, rays that miss the AABB, jittered samplers.
"""

import numpy as np
import pytest

from repro.geometry.camera import Intrinsics, PinholeCamera
from repro.geometry.pointcloud import depth_to_points
from repro.harness.configs import FAST, build_renderer, make_camera
from repro.nerf.fields.interp import (accumulate_gather, bilinear_setup,
                                      trilinear_gather, trilinear_setup)
from repro.nerf.sampling import OccupancyGrid, UniformSampler
from repro.perf.reference import (bilinear_setup_reference,
                                  decode_reference,
                                  depth_to_points_reference,
                                  generate_rays_reference,
                                  interpolate_hash_reference,
                                  interpolate_voxel_reference,
                                  occupied_reference,
                                  rays_for_pixels_reference,
                                  reference_renderer, sample_reference,
                                  trilinear_setup_reference)

RNG = np.random.default_rng(20240730)


def _coords(n=4096):
    """[0, 1] coords peppered with exact boundary and on-lattice values."""
    coords = RNG.uniform(size=(n, 3))
    coords[:64] = RNG.integers(0, 2, size=(64, 3)).astype(float)  # corners
    coords[64:128] = RNG.integers(0, 17, size=(64, 3)) / 16.0  # lattice
    return coords


@pytest.mark.parametrize("resolution", [1, 7, 32])
def test_trilinear_setup_bit_identical(resolution):
    coords = _coords()
    got = trilinear_setup(coords, resolution)
    want = trilinear_setup_reference(coords, resolution)
    for g, w in zip(got, want):
        assert np.array_equal(g, w)


@pytest.mark.parametrize("resolution", [1, 9, 24])
def test_bilinear_setup_bit_identical(resolution):
    coords = _coords()[:, :2]
    got = bilinear_setup(coords, resolution)
    want = bilinear_setup_reference(coords, resolution)
    for g, w in zip(got, want):
        assert np.array_equal(g, w)


def test_trilinear_gather_matches_setup_weights():
    coords = _coords()
    resolution = 16
    _, vertex_ids, weights = trilinear_setup_reference(coords, resolution)
    base, offsets, factors = trilinear_gather(coords, resolution)
    assert np.array_equal(base[:, None] + offsets[None, :], vertex_ids)
    table = RNG.normal(size=((resolution + 1) ** 3, 5))
    got = accumulate_gather(table, base, offsets, factors)
    want = np.einsum("nvf,nv->nf", table[vertex_ids], weights)
    assert np.array_equal(got, want)


def test_occupancy_lookup_bit_identical():
    grid = OccupancyGrid(RNG.random((32, 32, 32)) > 0.5,
                         (np.array([-1.0, -1.0, -1.0]),
                          np.array([1.0, 1.0, 1.0])))
    points = RNG.uniform(-1.5, 1.5, size=(20000, 3))  # includes out-of-bounds
    points[:32] = np.array([[-1.0, 0.0, 1.0]])  # exact bound hits
    assert np.array_equal(grid.occupied(points),
                          occupied_reference(grid, points))


@pytest.mark.parametrize("jitter", [False, True])
@pytest.mark.parametrize("with_occupancy", [False, True])
def test_sampler_bit_identical(jitter, with_occupancy):
    renderer = build_renderer("directvoxgo", "lego", FAST)
    occupancy = renderer.sampler.occupancy if with_occupancy else None
    camera = make_camera(FAST)
    origins, directions = camera.generate_rays()
    # Mix in rays guaranteed to miss the AABB.
    origins = origins.reshape(-1, 3)
    directions = directions.reshape(-1, 3).copy()
    directions[:40] = np.array([0.0, 0.0, -1.0])  # fire backwards

    fast = UniformSampler(24, occupancy=occupancy, jitter=jitter, seed=3)
    slow = UniformSampler(24, occupancy=occupancy, jitter=jitter, seed=3)
    got = fast.sample(origins, directions, renderer.field.bounds)
    want = sample_reference(slow, origins, directions,
                            renderer.field.bounds)
    assert got.num_rays == want.num_rays
    for name in ("positions", "directions", "t_values", "deltas",
                 "ray_index"):
        assert np.array_equal(getattr(got, name), getattr(want, name)), name


@pytest.mark.parametrize("algorithm", ["directvoxgo", "instant_ngp"])
def test_field_interpolate_bit_identical(algorithm):
    field = build_renderer(algorithm, "lego", FAST).field
    lo, hi = field.bounds
    points = RNG.uniform(size=(5000, 3)) * (hi - lo) + lo
    points[:16] = lo  # exact corner
    points[16:32] = hi
    reference = (interpolate_voxel_reference if algorithm == "directvoxgo"
                 else interpolate_hash_reference)
    assert np.array_equal(field.interpolate(points),
                          reference(field, points))


def test_decode_passthrough_bit_identical_to_mlp():
    decoder = build_renderer("directvoxgo", "lego", FAST).field.decoder
    features = RNG.normal(size=(20000, decoder.feature_dim)) * 30.0
    dirs = RNG.normal(size=(20000, 3))
    sigma, rgb = decoder.decode(features, dirs)
    sigma_ref, rgb_ref = decode_reference(decoder, features, dirs)
    assert np.array_equal(sigma, sigma_ref)
    assert np.array_equal(rgb, rgb_ref)


def test_depth_to_points_bit_identical():
    intr = Intrinsics.from_fov(33, 21, 50.0)
    depth = RNG.uniform(0.5, 5.0, size=(21, 33))
    depth[0, :5] = np.inf
    assert np.array_equal(depth_to_points(depth, intr),
                          depth_to_points_reference(depth, intr))


def test_camera_rays_bit_identical():
    intr = Intrinsics.from_fov(48, 48, 45.0)
    pose = np.eye(4)
    pose[:3, 3] = [0.3, -0.2, 2.5]
    camera = PinholeCamera(intr, pose)
    got_o, got_d = camera.generate_rays()
    want_o, want_d = generate_rays_reference(camera)
    assert np.array_equal(got_o, want_o)
    assert np.array_equal(got_d, want_d)
    u = RNG.uniform(0, 48, size=77)
    v = RNG.uniform(0, 48, size=77)
    got = camera.rays_for_pixels(u, v)
    want = rays_for_pixels_reference(camera, u, v)
    assert np.array_equal(got[0], want[0])
    assert np.array_equal(got[1], want[1])


def test_full_frame_render_bit_identical_to_reference_renderer():
    """End to end: the whole optimized renderer equals the reference one."""
    renderer = build_renderer("directvoxgo", "lego", FAST)
    baseline = reference_renderer(renderer)
    camera = make_camera(FAST)
    pose = np.eye(4)
    pose[:3, 3] = [0.0, 0.0, 3.2]
    cam = camera.with_pose(pose)
    origins, directions = cam.generate_rays()
    got = renderer.render_rays(origins.reshape(-1, 3),
                               directions.reshape(-1, 3))
    want = baseline.render_rays(origins.reshape(-1, 3),
                                directions.reshape(-1, 3))
    assert np.array_equal(got.rgb, want.rgb)
    assert np.array_equal(got.depth_t, want.depth_t)
    assert np.array_equal(got.opacity, want.opacity)
    assert got.stats == want.stats
