"""Timer/Section instrumentation: accounting and the no-op overhead bound."""

import time

from repro.perf.timer import NULL_TIMER, Timer, activate, section


def test_timer_accumulates_sections():
    timer = Timer()
    for _ in range(3):
        with timer.section("work"):
            pass
    stats = timer.stats()["work"]
    assert stats.calls == 3
    assert stats.total_ns >= 0
    assert stats.min_ns <= stats.max_ns
    assert stats.mean_ns == stats.total_ns / 3


def test_timer_report_sorted_by_total():
    timer = Timer()
    timer.record("slow", 5_000_000)
    timer.record("fast", 1_000)
    rows = timer.report()
    assert [row["section"] for row in rows] == ["slow", "fast"]
    assert rows[0]["total_ms"] == 5.0


def test_timer_reset():
    timer = Timer()
    timer.record("x", 10)
    timer.reset()
    assert timer.stats() == {}
    assert timer.total_ns("x") == 0


def test_reentrant_same_name_section_counts_once():
    """A recursive/nested section must not double-count its wall time.

    Only the outermost exit of a same-named nesting accumulates; inner
    entries ride along.  (A naive per-exit accumulation would bill the
    inner interval twice and report calls == 2.)
    """
    timer = Timer()
    with timer.section("work"):
        with timer.section("work"):
            time.sleep(0.002)
    stats = timer.stats()["work"]
    assert stats.calls == 1
    # Total is the single outermost interval, not ~2x the sleep.
    assert stats.total_ns == stats.max_ns


def test_reentrant_section_depth_resets_between_uses():
    timer = Timer()
    for _ in range(2):
        with timer.section("work"):
            with timer.section("work"):
                pass
    assert timer.stats()["work"].calls == 2
    # Distinct names still account independently when interleaved.
    with timer.section("outer"):
        with timer.section("inner"):
            pass
    assert timer.stats()["outer"].calls == 1
    assert timer.stats()["inner"].calls == 1


def test_disabled_timer_records_nothing():
    timer = Timer(enabled=False)
    with timer.section("ignored"):
        pass
    assert timer.stats() == {}
    with NULL_TIMER.section("ignored"):
        pass
    assert NULL_TIMER.stats() == {}


def test_module_section_routes_to_active_timer():
    timer = Timer()
    with section("outside-noop"):
        pass
    with activate(timer):
        with section("inside"):
            pass
    assert "inside" in timer.stats()
    assert "outside-noop" not in timer.stats()


def test_activation_nests_and_restores():
    outer, inner = Timer(), Timer()
    with activate(outer):
        with section("a"):
            pass
        with activate(inner):
            with section("b"):
                pass
        with section("c"):
            pass
    assert set(outer.stats()) == {"a", "c"}
    assert set(inner.stats()) == {"b"}


def test_noop_overhead_bound():
    """The inactive instrumentation path must stay effectively free.

    Product hot paths call ``section()`` unconditionally, so its
    no-timer cost gates how liberally the codebase can be annotated.
    The bound is generous (2 microseconds mean per call, ~20x the
    typical cost) so a loaded CI machine cannot flake it, while still
    catching an accidental always-on slow path.
    """
    iterations = 50_000
    start = time.perf_counter_ns()
    for _ in range(iterations):
        with section("noop"):
            pass
    per_call_ns = (time.perf_counter_ns() - start) / iterations
    assert per_call_ns < 2_000, f"no-op section cost {per_call_ns:.0f} ns"
