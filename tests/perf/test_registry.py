"""Microbenchmark registry: completeness and sane per-kernel results."""

import math

import pytest

from repro.harness.configs import FAST
from repro.perf import bench

# The kernels the ISSUE-5 tentpole requires the registry to cover.
REQUIRED_KERNELS = (
    "field_query.directvoxgo",
    "field_query.instant_ngp",
    "field_query.tensorf",
    "warp.gather",
    "warp.scatter",
    "disocclusion.classify",
    "volume.composite",
    "engine.round",
    "cluster.tick",
    "single_session.sparw",
)


def test_registry_covers_required_kernels():
    registered = bench.registered_kernels()
    missing = [k for k in REQUIRED_KERNELS if k not in registered]
    assert not missing, f"registry lost required kernels: {missing}"


@pytest.fixture(scope="module")
def quick_run():
    """One shared quick run of the full registry (it is the slow part)."""
    return bench.run_benchmarks(config=FAST, quick=True)


def test_every_registered_kernel_runs_and_reports(quick_run):
    rows, extra = quick_run
    # List-returning benchmarks (engine.round.scaling) expand one registry
    # id into several rows named "<id-prefix>.workersN"; every emitted row
    # must trace back to exactly one registered id, in registry order.
    emitted = [row["kernel"] for row in rows]
    expected = []
    for name in bench.registered_kernels():
        if name == "engine.round.scaling":
            expected.extend(k for k in emitted
                            if k.startswith("engine.round.workers"))
        else:
            expected.append(name)
    assert emitted == expected
    assert any(k.startswith("engine.round.workers") for k in emitted)
    for row in rows:
        ns = row["ns_per_op"]
        assert isinstance(ns, float) and math.isfinite(ns) and ns > 0, row
        assert row["items"] > 0 and row["reps"] > 0, row
        assert math.isfinite(row["wall_s"]) and row["wall_s"] > 0, row
    assert extra["mode"] == "quick"


def test_speedup_kernels_report_reference_numbers(quick_run):
    rows, _ = quick_run
    by_kernel = {row["kernel"]: row for row in rows}
    for kernel in ("single_session.sparw", "render_rays.full_frame",
                   "field_query.directvoxgo"):
        row = by_kernel[kernel]
        assert math.isfinite(row["ns_per_op_reference"])
        assert row["speedup_x"] > 0
    headline = by_kernel["single_session.sparw"]
    assert headline["frames_per_s"] > 0
    assert headline["frames_per_s_reference"] > 0


def test_environment_fingerprint_present(quick_run):
    _, extra = quick_run
    env = extra["environment"]
    for key in ("python", "numpy", "platform", "machine", "cpu_count"):
        assert key in env, f"fingerprint missing {key}"


def test_kernel_subset_and_unknown_kernel():
    rows, extra = bench.run_benchmarks(config=FAST, quick=True,
                                       kernels=["disocclusion.classify"])
    assert [row["kernel"] for row in rows] == ["disocclusion.classify"]
    assert extra["kernels"] == ["disocclusion.classify"]
    with pytest.raises(KeyError):
        bench.run_benchmarks(config=FAST, quick=True, kernels=["nope"])


def test_duplicate_registration_rejected():
    with pytest.raises(ValueError):
        bench.register("disocclusion.classify")(lambda ctx: {})
