"""BENCH_perf.json: strict-JSON round-trip and compare-tool behaviour."""

import json

import pytest

from repro.harness.configs import FAST
from repro.harness.reporting import bench_payload, safe_json_dumps
from repro.perf import bench
from repro.perf.compare import compare_payloads, load_artifact


@pytest.fixture(scope="module")
def payload():
    rows, extra = bench.run_benchmarks(
        config=FAST, quick=True,
        kernels=["disocclusion.classify", "volume.composite"])
    return bench_payload("perf", rows, 0.5, config=FAST, extra=extra)


def _strict_loads(text):
    """json.loads that rejects any non-compliant Infinity/NaN literal."""
    def reject(token):
        raise ValueError(f"non-strict JSON constant {token!r}")
    return json.loads(text, parse_constant=reject)


def test_payload_round_trips_through_safe_json_dumps(payload):
    text = safe_json_dumps(payload, indent=2, sort_keys=True)
    back = _strict_loads(text)
    assert back["schema_version"] == 2
    assert back["kind"] == "figure"
    assert back["figure"] == "perf"
    kernels = [row["kernel"] for row in back["rows"]]
    assert kernels == ["disocclusion.classify", "volume.composite"]
    for row in back["rows"]:
        assert isinstance(row["ns_per_op"], float)
    env = back["extra"]["environment"]
    assert env["numpy"] and env["python"]
    # A second dump of the parsed payload is stable (no lossy coercions).
    assert safe_json_dumps(back) == safe_json_dumps(_strict_loads(text))


def test_cli_bench_writes_loadable_artifact(tmp_path):
    from repro.harness.cli import main
    rc = main(["bench", "--quick", "--kernels", "disocclusion.classify",
               "--json-out", str(tmp_path)])
    assert rc == 0
    artifact = load_artifact(tmp_path / "BENCH_perf.json")
    assert artifact["figure"] == "perf"
    assert artifact["rows"][0]["kernel"] == "disocclusion.classify"
    assert artifact["extra"]["mode"] == "quick"


def test_cli_bench_rejects_unknown_kernel(tmp_path, capsys):
    from repro.harness.cli import main
    rc = main(["bench", "--quick", "--kernels", "not-a-kernel",
               "--json-out", str(tmp_path)])
    assert rc == 2
    assert "unknown benchmark kernels" in capsys.readouterr().err


def test_session_kernels_carry_section_breakdown():
    """The macro kernels time their internals through the shared obs
    backbone and publish the per-section breakdown on their row."""
    rows, _ = bench.run_benchmarks(config=FAST, quick=True,
                                   kernels=["engine.round"])
    (row,) = rows
    sections = row["sections"]
    assert isinstance(sections, dict) and sections
    assert all(isinstance(v, float) and v >= 0
               for v in sections.values())


def _artifact(kernel_ns):
    return {"schema_version": 2, "kind": "perf",
            "rows": [{"kernel": k, "ns_per_op": ns}
                     for k, ns in kernel_ns.items()]}


def test_compare_flags_regressions_only_beyond_threshold():
    baseline = _artifact({"a": 100.0, "b": 100.0, "gone": 5.0})
    candidate = _artifact({"a": 110.0, "b": 200.0, "new": 5.0})
    result = compare_payloads(baseline, candidate, threshold=1.25)
    verdicts = {row["kernel"]: row["verdict"] for row in result["rows"]}
    assert verdicts == {"a": "ok", "b": "REGRESSED"}
    assert result["regressions"] == ["b"]
    assert result["only_baseline"] == ["gone"]
    assert result["only_candidate"] == ["new"]


def test_compare_ignores_sections_and_metrics():
    """compare_bench diffs ns_per_op only; the observability extras a
    newer artifact carries (row sections, payload metrics) must not
    perturb the verdicts or crash on older baselines lacking them."""
    baseline = _artifact({"a": 100.0})
    candidate = _artifact({"a": 101.0})
    candidate["metrics"] = {"counters": {"engine.rounds": 3}}
    for row in candidate["rows"]:
        row["sections"] = {"render": 1.25, "deliver": 0.5}
    result = compare_payloads(baseline, candidate, threshold=1.25)
    assert result["regressions"] == []
    assert {row["kernel"]: row["verdict"]
            for row in result["rows"]} == {"a": "ok"}


def test_compare_cli_exit_codes(tmp_path):
    from repro.perf.compare import main
    old = tmp_path / "old.json"
    new = tmp_path / "new.json"
    old.write_text(json.dumps(_artifact({"a": 100.0})))
    new.write_text(json.dumps(_artifact({"a": 99.0})))
    assert main([str(old), str(new)]) == 0
    new.write_text(json.dumps(_artifact({"a": 500.0})))
    assert main([str(old), str(new)]) == 1
    assert main(["--threshold", "10.0", str(old), str(new)]) == 0
    assert main([str(old), str(tmp_path / "missing.json")]) == 2


def test_compare_cli_refuses_schema_mismatch(tmp_path, capsys):
    # A pre-versioned (v1) artifact must be refused with a clear
    # regenerate-me message, not a KeyError mid-diff.
    from repro.perf.compare import main
    old = tmp_path / "old.json"
    new = tmp_path / "new.json"
    v1 = _artifact({"a": 100.0})
    del v1["schema_version"]
    v1["schema"] = 1
    old.write_text(json.dumps(v1))
    new.write_text(json.dumps(_artifact({"a": 99.0})))
    assert main([str(old), str(new)]) == 2
    err = capsys.readouterr().err
    assert "schema_version" in err and "regenerate" in err
