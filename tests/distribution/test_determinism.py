"""Determinism lock for the zipfian catalog mix.

Same seed ⇒ identical arrival→spec assignment and identical
``ClusterReport``; different seeds ⇒ different assignment.  Both runs
happen under deliberately perturbed *global* RNG state, so any
accidental ``np.random.*``/``random.*`` use inside the distribution
tier breaks these tests immediately.
"""

import dataclasses
import random

import numpy as np

from repro.cluster import make_arrivals, simulate_cluster
from repro.distribution import expand_field_serving
from repro.harness.configs import FAST

MIX = "vr-lego:2,dolly-chair"


def scramble_global_rng(nonce: int) -> None:
    """Leave the global RNGs in a nonce-dependent state."""
    random.seed(nonce)
    np.random.seed(nonce % (2**31))
    random.random()
    np.random.random()


def assignment(seed: int):
    """The arrival→variant assignment a sharded run would serve."""
    mix, _ = expand_field_serving(MIX, FAST, catalog=24, zipf=1.3,
                                  replication=2, seed=seed)
    schedule = make_arrivals("poisson", mix, rate_hz=6.0, duration_s=6.0,
                             seed=seed)
    return [(round(a.time_s, 9), a.spec.name) for a in schedule]


def run(seed: int):
    return simulate_cluster(MIX, FAST, arrivals="poisson", rate_hz=5.0,
                            duration_s=5.0, workers=2, queue_limit=6,
                            frames=2, seed=seed, catalog=16, zipf=1.2,
                            placement="shard_affinity", replication=2)


class TestSameSeed:
    def test_identical_assignment_despite_global_rng_noise(self):
        scramble_global_rng(101)
        first = assignment(seed=7)
        scramble_global_rng(202)
        assert assignment(seed=7) == first
        assert len(first) > 10  # the lock actually observed arrivals

    def test_identical_cluster_report(self):
        scramble_global_rng(303)
        first = run(seed=7)
        scramble_global_rng(404)
        second = run(seed=7)
        assert dataclasses.asdict(first) == dataclasses.asdict(second)
        assert first.distribution  # the sharded tier was actually on


class TestDifferentSeed:
    def test_different_assignment(self):
        a = assignment(seed=7)
        b = assignment(seed=8)
        # Different catalog seeds rename and re-time everything; the
        # sequences must not coincide.
        assert a != b
        assert [name for _, name in a] != [name for _, name in b]

    def test_different_report(self):
        assert dataclasses.asdict(run(seed=7)) != dataclasses.asdict(
            run(seed=8))
