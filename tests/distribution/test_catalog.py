"""Seeded scene catalog: variant identity, popularity law, determinism."""

import pytest

from repro.distribution import SceneCatalog
from repro.harness.configs import FAST
from repro.workloads import WORKLOADS, parse_mix

FULL_MIX = ",".join(sorted(WORKLOADS))


class TestVariantIdentity:
    def test_expands_to_size_with_distinct_cache_keys(self):
        catalog = SceneCatalog(FULL_MIX, 80, seed=7)
        assert len(catalog) == 80
        keys = {spec.cache_key(FAST) for spec in catalog.specs}
        assert len(keys) == 80  # every variant is a distinct baked field

    def test_variants_reuse_curated_scenes_only(self):
        catalog = SceneCatalog(FULL_MIX, 50, seed=1)
        base_scenes = {spec.scene for spec, _ in parse_mix(FULL_MIX)}
        assert {spec.scene for spec in catalog.specs} <= base_scenes

    def test_variant_names_trace_their_base(self):
        catalog = SceneCatalog("vr-lego:2,dolly-chair", 6, seed=0)
        assert [spec.name for spec in catalog.specs] == [
            "vr-lego@0000", "dolly-chair@0001", "vr-lego@0002",
            "dolly-chair@0003", "vr-lego@0004", "dolly-chair@0005"]

    def test_variants_distinct_from_curated_specs(self):
        catalog = SceneCatalog(FULL_MIX, 16, seed=0)
        base_keys = {spec.cache_key(FAST)
                     for spec, _ in parse_mix(FULL_MIX)}
        variant_keys = {spec.cache_key(FAST) for spec in catalog.specs}
        assert not base_keys & variant_keys

    def test_rejects_empty_catalog(self):
        with pytest.raises(ValueError):
            SceneCatalog(FULL_MIX, 0)


class TestDeterminism:
    def test_same_seed_same_catalog(self):
        a = SceneCatalog(FULL_MIX, 40, seed=9)
        b = SceneCatalog(FULL_MIX, 40, seed=9)
        assert a.specs == b.specs
        assert a.ranks == b.ranks
        assert a.zipf_mix(1.3) == b.zipf_mix(1.3)

    def test_different_seed_different_content(self):
        a = SceneCatalog(FULL_MIX, 40, seed=9)
        b = SceneCatalog(FULL_MIX, 40, seed=10)
        assert {s.cache_key(FAST) for s in a.specs}.isdisjoint(
            {s.cache_key(FAST) for s in b.specs})
        assert a.ranks != b.ranks  # popularity permutation reseeds too


class TestZipfMix:
    def test_counts_cover_total_with_floor_one(self):
        catalog = SceneCatalog(FULL_MIX, 64, seed=3)
        mix = catalog.zipf_mix(1.3)
        counts = [count for _, count in mix]
        assert len(mix) == 64
        assert sum(counts) == 8 * 64  # default weight budget
        assert min(counts) >= 1  # whole catalog stays samplable

    def test_skew_follows_popularity_rank(self):
        catalog = SceneCatalog(FULL_MIX, 32, seed=5)
        mix = catalog.zipf_mix(1.5)
        by_rank = sorted(zip(catalog.ranks, (c for _, c in mix)))
        counts_in_rank_order = [count for _, count in by_rank]
        assert counts_in_rank_order == sorted(counts_in_rank_order,
                                              reverse=True)
        assert counts_in_rank_order[0] > counts_in_rank_order[-1]

    def test_zero_skew_is_uniform(self):
        catalog = SceneCatalog(FULL_MIX, 16, seed=2)
        counts = {count for _, count in catalog.zipf_mix(0.0)}
        assert counts == {8}

    def test_rejects_bad_parameters(self):
        catalog = SceneCatalog(FULL_MIX, 16, seed=2)
        with pytest.raises(ValueError):
            catalog.zipf_mix(-0.1)
        with pytest.raises(ValueError):
            catalog.zipf_mix(1.0, total=8)  # cannot cover 16 variants
