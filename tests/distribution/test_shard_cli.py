"""Harness surface of the sharded field tier.

``--catalog/--zipf/--replication`` flow from the CLI through
``RunConfig`` validation into ``run_cluster``/``BENCH_cluster.json``,
with the same cross-command rejection discipline as every other
cluster-only knob — and un-sharded runs keep their exact report shape.
"""

import json

import pytest

from repro.harness.cli import main
from repro.harness.cluster import run_cluster
from repro.harness.configs import FAST
from repro.harness.runconfig import RunConfig, RunConfigError


class TestRunConfigValidation:
    def test_catalog_knobs_accepted_for_cluster(self):
        RunConfig(mode="cluster", catalog=80, zipf=1.3,
                  replication=2).validate()

    def test_zipf_and_replication_require_catalog(self):
        with pytest.raises(RunConfigError, match="--catalog"):
            RunConfig(mode="cluster", zipf=1.3).validate()
        with pytest.raises(RunConfigError, match="--catalog"):
            RunConfig(mode="cluster", replication=2).validate()

    def test_bounds(self):
        with pytest.raises(RunConfigError, match="--catalog"):
            RunConfig(mode="cluster", catalog=0).validate()
        with pytest.raises(RunConfigError, match="--zipf"):
            RunConfig(mode="cluster", catalog=8, zipf=-1.0).validate()
        with pytest.raises(RunConfigError, match="--replication"):
            RunConfig(mode="cluster", catalog=8,
                      replication=-1).validate()

    def test_serve_rejects_catalog_as_cluster_only(self):
        with pytest.raises(RunConfigError, match="cluster-only"):
            RunConfig(mode="serve", catalog=8).validate()

    def test_realserve_rejects_catalog(self):
        with pytest.raises(RunConfigError, match="--catalog"):
            RunConfig(mode="realserve", catalog=8).validate()


class TestCliSurface:
    def test_cluster_run_reports_tier_metrics(self, capsys, tmp_path):
        assert main(["cluster", "--fast", "--workload",
                     "vr-lego:2,dolly-chair", "--catalog", "12",
                     "--zipf", "1.2", "--replication", "2",
                     "--placement", "shard_affinity", "--rate", "4",
                     "--duration", "4", "--workers", "2", "--frames", "2",
                     "--seed", "7",
                     "--json-out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "hierarchy_hit_rate" in out
        payload = json.loads(
            (tmp_path / "BENCH_cluster.json").read_text())
        extra = payload["extra"]
        assert extra["catalog"] == 12
        assert extra["replication"] == 2
        assert extra["field_lookups"] > 0
        assert 0.0 <= extra["hierarchy_hit_rate"] <= 1.0

    def test_zipf_without_catalog_exits_2(self, capsys):
        assert main(["cluster", "--fast", "--zipf", "1.2"]) == 2
        assert "--catalog" in capsys.readouterr().err

    def test_frontier_rejects_catalog(self, capsys):
        assert main(["frontier", "--fast", "--catalog", "8"]) == 2
        assert "--catalog" in capsys.readouterr().err

    def test_serve_rejects_catalog(self, capsys):
        assert main(["serve", "--fast", "--catalog", "8"]) == 2
        assert "cluster-only" in capsys.readouterr().err


class TestRunClusterLibrarySurface:
    def test_unsharded_summary_keeps_legacy_shape(self):
        rows, summary = run_cluster(
            FAST, mix="vr-lego:2", rate_hz=3.0, duration_s=3.0,
            workers=2, frames=2, seed=3)
        assert "catalog" not in summary
        assert "hierarchy_hit_rate" not in summary
        assert all("field_bakes" not in row for row in rows)

    def test_sharded_summary_adds_tier_block(self):
        rows, summary = run_cluster(
            FAST, mix="vr-lego:2", rate_hz=3.0, duration_s=3.0,
            workers=2, frames=2, seed=3, catalog=12, zipf=1.2,
            replication=2, placement="shard_affinity")
        assert summary["catalog"] == 12
        assert summary["zipf_s"] == 1.2
        assert summary["field_lookups"] == summary["admitted"]
        assert (summary["ttff_bake_mean_ms"]
                + summary["ttff_transfer_mean_ms"]
                + summary["ttff_queue_mean_ms"]) == pytest.approx(
            summary["ttff_mean_ms"])
        assert all("field_bakes" in row for row in rows)
