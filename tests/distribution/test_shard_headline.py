"""The PR's locked headline claim.

At 10× today's curated scene count (80-variant catalog over all 8
workloads) under a zipfian popularity mix, shard-aware placement with
replication R=2 beats the per-worker-LRU-only baseline (least-loaded
placement, R=0) on BOTH the cache-hierarchy hit rate and p95 TTFF —
and the sharded run is bit-deterministic per seed.
"""

import dataclasses
import functools

from repro.cluster import simulate_cluster
from repro.harness.configs import FAST
from repro.workloads import WORKLOADS

BASE_MIX = ",".join(sorted(WORKLOADS))  # all 8 curated workloads
CATALOG = 10 * len(WORKLOADS)           # 10x today's scene count
SEED = 7


@functools.lru_cache(maxsize=None)
def run(placement: str, replication: int):
    return simulate_cluster(
        BASE_MIX, FAST, arrivals="poisson", rate_hz=10.0,
        duration_s=10.0, workers=4, queue_limit=10, frames=2,
        seed=SEED, catalog=CATALOG, zipf=1.3,
        placement=placement, replication=replication)


class TestHeadline:
    def test_catalog_is_ten_x_and_fully_admitted(self):
        sharded = run("shard_affinity", 2)
        baseline = run("least_loaded", 0)
        assert sharded.distribution["catalog"] == CATALOG == 80
        # Equal admitted populations make the comparison apples-to-apples.
        assert sharded.rejected == baseline.rejected == 0
        assert sharded.admitted == baseline.admitted

    def test_replicated_sharding_beats_lru_only_on_hit_rate(self):
        sharded = run("shard_affinity", 2).distribution
        baseline = run("least_loaded", 0).distribution
        assert sharded["replication"] == 2
        assert baseline["replication"] == 0
        assert sharded["hierarchy_hit_rate"] > baseline["hierarchy_hit_rate"]
        # The win comes through the shard tier: tier-2 hits exist, and
        # far fewer duplicate bakes burn fleet capacity.
        assert sharded["field_shard_hits"] > 0
        assert baseline["field_shard_hits"] == 0
        assert sharded["field_bakes"] < baseline["field_bakes"]

    def test_replicated_sharding_beats_lru_only_on_p95_ttff(self):
        assert (run("shard_affinity", 2).ttff_p95_s
                < run("least_loaded", 0).ttff_p95_s)

    def test_sharded_run_is_bit_deterministic(self):
        again = simulate_cluster(
            BASE_MIX, FAST, arrivals="poisson", rate_hz=10.0,
            duration_s=10.0, workers=4, queue_limit=10, frames=2,
            seed=SEED, catalog=CATALOG, zipf=1.3,
            placement="shard_affinity", replication=2)
        assert dataclasses.asdict(again) == dataclasses.asdict(
            run("shard_affinity", 2))
