"""Hypothesis property suite for the rendezvous shard map.

The distribution tier's correctness rests on three structural
invariants, stated exactly (not statistically) wherever possible:

* replication sets always have exactly ``min(R, workers)`` distinct
  members;
* removing a worker re-homes only the keys it owned — the survivors'
  relative ranking is untouched;
* growing the fleet N → N+1 re-homes roughly ``keys / N`` primaries
  (each key moves only if the newcomer out-scores its current owners).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.distribution import ShardMap

worker_ids = st.lists(
    st.integers(min_value=0, max_value=40).map(lambda i: f"w{i:02d}"),
    min_size=1, max_size=12, unique=True)
keys = st.lists(st.text(min_size=1, max_size=12), min_size=1,
                max_size=30, unique=True)
replications = st.integers(min_value=0, max_value=5)


class TestOwnerSets:
    @given(members=worker_ids, key=st.text(min_size=1, max_size=12),
           replication=replications)
    @settings(max_examples=200, deadline=None)
    def test_exactly_min_r_workers_distinct_members(self, members, key,
                                                    replication):
        shard_map = ShardMap(members, replication=replication)
        owners = shard_map.owners(key)
        assert len(owners) == len(set(owners)) == min(replication,
                                                      len(members))
        assert set(owners) <= set(members)

    @given(members=worker_ids, key=st.text(min_size=1, max_size=12),
           replication=st.integers(min_value=1, max_value=5))
    @settings(max_examples=100, deadline=None)
    def test_owners_prefix_the_full_ranking(self, members, key,
                                            replication):
        shard_map = ShardMap(members, replication=replication)
        ranking = shard_map.ranking(key)
        assert list(shard_map.owners(key)) == ranking[:replication]
        assert shard_map.primary(key) == ranking[0]

    def test_empty_fleet_and_zero_replication(self):
        assert ShardMap(replication=2).owners("k") == ()
        assert ShardMap(["w00"], replication=0).owners("k") == ()
        assert ShardMap(replication=2).primary("k") is None
        with pytest.raises(ValueError):
            ShardMap(replication=-1)


class TestRemoveRehomesOnlyOwnedKeys:
    @given(members=worker_ids, key_set=keys, replication=replications)
    @settings(max_examples=150, deadline=None)
    def test_survivor_ranking_is_stable(self, members, key_set,
                                        replication):
        shard_map = ShardMap(members, replication=replication)
        before = {key: shard_map.owners(key) for key in key_set}
        removed = sorted(members)[0]
        shard_map.remove(removed)
        for key in key_set:
            expected = tuple(
                owner for owner in ShardMap(
                    members, replication=len(members)).owners(key)
                if owner != removed)[:replication]
            assert shard_map.owners(key) == expected
            if removed not in before[key]:
                # Keys the retiree did not own keep their owners as-is.
                assert shard_map.owners(key) == before[key]


class TestAddRehomesMinimally:
    @given(members=worker_ids, key_set=keys, replication=replications)
    @settings(max_examples=150, deadline=None)
    def test_only_keys_the_newcomer_wins_change(self, members, key_set,
                                                replication):
        newcomer = "brand-new-worker"
        shard_map = ShardMap(members, replication=replication)
        before = {key: shard_map.owners(key) for key in key_set}
        shard_map.add(newcomer)
        for key in key_set:
            after = shard_map.owners(key)
            if newcomer not in after:
                assert after == before[key]
            else:
                # The newcomer displaces exactly the last-ranked owner;
                # surviving owners keep their relative order.
                survivors = tuple(o for o in after if o != newcomer)
                assert survivors == before[key][:len(survivors)]

    def test_growth_rehomes_about_keys_over_n_primaries(self):
        # Statistical stability bound, on a fixed key population so the
        # count is deterministic: going 5 -> 6 workers re-homes about
        # 1/6 of the primaries; assert the ISSUE's catalog/N + epsilon.
        n, catalog = 5, 1000
        members = [f"w{i:02d}" for i in range(n)]
        key_set = [f"scene-{i:04d}" for i in range(catalog)]
        shard_map = ShardMap(members, replication=1)
        before = {key: shard_map.primary(key) for key in key_set}
        shard_map.add(f"w{n:02d}")
        moved = sum(1 for key in key_set
                    if shard_map.primary(key) != before[key])
        assert 0 < moved <= catalog / n + 0.05 * catalog
