"""Two-tier field store: acquire semantics, eviction, cost model."""

import pytest

from repro.distribution import (
    FieldCostModel,
    SceneCatalog,
    ShardedFieldStore,
)
from repro.harness.configs import FAST

CATALOG = SceneCatalog("vr-lego,dolly-chair", 24, seed=0)
SPECS = CATALOG.specs


def store_with(workers=3, **kwargs):
    store = ShardedFieldStore(FAST, **kwargs)
    for i in range(workers):
        store.register_worker(f"w{i:02d}")
    return store


class TestCostModel:
    def test_field_bytes_scale_with_config(self):
        model = FieldCostModel()
        small = model.field_bytes(SPECS[0], FAST)
        from repro.harness.configs import DEFAULT
        assert 0 < small < model.field_bytes(SPECS[0], DEFAULT)

    def test_bake_dwarfs_transfer(self):
        model = FieldCostModel()
        nbytes = model.field_bytes(SPECS[0], FAST)
        assert model.bake_s(nbytes) > 10 * model.transfer_s(nbytes)

    def test_algorithms_size_differently(self):
        model = FieldCostModel()
        by_algorithm = {spec.algorithm: model.field_bytes(spec, FAST)
                        for spec in SPECS}
        assert all(nbytes > 0 for nbytes in by_algorithm.values())


class TestAcquire:
    def test_cold_bake_then_local_then_transfer(self):
        store = store_with(replication=2)
        spec = SPECS[0]
        kind, delay = store.acquire("w00", spec, 0.0)
        assert kind == "bake" and delay > 0
        assert store.acquire("w00", spec, 1.0) == ("local", 0.0)
        # Another worker finds the replica in the shard tier.  Owners
        # serve it on-box for free; non-owners pay the transfer.
        owners = set(store.shard_map.owners(spec.cache_key(FAST)))
        others = {"w00", "w01", "w02"} - {"w00"}
        for worker_id in sorted(others):
            kind, delay = store.acquire(worker_id, spec, 2.0)
            assert kind == "shard"
            assert (delay == 0.0) == (worker_id in owners)

    def test_replication_zero_always_rebakes(self):
        store = store_with(replication=0)
        spec = SPECS[0]
        assert store.acquire("w00", spec, 0.0)[0] == "bake"
        assert store.acquire("w01", spec, 1.0)[0] == "bake"
        assert store.acquire("w00", spec, 2.0)[0] == "local"
        assert store.stats()["field_bakes"] == 2

    def test_local_lru_bounded_with_eviction(self):
        store = store_with(replication=0, local_entries=2)
        for spec in SPECS[:3]:
            store.acquire("w00", spec, 0.0)
        assert store.local_evictions == 1
        # The evicted (oldest) field re-bakes; the newest is still local.
        assert store.acquire("w00", SPECS[0], 1.0)[0] == "bake"
        assert store.acquire("w00", SPECS[2], 1.0)[0] == "local"

    def test_shard_capacity_evicts_lru_replicas(self):
        nbytes = FieldCostModel().field_bytes(SPECS[0], FAST)
        store = store_with(workers=1, replication=1,
                           shard_capacity_bytes=2 * nbytes,
                           local_entries=1)
        for spec in SPECS[:4]:
            store.acquire("w00", spec, 0.0)
        assert store.shard_evictions > 0
        stats = store.stats()
        assert stats["shard_resident_bytes"] <= 2 * nbytes

    def test_removed_worker_replicas_vanish(self):
        store = store_with(workers=2, replication=2)
        spec = SPECS[0]
        store.acquire("w00", spec, 0.0)  # bakes at both owners
        store.remove_worker("w00")
        store.remove_worker("w01")
        store.register_worker("w05")
        assert store.acquire("w05", spec, 1.0)[0] == "bake"

    def test_rejects_unbounded_local_tier(self):
        with pytest.raises(ValueError):
            ShardedFieldStore(FAST, local_entries=0)


class TestStats:
    def test_hierarchy_hit_rate_counts_both_tiers(self):
        store = store_with(replication=3)
        spec = SPECS[0]
        store.acquire("w00", spec, 0.0)          # bake
        store.acquire("w00", spec, 1.0)          # local hit
        store.acquire("w01", spec, 2.0)          # shard hit
        stats = store.stats()
        assert stats["field_lookups"] == 3
        assert stats["field_local_hits"] == 1
        assert stats["field_shard_hits"] == 1
        assert stats["field_bakes"] == 1
        assert stats["hierarchy_hit_rate"] == pytest.approx(2 / 3)
        assert stats["unique_fields_baked"] == 1
        assert stats["bake_s_total"] > 0

    def test_worker_stats_split_per_worker(self):
        store = store_with(replication=1)
        store.acquire("w00", SPECS[0], 0.0)
        store.acquire("w00", SPECS[0], 1.0)
        row = store.worker_stats("w00")
        assert row["field_bakes"] == 1
        assert row["field_local_hits"] == 1
        assert store.worker_stats("w01")["field_bakes"] == 0
