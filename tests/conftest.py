"""Shared fixtures: small-scale scenes, fields, and renders.

Everything here is session-scoped and built at the FAST experiment scale so
the whole suite reuses one set of baked artefacts.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import numpy as np
import pytest

from repro.geometry import Intrinsics, PinholeCamera, look_at
from repro.harness.configs import FAST, build_renderer, ground_truth_sequence
from repro.nerf import NeRFRenderer, OccupancyGrid, UniformSampler, VoxelGridField
from repro.scenes import RayTracer, get_scene


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens", action="store_true", default=False,
        help="regenerate the tests/golden/data digests instead of "
             "comparing against them")


# -- golden-regression helpers (tests/golden) ---------------------------------
#
# A golden is a small checked-in JSON document of digests (frame-byte
# hashes + key stats) for one deterministic run; tests build the same
# payload live and must match bit for bit.  Regenerate after an
# intentional change with `python -m pytest tests/golden --update-goldens`.
# The helpers live here (not in a tests/golden/conftest.py) because the
# benchmarks suite imports its own sibling `conftest` by bare module
# name, which a second nested conftest module would shadow.

GOLDEN_DATA_DIR = Path(__file__).parent / "golden" / "data"


def _frames_digest(frames) -> str:
    """SHA-256 over the exact image+depth bytes of a frame sequence."""
    digest = hashlib.sha256()
    for frame in frames:
        for plane in (frame.image, frame.depth):
            digest.update(np.ascontiguousarray(
                np.asarray(plane, dtype=np.float64)).tobytes())
    return digest.hexdigest()


def _stats_digest(payload) -> str:
    """SHA-256 of a JSON-able stats object (floats kept at full repr)."""
    from repro.harness.reporting import jsonable
    canonical = json.dumps(jsonable(payload), sort_keys=True)
    return hashlib.sha256(canonical.encode()).hexdigest()


@pytest.fixture(name="frames_digest")
def frames_digest_fixture():
    return _frames_digest


@pytest.fixture(name="stats_digest")
def stats_digest_fixture():
    return _stats_digest


@pytest.fixture
def golden(request):
    """``golden(name, payload)``: compare against (or update) a digest file."""
    update = request.config.getoption("--update-goldens")

    def check(name: str, payload: dict) -> None:
        path = GOLDEN_DATA_DIR / f"{name}.json"
        if update:
            GOLDEN_DATA_DIR.mkdir(exist_ok=True)
            path.write_text(json.dumps(payload, indent=2, sort_keys=True)
                            + "\n")
            return
        assert path.exists(), (
            f"missing golden {path.name}; generate it with "
            f"'python -m pytest tests/golden --update-goldens'")
        expected = json.loads(path.read_text())
        assert payload == expected, (
            f"golden {name!r} drifted from {path}.\n"
            f"expected: {expected}\n"
            f"got:      {payload}\n"
            "If the change is intentional, regenerate with "
            "'python -m pytest tests/golden --update-goldens'.")

    return check


@pytest.fixture(scope="session")
def lego_scene():
    return get_scene("lego")


@pytest.fixture(scope="session")
def small_camera():
    """48x48 camera looking at the origin from a generic viewpoint."""
    return PinholeCamera(Intrinsics.from_fov(48, 48, 45.0),
                         look_at([3.0, 1.0, 0.5], [0.0, 0.0, 0.0]))


@pytest.fixture(scope="session")
def gt_frame(lego_scene, small_camera):
    return RayTracer(lego_scene).render(small_camera)


@pytest.fixture(scope="session")
def small_field(lego_scene):
    """A 32^3 baked voxel-grid field of the lego scene."""
    return VoxelGridField.bake(lego_scene, resolution=32)


@pytest.fixture(scope="session")
def small_renderer(lego_scene, small_field):
    occupancy = OccupancyGrid.from_field(small_field, resolution=24)
    return NeRFRenderer(small_field, UniformSampler(48, occupancy=occupancy),
                        background=lego_scene.background)


@pytest.fixture(scope="session")
def nerf_frame(small_renderer, small_camera):
    frame, out = small_renderer.render_frame(small_camera, record_gather=True)
    return frame, out


@pytest.fixture(scope="session")
def gather_groups(nerf_frame):
    return nerf_frame[1].gather_groups


@pytest.fixture(scope="session")
def fast_config():
    return FAST


@pytest.fixture(scope="session")
def fast_sequence():
    """(trajectory, ground-truth frames) at the FAST scale, cached."""
    return ground_truth_sequence("lego", FAST)


@pytest.fixture(scope="session")
def fast_renderer():
    return build_renderer("directvoxgo", "lego", FAST)


@pytest.fixture
def rng():
    return np.random.default_rng(1234)
