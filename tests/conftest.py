"""Shared fixtures: small-scale scenes, fields, and renders.

Everything here is session-scoped and built at the FAST experiment scale so
the whole suite reuses one set of baked artefacts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry import Intrinsics, PinholeCamera, look_at
from repro.harness.configs import FAST, build_renderer, ground_truth_sequence
from repro.nerf import NeRFRenderer, OccupancyGrid, UniformSampler, VoxelGridField
from repro.scenes import RayTracer, get_scene


@pytest.fixture(scope="session")
def lego_scene():
    return get_scene("lego")


@pytest.fixture(scope="session")
def small_camera():
    """48x48 camera looking at the origin from a generic viewpoint."""
    return PinholeCamera(Intrinsics.from_fov(48, 48, 45.0),
                         look_at([3.0, 1.0, 0.5], [0.0, 0.0, 0.0]))


@pytest.fixture(scope="session")
def gt_frame(lego_scene, small_camera):
    return RayTracer(lego_scene).render(small_camera)


@pytest.fixture(scope="session")
def small_field(lego_scene):
    """A 32^3 baked voxel-grid field of the lego scene."""
    return VoxelGridField.bake(lego_scene, resolution=32)


@pytest.fixture(scope="session")
def small_renderer(lego_scene, small_field):
    occupancy = OccupancyGrid.from_field(small_field, resolution=24)
    return NeRFRenderer(small_field, UniformSampler(48, occupancy=occupancy),
                        background=lego_scene.background)


@pytest.fixture(scope="session")
def nerf_frame(small_renderer, small_camera):
    frame, out = small_renderer.render_frame(small_camera, record_gather=True)
    return frame, out


@pytest.fixture(scope="session")
def gather_groups(nerf_frame):
    return nerf_frame[1].gather_groups


@pytest.fixture(scope="session")
def fast_config():
    return FAST


@pytest.fixture(scope="session")
def fast_sequence():
    """(trajectory, ground-truth frames) at the FAST scale, cached."""
    return ground_truth_sequence("lego", FAST)


@pytest.fixture(scope="session")
def fast_renderer():
    return build_renderer("directvoxgo", "lego", FAST)


@pytest.fixture
def rng():
    return np.random.default_rng(1234)
