"""Tests for SDF primitives and CSG combinators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scenes.sdf import (
    Box,
    Cylinder,
    Plane,
    Sphere,
    Torus,
    Union,
    estimate_normals,
)

points3 = st.lists(
    st.floats(min_value=-3.0, max_value=3.0, allow_nan=False), min_size=3,
    max_size=3)


class TestSphere:
    def test_distance_signs(self):
        s = Sphere(center=[0, 0, 0], radius=1.0)
        d = s.distance(np.array([[0.0, 0.0, 0.0], [2.0, 0.0, 0.0],
                                 [1.0, 0.0, 0.0]]))
        assert d[0] == pytest.approx(-1.0)
        assert d[1] == pytest.approx(1.0)
        assert d[2] == pytest.approx(0.0)

    @settings(max_examples=30, deadline=None)
    @given(p=points3)
    def test_exact_metric(self, p):
        s = Sphere(center=[0.5, -0.2, 0.1], radius=0.7)
        d = s.distance(np.array([p]))
        expected = np.linalg.norm(np.array(p) - [0.5, -0.2, 0.1]) - 0.7
        assert d[0] == pytest.approx(expected, abs=1e-12)


class TestBox:
    def test_inside_negative(self):
        b = Box(center=[0, 0, 0], half_size=[1, 1, 1])
        assert b.distance(np.zeros((1, 3)))[0] == pytest.approx(-1.0)

    def test_face_distance(self):
        b = Box(center=[0, 0, 0], half_size=[1, 1, 1])
        assert b.distance(np.array([[2.0, 0.0, 0.0]]))[0] == pytest.approx(1.0)

    def test_corner_distance(self):
        b = Box(center=[0, 0, 0], half_size=[1, 1, 1])
        d = b.distance(np.array([[2.0, 2.0, 2.0]]))
        assert d[0] == pytest.approx(np.sqrt(3.0))


class TestOtherPrimitives:
    def test_torus_ring_point_on_surface(self):
        t = Torus(major=1.0, minor=0.25)
        assert t.distance(np.array([[1.25, 0.0, 0.0]]))[0] == pytest.approx(0.0)

    def test_plane_half_space(self):
        p = Plane(normal=[0, 1, 0], offset=0.0)
        assert p.distance(np.array([[0.0, 2.0, 0.0]]))[0] == pytest.approx(2.0)
        assert p.distance(np.array([[0.0, -2.0, 0.0]]))[0] == pytest.approx(-2.0)

    def test_plane_normalizes(self):
        p = Plane(normal=[0, 2, 0])
        np.testing.assert_allclose(p.normal, [0, 1, 0])

    def test_cylinder_radial_and_axial(self):
        c = Cylinder(radius=0.5, half_height=1.0)
        assert c.distance(np.array([[1.5, 0.0, 0.0]]))[0] == pytest.approx(1.0)
        assert c.distance(np.array([[0.0, 2.0, 0.0]]))[0] == pytest.approx(1.0)


class TestCSG:
    def test_union_is_min(self):
        a = Sphere(center=[0, 0, 0], radius=1.0)
        b = Sphere(center=[3, 0, 0], radius=1.0)
        u = Union([a, b])
        pts = np.array([[0.0, 0.0, 0.0], [3.0, 0.0, 0.0]])
        np.testing.assert_allclose(u.distance(pts), [-1.0, -1.0])

    def test_operator_or(self):
        a = Sphere(radius=1.0)
        b = Box(half_size=[0.5, 0.5, 0.5])
        u = a | b
        assert isinstance(u, Union)

    def test_subtraction_removes_overlap(self):
        base = Sphere(radius=1.0)
        cut = Sphere(radius=0.5)
        sub = base - cut
        # Center is inside the cut -> outside the result.
        assert sub.distance(np.zeros((1, 3)))[0] > 0

    def test_translated(self):
        s = Sphere(radius=1.0).translated([5.0, 0.0, 0.0])
        assert s.distance(np.array([[5.0, 0.0, 0.0]]))[0] == pytest.approx(-1.0)

    def test_scaled(self):
        s = Sphere(radius=1.0).scaled(2.0)
        assert s.distance(np.array([[2.0, 0.0, 0.0]]))[0] == pytest.approx(0.0)


class TestNormals:
    def test_sphere_normals_radial(self):
        s = Sphere(radius=1.0)
        pts = np.array([[1.0, 0.0, 0.0], [0.0, 1.0, 0.0]])
        normals = estimate_normals(s, pts)
        np.testing.assert_allclose(normals, pts, atol=1e-4)

    def test_normals_unit_length(self):
        b = Box(half_size=[0.5, 1.0, 0.7])
        rng = np.random.default_rng(0)
        pts = rng.uniform(-2, 2, size=(50, 3))
        normals = estimate_normals(b, pts)
        np.testing.assert_allclose(np.linalg.norm(normals, axis=1), 1.0,
                                   atol=1e-9)
