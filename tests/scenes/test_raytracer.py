"""Tests for the ground-truth sphere tracer."""

import numpy as np
import pytest

from repro.geometry import Intrinsics, PinholeCamera, look_at
from repro.scenes import Material, RayTracer, Scene, SceneObject, Sphere
from repro.scenes.scene import solid_albedo


@pytest.fixture(scope="module")
def sphere_scene():
    return Scene(objects=[
        SceneObject(Sphere(center=[0.0, 0.0, 0.0], radius=1.0),
                    Material(albedo=solid_albedo([1.0, 0.0, 0.0]))),
    ])


@pytest.fixture(scope="module")
def tracer(sphere_scene):
    return RayTracer(sphere_scene)


class TestTrace:
    def test_center_ray_hits_at_correct_distance(self, tracer):
        t, hit = tracer.trace(np.array([[0.0, 0.0, -5.0]]),
                              np.array([[0.0, 0.0, 1.0]]))
        assert hit[0]
        assert t[0] == pytest.approx(4.0, abs=5e-3)

    def test_miss(self, tracer):
        _, hit = tracer.trace(np.array([[0.0, 5.0, -5.0]]),
                              np.array([[0.0, 0.0, 1.0]]))
        assert not hit[0]

    def test_max_distance_respected(self, sphere_scene):
        tracer = RayTracer(sphere_scene, max_distance=2.0)
        _, hit = tracer.trace(np.array([[0.0, 0.0, -5.0]]),
                              np.array([[0.0, 0.0, 1.0]]))
        assert not hit[0]


class TestRenderFrame:
    @pytest.fixture(scope="class")
    def frame(self, tracer):
        camera = PinholeCamera(Intrinsics.from_fov(32, 32, 45.0),
                               look_at([0.0, 0.0, -4.0], [0.0, 0.0, 0.0]))
        return tracer.render(camera)

    def test_center_pixel_hits_sphere(self, frame):
        assert frame.hit[16, 16]
        np.testing.assert_allclose(frame.image[16, 16],
                                   frame.image[16, 16].clip(0, 1))

    def test_corner_pixel_is_background(self, frame):
        assert not frame.hit[0, 0]
        assert np.isinf(frame.depth[0, 0])

    def test_depth_at_center(self, frame):
        # Camera at z=-4, sphere front at z=-1 -> z-depth 3.
        assert frame.depth[16, 16] == pytest.approx(3.0, abs=0.02)

    def test_depth_increases_toward_silhouette(self, frame):
        center = frame.depth[16, 16]
        ys, xs = np.nonzero(frame.hit)
        edge_idx = np.argmax(np.abs(xs - 16))
        assert frame.depth[ys[edge_idx], xs[edge_idx]] > center

    def test_hit_region_roughly_circular(self, frame):
        # Sphere of radius 1 at distance 4 with 45 deg fov covers ~a quarter
        # of the image width; just sanity-bound the hit fraction.
        assert 0.05 < frame.hit.mean() < 0.6


class TestRenderPixels:
    def test_sparse_matches_full(self, tracer):
        camera = PinholeCamera(Intrinsics.from_fov(24, 24, 45.0),
                               look_at([0.0, 0.0, -4.0], [0.0, 0.0, 0.0]))
        full = tracer.render(camera)
        ids = np.array([0, 12 * 24 + 12, 24 * 24 - 1])
        colors, depth = tracer.render_pixels(camera, ids)
        np.testing.assert_allclose(colors,
                                   full.image.reshape(-1, 3)[ids], atol=1e-12)
        np.testing.assert_allclose(depth, full.depth.reshape(-1)[ids],
                                   atol=1e-12)

    def test_consistency_with_scene_shading(self, tracer, sphere_scene):
        camera = PinholeCamera(Intrinsics.from_fov(16, 16, 45.0),
                               look_at([0.0, 0.0, -4.0], [0.0, 0.0, 0.0]))
        ids = np.array([8 * 16 + 8])
        colors, _ = tracer.render_pixels(camera, ids)
        # Red albedo: green/blue stay at ambient-ish small values.
        assert colors[0, 0] > colors[0, 1]
        assert colors[0, 0] > colors[0, 2]
