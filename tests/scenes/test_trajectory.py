"""Tests for camera trajectories and FPS resampling."""

import numpy as np
import pytest

from repro.geometry import (
    is_rotation_matrix,
    pose_rotation,
    pose_translation,
    rotation_angle_deg,
    translation_distance,
)
from repro.scenes import handheld_trajectory, orbit_trajectory, resample_fps


class TestOrbit:
    def test_length_and_fps(self):
        traj = orbit_trajectory(30, fps=30.0)
        assert len(traj) == 30
        assert traj.frame_interval == pytest.approx(1.0 / 30.0)

    def test_constant_radius(self):
        traj = orbit_trajectory(20, radius=3.0, height=1.0, target=(0, 0, 0))
        for pose in traj.poses:
            position = pose_translation(pose)
            radial = np.linalg.norm([position[0], position[2]])
            assert radial == pytest.approx(3.0, abs=1e-9)
            assert position[1] == pytest.approx(1.0)

    def test_pose_delta_matches_degrees_per_frame(self):
        traj = orbit_trajectory(10, degrees_per_frame=2.0)
        angle = rotation_angle_deg(pose_rotation(traj[0]),
                                   pose_rotation(traj[1]))
        # Rotation between consecutive look-at poses tracks the orbit step.
        assert angle == pytest.approx(2.0, abs=0.3)

    def test_all_poses_valid(self):
        traj = orbit_trajectory(15, degrees_per_frame=3.0)
        for pose in traj.poses:
            assert is_rotation_matrix(pose_rotation(pose), tol=1e-8)


class TestHandheld:
    def test_deterministic_in_seed(self):
        a = handheld_trajectory(10, seed=5)
        b = handheld_trajectory(10, seed=5)
        for pa, pb in zip(a.poses, b.poses):
            np.testing.assert_allclose(pa, pb)

    def test_jitter_stays_small(self):
        smooth = orbit_trajectory(20)
        shaky = handheld_trajectory(20, jitter_translation=0.01)
        for ps, ph in zip(smooth.poses, shaky.poses):
            assert translation_distance(ps, ph) < 0.25

    def test_consecutive_poses_close(self):
        traj = handheld_trajectory(20, degrees_per_frame=0.5)
        for a, b in zip(traj.poses, traj.poses[1:]):
            assert translation_distance(a, b) < 0.2


class TestResample:
    def test_stride(self):
        traj = orbit_trajectory(30, fps=30.0)
        low = resample_fps(traj, 10.0)
        assert len(low) == 10
        assert low.fps == pytest.approx(10.0)
        np.testing.assert_allclose(low[1], traj[3])

    def test_1fps_from_30fps(self):
        traj = orbit_trajectory(60, fps=30.0)
        low = resample_fps(traj, 1.0)
        assert len(low) == 2
        # Pose deltas grow ~30x.
        dense_step = translation_distance(traj[0], traj[1])
        sparse_step = translation_distance(low[0], low[1])
        assert sparse_step > 20 * dense_step

    def test_upsampling_rejected(self):
        traj = orbit_trajectory(10, fps=10.0)
        with pytest.raises(ValueError):
            resample_fps(traj, 30.0)
