"""Tests for camera trajectories and FPS resampling."""

import numpy as np
import pytest

from repro.geometry import (
    is_rotation_matrix,
    pose_rotation,
    pose_translation,
    rotation_angle_deg,
    translation_distance,
)
from repro.scenes import (
    TRAJECTORY_KINDS,
    dolly_trajectory,
    handheld_trajectory,
    headshake_trajectory,
    load_pose_log,
    make_trajectory,
    orbit_trajectory,
    random_walk_trajectory,
    replay_trajectory,
    resample_fps,
    save_pose_log,
)


class TestOrbit:
    def test_length_and_fps(self):
        traj = orbit_trajectory(30, fps=30.0)
        assert len(traj) == 30
        assert traj.frame_interval == pytest.approx(1.0 / 30.0)

    def test_constant_radius(self):
        traj = orbit_trajectory(20, radius=3.0, height=1.0, target=(0, 0, 0))
        for pose in traj.poses:
            position = pose_translation(pose)
            radial = np.linalg.norm([position[0], position[2]])
            assert radial == pytest.approx(3.0, abs=1e-9)
            assert position[1] == pytest.approx(1.0)

    def test_pose_delta_matches_degrees_per_frame(self):
        traj = orbit_trajectory(10, degrees_per_frame=2.0)
        angle = rotation_angle_deg(pose_rotation(traj[0]),
                                   pose_rotation(traj[1]))
        # Rotation between consecutive look-at poses tracks the orbit step.
        assert angle == pytest.approx(2.0, abs=0.3)

    def test_all_poses_valid(self):
        traj = orbit_trajectory(15, degrees_per_frame=3.0)
        for pose in traj.poses:
            assert is_rotation_matrix(pose_rotation(pose), tol=1e-8)


class TestHandheld:
    def test_deterministic_in_seed(self):
        a = handheld_trajectory(10, seed=5)
        b = handheld_trajectory(10, seed=5)
        for pa, pb in zip(a.poses, b.poses):
            np.testing.assert_allclose(pa, pb)

    def test_jitter_stays_small(self):
        smooth = orbit_trajectory(20)
        shaky = handheld_trajectory(20, jitter_translation=0.01)
        for ps, ph in zip(smooth.poses, shaky.poses):
            assert translation_distance(ps, ph) < 0.25

    def test_consecutive_poses_close(self):
        traj = handheld_trajectory(20, degrees_per_frame=0.5)
        for a, b in zip(traj.poses, traj.poses[1:]):
            assert translation_distance(a, b) < 0.2


GENERATOR_CASES = {
    "orbit": lambda n, seed: orbit_trajectory(n),
    "handheld": lambda n, seed: handheld_trajectory(n, seed=seed),
    "dolly": lambda n, seed: dolly_trajectory(n),
    "headshake": lambda n, seed: headshake_trajectory(n),
    "random_walk": lambda n, seed: random_walk_trajectory(n, seed=seed),
}


class TestAllGenerators:
    """Shared invariants: determinism under seed, valid rotations."""

    @pytest.mark.parametrize("kind", sorted(GENERATOR_CASES))
    def test_deterministic_under_fixed_seed(self, kind):
        a = GENERATOR_CASES[kind](12, 3)
        b = GENERATOR_CASES[kind](12, 3)
        assert len(a) == len(b) == 12
        for pa, pb in zip(a.poses, b.poses):
            np.testing.assert_array_equal(pa, pb)

    @pytest.mark.parametrize("kind", sorted(GENERATOR_CASES))
    def test_all_rotations_valid(self, kind):
        traj = GENERATOR_CASES[kind](15, 1)
        for pose in traj.poses:
            assert pose.shape == (4, 4)
            assert is_rotation_matrix(pose_rotation(pose), tol=1e-8)
            np.testing.assert_allclose(pose[3], [0.0, 0.0, 0.0, 1.0])

    @pytest.mark.parametrize("kind", sorted(GENERATOR_CASES))
    def test_consecutive_poses_close(self, kind):
        traj = GENERATOR_CASES[kind](20, 2)
        for a, b in zip(traj.poses, traj.poses[1:]):
            assert translation_distance(a, b) < 0.3
            assert rotation_angle_deg(pose_rotation(a),
                                      pose_rotation(b)) < 10.0

    def test_registry_covers_every_generator(self):
        assert set(GENERATOR_CASES) | {"replay"} == set(TRAJECTORY_KINDS)


class TestDolly:
    def test_moves_along_line_toward_target(self):
        traj = dolly_trajectory(10, start_distance=4.0, end_distance=2.0,
                                height=0.5)
        d0 = np.linalg.norm(pose_translation(traj[0]) - [0, 0.5, 0])
        d_last = np.linalg.norm(pose_translation(traj[-1]) - [0, 0.5, 0])
        assert d0 == pytest.approx(4.0)
        assert d_last == pytest.approx(2.0)
        # Monotone push-in.
        dists = [np.linalg.norm(pose_translation(p) - [0, 0.5, 0])
                 for p in traj.poses]
        assert all(a > b for a, b in zip(dists, dists[1:]))


class TestHeadshake:
    def test_eye_stays_near_anchor(self):
        traj = headshake_trajectory(30, radius=3.0, sway=0.02)
        anchor = pose_translation(traj[0])
        for pose in traj.poses:
            assert np.linalg.norm(pose_translation(pose) - anchor) < 0.1

    def test_yaw_oscillates(self):
        traj = headshake_trajectory(48, yaw_amplitude_deg=5.0,
                                    period_frames=24.0)
        # Max rotation from the first pose should approach the amplitude.
        angles = [rotation_angle_deg(pose_rotation(traj[0]),
                                     pose_rotation(p)) for p in traj.poses]
        assert 3.0 < max(angles) < 11.0


class TestRandomWalk:
    def test_different_seeds_differ(self):
        a = random_walk_trajectory(15, seed=1)
        b = random_walk_trajectory(15, seed=2)
        assert any(translation_distance(pa, pb) > 1e-6
                   for pa, pb in zip(a.poses, b.poses))

    def test_stays_in_shell(self):
        traj = random_walk_trajectory(60, seed=9, min_radius=2.2,
                                      max_radius=4.2, step_scale=0.3)
        for pose in traj.poses:
            dist = np.linalg.norm(pose_translation(pose))
            assert 2.2 - 1e-9 <= dist <= 4.2 + 1e-9

    def test_invalid_shell_rejected(self):
        with pytest.raises(ValueError):
            random_walk_trajectory(5, radius=5.0, max_radius=4.0)


class TestReplay:
    def test_pose_log_round_trip_exact(self, tmp_path):
        traj = random_walk_trajectory(10, seed=4, fps=24.0)
        path = save_pose_log(traj, tmp_path / "log.json")
        loaded = load_pose_log(path)
        assert loaded.fps == traj.fps
        assert loaded.name == traj.name
        assert len(loaded) == len(traj)
        for pa, pb in zip(traj.poses, loaded.poses):
            np.testing.assert_array_equal(pa, pb)

    def test_make_trajectory_replay_from_log(self, tmp_path):
        traj = orbit_trajectory(8)
        path = save_pose_log(traj, tmp_path / "log.json")
        replayed = make_trajectory("replay", 5, pose_log=str(path))
        assert len(replayed) == 5
        np.testing.assert_array_equal(replayed[4], traj[4])

    def test_replay_requires_enough_poses(self, tmp_path):
        path = save_pose_log(orbit_trajectory(3), tmp_path / "log.json")
        with pytest.raises(ValueError):
            make_trajectory("replay", 4, pose_log=str(path))

    def test_replay_requires_pose_log(self):
        with pytest.raises(ValueError):
            make_trajectory("replay", 4)

    def test_rejects_bad_pose_shape(self):
        with pytest.raises(ValueError):
            replay_trajectory([np.eye(3)])


class TestMakeTrajectory:
    def test_dispatch_and_determinism(self):
        a = make_trajectory("random_walk", 6, seed=11)
        b = make_trajectory("random_walk", 6, seed=11)
        for pa, pb in zip(a.poses, b.poses):
            np.testing.assert_array_equal(pa, pb)

    def test_params_forwarded(self):
        traj = make_trajectory("orbit", 4, degrees_per_frame=3.0)
        angle = rotation_angle_deg(pose_rotation(traj[0]),
                                   pose_rotation(traj[1]))
        assert angle == pytest.approx(3.0, abs=0.4)

    def test_unknown_kind(self):
        with pytest.raises(KeyError, match="unknown trajectory"):
            make_trajectory("spiral", 5)

    def test_unknown_param_raises_for_every_kind(self, tmp_path):
        path = save_pose_log(orbit_trajectory(4), tmp_path / "log.json")
        for kind in TRAJECTORY_KINDS:
            params = {"pose_log": str(path)} if kind == "replay" else {}
            with pytest.raises(TypeError):
                make_trajectory(kind, 3, not_a_param=1.0, **params)


class TestResample:
    def test_stride(self):
        traj = orbit_trajectory(30, fps=30.0)
        low = resample_fps(traj, 10.0)
        assert len(low) == 10
        assert low.fps == pytest.approx(10.0)
        np.testing.assert_allclose(low[1], traj[3])

    def test_1fps_from_30fps(self):
        traj = orbit_trajectory(60, fps=30.0)
        low = resample_fps(traj, 1.0)
        assert len(low) == 2
        # Pose deltas grow ~30x.
        dense_step = translation_distance(traj[0], traj[1])
        sparse_step = translation_distance(low[0], low[1])
        assert sparse_step > 20 * dense_step

    def test_upsampling_rejected(self):
        traj = orbit_trajectory(10, fps=10.0)
        with pytest.raises(ValueError):
            resample_fps(traj, 30.0)
