"""Tests for the procedural scene library."""

import numpy as np
import pytest

from repro.scenes import REAL_WORLD_SCENES, SYNTHETIC_SCENES, get_scene


class TestLibrary:
    def test_eight_synthetic_scenes(self):
        assert len(SYNTHETIC_SCENES) == 8

    def test_two_real_world_scenes(self):
        assert set(REAL_WORLD_SCENES) == {"bonsai", "ignatius"}

    def test_unknown_scene_raises(self):
        with pytest.raises(KeyError):
            get_scene("nonexistent")

    @pytest.mark.parametrize("name", sorted(SYNTHETIC_SCENES))
    def test_synthetic_scene_is_well_formed(self, name):
        scene = get_scene(name)
        assert scene.name == name
        assert len(scene.objects) >= 1
        lo, hi = scene.bounds
        assert (hi > lo).all()

    @pytest.mark.parametrize("name", sorted(SYNTHETIC_SCENES))
    def test_geometry_inside_bounds(self, name):
        """Every scene must have solid content strictly inside its AABB."""
        scene = get_scene(name)
        rng = np.random.default_rng(0)
        lo, hi = scene.bounds
        pts = rng.uniform(lo, hi, size=(4000, 3))
        d = scene.distance(pts)
        assert (d < 0).any(), "scene has no interior volume"

    @pytest.mark.parametrize("name", sorted(REAL_WORLD_SCENES))
    def test_real_world_scenes_have_specular(self, name):
        scene = get_scene(name)
        assert any(obj.material.specular > 0.0 for obj in scene.objects)

    def test_scenes_are_deterministic(self):
        a = get_scene("ficus")
        b = get_scene("ficus")
        pts = np.random.default_rng(1).uniform(-1.5, 1.5, size=(100, 3))
        np.testing.assert_allclose(a.distance(pts), b.distance(pts))
        np.testing.assert_allclose(a.albedo(pts), b.albedo(pts))

    def test_materials_scene_spans_specular_range(self):
        scene = get_scene("materials")
        speculars = sorted(obj.material.specular for obj in scene.objects)
        assert speculars[0] == 0.0
        assert speculars[-1] >= 0.5
