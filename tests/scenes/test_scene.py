"""Tests for scene composition, materials, and shading."""

import numpy as np
import pytest

from repro.scenes.scene import (
    DirectionalLight,
    Material,
    Scene,
    SceneObject,
    checker_albedo,
    noise_albedo,
    solid_albedo,
    stripe_albedo,
)
from repro.scenes.sdf import Sphere


@pytest.fixture
def two_sphere_scene():
    return Scene(objects=[
        SceneObject(Sphere(center=[-1.0, 0.0, 0.0], radius=0.5),
                    Material(albedo=solid_albedo([1.0, 0.0, 0.0])), name="red"),
        SceneObject(Sphere(center=[1.0, 0.0, 0.0], radius=0.5),
                    Material(albedo=solid_albedo([0.0, 0.0, 1.0]),
                             specular=0.5), name="blue"),
    ])


class TestAlbedos:
    def test_solid(self):
        fn = solid_albedo([0.2, 0.4, 0.6])
        out = fn(np.zeros((5, 3)))
        np.testing.assert_allclose(out, np.broadcast_to([0.2, 0.4, 0.6], (5, 3)))

    def test_checker_alternates(self):
        fn = checker_albedo([1, 1, 1], [0, 0, 0], scale=1.0)
        a = fn(np.array([[0.5, 0.5, 0.5]]))
        b = fn(np.array([[1.5, 0.5, 0.5]]))
        assert not np.allclose(a, b)

    def test_stripe_alternates_along_axis(self):
        fn = stripe_albedo([1, 0, 0], [0, 1, 0], axis=0, scale=0.5)
        a = fn(np.array([[0.25, 0.0, 0.0]]))
        b = fn(np.array([[0.75, 0.0, 0.0]]))
        assert not np.allclose(a, b)

    def test_noise_deterministic_in_seed(self):
        pts = np.random.default_rng(0).normal(size=(10, 3))
        a = noise_albedo([0.5, 0.5, 0.5], seed=3)(pts)
        b = noise_albedo([0.5, 0.5, 0.5], seed=3)(pts)
        np.testing.assert_allclose(a, b)

    def test_noise_in_gamut(self):
        pts = np.random.default_rng(1).uniform(-3, 3, size=(200, 3))
        out = noise_albedo([0.5, 0.5, 0.5], amplitude=0.4)(pts)
        assert (out >= 0.0).all() and (out <= 1.0).all()


class TestSceneGeometry:
    def test_distance_is_min_over_objects(self, two_sphere_scene):
        d = two_sphere_scene.distance(np.array([[-1.0, 0.0, 0.0],
                                                [1.0, 0.0, 0.0]]))
        np.testing.assert_allclose(d, [-0.5, -0.5])

    def test_object_index(self, two_sphere_scene):
        idx = two_sphere_scene.object_index(np.array([[-1.0, 0.0, 0.0],
                                                      [1.0, 0.0, 0.0]]))
        np.testing.assert_array_equal(idx, [0, 1])

    def test_normals_point_outward(self, two_sphere_scene):
        p = np.array([[-1.0, 0.51, 0.0]])
        n = two_sphere_scene.normals(p)
        assert n[0, 1] > 0.9

    def test_density_profile(self, two_sphere_scene):
        inside = two_sphere_scene.density(np.array([[-1.0, 0.0, 0.0]]),
                                          sharpness=40.0, max_density=100.0)
        outside = two_sphere_scene.density(np.array([[0.0, 3.0, 0.0]]),
                                           sharpness=40.0, max_density=100.0)
        assert inside[0] > 99.0
        assert outside[0] < 1e-6


class TestShading:
    def test_albedo_picks_nearest_object(self, two_sphere_scene):
        colors = two_sphere_scene.albedo(np.array([[-1.0, 0.0, 0.0],
                                                   [1.0, 0.0, 0.0]]))
        np.testing.assert_allclose(colors[0], [1.0, 0.0, 0.0])
        np.testing.assert_allclose(colors[1], [0.0, 0.0, 1.0])

    def test_diffuse_is_view_independent(self, two_sphere_scene):
        p = np.array([[-1.0, 0.5, 0.0]])
        a = two_sphere_scene.diffuse_radiance(p)
        b = two_sphere_scene.diffuse_radiance(p)
        np.testing.assert_allclose(a, b)

    def test_specular_depends_on_view(self, two_sphere_scene):
        p = np.array([[1.0, 0.5, 0.0]])  # on the specular blue sphere
        n = two_sphere_scene.normals(p)
        view_a = np.array([[0.0, -1.0, 0.0]])
        view_b = np.array([[0.7, -0.7, 0.0]])
        shade_a = two_sphere_scene.shade(p, n, view_a)
        shade_b = two_sphere_scene.shade(p, n, view_b)
        assert not np.allclose(shade_a, shade_b)

    def test_diffuse_surface_is_view_independent_in_shade(self, two_sphere_scene):
        p = np.array([[-1.0, 0.5, 0.0]])  # diffuse red sphere
        n = two_sphere_scene.normals(p)
        shade_a = two_sphere_scene.shade(p, n, np.array([[0.0, -1.0, 0.0]]))
        shade_b = two_sphere_scene.shade(p, n, np.array([[0.7, -0.7, 0.0]]))
        np.testing.assert_allclose(shade_a, shade_b, atol=1e-12)

    def test_shade_clipped_to_gamut(self, two_sphere_scene):
        rng = np.random.default_rng(2)
        p = rng.uniform(-1.5, 1.5, size=(100, 3))
        n = two_sphere_scene.normals(p)
        v = n * -1.0
        out = two_sphere_scene.shade(p, n, v)
        assert (out >= 0.0).all() and (out <= 1.0).all()

    def test_light_direction_normalized(self):
        light = DirectionalLight(direction=[0.0, -2.0, 0.0])
        np.testing.assert_allclose(light.direction, [0.0, -1.0, 0.0])

    def test_background_gradient(self, two_sphere_scene):
        up = two_sphere_scene.background(np.array([[0.0, -1.0, 0.0]]))
        down = two_sphere_scene.background(np.array([[0.0, 1.0, 0.0]]))
        assert not np.allclose(up, down)
