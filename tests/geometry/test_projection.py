"""Tests for z-buffer splatting (SPARW step 3)."""

import numpy as np
import pytest

from repro.geometry import Intrinsics, splat_points


@pytest.fixture
def intrinsics():
    return Intrinsics.from_fov(16, 16, 60.0)


def _point_at_pixel(intrinsics, u, v, depth):
    x = (u - intrinsics.cx) / intrinsics.fx * depth
    y = (v - intrinsics.cy) / intrinsics.fy * depth
    return [x, y, depth]


class TestSplatBasics:
    def test_single_point_lands_on_pixel(self, intrinsics):
        point = _point_at_pixel(intrinsics, 5.5, 7.5, 2.0)
        result = splat_points(np.array([point]), np.array([[1.0, 0.0, 0.0]]),
                              intrinsics)
        assert result.covered[7, 5]
        np.testing.assert_allclose(result.image[7, 5], [1.0, 0.0, 0.0])
        assert result.depth[7, 5] == pytest.approx(2.0)
        assert result.source_index[7, 5] == 0

    def test_uncovered_pixels_have_inf_depth(self, intrinsics):
        result = splat_points(np.zeros((0, 3)), np.zeros((0, 3)), intrinsics)
        assert not result.covered.any()
        assert np.isinf(result.depth).all()
        assert (result.source_index == -1).all()

    def test_point_behind_camera_ignored(self, intrinsics):
        result = splat_points(np.array([[0.0, 0.0, -1.0]]),
                              np.array([[1.0, 1.0, 1.0]]), intrinsics)
        assert not result.covered.any()

    def test_point_outside_frustum_ignored(self, intrinsics):
        point = _point_at_pixel(intrinsics, 100.0, 7.5, 2.0)
        result = splat_points(np.array([point]), np.ones((1, 3)), intrinsics)
        assert not result.covered.any()

    def test_valid_mask_filters(self, intrinsics):
        points = np.array([_point_at_pixel(intrinsics, 5.5, 5.5, 2.0),
                           _point_at_pixel(intrinsics, 9.5, 9.5, 2.0)])
        valid = np.array([True, False])
        result = splat_points(points, np.ones((2, 3)), intrinsics, valid=valid)
        assert result.covered[5, 5]
        assert not result.covered[9, 9]


class TestZBuffer:
    def test_nearest_point_wins(self, intrinsics):
        near = _point_at_pixel(intrinsics, 8.5, 8.5, 1.0)
        far = _point_at_pixel(intrinsics, 8.5, 8.5, 5.0)
        colors = np.array([[0.0, 1.0, 0.0], [1.0, 0.0, 0.0]])
        result = splat_points(np.array([far, near]), colors[::-1], intrinsics)
        # The near (green) point must survive regardless of input order.
        np.testing.assert_allclose(result.image[8, 8], [0.0, 1.0, 0.0])
        assert result.depth[8, 8] == pytest.approx(1.0)

    def test_order_independence(self, intrinsics):
        rng = np.random.default_rng(3)
        points = np.stack([
            rng.uniform(-0.5, 0.5, size=50),
            rng.uniform(-0.5, 0.5, size=50),
            rng.uniform(1.0, 5.0, size=50),
        ], axis=1)
        colors = rng.uniform(size=(50, 3))
        a = splat_points(points, colors, intrinsics)
        perm = rng.permutation(50)
        b = splat_points(points[perm], colors[perm], intrinsics)
        np.testing.assert_allclose(a.depth, b.depth)
        np.testing.assert_allclose(a.image, b.image)

    def test_coverage_fraction(self, intrinsics):
        points = np.array([_point_at_pixel(intrinsics, 1.5, 1.5, 2.0),
                           _point_at_pixel(intrinsics, 2.5, 2.5, 2.0)])
        result = splat_points(points, np.ones((2, 3)), intrinsics)
        assert result.coverage == pytest.approx(2.0 / 256.0)

    def test_source_index_points_to_winner(self, intrinsics):
        near = _point_at_pixel(intrinsics, 4.5, 4.5, 1.5)
        far = _point_at_pixel(intrinsics, 4.5, 4.5, 4.0)
        result = splat_points(np.array([far, near]), np.ones((2, 3)),
                              intrinsics)
        assert result.source_index[4, 4] == 1
