"""Tests for depth-map <-> point-cloud conversion (SPARW step 1)."""

import numpy as np
import pytest

from repro.geometry import (
    Intrinsics,
    PinholeCamera,
    depth_to_points,
    frame_to_pointcloud,
    look_at,
    transform_points,
)


@pytest.fixture
def intrinsics():
    return Intrinsics.from_fov(16, 12, 60.0)


class TestDepthToPoints:
    def test_shape(self, intrinsics):
        depth = np.full((12, 16), 2.0)
        points = depth_to_points(depth, intrinsics)
        assert points.shape == (12 * 16, 3)

    def test_z_equals_depth(self, intrinsics):
        depth = np.full((12, 16), 3.5)
        points = depth_to_points(depth, intrinsics)
        np.testing.assert_allclose(points[:, 2], 3.5)

    def test_principal_point_maps_to_axis(self, intrinsics):
        """The pixel at the principal point lifts onto the optical axis."""
        depth = np.full((12, 16), 2.0)
        points = depth_to_points(depth, intrinsics).reshape(12, 16, 3)
        # cx=8, cy=6 -> pixel centres at 7.5/8.5 straddle it; interpolate.
        near_axis = 0.5 * (points[5, 7] + points[6, 8])
        assert abs(near_axis[0]) < 0.2
        assert abs(near_axis[1]) < 0.2

    def test_roundtrip_through_projection(self, intrinsics):
        """Lift then reproject must return each pixel's own coordinates."""
        camera = PinholeCamera(intrinsics)  # identity pose: camera == world
        rng = np.random.default_rng(0)
        depth = rng.uniform(1.0, 5.0, size=(12, 16))
        points = depth_to_points(depth, intrinsics)
        uv, z = camera.project_points(points)
        u, v = np.meshgrid(np.arange(16) + 0.5, np.arange(12) + 0.5)
        np.testing.assert_allclose(uv[:, 0], u.reshape(-1), atol=1e-9)
        np.testing.assert_allclose(uv[:, 1], v.reshape(-1), atol=1e-9)
        np.testing.assert_allclose(z, depth.reshape(-1), atol=1e-12)

    def test_infinite_depth_gives_nonfinite_points(self, intrinsics):
        depth = np.full((12, 16), np.inf)
        points = depth_to_points(depth, intrinsics)
        assert not np.isfinite(points[:, 2]).any()


class TestTransformPoints:
    def test_identity(self):
        points = np.random.default_rng(1).normal(size=(10, 3))
        np.testing.assert_allclose(transform_points(points, np.eye(4)), points)

    def test_translation(self):
        points = np.zeros((3, 3))
        t = np.eye(4)
        t[:3, 3] = [1.0, 2.0, 3.0]
        np.testing.assert_allclose(transform_points(points, t),
                                   np.broadcast_to([1.0, 2.0, 3.0], (3, 3)))

    def test_composition_matches_sequential(self):
        rng = np.random.default_rng(2)
        points = rng.normal(size=(5, 3))
        a = look_at([1.0, 0.5, 0.0], [0.0, 0.0, 1.0])
        b = look_at([-1.0, 0.2, 0.3], [0.0, 1.0, 0.0])
        both = transform_points(transform_points(points, a), b)
        np.testing.assert_allclose(transform_points(points, b @ a), both,
                                   atol=1e-9)


class TestFrameToPointcloud:
    def test_valid_mask_excludes_infinite_depth(self, intrinsics):
        image = np.zeros((12, 16, 3))
        depth = np.full((12, 16), 2.0)
        depth[0, :] = np.inf
        cloud = frame_to_pointcloud(image, depth, intrinsics)
        assert cloud.valid.sum() == (12 - 1) * 16

    def test_colors_flattened_row_major(self, intrinsics):
        image = np.arange(12 * 16 * 3, dtype=float).reshape(12, 16, 3)
        depth = np.full((12, 16), 1.0)
        cloud = frame_to_pointcloud(image, depth, intrinsics)
        np.testing.assert_allclose(cloud.colors, image.reshape(-1, 3))

    def test_resolution_mismatch_rejected(self, intrinsics):
        with pytest.raises(ValueError):
            frame_to_pointcloud(np.zeros((5, 5, 3)), np.zeros((12, 16)),
                                intrinsics)

    def test_transformed_applies_rigidly(self, intrinsics):
        image = np.zeros((12, 16, 3))
        depth = np.full((12, 16), 2.0)
        cloud = frame_to_pointcloud(image, depth, intrinsics)
        t = np.eye(4)
        t[:3, 3] = [0.0, 0.0, 1.0]
        moved = cloud.transformed(t)
        np.testing.assert_allclose(moved.points[:, 2], 3.0)
        np.testing.assert_array_equal(moved.valid, cloud.valid)
