"""Tests for ray bundles and AABB intersection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Intrinsics, PinholeCamera, RayBundle, intersect_aabb, look_at

BOX_MIN = np.array([-1.0, -1.0, -1.0])
BOX_MAX = np.array([1.0, 1.0, 1.0])


class TestIntersectAABB:
    def test_ray_through_center_hits(self):
        t_near, t_far, hit = intersect_aabb(
            np.array([[0.0, 0.0, -5.0]]), np.array([[0.0, 0.0, 1.0]]),
            BOX_MIN, BOX_MAX)
        assert hit[0]
        assert t_near[0] == pytest.approx(4.0)
        assert t_far[0] == pytest.approx(6.0)

    def test_ray_missing_box(self):
        _, _, hit = intersect_aabb(
            np.array([[0.0, 5.0, -5.0]]), np.array([[0.0, 0.0, 1.0]]),
            BOX_MIN, BOX_MAX)
        assert not hit[0]

    def test_ray_starting_inside(self):
        t_near, t_far, hit = intersect_aabb(
            np.array([[0.0, 0.0, 0.0]]), np.array([[1.0, 0.0, 0.0]]),
            BOX_MIN, BOX_MAX, near=0.0)
        assert hit[0]
        assert t_near[0] == pytest.approx(0.0)
        assert t_far[0] == pytest.approx(1.0)

    def test_axis_aligned_ray_with_zero_components(self):
        """Zero direction components must not poison the slab test."""
        t_near, t_far, hit = intersect_aabb(
            np.array([[0.5, 0.5, -3.0]]), np.array([[0.0, 0.0, 1.0]]),
            BOX_MIN, BOX_MAX)
        assert hit[0]
        assert t_near[0] == pytest.approx(2.0)

    def test_zero_component_outside_slab_misses(self):
        _, _, hit = intersect_aabb(
            np.array([[5.0, 0.0, -3.0]]), np.array([[0.0, 0.0, 1.0]]),
            BOX_MIN, BOX_MAX)
        assert not hit[0]

    def test_far_clip(self):
        _, _, hit = intersect_aabb(
            np.array([[0.0, 0.0, -5.0]]), np.array([[0.0, 0.0, 1.0]]),
            BOX_MIN, BOX_MAX, far=3.0)
        assert not hit[0]

    def test_ray_pointing_away(self):
        _, _, hit = intersect_aabb(
            np.array([[0.0, 0.0, -5.0]]), np.array([[0.0, 0.0, -1.0]]),
            BOX_MIN, BOX_MAX, near=0.0)
        assert not hit[0]

    @settings(max_examples=40, deadline=None)
    @given(
        ox=st.floats(-4, 4), oy=st.floats(-4, 4), oz=st.floats(-4, 4),
        dx=st.floats(-1, 1), dy=st.floats(-1, 1), dz=st.floats(-1, 1),
    )
    def test_entry_point_is_inside_box(self, ox, oy, oz, dx, dy, dz):
        direction = np.array([dx, dy, dz])
        norm = np.linalg.norm(direction)
        if norm < 1e-3:
            return
        direction = direction / norm
        origin = np.array([ox, oy, oz])
        t_near, t_far, hit = intersect_aabb(origin[None], direction[None],
                                            BOX_MIN, BOX_MAX, near=0.0)
        if hit[0]:
            mid = origin + 0.5 * (t_near[0] + t_far[0]) * direction
            assert (mid >= BOX_MIN - 1e-6).all()
            assert (mid <= BOX_MAX + 1e-6).all()


class TestRayBundle:
    @pytest.fixture
    def camera(self):
        return PinholeCamera(Intrinsics.from_fov(8, 8, 45.0),
                             look_at([0, 0, -3], [0, 0, 0]))

    def test_from_camera_counts(self, camera):
        bundle = RayBundle.from_camera(camera)
        assert len(bundle) == 64
        assert bundle.pixel_ids is not None
        np.testing.assert_array_equal(bundle.pixel_ids, np.arange(64))

    def test_from_camera_pixels_matches_full(self, camera):
        full = RayBundle.from_camera(camera)
        subset_ids = np.array([0, 13, 37, 63])
        subset = RayBundle.from_camera_pixels(camera, subset_ids)
        np.testing.assert_allclose(subset.directions,
                                   full.directions[subset_ids], atol=1e-12)

    def test_select_by_mask(self, camera):
        bundle = RayBundle.from_camera(camera)
        mask = np.zeros(64, dtype=bool)
        mask[[1, 5]] = True
        sub = bundle.select(mask)
        assert len(sub) == 2
        np.testing.assert_array_equal(sub.pixel_ids, [1, 5])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            RayBundle(origins=np.zeros((4, 3)), directions=np.zeros((5, 3)))

    def test_pixel_id_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            RayBundle(origins=np.zeros((4, 3)), directions=np.zeros((4, 3)),
                      pixel_ids=np.arange(3))
