"""Tests for SE(3) transforms and pose utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import (
    extrapolate_pose,
    interpolate_pose,
    invert_pose,
    is_rotation_matrix,
    look_at,
    make_pose,
    pose_rotation,
    pose_translation,
    relative_pose,
    rotation_angle_deg,
    rotation_from_axis_angle,
    rotation_x,
    rotation_y,
    rotation_z,
    translation_distance,
)

angles = st.floats(min_value=-np.pi, max_value=np.pi,
                   allow_nan=False, allow_infinity=False)
coords = st.floats(min_value=-10.0, max_value=10.0,
                   allow_nan=False, allow_infinity=False)


class TestBasicRotations:
    @pytest.mark.parametrize("factory", [rotation_x, rotation_y, rotation_z])
    def test_zero_angle_is_identity(self, factory):
        np.testing.assert_allclose(factory(0.0), np.eye(3), atol=1e-12)

    @pytest.mark.parametrize("factory", [rotation_x, rotation_y, rotation_z])
    def test_is_valid_rotation(self, factory):
        assert is_rotation_matrix(factory(0.7))

    def test_rotation_x_maps_y_to_z(self):
        rot = rotation_x(np.pi / 2)
        np.testing.assert_allclose(rot @ [0, 1, 0], [0, 0, 1], atol=1e-12)

    def test_rotation_y_maps_z_to_x(self):
        rot = rotation_y(np.pi / 2)
        np.testing.assert_allclose(rot @ [0, 0, 1], [1, 0, 0], atol=1e-12)

    def test_rotation_z_maps_x_to_y(self):
        rot = rotation_z(np.pi / 2)
        np.testing.assert_allclose(rot @ [1, 0, 0], [0, 1, 0], atol=1e-12)


class TestAxisAngle:
    def test_matches_principal_axes(self):
        np.testing.assert_allclose(
            rotation_from_axis_angle([1, 0, 0], 0.3), rotation_x(0.3),
            atol=1e-12)
        np.testing.assert_allclose(
            rotation_from_axis_angle([0, 1, 0], -0.4), rotation_y(-0.4),
            atol=1e-12)

    def test_zero_axis_raises(self):
        with pytest.raises(ValueError):
            rotation_from_axis_angle([0.0, 0.0, 0.0], 1.0)

    def test_axis_is_invariant(self):
        axis = np.array([1.0, 2.0, -0.5])
        rot = rotation_from_axis_angle(axis, 1.1)
        np.testing.assert_allclose(rot @ axis, axis, atol=1e-9)

    @settings(max_examples=30, deadline=None)
    @given(angle=angles)
    def test_always_valid_rotation(self, angle):
        rot = rotation_from_axis_angle([0.3, -0.7, 0.64], angle)
        assert is_rotation_matrix(rot, tol=1e-8)


class TestPoseAlgebra:
    def test_invert_roundtrip(self):
        pose = make_pose(rotation_y(0.8) @ rotation_x(-0.2), [1.0, 2.0, 3.0])
        np.testing.assert_allclose(pose @ invert_pose(pose), np.eye(4),
                                   atol=1e-12)

    def test_relative_pose_identity_when_same(self):
        pose = make_pose(rotation_z(0.5), [0.5, -1.0, 2.0])
        np.testing.assert_allclose(relative_pose(pose, pose), np.eye(4),
                                   atol=1e-12)

    def test_relative_pose_maps_src_point_to_dst_frame(self):
        src = look_at([3.0, 0.0, 0.0], [0.0, 0.0, 0.0])
        dst = look_at([0.0, 0.0, 3.0], [0.0, 0.0, 0.0])
        rel = relative_pose(src, dst)
        point_src = np.array([0.0, 0.0, 3.0, 1.0])  # scene origin in src frame
        point_dst = rel @ point_src
        np.testing.assert_allclose(point_dst[:3], [0.0, 0.0, 3.0], atol=1e-9)

    @settings(max_examples=25, deadline=None)
    @given(x=coords, y=coords, z=coords, angle=angles)
    def test_inverse_is_exact(self, x, y, z, angle):
        pose = make_pose(rotation_from_axis_angle([1.0, 1.0, 0.2], angle),
                         [x, y, z])
        np.testing.assert_allclose(invert_pose(invert_pose(pose)), pose,
                                   atol=1e-9)


class TestLookAt:
    def test_camera_faces_target(self):
        pose = look_at([0.0, 0.0, -5.0], [0.0, 0.0, 0.0])
        forward = pose[:3, 2]
        np.testing.assert_allclose(forward, [0.0, 0.0, 1.0], atol=1e-12)

    def test_position_stored_in_translation(self):
        eye = np.array([1.0, 2.0, 3.0])
        pose = look_at(eye, [0.0, 0.0, 0.0])
        np.testing.assert_allclose(pose_translation(pose), eye)

    def test_rotation_block_is_valid(self):
        pose = look_at([2.0, 1.0, -1.0], [0.0, 0.5, 0.0])
        assert is_rotation_matrix(pose_rotation(pose), tol=1e-9)

    def test_degenerate_up_recovers(self):
        pose = look_at([0.0, 5.0, 0.0], [0.0, 0.0, 0.0])  # looking along -y
        assert is_rotation_matrix(pose_rotation(pose), tol=1e-9)

    def test_coincident_eye_target_raises(self):
        with pytest.raises(ValueError):
            look_at([1.0, 1.0, 1.0], [1.0, 1.0, 1.0])


class TestMetrics:
    def test_rotation_angle_of_identity(self):
        assert rotation_angle_deg(np.eye(3), np.eye(3)) == pytest.approx(0.0)

    def test_rotation_angle_known(self):
        assert rotation_angle_deg(np.eye(3), rotation_y(np.radians(30))) == (
            pytest.approx(30.0, abs=1e-9))

    def test_translation_distance(self):
        a = make_pose(np.eye(3), [0.0, 0.0, 0.0])
        b = make_pose(np.eye(3), [3.0, 4.0, 0.0])
        assert translation_distance(a, b) == pytest.approx(5.0)


class TestExtrapolation:
    def test_linear_translation(self):
        prev = make_pose(np.eye(3), [0.0, 0.0, 0.0])
        curr = make_pose(np.eye(3), [1.0, 0.0, 0.0])
        out = extrapolate_pose(prev, curr, steps=2.0)
        np.testing.assert_allclose(pose_translation(out), [3.0, 0.0, 0.0])

    def test_rotation_continues(self):
        prev = make_pose(rotation_y(0.0), [0.0, 0.0, 0.0])
        curr = make_pose(rotation_y(0.1), [0.0, 0.0, 0.0])
        out = extrapolate_pose(prev, curr, steps=3.0)
        assert rotation_angle_deg(pose_rotation(curr), pose_rotation(out)) == (
            pytest.approx(np.degrees(0.3), abs=1e-6))

    def test_stationary_camera_stays(self):
        pose = look_at([3.0, 1.0, 0.0], [0.0, 0.0, 0.0])
        out = extrapolate_pose(pose, pose, steps=5.0)
        np.testing.assert_allclose(out, pose, atol=1e-9)

    def test_result_is_valid_pose(self):
        prev = look_at([3.0, 1.0, 0.0], [0.0, 0.0, 0.0])
        curr = look_at([2.9, 1.05, 0.3], [0.0, 0.0, 0.0])
        out = extrapolate_pose(prev, curr, steps=8.0)
        assert is_rotation_matrix(pose_rotation(out), tol=1e-7)

    def test_fractional_steps(self):
        prev = make_pose(np.eye(3), [0.0, 0.0, 0.0])
        curr = make_pose(np.eye(3), [2.0, 0.0, 0.0])
        out = extrapolate_pose(prev, curr, steps=0.5)
        np.testing.assert_allclose(pose_translation(out), [3.0, 0.0, 0.0])


class TestInterpolation:
    def test_endpoints(self):
        a = look_at([3.0, 0.0, 0.0], [0.0, 0.0, 0.0])
        b = look_at([0.0, 0.0, 3.0], [0.0, 0.0, 0.0])
        np.testing.assert_allclose(interpolate_pose(a, b, 0.0), a, atol=1e-9)
        np.testing.assert_allclose(interpolate_pose(a, b, 1.0), b, atol=1e-9)

    def test_midpoint_translation(self):
        a = make_pose(np.eye(3), [0.0, 0.0, 0.0])
        b = make_pose(np.eye(3), [2.0, 4.0, 6.0])
        mid = interpolate_pose(a, b, 0.5)
        np.testing.assert_allclose(pose_translation(mid), [1.0, 2.0, 3.0])

    def test_rotation_geodesic(self):
        a = make_pose(np.eye(3), [0.0, 0.0, 0.0])
        b = make_pose(rotation_y(1.0), [0.0, 0.0, 0.0])
        mid = interpolate_pose(a, b, 0.5)
        np.testing.assert_allclose(pose_rotation(mid), rotation_y(0.5),
                                   atol=1e-9)
