"""Tests for the pinhole camera model."""

import numpy as np
import pytest

from repro.geometry import Intrinsics, PinholeCamera, look_at


@pytest.fixture
def camera():
    return PinholeCamera(Intrinsics.from_fov(64, 48, 60.0),
                         look_at([0.0, 0.0, -4.0], [0.0, 0.0, 0.0]))


class TestIntrinsics:
    def test_from_fov_focal_length(self):
        intr = Intrinsics.from_fov(100, 100, 90.0)
        assert intr.fx == pytest.approx(50.0)
        assert intr.cx == pytest.approx(50.0)

    def test_matrix_layout(self):
        intr = Intrinsics(width=10, height=8, fx=5.0, fy=6.0, cx=5.0, cy=4.0)
        k = intr.matrix()
        assert k[0, 0] == 5.0 and k[1, 1] == 6.0
        assert k[0, 2] == 5.0 and k[1, 2] == 4.0
        assert k[2, 2] == 1.0

    def test_scaled_halves_everything(self):
        intr = Intrinsics.from_fov(64, 64, 45.0)
        half = intr.scaled(0.5)
        assert half.width == 32 and half.height == 32
        assert half.fx == pytest.approx(intr.fx / 2)
        assert half.cx == pytest.approx(intr.cx / 2)

    def test_num_pixels(self):
        assert Intrinsics.from_fov(10, 20, 45.0).num_pixels == 200


class TestRays:
    def test_center_pixel_ray_points_forward(self, camera):
        intr = camera.intrinsics
        _, dirs = camera.rays_for_pixels(np.array([intr.cx]),
                                         np.array([intr.cy]))
        forward = camera.c2w[:3, 2]
        np.testing.assert_allclose(dirs[0], forward, atol=1e-9)

    def test_directions_are_unit(self, camera):
        _, dirs = camera.generate_rays()
        norms = np.linalg.norm(dirs, axis=-1)
        np.testing.assert_allclose(norms, 1.0, atol=1e-12)

    def test_origins_are_camera_position(self, camera):
        origins, _ = camera.generate_rays()
        np.testing.assert_allclose(origins,
                                   np.broadcast_to(camera.position,
                                                   origins.shape))

    def test_generate_rays_shape(self, camera):
        origins, dirs = camera.generate_rays()
        assert origins.shape == (48, 64, 3)
        assert dirs.shape == (48, 64, 3)


class TestProjection:
    def test_project_unprojects_rays(self, camera):
        """Points along pixel rays must project back to their pixels."""
        u = np.array([3.5, 20.5, 60.5])
        v = np.array([2.5, 30.5, 40.5])
        origins, dirs = camera.rays_for_pixels(u, v)
        points = origins + 2.7 * dirs
        uv, depth = camera.project_points(points)
        np.testing.assert_allclose(uv[:, 0], u, atol=1e-6)
        np.testing.assert_allclose(uv[:, 1], v, atol=1e-6)
        assert (depth > 0).all()

    def test_point_behind_camera_negative_depth(self, camera):
        behind = camera.position - 3.0 * camera.c2w[:3, 2]
        _, depth = camera.project_points(behind[None])
        assert depth[0] < 0

    def test_visible_mask(self, camera):
        uv = np.array([[5.0, 5.0], [-1.0, 5.0], [5.0, 500.0], [5.0, 5.0]])
        depth = np.array([1.0, 1.0, 1.0, -1.0])
        mask = camera.visible_mask(uv, depth)
        np.testing.assert_array_equal(mask, [True, False, False, False])


class TestPoseHandling:
    def test_w2c_inverts_c2w(self, camera):
        np.testing.assert_allclose(camera.w2c @ camera.c2w, np.eye(4),
                                   atol=1e-12)

    def test_with_pose_keeps_intrinsics(self, camera):
        moved = camera.with_pose(np.eye(4))
        assert moved.intrinsics == camera.intrinsics
        np.testing.assert_allclose(moved.c2w, np.eye(4))

    def test_scaled_keeps_pose(self, camera):
        half = camera.scaled(0.5)
        np.testing.assert_allclose(half.c2w, camera.c2w)
        assert half.width == camera.width // 2

    def test_invalid_pose_shape_rejected(self):
        with pytest.raises(ValueError):
            PinholeCamera(Intrinsics.from_fov(8, 8, 45.0),
                          np.eye(3))
