"""Tests for the CLI experiment runner."""

import json

import pytest

from repro.harness.cli import build_parser, main


class TestParser:
    def test_figure_argument(self):
        args = build_parser().parse_args(["fig07"])
        assert args.figure == "fig07"
        assert not args.fast

    def test_fast_flag(self):
        args = build_parser().parse_args(["fig07", "--fast"])
        assert args.fast

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve", "--fast"])
        assert args.figure == "serve"
        assert args.sessions == 4
        assert args.scheduler == "round_robin"
        assert args.json_out is None


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig07" in out and "fig26" in out and "serve" in out

    def test_unknown_figure(self, capsys):
        assert main(["fig99"]) == 2
        err = capsys.readouterr().err
        assert "unknown figure" in err
        # The message tells the user what *is* available.
        assert "fig07" in err and "serve" in err

    def test_runs_cheap_figure_fast(self, capsys):
        assert main(["fig23", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "fig23" in out
        assert "vft_kb" in out

    def test_json_out_writes_artifact(self, capsys, tmp_path):
        assert main(["fig23", "--fast", "--json-out", str(tmp_path)]) == 0
        path = tmp_path / "BENCH_fig23.json"
        assert path.exists()
        payload = json.loads(path.read_text())
        assert payload["figure"] == "fig23"
        assert payload["wall_time_s"] >= 0.0
        assert payload["config_scale"]["image_size"] == 48
        assert any("vft_kb" in row for row in payload["rows"])


class TestServe:
    def test_serve_reports_aggregate_fps_and_p95(self, capsys, tmp_path):
        assert main(["serve", "--fast", "--sessions", "2",
                     "--frames", "3", "--json-out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "aggregate_fps" in out
        assert "p95_latency_ms" in out
        payload = json.loads((tmp_path / "BENCH_serve.json").read_text())
        assert payload["extra"]["sessions"] == 2
        assert payload["extra"]["total_frames"] == 6
        assert payload["extra"]["aggregate_fps"] > 0
        assert payload["extra"]["p95_latency_ms"] > 0
        assert len(payload["rows"]) == 2

    def test_serve_deadline_scheduler(self, capsys):
        assert main(["serve", "--fast", "--sessions", "2", "--frames", "2",
                     "--scheduler", "deadline"]) == 0
        assert "deadline" in capsys.readouterr().out

    def test_serve_rejects_bad_session_count(self, capsys):
        assert main(["serve", "--fast", "--sessions", "0"]) == 2
        assert "--sessions" in capsys.readouterr().err

    def test_serve_rejects_unknown_variant(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", "--fast", "--sessions", "1", "--frames", "2",
                  "--variant", "warpcore"])
        assert excinfo.value.code == 2
        assert "warpcore" in capsys.readouterr().err

    def test_serve_rejects_unknown_scene(self, capsys):
        assert main(["serve", "--fast", "--sessions", "1", "--frames", "2",
                     "--scene", "bogus"]) == 2
        err = capsys.readouterr().err
        assert "unknown scene" in err and "lego" in err

    def test_serve_rejects_bad_frame_count(self, capsys):
        assert main(["serve", "--fast", "--frames", "0"]) == 2
        assert "--frames" in capsys.readouterr().err

    def test_serve_rejects_unknown_algorithm(self, capsys):
        assert main(["serve", "--fast", "--sessions", "1",
                     "--algorithm", "gaussians"]) == 2
        err = capsys.readouterr().err
        assert "unknown algorithm" in err and "directvoxgo" in err
