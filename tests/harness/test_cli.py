"""Tests for the CLI experiment runner."""

import json

import pytest

from repro.harness.cli import build_parser, main


class TestParser:
    def test_figure_argument(self):
        args = build_parser().parse_args(["fig07"])
        assert args.figure == "fig07"
        assert not args.fast

    def test_fast_flag(self):
        args = build_parser().parse_args(["fig07", "--fast"])
        assert args.fast

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve", "--fast"])
        assert args.figure == "serve"
        # --sessions/--scheduler default late (to 4 / round_robin) so
        # explicit use can be detected and rejected when combined with
        # --workload or the cluster command.
        assert args.sessions is None
        assert args.scheduler is None
        assert args.json_out is None


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig07" in out and "fig26" in out and "serve" in out

    def test_unknown_figure(self, capsys):
        assert main(["fig99"]) == 2
        err = capsys.readouterr().err
        assert "unknown figure" in err
        # The message tells the user what *is* available.
        assert "fig07" in err and "serve" in err

    def test_runs_cheap_figure_fast(self, capsys):
        assert main(["fig23", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "fig23" in out
        assert "vft_kb" in out

    def test_json_out_writes_artifact(self, capsys, tmp_path):
        assert main(["fig23", "--fast", "--json-out", str(tmp_path)]) == 0
        path = tmp_path / "BENCH_fig23.json"
        assert path.exists()
        payload = json.loads(path.read_text())
        assert payload["figure"] == "fig23"
        assert payload["wall_time_s"] >= 0.0
        assert payload["config_scale"]["image_size"] == 48
        assert any("vft_kb" in row for row in payload["rows"])


class TestServe:
    def test_serve_reports_aggregate_fps_and_p95(self, capsys, tmp_path):
        assert main(["serve", "--fast", "--sessions", "2",
                     "--frames", "3", "--json-out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "aggregate_fps" in out
        assert "p95_latency_ms" in out
        payload = json.loads((tmp_path / "BENCH_serve.json").read_text())
        assert payload["extra"]["sessions"] == 2
        assert payload["extra"]["total_frames"] == 6
        assert payload["extra"]["aggregate_fps"] > 0
        assert payload["extra"]["p95_latency_ms"] > 0
        assert len(payload["rows"]) == 2

    def test_serve_deadline_scheduler(self, capsys):
        assert main(["serve", "--fast", "--sessions", "2", "--frames", "2",
                     "--scheduler", "deadline"]) == 0
        assert "deadline" in capsys.readouterr().out

    def test_serve_rejects_bad_session_count(self, capsys):
        assert main(["serve", "--fast", "--sessions", "0"]) == 2
        assert "--sessions" in capsys.readouterr().err

    def test_serve_rejects_unknown_variant(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", "--fast", "--sessions", "1", "--frames", "2",
                  "--variant", "warpcore"])
        assert excinfo.value.code == 2
        assert "warpcore" in capsys.readouterr().err

    def test_serve_rejects_unknown_scene(self, capsys):
        assert main(["serve", "--fast", "--sessions", "1", "--frames", "2",
                     "--scene", "bogus"]) == 2
        err = capsys.readouterr().err
        assert "unknown scene" in err and "lego" in err

    def test_serve_rejects_bad_frame_count(self, capsys):
        assert main(["serve", "--fast", "--frames", "0"]) == 2
        assert "--frames" in capsys.readouterr().err

    def test_serve_rejects_unknown_algorithm(self, capsys):
        assert main(["serve", "--fast", "--sessions", "1",
                     "--algorithm", "gaussians"]) == 2
        err = capsys.readouterr().err
        assert "unknown algorithm" in err and "directvoxgo" in err


class TestWorkloads:
    def test_workloads_listing(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "vr-lego" in out and "dolly-chair" in out
        assert "trajectory" in out  # table header

    def test_list_includes_workloads_command(self, capsys):
        assert main(["list"]) == 0
        assert "workloads" in capsys.readouterr().out

    def test_serve_mixed_workloads_reports_cache_stats(self, capsys,
                                                       tmp_path):
        assert main(["serve", "--fast", "--frames", "2",
                     "--workload", "vr-lego:2",
                     "--workload", "vr-headshake",
                     "--json-out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "vr-lego-01" in out
        assert "ref_cache_hits" in out
        payload = json.loads((tmp_path / "BENCH_serve_mixed.json").read_text())
        assert payload["extra"]["sessions"] == 3
        # The duplicated vr-lego sessions share reference renders.
        assert payload["extra"]["ref_cache_hits"] > 0
        assert payload["extra"]["cache"]["references"]["hits"] > 0

    def test_serve_no_cache_flag(self, capsys):
        assert main(["serve", "--fast", "--frames", "2",
                     "--workload", "vr-lego:2", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "cache_enabled" in out

    def test_serve_rejects_unknown_workload(self, capsys):
        assert main(["serve", "--fast", "--workload", "bogus"]) == 2
        err = capsys.readouterr().err
        assert "unknown workload" in err and "vr-lego" in err

    def test_serve_repeated_workload_flags_merge(self, capsys):
        # The same name in two --workload flags is counted, not crashed on.
        assert main(["serve", "--fast", "--frames", "2",
                     "--workload", "vr-lego", "--workload", "vr-lego"]) == 0
        out = capsys.readouterr().out
        assert "vr-lego-00" in out and "vr-lego-01" in out

    def test_serve_rejects_bad_workload_count(self, capsys):
        assert main(["serve", "--fast", "--workload", "vr-lego:0"]) == 2
        assert "count" in capsys.readouterr().err

    def test_serve_rejects_workload_scene_combination(self, capsys):
        assert main(["serve", "--fast", "--workload", "vr-lego",
                     "--scene", "lego"]) == 2
        assert "--workload" in capsys.readouterr().err

    def test_serve_rejects_workload_variant_combination(self, capsys):
        # The spec fixes the SoC variant; an explicit --variant would be
        # silently ignored, so it is rejected instead.
        assert main(["serve", "--fast", "--workload", "vr-lego",
                     "--variant", "gpu"]) == 2
        assert "--variant" in capsys.readouterr().err

    def test_serve_rejects_workload_sessions_combination(self, capsys):
        # The mix counts decide the session count; an explicit --sessions
        # would be silently ignored, so it is rejected instead.
        assert main(["serve", "--fast", "--workload", "vr-lego",
                     "--sessions", "20"]) == 2
        assert "--sessions" in capsys.readouterr().err


class TestGovernorCli:
    def test_list_includes_frontier(self, capsys):
        assert main(["list"]) == 0
        assert "frontier" in capsys.readouterr().out

    def test_serve_governor_requires_workload_mix(self, capsys):
        assert main(["serve", "--fast", "--governor", "adaptive"]) == 2
        assert "--workload" in capsys.readouterr().err

    def test_serve_rejects_bad_slo(self, capsys):
        assert main(["serve", "--fast", "--workload", "vr-lego",
                     "--slo", "0"]) == 2
        assert "--slo" in capsys.readouterr().err

    def test_serve_rejects_bad_ray_budget(self, capsys):
        assert main(["serve", "--fast", "--ray-budget", "0"]) == 2
        assert "--ray-budget" in capsys.readouterr().err

    def test_cluster_rejects_ray_budget(self, capsys):
        assert main(["cluster", "--fast", "--ray-budget", "64"]) == 2
        assert "serve-only" in capsys.readouterr().err

    def test_cluster_rejects_rates(self, capsys):
        assert main(["cluster", "--fast", "--rates", "1,2,3"]) == 2
        assert "frontier-only" in capsys.readouterr().err

    def test_frontier_rejects_two_load_points(self, capsys):
        assert main(["frontier", "--fast", "--rates", "1,2"]) == 2
        assert ">= 3" in capsys.readouterr().err

    def test_frontier_rejects_malformed_rates(self, capsys):
        assert main(["frontier", "--fast", "--rates", "a,b,c"]) == 2
        assert "bad --rates" in capsys.readouterr().err

    def test_frontier_rejects_serve_options(self, capsys):
        assert main(["frontier", "--fast", "--sessions", "4"]) == 2
        assert "serve-only" in capsys.readouterr().err

    @pytest.mark.parametrize("argv", [
        ["serve", "--fast", "--host", "127.0.0.1"],
        ["serve", "--fast", "--port", "7070"],
        ["cluster", "--fast", "--time-scale", "0.5"],
        ["frontier", "--fast", "--rates", "1,2,3", "--time-scale", "2"],
    ], ids=["serve-host", "serve-port", "cluster-scale", "frontier-scale"])
    def test_virtual_commands_reject_realserve_flags(self, capsys, argv):
        assert main(argv) == 2
        assert "realserve-only" in capsys.readouterr().err

    def test_governed_serve_reports_tier_state(self, capsys, tmp_path):
        rc = main(["serve", "--fast", "--frames", "3",
                   "--workload", "vr-lego:2", "--governor", "static",
                   "--json-out", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "quality_level" in out
        payload = json.loads(
            (tmp_path / "BENCH_serve_mixed.json").read_text())
        assert payload["extra"]["governor"] == "static"
        assert all(row["quality_level"] == 2 for row in payload["rows"])

    def test_governed_cluster_reports_quality(self, capsys, tmp_path):
        rc = main(["cluster", "--fast", "--governor", "adaptive",
                   "--slo", "3000", "--rate", "30", "--duration", "0.5",
                   "--workers", "1", "--queue-limit", "2",
                   "--frames", "2", "--seed", "2",
                   "--json-out", str(tmp_path)])
        assert rc == 0
        payload = json.loads(
            (tmp_path / "BENCH_cluster.json").read_text())
        extra = payload["extra"]
        assert extra["governor"] == "adaptive"
        assert extra["quality_floor_ok"] is True
        assert extra["mean_psnr"] > 0.0

    def test_frontier_rejects_explicit_arrivals(self, capsys):
        assert main(["frontier", "--fast", "--arrivals", "diurnal"]) == 2
        assert "--arrivals" in capsys.readouterr().err

    def test_frontier_honours_placement(self):
        # The frontier delegates every cell to the experiment runner, so
        # the placement knob must survive the RunConfig hand-off.
        from repro.harness import frontier as frontier_mod
        from repro.harness import runner as runner_mod
        seen = []
        real = runner_mod.simulate_cluster

        def spy(*args, **kwargs):
            seen.append(kwargs["placement"])
            return real(*args, **kwargs)

        runner_mod.simulate_cluster = spy
        try:
            frontier_mod.run_frontier(
                __import__("repro.harness.configs",
                           fromlist=["FAST"]).FAST,
                mix="vr-lego:1", rates=(5.0, 6.0, 7.0),
                duration_s=0.2, frames=1, modes=("off",),
                placement="cache_affinity")
        finally:
            runner_mod.simulate_cluster = real
        assert seen and all(p == "cache_affinity" for p in seen)
