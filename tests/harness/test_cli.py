"""Tests for the CLI experiment runner."""

import pytest

from repro.harness.cli import build_parser, main


class TestParser:
    def test_figure_argument(self):
        args = build_parser().parse_args(["fig07"])
        assert args.figure == "fig07"
        assert not args.fast

    def test_fast_flag(self):
        args = build_parser().parse_args(["fig07", "--fast"])
        assert args.fast


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig07" in out and "fig26" in out

    def test_unknown_figure(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown figure" in capsys.readouterr().err

    def test_runs_cheap_figure_fast(self, capsys):
        assert main(["fig23", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "fig23" in out
        assert "vft_kb" in out
