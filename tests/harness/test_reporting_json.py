"""Tests for the machine-readable BENCH_*.json perf artifacts."""

import json

import numpy as np
import pytest

from repro.harness.configs import FAST
from repro.harness.reporting import (
    bench_payload,
    safe_json_dumps,
    write_bench_json,
)


def _reject_constant(name):
    raise AssertionError(f"non-compliant JSON constant {name!r} leaked "
                         "into an artifact")


def strict_loads(text: str):
    """json.loads that refuses the Infinity/NaN extensions outright."""
    return json.loads(text, parse_constant=_reject_constant)


class TestBenchPayload:
    def test_numpy_values_coerced(self):
        rows = [{"fps": np.float64(12.5), "rays": np.int64(2304),
                 "ok": np.bool_(True), "vec": np.arange(3)}]
        payload = bench_payload("figXX", rows, 1.25)
        text = json.dumps(payload)  # must not raise
        back = json.loads(text)
        assert back["rows"][0] == {"fps": 12.5, "rays": 2304, "ok": True,
                                   "vec": [0, 1, 2]}

    def test_nan_and_inf_stay_parseable(self):
        rows = [{"miss": float("nan"), "speedup": float("inf")}]
        back = json.loads(json.dumps(bench_payload("f", rows, 0.0)))
        assert back["rows"][0]["miss"] == "nan"
        assert back["rows"][0]["speedup"] == "inf"

    def test_config_scale_from_dataclass(self):
        payload = bench_payload("f", [], 0.0, config=FAST)
        assert payload["config_scale"]["image_size"] == FAST.image_size
        assert payload["config_scale"]["window"] == FAST.window

    def test_extra_section(self):
        payload = bench_payload("f", [], 0.0, extra={"fps": np.float32(3.0)})
        assert payload["extra"]["fps"] == 3.0


class TestStrictJson:
    """Every written artifact must round-trip through a strict parser.

    ``psnr`` legitimately returns ``inf`` for identical frames; raw
    ``json.dumps`` would emit the spec-violating ``Infinity`` literal.
    """

    NASTY_ROWS = [{
        "psnr": float("inf"),
        "neg": float("-inf"),
        "miss_rate": float("nan"),
        "np_inf": np.float64("inf"),
        "np_nan": np.float32("nan"),
        "nested": {"deep": [float("inf"), {"again": float("nan")}]},
        "vec": np.array([1.0, float("inf")]),
        "fine": 1.5,
    }]

    def test_safe_json_dumps_is_strictly_valid(self):
        back = strict_loads(safe_json_dumps({"rows": self.NASTY_ROWS}))
        row = back["rows"][0]
        assert row["psnr"] == "inf"
        assert row["neg"] == "-inf"
        assert row["miss_rate"] == "nan"
        assert row["np_inf"] == "inf"
        assert row["np_nan"] == "nan"
        assert row["nested"]["deep"] == ["inf", {"again": "nan"}]
        assert row["vec"] == [1.0, "inf"]
        assert row["fine"] == 1.5

    def test_safe_json_dumps_refuses_raw_nonfinite(self):
        # The allow_nan=False belt: a payload that somehow dodges the
        # sanitiser (here: monkeyed post-sanitise object) must fail
        # loudly rather than write a non-compliant artifact.
        with pytest.raises(ValueError):
            json.dumps({"v": float("inf")}, allow_nan=False)

    def test_written_artifact_roundtrips_with_inf_psnr(self, tmp_path):
        path = write_bench_json(tmp_path, "frontier", self.NASTY_ROWS, 0.1,
                                config=FAST,
                                extra={"mean_psnr": float("inf")})
        payload = strict_loads(path.read_text())
        assert payload["rows"][0]["psnr"] == "inf"
        assert payload["extra"]["mean_psnr"] == "inf"

    def test_every_payload_field_roundtrips(self, tmp_path):
        # Full surface: rows + config + extra, parsed strictly.
        path = write_bench_json(
            tmp_path, "x", [{"a": np.arange(2), "b": {"c": FAST}}], 1.0,
            config=FAST, extra={"events": [{"t": np.float64(0.5)}]})
        payload = strict_loads(path.read_text())
        assert payload["rows"][0]["a"] == [0, 1]
        assert payload["extra"]["events"] == [{"t": 0.5}]


class TestWriteBenchJson:
    def test_creates_directory_and_file(self, tmp_path):
        target = tmp_path / "nested" / "artifacts"
        path = write_bench_json(target, "fig07", [{"overlap": 0.98}], 2.0,
                                config=FAST)
        assert path == target / "BENCH_fig07.json"
        payload = json.loads(path.read_text())
        assert payload["schema_version"] == 2
        assert payload["kind"] == "figure"
        assert payload["figure"] == "fig07"
        assert payload["wall_time_s"] == 2.0
        assert payload["rows"] == [{"overlap": 0.98}]

    def test_kind_is_persisted(self, tmp_path):
        path = write_bench_json(tmp_path, "cluster", [{"v": 1}], 1.0,
                                kind="cluster")
        assert json.loads(path.read_text())["kind"] == "cluster"

    def test_overwrites_previous_run(self, tmp_path):
        write_bench_json(tmp_path, "fig07", [{"v": 1}], 1.0)
        path = write_bench_json(tmp_path, "fig07", [{"v": 2}], 1.0)
        assert json.loads(path.read_text())["rows"] == [{"v": 2}]

    def test_refuses_cross_kind_overwrite(self, tmp_path):
        """Two surfaces aimed at one path is a config mistake, not a
        refresh — the error must name both kinds."""
        write_bench_json(tmp_path, "run", [{"v": 1}], 1.0, kind="serve")
        with pytest.raises(ValueError) as excinfo:
            write_bench_json(tmp_path, "run", [{"v": 2}], 1.0,
                             kind="cluster")
        message = str(excinfo.value)
        assert "'serve'" in message and "'cluster'" in message
        # The refusal left the original artifact untouched.
        payload = json.loads((tmp_path / "BENCH_run.json").read_text())
        assert payload["kind"] == "serve"
        assert payload["rows"] == [{"v": 1}]

    def test_unparseable_existing_artifact_is_overwritten(self, tmp_path):
        # A corrupt/foreign file has no kind to defend; refresh wins.
        target = tmp_path / "BENCH_run.json"
        target.write_text("{not json")
        path = write_bench_json(tmp_path, "run", [{"v": 3}], 1.0,
                                kind="serve")
        assert json.loads(path.read_text())["rows"] == [{"v": 3}]

    def test_metrics_snapshot_attached_from_active_registry(self, tmp_path):
        from repro.obs import MetricsRegistry, Observation, activate
        registry = MetricsRegistry()
        registry.inc("hits", 2)
        with activate(Observation(metrics=registry)):
            path = write_bench_json(tmp_path, "m", [], 0.0)
        payload = json.loads(path.read_text())
        assert payload["metrics"]["counters"] == {"hits": 2}
        # Without an active registry there is no metrics key at all.
        bare = write_bench_json(tmp_path, "bare", [], 0.0)
        assert "metrics" not in json.loads(bare.read_text())
