"""Tests for the machine-readable BENCH_*.json perf artifacts."""

import json

import numpy as np

from repro.harness.configs import FAST
from repro.harness.reporting import bench_payload, write_bench_json


class TestBenchPayload:
    def test_numpy_values_coerced(self):
        rows = [{"fps": np.float64(12.5), "rays": np.int64(2304),
                 "ok": np.bool_(True), "vec": np.arange(3)}]
        payload = bench_payload("figXX", rows, 1.25)
        text = json.dumps(payload)  # must not raise
        back = json.loads(text)
        assert back["rows"][0] == {"fps": 12.5, "rays": 2304, "ok": True,
                                   "vec": [0, 1, 2]}

    def test_nan_and_inf_stay_parseable(self):
        rows = [{"miss": float("nan"), "speedup": float("inf")}]
        back = json.loads(json.dumps(bench_payload("f", rows, 0.0)))
        assert back["rows"][0]["miss"] == "nan"
        assert back["rows"][0]["speedup"] == "inf"

    def test_config_scale_from_dataclass(self):
        payload = bench_payload("f", [], 0.0, config=FAST)
        assert payload["config_scale"]["image_size"] == FAST.image_size
        assert payload["config_scale"]["window"] == FAST.window

    def test_extra_section(self):
        payload = bench_payload("f", [], 0.0, extra={"fps": np.float32(3.0)})
        assert payload["extra"]["fps"] == 3.0


class TestWriteBenchJson:
    def test_creates_directory_and_file(self, tmp_path):
        target = tmp_path / "nested" / "artifacts"
        path = write_bench_json(target, "fig07", [{"overlap": 0.98}], 2.0,
                                config=FAST)
        assert path == target / "BENCH_fig07.json"
        payload = json.loads(path.read_text())
        assert payload["schema"] == 1
        assert payload["figure"] == "fig07"
        assert payload["wall_time_s"] == 2.0
        assert payload["rows"] == [{"overlap": 0.98}]

    def test_overwrites_previous_run(self, tmp_path):
        write_bench_json(tmp_path, "fig07", [{"v": 1}], 1.0)
        path = write_bench_json(tmp_path, "fig07", [{"v": 2}], 1.0)
        assert json.loads(path.read_text())["rows"] == [{"v": 2}]
