"""Elapsed-time measurements must come from the monotonic clock.

``time.time()`` is wall-clock and steps under NTP adjustments, so an
elapsed measured across a step can come out negative or wildly wrong —
and it ends up in ``wall_time_s`` of every BENCH artifact.  All
elapsed-time math in the harness uses ``time.perf_counter()``; this
scan keeps a stray ``time.time()`` from creeping back in.
"""

from __future__ import annotations

import inspect

import pytest

import repro.harness.cli
import repro.harness.runner
import repro.server.loadgen
import repro.server.server


@pytest.mark.parametrize("module", [
    repro.harness.cli,
    repro.harness.runner,
    repro.server.loadgen,
    repro.server.server,
], ids=lambda m: m.__name__)
def test_no_wall_clock_elapsed_measurements(module):
    source = inspect.getsource(module)
    assert "time.time()" not in source, (
        f"{module.__name__} measures elapsed time with the steppable "
        "wall clock; use time.perf_counter()")
    assert "time.perf_counter()" in source
