"""Factorial experiment runner: tables, hashing, resume, economics."""

import json
import math

import pytest

from repro.harness.configs import FAST
from repro.harness.runconfig import RunConfig, RunConfigError, from_cli_args
from repro.harness.runner import ExperimentTable, execute_cell, run_table

QUICK_TABLE = {
    "name": "quick",
    "base": {"mode": "cluster", "scale": "fast", "duration_s": 0.4,
             "frames": 2, "workers": 2, "queue_limit": 2, "seed": 3},
    "axes": {"placement": ["least_loaded", "cache_affinity"],
             "rate_hz": [5.0, 9.0]},
}


def strict_loads(text):
    def reject(token):
        raise ValueError(f"non-strict JSON constant {token!r}")
    return json.loads(text, parse_constant=reject)


class TestRunConfig:
    def test_dict_round_trip_preserves_hash(self):
        cell = RunConfig(mode="cluster", workloads="vr-lego:2",
                         rate_hz=4.0, governor="adaptive", slo_fps=30.0,
                         label="a cell")
        back = RunConfig.from_dict(json.loads(json.dumps(cell.to_dict())))
        assert back == cell
        assert back.config_hash() == cell.config_hash()

    def test_label_does_not_affect_hash(self):
        a = RunConfig(rate_hz=4.0, label="one")
        b = RunConfig(rate_hz=4.0, label="two")
        assert a.config_hash() == b.config_hash()

    def test_result_affecting_field_changes_hash(self):
        assert RunConfig(seed=0).config_hash() \
            != RunConfig(seed=1).config_hash()

    def test_rejects_unknown_field(self):
        with pytest.raises(RunConfigError, match="unknown RunConfig field"):
            RunConfig.from_dict({"rate": 4.0})

    def test_serve_rejects_cluster_only_knobs(self):
        with pytest.raises(RunConfigError, match="cluster-only"):
            RunConfig(mode="serve", workers=4).validate()

    def test_cluster_rejects_serve_only_knobs(self):
        with pytest.raises(RunConfigError, match="serve-only"):
            RunConfig(mode="cluster", sessions=4).validate()

    def test_replay_requires_trace(self):
        with pytest.raises(RunConfigError,
                           match="--arrival-trace is required"):
            RunConfig(mode="cluster", arrivals="replay").validate()

    def test_autoscale_knobs_require_autoscale(self):
        with pytest.raises(RunConfigError, match="require --autoscale"):
            RunConfig(mode="cluster", min_workers=1).validate()


class TestCliParity:
    """serve/cluster/frontier/experiment share one validator, so a
    conflicting combination fails with the same message everywhere."""

    def _args(self, command, *extra):
        from repro.harness.cli import build_parser
        return build_parser().parse_args([command, "--fast", *extra])

    @pytest.mark.parametrize("command", ["cluster", "frontier"])
    def test_serve_only_rejection_is_identical(self, command):
        with pytest.raises(RunConfigError) as exc:
            from_cli_args(command, self._args(command, "--sessions", "4"))
        assert "serve-only" in str(exc.value)

    @pytest.mark.parametrize("command", ["serve", "cluster", "frontier"])
    def test_bad_frames_rejection_is_identical(self, command):
        with pytest.raises(RunConfigError, match=r"--frames must be >= 1"):
            from_cli_args(command, self._args(command, "--frames", "0"))

    def test_serve_rejects_cluster_flags(self):
        with pytest.raises(RunConfigError, match="cluster-only"):
            from_cli_args("serve", self._args("serve", "--workers", "2"))


class TestExperimentTable:
    def test_expansion_counts_axes_times_repetitions(self):
        table = ExperimentTable.from_dict(
            {**QUICK_TABLE, "repetitions": 3})
        cells = table.cells()
        assert len(cells) == 2 * 2 * 3
        # Repetition r offsets the effective seed by r via the field.
        assert sorted({c.repetition for c in cells}) == [0, 1, 2]
        assert all(c.seed == 3 for c in cells)
        # Every cell carries its axis assignment.
        assert {(c.placement, c.rate_hz) for c in cells} \
            == {("least_loaded", 5.0), ("least_loaded", 9.0),
                ("cache_affinity", 5.0), ("cache_affinity", 9.0)}

    def test_cell_labels_name_their_assignment(self):
        table = ExperimentTable.from_dict(QUICK_TABLE)
        labels = [c.label for c in table.cells()]
        assert labels[0] == "placement=least_loaded,rate_hz=5.0"
        assert len(set(labels)) == len(labels)

    def test_rejects_unknown_axis(self):
        with pytest.raises(RunConfigError, match="not a sweepable"):
            ExperimentTable.from_dict(
                {"base": {}, "axes": {"bogus": [1, 2]}})

    def test_rejects_invalid_cells_at_expansion(self):
        table = ExperimentTable.from_dict(
            {"base": {"mode": "cluster"}, "axes": {"workers": [1, 0]}})
        with pytest.raises(RunConfigError, match=">= 1"):
            table.cells()

    def test_from_json_file(self, tmp_path):
        path = tmp_path / "t.json"
        path.write_text(json.dumps(QUICK_TABLE))
        table = ExperimentTable.from_file(path)
        assert table.name == "quick"
        assert len(table.cells()) == 4


class TestRunTable:
    def _table(self):
        return ExperimentTable.from_dict(QUICK_TABLE)

    def test_one_row_per_cell_with_finite_economics(self, tmp_path):
        rows, extra, path = run_table(self._table(), tmp_path)
        assert len(rows) == 4
        assert extra["executed"] == 4 and extra["resumed"] == 0
        for row in rows:
            for key in ("total_energy_j", "joules_per_frame",
                        "usd_per_frame"):
                assert isinstance(row[key], float)
                assert math.isfinite(row[key])
        # The aggregated artifact is strict JSON; the CSV twin exists
        # with one line per cell plus the header.
        payload = strict_loads(path.read_text())
        assert payload["schema_version"] == 2
        assert payload["kind"] == "experiment"
        assert len(payload["rows"]) == 4
        csv_lines = (tmp_path / "BENCH_experiment.csv") \
            .read_text().strip().splitlines()
        assert len(csv_lines) == 5

    def test_same_seed_reruns_bit_identical(self, tmp_path):
        first, _, _ = run_table(self._table(), tmp_path / "a")
        second, _, _ = run_table(self._table(), tmp_path / "b")
        assert first == second

    def test_resume_skips_matching_cells(self, tmp_path):
        table = self._table()
        baseline, _, _ = run_table(table, tmp_path)
        # Simulate an interrupted run: two cell artifacts missing.
        (tmp_path / "cells" / "BENCH_quick_cell001.json").unlink()
        (tmp_path / "cells" / "BENCH_quick_cell003.json").unlink()
        rows, extra, _ = run_table(table, tmp_path, resume=True)
        assert extra["executed"] == 2 and extra["resumed"] == 2
        assert rows == baseline

    def test_resume_reruns_changed_cells(self, tmp_path):
        run_table(self._table(), tmp_path)
        changed = ExperimentTable.from_dict(
            {**QUICK_TABLE, "base": {**QUICK_TABLE["base"], "seed": 4}})
        rows, extra, _ = run_table(changed, tmp_path, resume=True)
        assert extra["executed"] == 4 and extra["resumed"] == 0
        assert all(row["config_hash"] == cell.config_hash()
                   for row, cell in zip(rows, changed.cells()))

    def test_without_resume_everything_reruns(self, tmp_path):
        run_table(self._table(), tmp_path)
        _, extra, _ = run_table(self._table(), tmp_path)
        assert extra["executed"] == 4 and extra["resumed"] == 0


class TestExecuteCellParity:
    def test_frontier_cell_matches_run_frontier(self):
        from repro.harness.frontier import run_frontier
        rows, _ = run_frontier(FAST, mix="vr-lego:1",
                               rates=(5.0, 6.0, 7.0), duration_s=0.2,
                               frames=1, modes=("off",))
        cell = RunConfig(mode="cluster", workloads="vr-lego:1",
                         arrivals="poisson", rate_hz=6.0, duration_s=0.2,
                         workers=1, queue_limit=2, frames=1,
                         governor="off").validate()
        result = execute_cell(cell, config=FAST)
        assert result.row == rows[1]

    def test_serve_cell_reports_energy(self):
        cell = RunConfig(mode="serve", workloads="vr-lego:2",
                         frames=2).validate()
        result = execute_cell(cell, config=FAST)
        assert result.row["total_energy_j"] > 0.0
        assert math.isfinite(result.row["usd_per_frame"])
        assert result.summary["joules_per_frame"] > 0.0
