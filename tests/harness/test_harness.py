"""Tests for the experiment harness: configs, reporting, runners."""

import numpy as np
import pytest

from repro.harness import (
    ALGORITHMS,
    FAST,
    EXPERIMENTS,
    build_field,
    build_renderer,
    format_table,
    full_frame_profile,
    ground_truth_sequence,
    make_camera,
)
from repro.harness.reporting import format_value


class TestConfigs:
    def test_three_algorithms(self):
        assert set(ALGORITHMS) == {"instant_ngp", "directvoxgo", "tensorf"}

    def test_field_cache_returns_same_object(self):
        a = build_field("directvoxgo", "lego", FAST)
        b = build_field("directvoxgo", "lego", FAST)
        assert a is b

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(KeyError):
            build_field("plenoxels", "lego", FAST)

    def test_renderer_has_occupancy(self):
        renderer = build_renderer("directvoxgo", "lego", FAST)
        assert renderer.sampler.occupancy is not None

    def test_gt_sequence_cached_and_consistent(self):
        t1, f1 = ground_truth_sequence("lego", FAST)
        t2, f2 = ground_truth_sequence("lego", FAST)
        assert len(f1) == FAST.num_frames
        np.testing.assert_allclose(t1[0], t2[0])

    def test_camera_matches_config(self):
        camera = make_camera(FAST)
        assert camera.width == FAST.image_size


class TestReporting:
    def test_format_value(self):
        assert format_value(1.23456) == "1.235"
        assert format_value(float("inf")) == "inf"
        assert format_value(12345.0) == "12,345"
        assert format_value("abc") == "abc"
        assert format_value(True) == "True"

    def test_format_table_alignment(self):
        rows = [{"a": 1.0, "b": "x"}, {"a": 22.5, "b": "yy"}]
        text = format_table(rows, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert len({len(line) for line in lines[1:]}) <= 2

    def test_empty_rows(self):
        assert "(no rows)" in format_table([], title="empty")

    def test_column_subset(self):
        rows = [{"a": 1, "b": 2}]
        text = format_table(rows, columns=["b"])
        assert "a" not in text.splitlines()[0]


class TestProfile:
    def test_profile_fields(self):
        profile = full_frame_profile("directvoxgo", "lego", FAST)
        assert profile.workload.num_samples > 0
        assert profile.conflict_slowdown >= 1.0
        assert profile.streaming_report.fs_bytes > 0
        assert len(profile.gather_groups) == 1

    def test_hash_profile_multi_group(self):
        profile = full_frame_profile("instant_ngp", "lego", FAST)
        assert len(profile.gather_groups) == FAST.hash_levels


class TestExperimentRegistry:
    def test_all_figures_registered(self):
        expected = {"fig02", "fig03", "fig04", "fig05", "fig06", "fig07",
                    "fig09", "fig16", "fig17", "fig18", "fig19", "fig20",
                    "fig21", "fig22", "fig23", "fig24", "fig25", "fig26"}
        assert expected == set(EXPERIMENTS)

    def test_fig07_runs_on_subset(self):
        rows = EXPERIMENTS["fig07"](FAST, scene_names=("lego",))
        assert len(rows) == 1
        assert 0.8 < rows[0]["overlap_mean"] <= 1.0

    def test_fig23_normalized_at_32kb(self):
        rows = EXPERIMENTS["fig23"](FAST, sizes_kb=(16, 32, 64))
        at32 = next(r for r in rows if r["vft_kb"] == 32)
        assert at32["normalized_energy"] == pytest.approx(1.0)
