"""Boundary conditions of admission and autoscaling.

The exact edges the integration suite never pins down: a cooldown
expiring *exactly* on a decision tick, scale-up saturating at
``max_workers`` (with booting capacity counted), and scale-down never
touching a worker that still holds resident sessions.
"""

import pytest

from repro.cluster import AdmissionController, Autoscaler


class StubWorker:
    def __init__(self, worker_id, load=0, busy_until_s=0.0,
                 started_s=0.0, index=0):
        self.worker_id = worker_id
        self.load = load
        self.busy_until_s = busy_until_s
        self.started_s = started_s
        self.index = index
        self.retired_s = None

    def retire(self, now_s):
        self.retired_s = now_s


def fleet(*loads):
    return [StubWorker(f"w{i:02d}", load=load, index=i)
            for i, load in enumerate(loads)]


def overloaded_scaler(**kwargs):
    defaults = dict(min_workers=1, max_workers=8, up_load=2.0,
                    down_load=0.25, cooldown_s=1.0)
    defaults.update(kwargs)
    return Autoscaler(**defaults)


class TestCooldownBoundary:
    def test_cooldown_expiring_exactly_on_tick_acts(self):
        scaler = overloaded_scaler(cooldown_s=1.0)
        assert scaler.evaluate(0.0, fleet(5), 0) is not None  # first up
        # Strictly inside the cooldown: suppressed.
        assert scaler.evaluate(0.999999, fleet(5), 0) is None
        # Exactly at expiry: the decision tick is allowed again.
        decision = scaler.evaluate(1.0, fleet(5), 0)
        assert decision is not None and decision[0] == "up"

    def test_zero_cooldown_acts_every_tick(self):
        scaler = overloaded_scaler(cooldown_s=0.0)
        assert scaler.evaluate(0.0, fleet(5), 0) is not None
        assert scaler.evaluate(0.0, fleet(5), 1) is not None


class TestScaleUpCap:
    def test_scale_up_capped_at_max_workers(self):
        scaler = overloaded_scaler(max_workers=3)
        workers = fleet(9, 9, 9)  # far over up_load
        assert scaler.evaluate(0.0, workers, 0) is None

    def test_booting_capacity_counts_toward_cap(self):
        scaler = overloaded_scaler(max_workers=3, cooldown_s=0.0)
        workers = fleet(9, 9)
        assert scaler.evaluate(0.0, workers, 1) is None  # 2 live + 1 boot
        decision = scaler.evaluate(0.0, workers, 0)
        assert decision is not None and decision[0] == "up"

    def test_last_slot_reachable(self):
        scaler = overloaded_scaler(max_workers=3, cooldown_s=0.0)
        decision = scaler.evaluate(0.0, fleet(9, 9), 0)
        assert decision == ("up", pytest.approx(
            scaler.scale_up_latency_s))


class TestScaleDownResidents:
    def test_never_removes_worker_with_residents(self):
        scaler = overloaded_scaler(cooldown_s=0.0)
        # Mean load 0.2 < down_load 0.25, but one worker holds a session:
        # the retire candidate must be one of the empty ones.
        workers = fleet(1, 0, 0, 0, 0)
        decision = scaler.evaluate(0.0, workers, 0)
        assert decision is not None and decision[0] == "down"
        assert decision[1].load == 0  # the loaded worker is untouchable

    def test_mid_frame_workers_are_not_retired(self):
        scaler = overloaded_scaler(cooldown_s=0.0, min_workers=1)
        mid_frame = fleet(0, 0)
        for worker in mid_frame:
            worker.busy_until_s = 5.0  # still serving a frame
        assert scaler.evaluate(0.0, mid_frame, 0) is None

    def test_worker_retire_refuses_residents(self):
        from repro.harness.configs import FAST
        from repro.cluster import Worker
        from repro.workloads import get_workload
        worker = Worker("w00", FAST)
        spec = get_workload("vr-lego").with_overrides(frames=2)
        worker.admit("s0", spec, 0.0)
        with pytest.raises(RuntimeError, match="resident"):
            worker.retire(1.0)

    def test_scale_down_respects_min_workers(self):
        scaler = overloaded_scaler(cooldown_s=0.0, min_workers=2)
        assert scaler.evaluate(0.0, fleet(0, 0), 0) is None


class TestAdmissionEdge:
    def test_exactly_at_queue_limit_rejects(self):
        controller = AdmissionController(queue_limit=3)
        eligible, reason = controller.eligible(fleet(3, 3))
        assert eligible == [] and reason == "queue_full"
        eligible, reason = controller.eligible(fleet(3, 2))
        assert [w.load for w in eligible] == [2] and reason is None
