"""Arrival-process tests: determinism, rate shapes, and trace replay."""

import pytest

from repro.cluster import (
    deterministic_arrivals,
    diurnal_arrivals,
    load_arrival_trace,
    make_arrivals,
    poisson_arrivals,
    save_arrival_trace,
)

MIX = "vr-lego:2,dolly-chair"


def times(arrivals):
    return [a.time_s for a in arrivals]


class TestPoisson:
    def test_deterministic_per_seed(self):
        a = poisson_arrivals(MIX, rate_hz=2.0, duration_s=20.0, seed=7)
        b = poisson_arrivals(MIX, rate_hz=2.0, duration_s=20.0, seed=7)
        assert times(a) == times(b)
        assert [x.spec.name for x in a] == [x.spec.name for x in b]

    def test_seed_changes_schedule(self):
        a = poisson_arrivals(MIX, rate_hz=2.0, duration_s=20.0, seed=0)
        b = poisson_arrivals(MIX, rate_hz=2.0, duration_s=20.0, seed=1)
        assert times(a) != times(b)

    def test_within_window_and_sorted(self):
        a = poisson_arrivals(MIX, rate_hz=3.0, duration_s=10.0, seed=0)
        assert all(0.0 <= t < 10.0 for t in times(a))
        assert times(a) == sorted(times(a))

    def test_rate_scales_volume(self):
        slow = poisson_arrivals(MIX, rate_hz=0.5, duration_s=40.0, seed=0)
        fast = poisson_arrivals(MIX, rate_hz=5.0, duration_s=40.0, seed=0)
        assert len(fast) > 2 * len(slow)

    def test_counts_weight_sampling(self):
        a = poisson_arrivals("vr-lego:9,dolly-chair:1", rate_hz=10.0,
                             duration_s=50.0, seed=0)
        names = [x.spec.name for x in a]
        assert names.count("vr-lego") > names.count("dolly-chair")

    def test_invalid_rate_duration(self):
        with pytest.raises(ValueError):
            poisson_arrivals(MIX, rate_hz=0.0, duration_s=1.0)
        with pytest.raises(ValueError):
            poisson_arrivals(MIX, rate_hz=1.0, duration_s=0.0)


class TestDeterministic:
    def test_evenly_spaced_cycling(self):
        a = deterministic_arrivals(MIX, rate_hz=2.0, duration_s=2.0)
        assert times(a) == pytest.approx([0.0, 0.5, 1.0, 1.5])
        # Cycles the expanded mix: lego, lego, chair, lego, ...
        assert [x.spec.name for x in a] == [
            "vr-lego", "vr-lego", "dolly-chair", "vr-lego"]


class TestDiurnal:
    def test_thinning_reduces_volume(self):
        flat = poisson_arrivals(MIX, rate_hz=5.0, duration_s=40.0, seed=0)
        shaped = diurnal_arrivals(MIX, rate_hz=5.0, duration_s=40.0,
                                  seed=0, depth=0.9)
        assert 0 < len(shaped) < len(flat)

    def test_deterministic_per_seed(self):
        a = diurnal_arrivals(MIX, rate_hz=5.0, duration_s=20.0, seed=3)
        b = diurnal_arrivals(MIX, rate_hz=5.0, duration_s=20.0, seed=3)
        assert times(a) == times(b)

    def test_peak_denser_than_trough(self):
        # Rate profile troughs at t=0 and peaks at half the period.
        a = diurnal_arrivals(MIX, rate_hz=10.0, duration_s=100.0, seed=0,
                             depth=1.0, period_s=100.0)
        first_quarter = sum(1 for t in times(a) if t < 25.0)
        middle = sum(1 for t in times(a) if 37.5 <= t < 62.5)
        assert middle > first_quarter

    def test_bad_depth_rejected(self):
        with pytest.raises(ValueError):
            diurnal_arrivals(MIX, rate_hz=1.0, duration_s=1.0, depth=1.5)


class TestReplay:
    def test_trace_round_trip(self, tmp_path):
        original = poisson_arrivals(MIX, rate_hz=2.0, duration_s=10.0,
                                    seed=5)
        path = save_arrival_trace(tmp_path / "trace.json", original)
        replayed = load_arrival_trace(path)
        assert times(replayed) == times(original)
        assert [x.spec.name for x in replayed] == \
               [x.spec.name for x in original]

    def test_replay_via_registry_kind(self, tmp_path):
        original = deterministic_arrivals(MIX, rate_hz=1.0, duration_s=3.0)
        path = save_arrival_trace(tmp_path / "trace.json", original)
        replayed = make_arrivals("replay", MIX, trace=str(path))
        assert times(replayed) == times(original)

    def test_unknown_workload_rejected(self):
        with pytest.raises(KeyError):
            load_arrival_trace([{"t": 0.0, "workload": "no-such-workload"}])

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            load_arrival_trace([{"t": -1.0, "workload": "vr-lego"}])

    def test_replay_requires_trace(self):
        with pytest.raises(ValueError):
            make_arrivals("replay", MIX)

    def test_unsorted_trace_sorted_on_load(self):
        arrivals = load_arrival_trace([
            {"t": 2.0, "workload": "vr-lego"},
            {"t": 1.0, "workload": "dolly-chair"},
        ])
        assert times(arrivals) == [1.0, 2.0]


class TestRegistry:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            make_arrivals("bursty", MIX)
