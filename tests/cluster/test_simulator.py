"""Integration tests for the open-loop cluster simulator.

Runs the real pipeline (FAST scale, tiny frame counts) through the fleet:
determinism per seed, admission shedding, the cache-affinity placement
payoff, autoscaling, and the harness/CLI surface.
"""

import dataclasses
import json

import pytest

from repro.cluster import Autoscaler, simulate_cluster
from repro.harness.cli import main
from repro.harness.cluster import run_cluster
from repro.harness.configs import FAST

# Scene-skewed mix: 3 of 4 arrivals (in expectation) share the vr-lego
# cache key, the shape cache-affinity placement exploits.
SKEWED_MIX = "vr-lego:3,dolly-chair:1"


def run(mix=SKEWED_MIX, **overrides):
    kwargs = dict(arrivals="poisson", rate_hz=1.5, duration_s=5.0,
                  workers=3, placement="least_loaded", queue_limit=6,
                  frames=2, seed=0)
    kwargs.update(overrides)
    return simulate_cluster(mix, FAST, **kwargs)


class TestDeterminism:
    def test_same_seed_identical_report(self):
        a = dataclasses.asdict(run(placement="cache_affinity"))
        b = dataclasses.asdict(run(placement="cache_affinity"))
        assert a == b

    def test_different_seed_different_schedule(self):
        a = run(seed=0)
        b = run(seed=3)
        assert (a.arrivals_total != b.arrivals_total
                or a.makespan_s != b.makespan_s)


class TestServiceAccounting:
    def test_conservation(self):
        report = run()
        assert report.arrivals_total == report.admitted + report.rejected
        assert report.completed_sessions == report.admitted
        assert report.total_frames == 2 * report.admitted
        assert sum(row["frames"] for row in report.per_worker) \
            == report.total_frames

    def test_latency_and_utilization_populated(self):
        report = run()
        assert report.admitted >= 1
        assert report.p99_latency_s >= report.p95_latency_s \
            >= report.p50_latency_s > 0.0
        assert report.worst_latency_s >= report.p99_latency_s
        assert report.ttff_mean_s > 0.0
        assert any(row["utilization"] > 0.0 for row in report.per_worker)
        assert report.aggregate_fps > 0.0

    def test_summary_is_flat_and_jsonable(self):
        summary = run().summary()
        json.dumps(summary)  # no nested numpy/dataclass leftovers
        assert summary["admitted"] >= 1
        assert summary["p99_latency_ms"] >= summary["p50_latency_ms"]


class TestAdmission:
    def test_overload_sheds_with_queue_full(self):
        # ~20 arrivals in 0.2 s against one worker holding one session.
        report = run(mix="vr-lego:1", arrivals="poisson", rate_hz=100.0,
                     duration_s=0.2, workers=1, queue_limit=1, seed=2)
        assert report.rejected > 0
        assert report.reject_reasons.get("queue_full", 0) > 0
        assert report.reject_rate > 0.0
        # Rejected sessions are never rendered or priced.
        assert report.total_frames == 2 * report.admitted


class TestCacheControl:
    def test_no_cache_disables_reference_reuse(self):
        cached = run(placement="cache_affinity")
        uncached = run(placement="cache_affinity", use_cache=False)
        assert cached.ref_cache_hits > 0
        assert uncached.ref_cache_hits == 0
        assert uncached.ref_cache_misses == 0  # engine never consults it
        # The latency/throughput model is cache-blind (bit-parity
        # contract), so service metrics are unchanged.
        assert uncached.makespan_s == cached.makespan_s


class TestSeedThreading:
    def test_seed_offsets_stochastic_trajectories(self):
        # walk-materials uses a seeded random_walk; the cluster --seed
        # must reach the spec's trajectory seed, not just the arrivals.
        from repro.cluster import Arrival, ClusterSimulator
        from repro.workloads import get_workload
        spec = get_workload("walk-materials")
        keys = []
        for seed in (0, 5):
            sim = ClusterSimulator(FAST, workers=1, frames=2, seed=seed)
            sim.run([Arrival(0.0, spec)])
            worker = sim.workers[0]
            keys.append(worker.completed[0].spec.seed)
        assert keys[0] == spec.seed  # seed 0 leaves the spec untouched
        assert keys[1] == spec.seed + 5


class TestCacheAffinity:
    def test_beats_round_robin_on_skewed_mix(self):
        # Same arrival schedule, only placement differs: co-locating the
        # vr-lego sessions turns their repeated references into worker-
        # local cache hits instead of per-worker misses.
        kwargs = dict(arrivals="poisson", rate_hz=2.0, duration_s=5.0,
                      workers=3, queue_limit=8, frames=3, seed=0)
        affinity = run(placement="cache_affinity", **kwargs)
        spread = run(placement="round_robin", **kwargs)
        assert affinity.ref_cache_hit_rate > spread.ref_cache_hit_rate
        # Placement changes where work lands, not how much work exists.
        assert affinity.total_frames == spread.total_frames


class TestAutoscaling:
    def test_scales_up_under_burst(self):
        report = run(mix="vr-lego:1", arrivals="poisson", rate_hz=30.0,
                     duration_s=0.5, workers=1, queue_limit=8, seed=1,
                     frames=3,
                     autoscaler=Autoscaler(min_workers=1, max_workers=3,
                                           up_load=2.0,
                                           scale_up_latency_s=0.05,
                                           cooldown_s=0.05))
        ups = [e for e in report.scale_events
               if e["action"] == "up_completed"]
        assert ups, report.scale_events
        assert len(report.per_worker) > 1
        # Utilization is busy time over each worker's own lifetime, so
        # even a late-booted worker stays within [0, 1].
        assert all(0.0 <= row["utilization"] <= 1.0
                   for row in report.per_worker)
        # Scale-up latency: the worker went live after it was requested.
        requested = [e for e in report.scale_events
                     if e["action"] == "up_requested"]
        assert ups[0]["t"] == pytest.approx(requested[0]["t"] + 0.05)

    def test_scales_down_when_drained(self):
        # A dense burst builds queue depth (scale up), then arrivals stop
        # and the backlog drains (scale back down).
        report = run(mix="vr-lego:1", arrivals="deterministic",
                     rate_hz=40.0, duration_s=0.25, workers=1,
                     queue_limit=12, frames=4, seed=0,
                     autoscaler=Autoscaler(min_workers=1, max_workers=3,
                                           up_load=1.5, down_load=0.25,
                                           scale_up_latency_s=0.02,
                                           cooldown_s=0.02))
        downs = [e for e in report.scale_events if e["action"] == "down"]
        assert downs, report.scale_events
        assert report.workers_final < len(report.per_worker)


class TestHarness:
    def test_autoscale_reachable_under_tight_queue_limit(self):
        # The harness couples the scale-up threshold to --queue-limit;
        # with the uncoupled default (2.0) a queue limit of 2 would cap
        # mean load at the threshold and autoscaling would never fire.
        _, summary = run_cluster(
            FAST, mix="vr-lego:1", arrivals="deterministic", rate_hz=40.0,
            duration_s=0.25, workers=1, queue_limit=2, frames=4, seed=0,
            autoscale=True, max_workers=3, scale_up_latency_s=0.02)
        assert summary["scale_ups"] >= 1

    def test_autoscale_bounds_must_bracket_initial_fleet(self):
        with pytest.raises(ValueError, match="min_workers..max_workers"):
            run_cluster(FAST, workers=2, autoscale=True, min_workers=3)
        with pytest.raises(ValueError, match="min_workers..max_workers"):
            run_cluster(FAST, workers=4, autoscale=True, max_workers=2)

    def test_run_cluster_rows_and_summary(self):
        rows, summary = run_cluster(
            FAST, mix=SKEWED_MIX, arrivals="deterministic", rate_hz=1.0,
            duration_s=3.0, workers=2, placement="cache_affinity",
            frames=2, seed=0)
        assert len(rows) == 2
        assert {"worker", "utilization", "ref_hit_rate"} <= set(rows[0])
        assert summary["admitted"] == 3
        assert summary["placement"] == "cache_affinity"

    def test_replay_reproduces_poisson_run(self, tmp_path):
        from repro.cluster import poisson_arrivals, save_arrival_trace
        schedule = poisson_arrivals(SKEWED_MIX, rate_hz=1.5,
                                    duration_s=4.0, seed=4)
        trace = save_arrival_trace(tmp_path / "trace.json", schedule)
        live = run(arrivals="poisson", rate_hz=1.5, duration_s=4.0,
                   seed=4)
        replayed = run(arrivals="replay", trace=str(trace), seed=4)
        assert dataclasses.asdict(replayed) == dataclasses.asdict(
            dataclasses.replace(live, arrivals="replay"))


class TestCli:
    def test_cluster_writes_bench_json(self, tmp_path, capsys):
        assert main(["cluster", "--fast", "--arrivals", "deterministic",
                     "--rate", "1.0", "--duration", "3", "--workers", "2",
                     "--placement", "cache_affinity", "--frames", "2",
                     "--seed", "0", "--json-out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "aggregate" in out
        payload = json.loads((tmp_path / "BENCH_cluster.json").read_text())
        assert payload["figure"] == "cluster"
        assert payload["extra"]["admitted"] >= 1
        assert any(row["utilization"] > 0 for row in payload["rows"])

    def test_cluster_rejects_serve_only_flags(self, capsys):
        assert main(["cluster", "--fast", "--sessions", "4"]) == 2
        assert "serve-only" in capsys.readouterr().err
        assert main(["cluster", "--fast", "--scheduler", "deadline"]) == 2
        assert "serve-only" in capsys.readouterr().err

    def test_cluster_missing_trace_file_message(self, capsys):
        assert main(["cluster", "--fast", "--arrivals", "replay",
                     "--arrival-trace", "/nonexistent/trace.json"]) == 2
        err = capsys.readouterr().err
        assert "trace.json" in err  # names the file, not a bare errno

    def test_cluster_replay_requires_trace(self, capsys):
        assert main(["cluster", "--fast", "--arrivals", "replay"]) == 2
        assert "--arrival-trace" in capsys.readouterr().err

    def test_cluster_replay_rejects_schedule_flags(self, capsys, tmp_path):
        trace = tmp_path / "trace.json"
        trace.write_text('{"arrivals": [{"t": 0.0, "workload": "vr-lego"}]}')
        assert main(["cluster", "--fast", "--arrivals", "replay",
                     "--arrival-trace", str(trace), "--rate", "2"]) == 2
        assert "do not apply" in capsys.readouterr().err

    def test_cluster_malformed_trace_entry_message(self, capsys, tmp_path):
        trace = tmp_path / "trace.json"
        trace.write_text('{"arrivals": [{"time": 0.0, "workload": "x"}]}')
        assert main(["cluster", "--fast", "--arrivals", "replay",
                     "--arrival-trace", str(trace)]) == 2
        assert "bad arrival-trace entry" in capsys.readouterr().err

    def test_cluster_autoscale_flags_require_autoscale(self, capsys):
        assert main(["cluster", "--fast", "--max-workers", "8"]) == 2
        assert "--autoscale" in capsys.readouterr().err

    def test_cluster_validates_rate(self, capsys):
        assert main(["cluster", "--fast", "--rate", "0"]) == 2
        assert "--rate" in capsys.readouterr().err

    def test_list_includes_cluster(self, capsys):
        assert main(["list"]) == 0
        assert "cluster" in capsys.readouterr().out
