"""Unit tests for placement policies, admission control, and autoscaling.

Policies and the admission controller are duck-typed over workers, so
these tests drive them with a minimal stand-in instead of real SoC
workers — the full integration runs in test_simulator.py.
"""

import pytest

from repro.cluster import (
    REJECT_NO_WORKERS,
    REJECT_QUEUE_FULL,
    AdmissionController,
    Autoscaler,
    make_placement,
)


class StubWorker:
    def __init__(self, worker_id, load=0, busy_until_s=0.0,
                 started_s=0.0, index=0):
        self.worker_id = worker_id
        self.load = load
        self.busy_until_s = busy_until_s
        self.started_s = started_s
        self.index = index
        self.retired_s = None

    def retire(self, now_s):
        self.retired_s = now_s


def fleet(*loads):
    return [StubWorker(f"w{i:02d}", load=load, index=i)
            for i, load in enumerate(loads)]


class TestPlacementPolicies:
    def test_round_robin_cycles(self):
        policy = make_placement("round_robin")
        workers = fleet(0, 0, 0)
        picks = [policy.choose(None, workers).worker_id for _ in range(5)]
        assert picks == ["w00", "w01", "w02", "w00", "w01"]

    def test_least_loaded_picks_min_tie_by_id(self):
        policy = make_placement("least_loaded")
        assert policy.choose(None, fleet(2, 1, 1)).worker_id == "w01"
        assert policy.choose(None, fleet(3, 3, 3)).worker_id == "w00"

    def test_cache_affinity_is_sticky(self):
        policy = make_placement("cache_affinity")
        workers = fleet(0, 0, 0, 0)
        first = policy.choose("spec-abc/cfg-1", workers).worker_id
        for _ in range(5):
            assert policy.choose("spec-abc/cfg-1", workers).worker_id \
                == first

    def test_cache_affinity_spreads_distinct_keys(self):
        policy = make_placement("cache_affinity")
        workers = fleet(0, 0, 0, 0)
        picks = {policy.choose(f"key-{i}", workers).worker_id
                 for i in range(16)}
        assert len(picks) > 1

    def test_cache_affinity_deterministic_fallback(self):
        """When the preferred worker leaves the eligible set, every
        placement agrees on the same second choice."""
        policy = make_placement("cache_affinity")
        workers = fleet(0, 0, 0)
        preferred = policy.choose("key", workers)
        remaining = [w for w in workers if w is not preferred]
        fallback = policy.choose("key", remaining).worker_id
        assert fallback != preferred.worker_id
        assert policy.choose("key", remaining).worker_id == fallback

    def test_cache_affinity_without_key_least_loaded(self):
        policy = make_placement("cache_affinity")
        assert policy.choose(None, fleet(2, 0, 1)).worker_id == "w01"

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            make_placement("random")


class TestAdmission:
    def test_no_workers(self):
        controller = AdmissionController(queue_limit=2)
        eligible, reason = controller.eligible([])
        assert eligible == [] and reason == REJECT_NO_WORKERS

    def test_queue_full(self):
        controller = AdmissionController(queue_limit=2)
        eligible, reason = controller.eligible(fleet(2, 2))
        assert eligible == [] and reason == REJECT_QUEUE_FULL

    def test_filters_full_workers(self):
        controller = AdmissionController(queue_limit=2)
        workers = fleet(2, 1, 0)
        eligible, reason = controller.eligible(workers)
        assert reason is None
        assert [w.worker_id for w in eligible] == ["w01", "w02"]

    def test_counters(self):
        controller = AdmissionController(queue_limit=1)
        controller.record_admit()
        controller.record_reject(REJECT_QUEUE_FULL)
        controller.record_reject(REJECT_QUEUE_FULL)
        controller.record_reject(REJECT_NO_WORKERS)
        stats = controller.stats
        assert stats.admitted == 1
        assert stats.rejected == 3
        assert stats.rejected_by_reason == {REJECT_QUEUE_FULL: 2,
                                            REJECT_NO_WORKERS: 1}
        assert stats.reject_rate == pytest.approx(0.75)

    def test_invalid_limit(self):
        with pytest.raises(ValueError):
            AdmissionController(queue_limit=0)


class TestAutoscaler:
    def test_scales_up_over_threshold(self):
        scaler = Autoscaler(max_workers=4, up_load=2.0,
                            scale_up_latency_s=0.5, cooldown_s=0.0)
        decision = scaler.evaluate(1.0, fleet(3, 3), booting=0)
        assert decision == ("up", 1.5)
        assert scaler.events[-1].action == "up_requested"

    def test_booting_capacity_suppresses_up(self):
        scaler = Autoscaler(max_workers=4, up_load=2.0, cooldown_s=0.0)
        # 6 resident / (2 live + 1 booting) = 2.0, not > threshold.
        assert scaler.evaluate(1.0, fleet(3, 3), booting=1) is None

    def test_respects_max_workers(self):
        scaler = Autoscaler(max_workers=2, up_load=1.0, cooldown_s=0.0)
        assert scaler.evaluate(1.0, fleet(5, 5), booting=0) is None

    def test_scales_down_idle_worker(self):
        scaler = Autoscaler(min_workers=1, up_load=2.0, down_load=0.5,
                            cooldown_s=0.0)
        workers = fleet(0, 0)
        decision = scaler.evaluate(1.0, workers, booting=0)
        # Retires the youngest idle worker (LIFO).
        assert decision == ("down", workers[1])

    def test_scale_down_is_lifo_by_spawn_order_not_id_string(self):
        # Spawn indices past 99 would reverse under lexicographic id
        # comparison ("w100" < "w99"); LIFO must follow spawn order.
        scaler = Autoscaler(min_workers=1, up_load=2.0, down_load=0.5,
                            cooldown_s=0.0)
        old = StubWorker("w99", started_s=0.0, index=99)
        young = StubWorker("w100", started_s=5.0, index=100)
        decision = scaler.evaluate(10.0, [old, young], booting=0)
        assert decision == ("down", young)

    def test_never_below_min_workers(self):
        scaler = Autoscaler(min_workers=1, down_load=0.5, cooldown_s=0.0)
        assert scaler.evaluate(1.0, fleet(0), booting=0) is None

    def test_cooldown_spaces_actions(self):
        scaler = Autoscaler(max_workers=8, up_load=1.0, cooldown_s=5.0)
        assert scaler.evaluate(0.0, fleet(9, 9), booting=0) is not None
        assert scaler.evaluate(1.0, fleet(9, 9), booting=0) is None
        assert scaler.evaluate(6.0, fleet(9, 9), booting=0) is not None

    def test_hysteresis_required(self):
        with pytest.raises(ValueError):
            Autoscaler(up_load=1.0, down_load=1.0)
