"""Live FrameServer over real sockets: parity, protocol, teardown.

The headline property: frames served to concurrent TCP clients are
bit-identical to solo rendering (digest-for-digest), because every
connection feeds the same batched engine and shared caches as the
virtual-clock paths.  This is also the test that fails against a
pre-fix (unlocked) ``SharedLRUCache``: concurrent session builds race
on ``FIELD_CACHE`` from the server's worker threads.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.engine import MultiSessionEngine
from repro.harness.configs import FAST
from repro.server import (
    FrameServer,
    ServerOptions,
    frame_digest,
    read_message,
    write_message,
)
from repro.workloads import get_workload


async def _client(port: int, workload: str, frames=None, seed=None,
                  close_after=None) -> dict:
    """One scripted protocol conversation; returns everything received."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    result = {"frames": [], "final": None}
    try:
        result["hello"] = await read_message(reader)
        message = {"type": "open", "workload": workload}
        if frames is not None:
            message["frames"] = frames
        if seed is not None:
            message["seed"] = seed
        write_message(writer, message)
        await writer.drain()
        result["opened"] = await read_message(reader)
        if result["opened"] is None or result["opened"]["type"] != "opened":
            result["final"] = result["opened"]
            return result
        while True:
            message = await read_message(reader)
            if message is None or message["type"] != "frame":
                result["final"] = message
                return result
            result["frames"].append(message)
            if (close_after is not None
                    and len(result["frames"]) >= close_after):
                write_message(writer, {"type": "close"})
                await writer.drain()
                close_after = None
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


def _with_server(coro_factory, options: ServerOptions | None = None):
    """Run one async scenario against a fresh live server."""
    async def scenario():
        server = FrameServer(config=FAST,
                             options=options or ServerOptions())
        await server.start()
        try:
            return await coro_factory(server)
        finally:
            await server.stop()

    return asyncio.run(scenario())


def _solo_digests(workload: str, frames: int, seed=None) -> list:
    """Digest sequence of the same session rendered the classic way."""
    spec = get_workload(workload).with_overrides(frames=frames,
                                                seed_offset=seed)
    session = spec.build_session("solo", FAST)
    MultiSessionEngine([session]).run()
    return [frame_digest(record.frame)
            for record in session.result.records]


class TestSingleClient:
    def test_full_stream_matches_solo_render(self):
        result = _with_server(
            lambda server: _client(server.port, "vr-lego", frames=3))
        assert result["hello"]["type"] == "hello"
        assert result["opened"]["workload"] == "vr-lego"
        assert result["opened"]["frames"] == 3
        assert result["final"]["type"] == "done"
        assert result["final"]["frames"] == 3
        assert [f["index"] for f in result["frames"]] == [0, 1, 2]
        assert ([f["digest"] for f in result["frames"]]
                == _solo_digests("vr-lego", 3))

    def test_frames_carry_wall_clock_timestamps(self):
        result = _with_server(
            lambda server: _client(server.port, "vr-lego", frames=2))
        for frame in result["frames"]:
            assert frame["queue_s"] >= 0.0
            assert frame["render_s"] > 0.0
            assert frame["t_server_s"] > 0.0

    def test_seed_override_changes_the_trajectory(self):
        # walk-materials samples its trajectory from the seed, so the
        # override must reach the server-side session build.
        plain = _with_server(
            lambda server: _client(server.port, "walk-materials",
                                   frames=2))
        seeded = _with_server(
            lambda server: _client(server.port, "walk-materials",
                                   frames=2, seed=9))
        assert ([f["digest"] for f in seeded["frames"]]
                == _solo_digests("walk-materials", 2, seed=9))
        assert ([f["digest"] for f in seeded["frames"]]
                != [f["digest"] for f in plain["frames"]])


class TestConcurrentClients:
    def test_concurrent_streams_bit_identical_to_solo(self):
        expected = {name: _solo_digests(name, 2)
                    for name in ("vr-lego", "dolly-chair")}

        async def scenario(server):
            return await asyncio.gather(*[
                _client(server.port, name, frames=2)
                for name in ("vr-lego", "dolly-chair",
                             "vr-lego", "dolly-chair", "vr-lego")])

        results = _with_server(scenario)
        assert all(r["final"]["type"] == "done" for r in results)
        for result in results:
            workload = result["opened"]["workload"]
            assert ([f["digest"] for f in result["frames"]]
                    == expected[workload])

    def test_sessions_get_unique_ids(self):
        async def scenario(server):
            return await asyncio.gather(*[
                _client(server.port, "vr-lego", frames=1)
                for _ in range(3)])

        results = _with_server(scenario)
        ids = [r["opened"]["session"] for r in results]
        assert len(set(ids)) == 3


class TestClose:
    def test_graceful_close_mid_stream(self):
        async def scenario(server):
            early = await _client(server.port, "vr-lego", frames=8,
                                  close_after=1)
            # The server must stay fully serviceable afterwards.
            follow_up = await _client(server.port, "vr-lego", frames=2)
            return early, follow_up

        early, follow_up = _with_server(scenario)
        assert early["final"]["type"] == "closed"
        assert early["final"]["frames_delivered"] >= 1
        assert len(early["frames"]) < 8
        assert follow_up["final"]["type"] == "done"
        assert ([f["digest"] for f in follow_up["frames"]]
                == _solo_digests("vr-lego", 2))

    def test_client_vanishing_is_tolerated(self):
        async def scenario(server):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port)
            await read_message(reader)
            write_message(writer, {"type": "open", "workload": "vr-lego",
                                   "frames": 8})
            await writer.drain()
            await read_message(reader)  # opened
            writer.close()  # hang up without a close message
            await writer.wait_closed()
            return await _client(server.port, "vr-lego", frames=2)

        follow_up = _with_server(scenario)
        assert follow_up["final"]["type"] == "done"


class TestRejection:
    @pytest.mark.parametrize("open_message, match", [
        ({"type": "open", "workload": "no-such-workload"}, "unknown"),
        ({"type": "open"}, "workload"),
        ({"type": "open", "workload": "vr-lego", "frames": 0}, "frames"),
        ({"type": "frame"}, "expected 'open'"),
    ])
    def test_bad_open_gets_error_message(self, open_message, match):
        async def scenario(server):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port)
            try:
                await read_message(reader)
                write_message(writer, open_message)
                await writer.drain()
                return await read_message(reader)
            finally:
                writer.close()
                await writer.wait_closed()

        reply = _with_server(scenario)
        assert reply["type"] == "error"
        assert match in reply["message"]

    def test_port_is_ephemeral_and_reported(self):
        async def scenario(server):
            return server.port

        port = _with_server(scenario)
        assert 1024 <= port <= 65535
