"""Loadgen determinism + the sim-vs-real reconciliation artifact.

Acceptance properties from the serving roadmap: ``cli loadgen --seed S``
run twice issues the *identical* request schedule; measured wall-clock
quantiles land finite and nonzero in ``BENCH_realserve.json``; and
``cli reconcile`` pairs every measured quantile with a matched
``simulate_cluster`` prediction in a strict-JSON gap report.
"""

from __future__ import annotations

import asyncio
import json
import math

import pytest

from repro.harness.cli import main as cli_main
from repro.harness.configs import FAST
from repro.server import (
    FrameServer,
    LoadgenOptions,
    ServerOptions,
    loadgen_schedule,
    run_loadgen,
)
from repro.server.reconcile import RECONCILE_METRICS, reconcile_report

QUANTILE_KEYS = ("ttff_mean_ms", "ttff_p95_ms", "p50_latency_ms",
                 "p95_latency_ms", "p99_latency_ms")

FAST_OPTIONS = dict(mix="vr-lego:2,dolly-chair:1", arrivals="poisson",
                    rate_hz=3.0, duration_s=1.0, seed=11, frames=2,
                    time_scale=0.05)


class TestScheduleDeterminism:
    @pytest.mark.parametrize("kind", ["poisson", "deterministic",
                                      "diurnal"])
    def test_same_seed_same_schedule(self, kind):
        options = LoadgenOptions(arrivals=kind, rate_hz=4.0,
                                 duration_s=2.0, seed=3)
        assert loadgen_schedule(options) == loadgen_schedule(options)

    def test_different_seed_different_schedule(self):
        base = LoadgenOptions(arrivals="poisson", rate_hz=4.0,
                              duration_s=2.0, seed=3)
        other = LoadgenOptions(arrivals="poisson", rate_hz=4.0,
                               duration_s=2.0, seed=4)
        assert loadgen_schedule(base) != loadgen_schedule(other)


def _measure(options: LoadgenOptions) -> dict:
    async def scenario():
        server = FrameServer(config=FAST, options=ServerOptions())
        await server.start()
        try:
            return await run_loadgen("127.0.0.1", server.port, options)
        finally:
            await server.stop()

    return asyncio.run(scenario())


class TestRunLoadgen:
    def test_measures_finite_nonzero_quantiles(self):
        summary = _measure(LoadgenOptions(**FAST_OPTIONS))
        assert summary["sessions_ok"] == summary["sessions_total"] > 0
        assert (summary["frames_total"]
                == summary["sessions_total"] * FAST_OPTIONS["frames"])
        for key in QUANTILE_KEYS:
            assert math.isfinite(summary[key]) and summary[key] > 0.0
        # The schedule the run replayed is recorded for reproducibility.
        assert (summary["schedule"]
                == [{"t": a.time_s, "workload": a.spec.name} for a in
                    loadgen_schedule(LoadgenOptions(**FAST_OPTIONS))])

    def test_connect_refused_is_reported_not_raised(self):
        options = LoadgenOptions(**{**FAST_OPTIONS,
                                    "connect_timeout_s": 2.0})
        summary = asyncio.run(run_loadgen("127.0.0.1", 1, options))
        assert summary["sessions_ok"] == 0
        assert all(s["status"].startswith("connect_failed")
                   for s in summary["sessions"])


class TestReconcileReport:
    def test_pairs_every_quantile_with_a_prediction(self):
        measured = _measure(LoadgenOptions(**FAST_OPTIONS))
        report = reconcile_report(measured, FAST)
        assert [row["metric"] for row in report["rows"]] == \
            list(RECONCILE_METRICS)
        for row in report["rows"]:
            assert math.isfinite(row["measured_ms"])
            assert math.isfinite(row["predicted_ms"])
            assert row["gap_ms"] == pytest.approx(
                row["measured_ms"] - row["predicted_ms"])
            if row["predicted_ms"] > 0.0:
                assert row["ratio"] == pytest.approx(
                    row["measured_ms"] / row["predicted_ms"])
        # The matched simulation replays the same arrival schedule.
        assert report["sessions_predicted"] == measured["sessions_total"]
        assert report["frames_predicted"] == measured["frames_total"]

    def test_report_is_strict_json(self):
        from repro.harness.reporting import safe_json_dumps
        measured = _measure(LoadgenOptions(**FAST_OPTIONS))
        text = safe_json_dumps(reconcile_report(measured, FAST))

        def reject(token):
            raise AssertionError(f"non-strict constant {token!r}")

        back = json.loads(text, parse_constant=reject)
        assert len(back["rows"]) == len(RECONCILE_METRICS)


def _loadgen_argv(out_dir: str) -> list:
    return ["loadgen", "--fast", "--workload", "vr-lego:2",
            "--workload", "dolly-chair:1", "--rate", "3",
            "--duration", "1", "--seed", "11", "--frames", "2",
            "--time-scale", "0.05", "--json-out", out_dir]


class TestCli:
    def test_loadgen_same_seed_same_request_schedule(self, tmp_path):
        for run in ("one", "two"):
            assert cli_main(_loadgen_argv(str(tmp_path / run))) == 0
        schedules = []
        for run in ("one", "two"):
            artifact = json.loads(
                (tmp_path / run / "BENCH_realserve.json").read_text())
            assert artifact["kind"] == "realserve"
            schedules.append(artifact["extra"]["schedule"])
            for key in QUANTILE_KEYS:
                value = artifact["extra"][key]
                assert math.isfinite(value) and value > 0.0
        assert schedules[0] == schedules[1]

    def test_reconcile_cli_emits_gap_report(self, tmp_path):
        out = str(tmp_path)
        assert cli_main(_loadgen_argv(out)) == 0
        assert cli_main(["reconcile", "--input",
                         f"{out}/BENCH_realserve.json",
                         "--json-out", out]) == 0
        report = json.loads(
            (tmp_path / "BENCH_reconcile.json").read_text())
        assert report["kind"] == "reconcile"
        rows = {row["metric"]: row for row in report["rows"]}
        assert set(rows) == set(RECONCILE_METRICS)
        assert all("predicted_ms" in row and "measured_ms" in row
                   for row in rows.values())

    def test_reconcile_requires_a_realserve_artifact(self, tmp_path,
                                                     capsys):
        bogus = tmp_path / "BENCH_other.json"
        bogus.write_text(json.dumps({"kind": "cluster"}))
        assert cli_main(["reconcile", "--input", str(bogus)]) == 2
        assert "need 'realserve'" in capsys.readouterr().err

    def test_serve_live_rejects_loadgen_flags(self, capsys):
        assert cli_main(["serve-live", "--fast", "--rate", "3"]) == 2
        assert "loadgen" in capsys.readouterr().err

    def test_loadgen_rejects_conflicting_targets(self, capsys):
        assert cli_main(["loadgen", "--fast", "--connect",
                         "localhost:7070", "--port", "7071"]) == 2
        assert "pick one" in capsys.readouterr().err
