"""Fuzz layer for the JSON-lines frame protocol.

Seeded hypothesis ``binary()`` fuzz at two levels: ``read_message``
against arbitrary byte streams (every outcome is a parsed message,
clean EOF, or ``ProtocolError`` — never another exception), and the
live asyncio handler against garbage openings (the server always
answers with a clean ``error`` reply or EOF, never dies — the next
well-formed connection still gets served).
"""

from __future__ import annotations

import asyncio
import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.harness.configs import FAST
from repro.server import FrameServer, ServerOptions, read_message
from repro.server.protocol import (
    MAX_MESSAGE_BYTES,
    ProtocolError,
    encode_message,
)


def feed(payload: bytes, limit: int = 2 ** 16) -> asyncio.StreamReader:
    """A StreamReader pre-loaded with ``payload`` and then EOF."""
    reader = asyncio.StreamReader(limit=limit)
    reader.feed_data(payload)
    reader.feed_eof()
    return reader


def read_all(payload: bytes, limit: int = 2 ** 16) -> list:
    """Drain ``payload`` through read_message; returns messages and
    the terminating ``None``/``ProtocolError``."""
    async def drain():
        reader = feed(payload, limit=limit)
        out = []
        while True:
            try:
                message = await read_message(reader)
            except ProtocolError as exc:
                out.append(exc)
                return out
            out.append(message)
            if message is None:
                return out

    return asyncio.run(drain())


class TestReadMessageFuzz:
    @given(payload=st.binary(max_size=512))
    @settings(max_examples=300, deadline=None)
    def test_arbitrary_bytes_never_escape_the_contract(self, payload):
        outcomes = read_all(payload)
        # Every outcome is a dict message, a clean EOF, or a
        # ProtocolError terminating the stream — nothing else.
        for outcome in outcomes[:-1]:
            assert isinstance(outcome, dict)
        assert outcomes[-1] is None or isinstance(
            outcomes[-1], (ProtocolError, dict))

    @given(payload=st.binary(min_size=1, max_size=64))
    @settings(max_examples=200, deadline=None)
    def test_non_json_lines_raise_protocol_error(self, payload):
        line = payload.replace(b"\n", b" ") + b"\n"
        try:
            json.loads(line)
        except (json.JSONDecodeError, UnicodeDecodeError):
            outcomes = read_all(line)
            assert isinstance(outcomes[-1], ProtocolError)

    @given(message=st.dictionaries(
        st.text(max_size=8),
        st.one_of(st.integers(), st.text(max_size=16), st.booleans()),
        max_size=4))
    @settings(max_examples=200, deadline=None)
    def test_round_trip_objects_with_string_type_survive(self, message):
        message["type"] = "probe"
        outcomes = read_all(encode_message(message))
        assert outcomes[0] == message
        assert outcomes[-1] is None

    @given(chunks=st.lists(st.binary(min_size=1, max_size=40),
                           min_size=2, max_size=6))
    @settings(max_examples=150, deadline=None)
    def test_interleaved_chunking_matches_single_feed(self, chunks):
        joined = b"".join(chunks)

        async def drain_chunked():
            reader = asyncio.StreamReader(limit=2 ** 16)
            for chunk in chunks:
                reader.feed_data(chunk)
            reader.feed_eof()
            out = []
            while True:
                try:
                    message = await read_message(reader)
                except ProtocolError as exc:
                    out.append(repr(exc))
                    return out
                out.append(message)
                if message is None:
                    return out

        chunked = asyncio.run(drain_chunked())
        single = [outcome if not isinstance(outcome, ProtocolError)
                  else repr(outcome) for outcome in read_all(joined)]
        assert chunked == single  # framing is independent of chunking


class TestReadMessageEdges:
    def test_truncated_line_without_newline_is_eof_or_error(self):
        # A partial line at EOF decodes if it happens to be JSON; a
        # truncated object raises ProtocolError.
        outcomes = read_all(b'{"type": "open", "work')
        assert isinstance(outcomes[-1], ProtocolError)

    def test_oversized_line_raises_protocol_error(self):
        blob = b'{"type":"' + b"x" * (2 ** 16) + b'"}\n'
        outcomes = read_all(blob)
        assert isinstance(outcomes[-1], ProtocolError)
        assert "limit" in str(outcomes[-1])

    def test_max_message_bytes_bound_applies(self):
        # With a generous reader limit, our own bound still rejects.
        blob = b'{"type":"' + b"x" * MAX_MESSAGE_BYTES + b'"}\n'
        outcomes = read_all(blob, limit=2 * MAX_MESSAGE_BYTES + 1024)
        assert isinstance(outcomes[-1], ProtocolError)

    def test_non_utf8_bytes_raise_protocol_error(self):
        outcomes = read_all(b"\xff\xfe\x00garbage\n")
        assert isinstance(outcomes[-1], ProtocolError)

    def test_non_object_json_raises_protocol_error(self):
        for line in (b"[1,2,3]\n", b'"hello"\n', b"42\n",
                     b'{"type": 7}\n', b"{}\n"):
            outcomes = read_all(line)
            assert isinstance(outcomes[-1], ProtocolError), line


# Deterministic corpus for the live-handler fuzz: hypothesis does not
# drive real socket servers here (startup is too expensive per example),
# so a seeded sample of openings covers the same classes — random
# bytes, truncation, oversize, non-UTF-8, wrong shapes.
GARBAGE_OPENINGS = [
    b"\x00\x01\x02\x03\x04\n",
    b"\xff\xfe\xfd not utf8 \xba\xad\n",
    b"not json at all\n",
    b"[1, 2, 3]\n",
    b'"just a string"\n',
    b'{"no_type": true}\n',
    b'{"type": 42}\n',
    b'{"type": "open"}\n',            # well-formed but no workload
    b'{"type": "open", "workload": "no-such-workload"}\n',
    b'{"type": "frame"}\n',           # out-of-sequence type
    b'{"type": "open", "work',        # truncated, no newline
    b'{"a":"' + b"x" * (2 ** 16) + b'"}\n',  # oversized line
]


async def poke(port: int, payload: bytes) -> dict | None:
    """Send raw bytes to the server; return its final reply (or None)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        await read_message(reader)  # hello
        writer.write(payload)
        try:
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            return None
        writer.write_eof()
        try:
            return await asyncio.wait_for(read_message(reader), 10.0)
        except (ProtocolError, ConnectionResetError, BrokenPipeError):
            return None
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


class TestHandlerNeverDies:
    def test_garbage_openings_get_clean_errors_then_service_resumes(self):
        async def scenario():
            server = FrameServer(config=FAST, options=ServerOptions())
            await server.start()
            try:
                for payload in GARBAGE_OPENINGS:
                    reply = await poke(server.port, payload)
                    # Either a clean protocol "error" reply or a clean
                    # close — the handler never propagates an exception.
                    if reply is not None:
                        assert reply["type"] == "error", payload
                        assert isinstance(reply["message"], str)
                # The server is still alive: a real session works.
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port)
                try:
                    await read_message(reader)
                    writer.write(encode_message(
                        {"type": "open", "workload": "vr-lego",
                         "frames": 2}))
                    await writer.drain()
                    opened = await read_message(reader)
                    assert opened["type"] == "opened"
                    kinds = []
                    while True:
                        message = await read_message(reader)
                        if message is None:
                            break
                        kinds.append(message["type"])
                        if message["type"] == "done":
                            break
                    assert kinds.count("frame") == 2
                    assert kinds[-1] == "done"
                finally:
                    writer.close()
                    try:
                        await writer.wait_closed()
                    except (ConnectionResetError, BrokenPipeError):
                        pass
            finally:
                await server.stop()

        asyncio.run(scenario())
