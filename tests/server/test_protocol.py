"""Wire-level protocol semantics: framing, limits, malformed input."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.server import read_message, write_message
from repro.server.protocol import (
    MAX_MESSAGE_BYTES,
    ProtocolError,
    encode_message,
)


async def _reader_with(data: bytes) -> asyncio.StreamReader:
    # Created inside the running loop: StreamReader binds the current
    # event loop at construction time.
    reader = asyncio.StreamReader()
    reader.feed_data(data)
    reader.feed_eof()
    return reader


def _read(data: bytes):
    async def scenario():
        return await read_message(await _reader_with(data))

    return asyncio.run(scenario())


class TestFraming:
    def test_round_trip(self):
        message = {"type": "frame", "index": 3, "digest": "ab", "q": 0.5}
        assert _read(encode_message(message)) == message

    def test_encode_is_one_line(self):
        wire = encode_message({"type": "open", "workload": "vr-lego"})
        assert wire.endswith(b"\n")
        assert wire.count(b"\n") == 1

    def test_encode_rejects_non_finite(self):
        with pytest.raises(ValueError):
            encode_message({"type": "frame", "queue_s": float("nan")})

    def test_multiple_messages_stream_in_order(self):
        async def scenario():
            reader = await _reader_with(
                encode_message({"type": "a"}) + encode_message({"type": "b"}))
            first = await read_message(reader)
            second = await read_message(reader)
            third = await read_message(reader)
            return first, second, third

        first, second, third = asyncio.run(scenario())
        assert (first["type"], second["type"]) == ("a", "b")
        assert third is None  # EOF after the last line

    def test_writer_side_matches_reader_side(self):
        class FakeWriter:
            def __init__(self):
                self.chunks = []

            def write(self, data):
                self.chunks.append(data)

        writer = FakeWriter()
        write_message(writer, {"type": "done", "frames": 2})
        assert json.loads(b"".join(writer.chunks)) == {"type": "done",
                                                       "frames": 2}


class TestRejection:
    def test_eof_returns_none(self):
        assert _read(b"") is None

    def test_bad_json_raises(self):
        with pytest.raises(ProtocolError, match="bad JSON"):
            _read(b"{nope\n")

    def test_non_object_raises(self):
        with pytest.raises(ProtocolError, match="string 'type'"):
            _read(b"[1, 2]\n")

    def test_missing_type_raises(self):
        with pytest.raises(ProtocolError, match="string 'type'"):
            _read(b'{"workload": "vr-lego"}\n')

    def test_oversized_line_raises(self):
        # Longer than any StreamReader buffer limit or our own bound —
        # both paths must surface as a ProtocolError, never a bare
        # ValueError crashing the connection handler.
        line = b'{"type": "' + b"x" * MAX_MESSAGE_BYTES + b'"}\n'
        with pytest.raises(ProtocolError, match="exceeds"):
            _read(line)
