"""Bounded-error contract of the numba backend (skipped without numba).

Every registered kernel's njit implementation must match the canonical
numpy kernel within its documented tolerance (``NUMBA_ATOL``), across
hypothesis-generated inputs.  On machines without the ``[perf]`` extra
these tests skip cleanly — the backend then falls back to numpy and the
exact-parity suites cover it.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend import NUMBA_ATOL, NUMBA_AVAILABLE, get_backend, kernel_defaults
from repro.geometry import Intrinsics

pytestmark = pytest.mark.skipif(
    not NUMBA_AVAILABLE, reason="numba is not installed (the [perf] extra)")

COMMON = {"max_examples": 15, "deadline": None}


def _impls(kernel: str):
    return get_backend("numba").kernel(kernel), kernel_defaults()[kernel]


class TestNumbaBoundedError:
    @given(seed=st.integers(0, 2**32 - 1), n=st.integers(1, 256),
           resolution=st.integers(2, 12))
    @settings(**COMMON)
    def test_trilinear_gather(self, seed, n, resolution):
        numba_fn, numpy_fn = _impls("field.trilinear_gather")
        rng = np.random.default_rng(seed)
        coords01 = rng.uniform(-0.2, 1.2, size=(n, 3))
        base_n, offsets_n, (omf_n, frac_n) = numba_fn(coords01, resolution)
        base_r, offsets_r, (omf_r, frac_r) = numpy_fn(coords01, resolution)
        assert np.array_equal(base_n, base_r)
        assert np.array_equal(offsets_n, offsets_r)
        assert np.array_equal(omf_n, omf_r)
        assert np.array_equal(frac_n, frac_r)

    @given(seed=st.integers(0, 2**32 - 1), n=st.integers(1, 256),
           features=st.integers(1, 8))
    @settings(**COMMON)
    def test_accumulate_gather(self, seed, n, features):
        numba_fn, numpy_fn = _impls("field.accumulate_gather")
        _, setup = _impls("field.trilinear_gather")
        rng = np.random.default_rng(seed)
        resolution = 8
        base, offsets, weights = setup(rng.uniform(size=(n, 3)), resolution)
        table = rng.normal(size=((resolution + 1) ** 3, features))
        got = numba_fn(table, base, offsets, weights)
        want = numpy_fn(table, base, offsets, weights)
        assert np.allclose(got, want,
                           atol=NUMBA_ATOL["field.accumulate_gather"],
                           rtol=0.0)

    @given(seed=st.integers(0, 2**32 - 1), h=st.integers(2, 24),
           w=st.integers(2, 24))
    @settings(**COMMON)
    def test_warp_gather(self, seed, h, w):
        numba_fn, numpy_fn = _impls("warp.gather")
        rng = np.random.default_rng(seed)
        depth = rng.uniform(0.1, 10.0, size=(h, w))
        intrinsics = Intrinsics.from_fov(w, h, 50.0)
        assert np.array_equal(numba_fn(depth, intrinsics),
                              numpy_fn(depth, intrinsics))

    @given(seed=st.integers(0, 2**32 - 1), points=st.integers(1, 512),
           pixels=st.integers(1, 64))
    @settings(**COMMON)
    def test_warp_scatter(self, seed, points, pixels):
        numba_fn, numpy_fn = _impls("warp.scatter")
        rng = np.random.default_rng(seed)
        flat_ids = rng.integers(0, pixels, size=points)
        # Quantized depths force ties, so the last-wins rule is exercised.
        z = rng.integers(1, 5, size=points).astype(float)
        src = rng.permutation(points)
        colors = rng.uniform(size=(points, 3))
        buffers = []
        for fn in (numba_fn, numpy_fn):
            image = np.zeros((pixels, 3))
            depth = np.full(pixels, np.inf)
            source_index = np.full(pixels, -1)
            fn(flat_ids, z, src, colors, image, depth, source_index)
            buffers.append((image, depth, source_index))
        for got, want in zip(*buffers):
            assert np.array_equal(got, want)

    @given(seed=st.integers(0, 2**32 - 1), n=st.integers(1, 512))
    @settings(**COMMON)
    def test_disocclusion_classify(self, seed, n):
        numba_fn, numpy_fn = _impls("disocclusion.classify")
        rng = np.random.default_rng(seed)
        covered = rng.uniform(size=n) < 0.7
        hole = ~covered & (rng.uniform(size=n) < 0.5)
        angle = rng.uniform(0.0, 60.0, size=n)
        got = numba_fn(covered, hole, angle, 30.0)
        want = numpy_fn(covered, hole, angle, 30.0)
        for got_mask, want_mask in zip(got, want):
            assert np.array_equal(got_mask, want_mask)

    @given(seed=st.integers(0, 2**32 - 1), rays=st.integers(1, 64),
           per_ray=st.integers(1, 32))
    @settings(**COMMON)
    def test_volume_composite(self, seed, rays, per_ray):
        numba_fn, numpy_fn = _impls("volume.composite")
        rng = np.random.default_rng(seed)
        count = rays * per_ray
        sigmas = rng.uniform(0.0, 50.0, size=count)
        rgbs = rng.uniform(size=(count, 3))
        t_values = np.tile(np.linspace(0.5, 4.0, per_ray), rays)
        deltas = np.full(count, 3.5 / per_ray)
        ray_index = np.repeat(np.arange(rays), per_ray)
        got = numba_fn(sigmas, rgbs, t_values, deltas, ray_index, rays)
        want = numpy_fn(sigmas, rgbs, t_values, deltas, ray_index, rays)
        atol = NUMBA_ATOL["volume.composite"]
        assert np.allclose(got.rgb, want.rgb, atol=atol, rtol=0.0)
        assert np.allclose(got.opacity, want.opacity, atol=atol, rtol=0.0)
        finite = np.isfinite(want.depth)
        assert np.array_equal(finite, np.isfinite(got.depth))
        assert np.allclose(got.depth[finite], want.depth[finite],
                           atol=1e-4, rtol=1e-6)
