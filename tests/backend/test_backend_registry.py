"""Backend registry behavior: names, resolution, dispatch install."""

import pytest

from repro.backend import (
    DEFAULT_BACKEND,
    KERNELS,
    NUMBA_AVAILABLE,
    active_overrides,
    backend_names,
    get_backend,
    kernel_defaults,
    resolve_backend,
    use_backend,
)


class TestRegistry:
    def test_names(self):
        assert backend_names() == ("numba", "numpy", "parallel")

    def test_default_is_numpy(self):
        assert DEFAULT_BACKEND == "numpy"
        assert resolve_backend(None).name == "numpy"

    def test_unknown_name_lists_registered(self):
        with pytest.raises(KeyError) as err:
            get_backend("cuda")
        message = err.value.args[0]
        assert "cuda" in message
        for name in backend_names():
            assert name in message

    def test_numba_resolves_or_falls_back(self):
        resolved = resolve_backend("numba")
        expected = "numba" if NUMBA_AVAILABLE else "numpy"
        assert resolved.name == expected

    def test_exact_backends_install_nothing(self):
        # numpy and parallel run the canonical in-process kernels with
        # zero dispatch indirection; parallelism lives in the engine's
        # pool, not in kernel overrides.
        for name in ("numpy", "parallel"):
            backend = get_backend(name)
            assert backend.exact
            assert backend.available
            assert backend.overrides() == {}

    def test_use_backend_installs_and_restores(self):
        assert active_overrides() == {}
        with use_backend("numpy") as active:
            assert active.name == "numpy"
            assert active_overrides() == {}
        with use_backend("numba") as active:
            assert set(active_overrides()) == set(active.overrides())
        assert active_overrides() == {}

    def test_kernel_defaults_cover_surface(self):
        defaults = kernel_defaults()
        assert set(defaults) == set(KERNELS)
        assert all(callable(fn) for fn in defaults.values())

    def test_unknown_kernel_name(self):
        with pytest.raises(KeyError) as err:
            get_backend("numpy").kernel("field.nope")
        assert "field.nope" in err.value.args[0]

    def test_describe_rows(self):
        for name in backend_names():
            row = get_backend(name).describe()
            assert row["backend"] == name
            assert isinstance(row["exact"], bool)
