"""Exact-parity contract of the parallel backend's worker pool.

Workers rebuild the renderer from shared-memory baked tables and run the
same deterministic numpy kernels, so every per-bundle result must be
bit-identical to calling ``render_rays`` on the exporting process.
"""

import numpy as np
import pytest

from repro.backend.parallel import WorkerPool, supports_parallel
from repro.harness.configs import make_camera
from repro.scenes import orbit_trajectory


@pytest.fixture(scope="module")
def bundles(fast_config):
    camera = make_camera(fast_config)
    trajectory = orbit_trajectory(3, radius=fast_config.orbit_radius,
                                  degrees_per_frame=15.0)
    out = []
    for pose in trajectory.poses:
        origins, directions = camera.with_pose(pose).generate_rays()
        out.append((origins.reshape(-1, 3), directions.reshape(-1, 3)))
    return out


@pytest.fixture(scope="module")
def pool_results(fast_renderer, bundles):
    pool = WorkerPool(2)
    try:
        return pool.render_bundles(fast_renderer, bundles)
    finally:
        pool.shutdown()


class TestPoolParity:
    def test_supports_fast_renderer(self, fast_renderer):
        assert supports_parallel(fast_renderer)

    def test_rejects_jittered_sampler(self, fast_renderer):
        from repro.nerf import NeRFRenderer, UniformSampler
        sampler = fast_renderer.sampler
        jittered = NeRFRenderer(
            fast_renderer.field,
            UniformSampler(sampler.num_samples,
                           occupancy=sampler.occupancy, jitter=True))
        assert not supports_parallel(jittered)

    def test_bundle_outputs_bit_identical(self, fast_renderer, bundles,
                                          pool_results):
        assert len(pool_results) == len(bundles)
        for (origins, directions), result in zip(bundles, pool_results):
            rgb, depth_t, opacity, stats = result
            serial = fast_renderer.render_rays(origins, directions)
            assert np.array_equal(rgb, serial.rgb)
            assert np.array_equal(depth_t, serial.depth_t, equal_nan=True)
            assert np.array_equal(opacity, serial.opacity)

    def test_bundle_stats_identical(self, fast_renderer, bundles,
                                    pool_results):
        for (origins, directions), result in zip(bundles, pool_results):
            stats = result[3]
            serial = fast_renderer.render_rays(origins, directions)
            assert stats == serial.stats
