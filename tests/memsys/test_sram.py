"""Tests for the banked-SRAM conflict simulator."""

import numpy as np
import pytest

from repro.memsys import BankConflictStats, BankedSRAM


class TestSimulateGroups:
    def test_no_requests(self):
        sram = BankedSRAM(4, 1)
        stats = sram.simulate_groups(np.full((2, 3), -1), np.zeros((2, 3)))
        assert stats.actual_cycles == 0
        assert stats.conflict_rate == 0.0

    def test_single_request_one_cycle(self):
        sram = BankedSRAM(4, 1)
        stats = sram.simulate_groups(np.array([[2, -1]]), np.array([[7, 0]]))
        assert stats.actual_cycles == 1
        assert stats.conflict_rate == 0.0

    def test_same_bank_distinct_addresses_serialize(self):
        sram = BankedSRAM(4, 1)
        stats = sram.simulate_groups(np.array([[1, 1, 1]]),
                                     np.array([[10, 11, 12]]))
        assert stats.actual_cycles == 3
        assert stats.conflicted_groups == 1

    def test_broadcast_same_address(self):
        sram = BankedSRAM(4, 1)
        stats = sram.simulate_groups(np.array([[1, 1, 1]]),
                                     np.array([[10, 10, 10]]))
        assert stats.actual_cycles == 1

    def test_ports_divide_serialization(self):
        sram = BankedSRAM(4, 2)
        stats = sram.simulate_groups(np.array([[1, 1, 1, 1]]),
                                     np.array([[1, 2, 3, 4]]))
        assert stats.actual_cycles == 2

    def test_cycles_is_max_over_banks(self):
        sram = BankedSRAM(4, 1)
        # Bank 0 gets 2 distinct, bank 1 gets 1 -> 2 cycles.
        stats = sram.simulate_groups(np.array([[0, 0, 1]]),
                                     np.array([[1, 2, 3]]))
        assert stats.actual_cycles == 2

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            BankedSRAM(0, 1)
        with pytest.raises(ValueError):
            BankedSRAM(4, 0)

    def test_shape_mismatch_rejected(self):
        sram = BankedSRAM(4, 1)
        with pytest.raises(ValueError):
            sram.simulate_groups(np.zeros((2, 3)), np.zeros((2, 4)))


class TestStats:
    def test_conflict_rate_definition(self):
        stats = BankConflictStats(issue_groups=10, ideal_cycles=10,
                                  actual_cycles=20, conflicted_groups=5)
        assert stats.conflict_rate == pytest.approx(0.5)
        assert stats.slowdown == pytest.approx(2.0)
        assert stats.conflicted_group_fraction == pytest.approx(0.5)

    def test_merge(self):
        a = BankConflictStats(2, 2, 4, 1)
        b = BankConflictStats(3, 3, 3, 0)
        c = a.merge(b)
        assert c.issue_groups == 5
        assert c.actual_cycles == 7
        assert c.slowdown == pytest.approx(7.0 / 5.0)

    def test_empty_stats_safe(self):
        stats = BankConflictStats(0, 0, 0, 0)
        assert stats.conflict_rate == 0.0
        assert stats.slowdown == 1.0
        assert stats.conflicted_group_fraction == 0.0
