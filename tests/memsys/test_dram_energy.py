"""Tests for the DRAM model and energy constants."""

import pytest

from repro.memsys import DEFAULT_ENERGY, DRAMConfig, DRAMModel, EnergyModel
from repro.memsys.trace import AccessTrace
import numpy as np


class TestEnergyModel:
    def test_paper_ratios(self):
        e = DEFAULT_ENERGY
        assert e.dram_random_pj_per_byte / e.dram_stream_pj_per_byte == (
            pytest.approx(3.0))
        assert e.dram_random_pj_per_byte / e.sram_pj_per_byte == (
            pytest.approx(25.0))

    def test_dram_energy_mix(self):
        e = EnergyModel()
        only_stream = e.dram_energy(1e6, 0)
        only_random = e.dram_energy(0, 1e6)
        assert only_random == pytest.approx(3.0 * only_stream)

    def test_sram_cheaper_than_dram(self):
        e = EnergyModel()
        assert e.sram_energy(1e6) < e.dram_energy(1e6, 0)

    def test_wireless_constants(self):
        e = EnergyModel()
        assert e.wireless_energy(1.0) == pytest.approx(100e-9)
        assert e.wireless_latency(10e6) == pytest.approx(1.0)

    def test_mac_energy(self):
        e = EnergyModel()
        assert e.mac_energy(1e12) == pytest.approx(0.25)


class TestDRAMModel:
    def test_streaming_faster_than_random(self):
        model = DRAMModel()
        stream = model.cost_of_bytes(1e6, 0)
        random = model.cost_of_bytes(0, 1e6)
        assert stream.time_s < random.time_s
        assert stream.energy_j < random.energy_j

    def test_cost_of_trace_classifies(self):
        model = DRAMModel()
        seq = AccessTrace(addresses=np.arange(100) * 64,
                          sizes=np.full(100, 64))
        rng = np.random.default_rng(0)
        rand = AccessTrace(addresses=rng.integers(0, 1 << 30, 100) * 64,
                           sizes=np.full(100, 64))
        assert model.cost_of_trace(seq).streaming_fraction > 0.9
        assert model.cost_of_trace(rand).streaming_fraction < 0.1

    def test_merge(self):
        model = DRAMModel()
        a = model.cost_of_bytes(100, 0)
        b = model.cost_of_bytes(0, 200)
        c = a.merge(b)
        assert c.total_bytes == 300
        assert c.energy_j == pytest.approx(a.energy_j + b.energy_j)

    def test_config_bandwidths(self):
        config = DRAMConfig()
        assert config.stream_bw > config.random_bw
