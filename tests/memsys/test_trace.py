"""Tests for access traces and streaming analysis."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memsys import (
    AccessTrace,
    analyze_streaming,
    interleaved_gather_trace,
    trace_from_gather_group,
)


def _trace(addresses, size=32):
    addresses = np.asarray(addresses, dtype=np.int64)
    return AccessTrace(addresses=addresses,
                       sizes=np.full(addresses.shape, size, dtype=np.int64))


class TestAccessTrace:
    def test_total_bytes(self):
        assert _trace([0, 64, 128]).total_bytes == 96

    def test_unique_bytes_counts_blocks(self):
        trace = _trace([0, 0, 0, 64])
        assert trace.unique_bytes(granularity=64) == 128

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            AccessTrace(addresses=np.zeros(3, dtype=np.int64),
                        sizes=np.zeros(2, dtype=np.int64))

    def test_concatenate(self):
        combined = AccessTrace.concatenate([_trace([0]), _trace([64])])
        assert len(combined) == 2


class TestStreamingAnalysis:
    def test_sequential_is_streaming(self):
        trace = _trace([0, 32, 64, 96])
        analysis = analyze_streaming(trace)
        assert analysis.non_streaming_fraction == pytest.approx(0.25)  # head

    def test_scattered_is_random(self):
        trace = _trace([0, 100000, 200000, 50000])
        analysis = analyze_streaming(trace)
        assert analysis.streaming_fraction == 0.0

    def test_window_tolerates_small_skips(self):
        trace = _trace([0, 96, 192])  # gaps of 64 bytes
        analysis = analyze_streaming(trace, stream_window=128)
        assert analysis.streaming_accesses == 2

    def test_backward_jump_breaks_stream(self):
        trace = _trace([1000, 0])
        analysis = analyze_streaming(trace)
        assert analysis.streaming_accesses == 0

    def test_empty_trace(self):
        analysis = analyze_streaming(_trace([]))
        assert analysis.streaming_fraction == 1.0
        assert analysis.total_bytes == 0


class TestCoalescing:
    def test_merges_same_block(self):
        trace = _trace([0, 32, 0, 32], size=32)
        merged = trace.coalesced(block_bytes=64)
        assert len(merged) == 1
        assert merged.sizes[0] == 64

    def test_merges_adjacent_blocks(self):
        trace = _trace([0, 64, 128], size=32)
        merged = trace.coalesced(block_bytes=64)
        assert len(merged) == 1

    def test_keeps_distant_accesses(self):
        trace = _trace([0, 4096], size=32)
        merged = trace.coalesced(block_bytes=64)
        assert len(merged) == 2

    def test_preserves_total_coverage(self):
        rng = np.random.default_rng(0)
        trace = _trace(rng.integers(0, 10000, size=500) * 32, size=32)
        merged = trace.coalesced(64)
        assert merged.unique_bytes(64) == trace.unique_bytes(64)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 1000), min_size=1, max_size=100))
    def test_never_increases_access_count(self, raw):
        trace = _trace(np.array(raw) * 16, size=16)
        merged = trace.coalesced(64)
        assert len(merged) <= len(trace)


class TestGatherTraces:
    def test_trace_from_group_flattens_row_major(self, gather_groups):
        group = gather_groups[0]
        trace = trace_from_gather_group(group)
        assert len(trace) == group.num_samples * group.vertices_per_sample
        expected_first = group.base_address + group.vertex_ids[0, 0] * group.entry_bytes
        assert trace.addresses[0] == expected_first

    def test_sample_order_reorders(self, gather_groups):
        group = gather_groups[0]
        order = np.arange(group.num_samples)[::-1]
        trace = trace_from_gather_group(group, sample_order=order)
        expected_first = group.base_address + group.vertex_ids[-1, 0] * group.entry_bytes
        assert trace.addresses[0] == expected_first

    def test_interleaved_trace_covers_all_groups(self, gather_groups):
        trace = interleaved_gather_trace(gather_groups, block_samples=128)
        total = sum(g.num_samples * g.vertices_per_sample
                    for g in gather_groups)
        assert len(trace) == total

    def test_interleaved_empty(self):
        trace = interleaved_gather_trace([])
        assert len(trace) == 0
