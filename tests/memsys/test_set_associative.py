"""Tests for the set-associative cache simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memsys import simulate_lru
from repro.memsys.cache import simulate_set_associative


class TestSetAssociative:
    def test_fully_associative_limit_matches_lru(self):
        """With ways == capacity the set-associative cache is plain LRU."""
        rng = np.random.default_rng(0)
        addrs = rng.integers(0, 64, size=500) * 64
        capacity = 16 * 64
        sa = simulate_set_associative(addrs, capacity, 64, ways=16)
        lru = simulate_lru(addrs, capacity, 64)
        assert sa.misses == lru.misses

    def test_direct_mapped_conflicts(self):
        """Two blocks aliasing to one set thrash a direct-mapped cache."""
        # Capacity 4 blocks, 1 way -> 4 sets; blocks 0 and 4 share set 0.
        addrs = np.tile([0, 4 * 64], 10)
        stats = simulate_set_associative(addrs, 4 * 64, 64, ways=1)
        assert stats.miss_rate == pytest.approx(1.0)

    def test_associativity_resolves_conflicts(self):
        addrs = np.tile([0, 4 * 64], 10)
        stats = simulate_set_associative(addrs, 4 * 64, 64, ways=2)
        assert stats.misses == 2  # compulsory only

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(0, 40), min_size=1, max_size=300),
           st.sampled_from([1, 2, 4]))
    def test_miss_count_bounds(self, blocks, ways):
        """Misses are bounded by compulsory below and accesses above.

        (Note: set-associative LRU is *not* always worse than fully
        associative LRU — partitioning can shield hot blocks from scans —
        so only the universal bounds are asserted.)
        """
        addrs = np.array(blocks) * 64
        capacity = 8 * 64
        sa = simulate_set_associative(addrs, capacity, 64, ways=ways)
        assert sa.misses >= len(set(blocks))  # compulsory at minimum
        assert sa.misses <= len(blocks)

    def test_sequential_streaming_friendly(self):
        addrs = np.arange(64) * 64
        stats = simulate_set_associative(addrs, 16 * 64, 64, ways=4)
        assert stats.misses == 64  # all compulsory, no re-references
