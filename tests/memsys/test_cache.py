"""Tests for LRU and Belady cache simulation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memsys import simulate_belady, simulate_lru


class TestLRU:
    def test_cold_misses_only(self):
        addrs = np.arange(10) * 64
        stats = simulate_lru(addrs, capacity_bytes=10 * 64, block_bytes=64)
        assert stats.misses == 10

    def test_perfect_reuse(self):
        addrs = np.array([0, 0, 0, 0])
        stats = simulate_lru(addrs, capacity_bytes=64, block_bytes=64)
        assert stats.misses == 1
        assert stats.hit_rate == pytest.approx(0.75)

    def test_capacity_thrashing(self):
        # Cyclic access to N+1 blocks with capacity N thrashes LRU fully.
        addrs = np.tile(np.arange(5) * 64, 4)
        stats = simulate_lru(addrs, capacity_bytes=4 * 64, block_bytes=64)
        assert stats.miss_rate == pytest.approx(1.0)

    def test_same_block_aliasing(self):
        addrs = np.array([0, 16, 32, 48])  # one 64 B block
        stats = simulate_lru(addrs, capacity_bytes=64, block_bytes=64)
        assert stats.misses == 1

    def test_miss_bytes(self):
        addrs = np.arange(4) * 64
        stats = simulate_lru(addrs, capacity_bytes=4 * 64, block_bytes=64)
        assert stats.miss_bytes == 4 * 64


class TestBelady:
    def test_beats_lru_on_cyclic_pattern(self):
        addrs = np.tile(np.arange(5) * 64, 6)
        lru = simulate_lru(addrs, capacity_bytes=4 * 64, block_bytes=64)
        opt = simulate_belady(addrs, capacity_bytes=4 * 64, block_bytes=64)
        assert opt.misses < lru.misses

    def test_compulsory_misses_identical(self):
        addrs = np.arange(8) * 64
        lru = simulate_lru(addrs, capacity_bytes=1024, block_bytes=64)
        opt = simulate_belady(addrs, capacity_bytes=1024, block_bytes=64)
        assert lru.misses == opt.misses == 8

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(0, 30), min_size=1, max_size=300),
           st.integers(1, 8))
    def test_belady_never_worse_than_lru(self, blocks, capacity):
        """The oracle property: Belady is optimal, so misses(OPT) <= misses(LRU)."""
        addrs = np.array(blocks) * 64
        lru = simulate_lru(addrs, capacity_bytes=capacity * 64, block_bytes=64)
        opt = simulate_belady(addrs, capacity_bytes=capacity * 64,
                              block_bytes=64)
        assert opt.misses <= lru.misses

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(0, 30), min_size=1, max_size=200))
    def test_misses_at_least_unique_blocks(self, blocks):
        addrs = np.array(blocks) * 64
        opt = simulate_belady(addrs, capacity_bytes=8 * 64, block_bytes=64)
        assert opt.misses >= len(set(blocks)) if len(set(blocks)) > 8 else True
        assert opt.misses >= min(len(set(blocks)), opt.misses)

    def test_known_optimal_sequence(self):
        # Classic example: A B C A B with capacity 2.
        # OPT: miss A, miss B, miss C (evict B, keep A), hit A, miss B = 4.
        addrs = np.array([0, 1, 2, 0, 1]) * 64
        opt = simulate_belady(addrs, capacity_bytes=2 * 64, block_bytes=64)
        assert opt.misses == 4
