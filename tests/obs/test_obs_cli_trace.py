"""End-to-end --trace surface: artifacts a viewer/analyzer can load."""

import json

import pytest

from repro.harness.cli import main


def _strict_load(path):
    def reject(token):
        raise AssertionError(f"non-strict JSON constant {token!r}")
    return json.loads(path.read_text(), parse_constant=reject)


@pytest.fixture(scope="module")
def cluster_trace(tmp_path_factory):
    tmp_path = tmp_path_factory.mktemp("cluster-trace")
    trace = tmp_path / "cluster.trace.json"
    rc = main(["cluster", "--fast", "--arrivals", "deterministic",
               "--rate", "3", "--duration", "2", "--workers", "1",
               "--frames", "3", "--seed", "0",
               "--json-out", str(tmp_path), "--trace", str(trace)])
    assert rc == 0
    return tmp_path, trace


def test_cluster_trace_has_required_spans(cluster_trace):
    _, trace = cluster_trace
    payload = _strict_load(trace)
    events = payload["traceEvents"]
    spans_by_name = {}
    for event in events:
        assert "ph" in event
        if event["ph"] == "X":
            spans_by_name.setdefault(event["name"], []).append(event)
    assert len(spans_by_name.get("engine.round", [])) > 0
    assert len(spans_by_name.get("frame.serve", [])) > 0
    assert len(spans_by_name.get("frame.wait", [])) > 0
    for span in spans_by_name["engine.round"]:
        assert span["dur"] > 0
        assert span["args"]["rays"] >= 0


def test_cluster_trace_lane_metadata_names_workers(cluster_trace):
    _, trace = cluster_trace
    events = _strict_load(trace)["traceEvents"]
    processes = [e["args"]["name"] for e in events
                 if e["ph"] == "M" and e["name"] == "process_name"]
    assert "cluster" in processes
    assert any(label.startswith("worker") for label in processes)


def test_cluster_artifact_carries_metrics(cluster_trace):
    tmp_path, _ = cluster_trace
    payload = _strict_load(tmp_path / "BENCH_cluster.json")
    metrics = payload["metrics"]
    assert metrics["counters"]["cluster.frames"] > 0
    assert metrics["histograms"]["cluster.frame_latency_s"]["count"] > 0


def test_analyze_runs_on_real_trace(cluster_trace, capsys):
    _, trace = cluster_trace
    assert main(["trace", "analyze", str(trace), "--top", "3"]) == 0
    out = capsys.readouterr().out
    assert "event census" in out
    assert "engine round occupancy" in out


def test_serve_trace_smoke(tmp_path):
    trace = tmp_path / "serve.trace.json"
    rc = main(["serve", "--fast", "--workload", "vr-lego",
               "--frames", "2", "--trace", str(trace)])
    assert rc == 0
    events = _strict_load(trace)["traceEvents"]
    names = {e["name"] for e in events if e.get("ph") == "X"}
    assert "serve.round" in names
    assert "frame.serve" in names


def test_trace_flag_rejected_outside_observed_commands(capsys, tmp_path):
    rc = main(["bench", "--quick", "--trace", str(tmp_path / "t.json")])
    assert rc == 2
    assert "--trace applies to" in capsys.readouterr().err


def test_positional_args_rejected_outside_trace_command(capsys):
    assert main(["serve", "analyze", "--fast"]) == 2
    assert "unexpected argument" in capsys.readouterr().err
