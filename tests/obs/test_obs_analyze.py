"""Trace analyzer: pure functions over synthetic events + CLI surface."""

import json

import pytest

from repro.obs.analyze import analyze_trace, format_analysis, load_trace


def _meta(pid, label, tid=None, thread=None):
    events = [{"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
               "args": {"name": label}}]
    if tid is not None:
        events.append({"name": "thread_name", "ph": "M", "pid": pid,
                       "tid": tid, "args": {"name": thread}})
    return events


def _span(name, cat, ts, dur, pid=1, tid=1, **args):
    event = {"name": name, "cat": cat, "ph": "X", "ts": ts, "dur": dur,
             "pid": pid, "tid": tid}
    if args:
        event["args"] = args
    return event


def _instant(name, cat, ts, pid=1, tid=1, **args):
    event = {"name": name, "cat": cat, "ph": "i", "s": "t", "ts": ts,
             "pid": pid, "tid": tid}
    if args:
        event["args"] = args
    return event


def _sample_events():
    return [
        *_meta(1, "worker 0", tid=1, thread="alice"),
        # frame 0: waited 2ms, served 1ms -> wait-critical
        _span("frame.wait", "frame", 0.0, 2000.0, frame=0, session="alice"),
        _span("frame.serve", "frame", 2000.0, 1000.0, frame=0,
              session="alice"),
        # frame 1: waited 0.5ms, served 4ms -> serve-critical, slowest
        _span("frame.wait", "frame", 5000.0, 500.0, frame=1,
              session="alice"),
        _span("frame.serve", "frame", 5500.0, 4000.0, frame=1,
              session="alice"),
        _span("engine.round", "engine", 0.0, 100.0, round=0, rays=1000,
              requests=2, cache_hits=1),
        _span("engine.round", "engine", 100.0, 100.0, round=1, rays=3000,
              requests=1, cache_hits=0),
        _instant("governor.retune", "governor", 4000.0, session="alice",
                 level=1),
        _instant("governor.admit_level", "governor", 1000.0,
                 session="alice", level=2),
        _instant("cache.hit", "cache", 50.0),
    ]


class TestLoadTrace:
    def test_accepts_object_and_bare_array(self, tmp_path):
        events = [_instant("e", "c", 0.0)]
        obj = tmp_path / "obj.json"
        obj.write_text(json.dumps({"traceEvents": events}))
        bare = tmp_path / "bare.json"
        bare.write_text(json.dumps(events))
        assert load_trace(obj) == events
        assert load_trace(bare) == events

    @pytest.mark.parametrize("payload", ['"nope"', '{"events": []}',
                                         '[{"name": "no-ph"}]', '[42]'])
    def test_rejects_malformed(self, tmp_path, payload):
        path = tmp_path / "bad.json"
        path.write_text(payload)
        with pytest.raises(ValueError):
            load_trace(path)


class TestAnalyzeTrace:
    def test_census_counts_spans_and_instants(self):
        analysis = analyze_trace(_sample_events())
        census = {row["cat"]: (row["spans"], row["instants"])
                  for row in analysis["categories"]}
        assert census == {"frame": (4, 0), "engine": (2, 0),
                          "governor": (0, 2), "cache": (0, 1)}

    def test_per_frame_critical_path(self):
        analysis = analyze_trace(_sample_events())
        assert analysis["frames_total"] == 2
        worst, second = analysis["frames"]
        # frame 1 has the larger delivered latency and is serve-bound
        assert worst["frame"] == 1
        assert worst["critical"] == "serve"
        assert worst["latency_ms"] == pytest.approx(4.5)
        assert worst["lane"] == "worker 0/alice"
        assert second["frame"] == 0
        assert second["critical"] == "wait"
        assert second["latency_ms"] == pytest.approx(3.0)

    def test_round_occupancy(self):
        rounds = analyze_trace(_sample_events())["rounds"]
        assert rounds["rounds"] == 2
        assert rounds["total_rays"] == 4000.0
        assert rounds["mean_requests"] == 1.5
        assert rounds["max_cache_hits"] == 1.0

    def test_governor_timeline_sorted_by_time(self):
        timeline = analyze_trace(_sample_events())["governor"]
        assert [row["event"] for row in timeline] \
            == ["governor.admit_level", "governor.retune"]
        assert timeline[0]["ts_ms"] == 1.0

    def test_top_limits_frames_and_slowest(self):
        analysis = analyze_trace(_sample_events(), top=1)
        assert len(analysis["frames"]) == 1
        assert analysis["frames_total"] == 2
        assert len(analysis["slowest"]) == 1
        assert analysis["slowest"][0]["span"] == "frame.serve"
        assert analysis["slowest"][0]["dur_ms"] == pytest.approx(4.0)

    def test_rejects_nonpositive_top(self):
        with pytest.raises(ValueError, match="top"):
            analyze_trace(_sample_events(), top=0)

    def test_empty_trace_analyzes_cleanly(self):
        analysis = analyze_trace([])
        assert analysis["frames_total"] == 0
        assert analysis["rounds"] == {"rounds": 0}
        assert "(no rows)" in format_analysis(analysis)

    def test_format_renders_every_block(self):
        text = format_analysis(analyze_trace(_sample_events()))
        for needle in ("event census", "slowest frames", "round occupancy",
                       "governor timeline", "slowest spans"):
            assert needle in text


class TestCli:
    def _write_trace(self, tmp_path):
        path = tmp_path / "run.trace.json"
        path.write_text(json.dumps({"traceEvents": _sample_events()}))
        return path

    def test_analyze_command(self, tmp_path, capsys):
        from repro.harness.cli import main
        path = self._write_trace(tmp_path)
        assert main(["trace", "analyze", str(path), "--top", "1"]) == 0
        out = capsys.readouterr().out
        assert "event census" in out
        assert "worker 0/alice" in out

    def test_analyze_missing_file(self, tmp_path, capsys):
        from repro.harness.cli import main
        assert main(["trace", "analyze", str(tmp_path / "no.json")]) == 2
        assert "no.json" in capsys.readouterr().err

    def test_trace_requires_analyze_subcommand(self, capsys):
        from repro.harness.cli import main
        assert main(["trace"]) == 2
        assert "analyze" in capsys.readouterr().err

    def test_analyze_rejects_bad_top(self, tmp_path, capsys):
        from repro.harness.cli import main
        path = self._write_trace(tmp_path)
        assert main(["trace", "analyze", str(path), "--top", "0"]) == 2
        assert "--top" in capsys.readouterr().err
