"""Activation backbone: routing, nesting, and the disabled-path cost."""

import time

from repro.obs import (Observation, Tracer, MetricsRegistry, activate,
                       current, current_metrics, current_tracer,
                       metric_inc, metric_observe, metric_set, section)
from repro.perf.timer import Timer
from repro.perf.timer import activate as timer_activate


class TestActivation:
    def test_inactive_by_default(self):
        assert current() is None
        assert current_tracer() is None
        assert current_metrics() is None

    def test_activate_exposes_and_restores(self):
        obs = Observation(tracer=Tracer(), metrics=MetricsRegistry())
        with activate(obs) as active:
            assert active is obs
            assert current_tracer() is obs.tracer
            assert current_metrics() is obs.metrics
        assert current() is None

    def test_nested_activation_shadows_then_restores(self):
        outer = Observation(metrics=MetricsRegistry())
        inner = Observation(metrics=MetricsRegistry())
        with activate(outer):
            with activate(inner):
                metric_inc("n")
            metric_inc("n")
        assert outer.metrics.counter("n").value == 1
        assert inner.metrics.counter("n").value == 1

    def test_restores_on_exception(self):
        try:
            with activate(Observation()):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert current() is None


class TestGuardedHelpers:
    def test_noops_without_observation(self):
        metric_inc("a")
        metric_observe("b", 1.0)
        metric_set("c", 1.0)
        with section("d"):
            pass  # nothing raised, nothing recorded anywhere

    def test_noops_with_partial_observation(self):
        obs = Observation(tracer=Tracer())  # no metrics, no timer
        with activate(obs):
            metric_inc("a")
            with section("d"):
                pass
        assert len(obs.tracer) == 0

    def test_record_when_active(self):
        obs = Observation(timer=Timer(), metrics=MetricsRegistry())
        with activate(obs):
            metric_inc("hits", 3)
            metric_observe("lat", 0.25)
            metric_set("fleet", 2)
            with section("step"):
                pass
        assert obs.metrics.counter("hits").value == 3
        assert obs.metrics.histogram("lat").count == 1
        assert obs.metrics.gauge("fleet").value == 2.0
        assert obs.timer.stats()["step"].calls == 1


class TestTimerBridge:
    def test_timer_activate_preserves_enclosing_sinks(self):
        """perf.timer.activate layers a timer onto the active tracer and
        metrics instead of clobbering them."""
        obs = Observation(tracer=Tracer(), metrics=MetricsRegistry())
        timer = Timer()
        with activate(obs):
            with timer_activate(timer):
                assert current_tracer() is obs.tracer
                assert current_metrics() is obs.metrics
                with section("inner"):
                    pass
            assert current() is obs
        assert "inner" in timer.stats()

    def test_timer_activate_standalone(self):
        timer = Timer()
        with timer_activate(timer):
            assert current_tracer() is None
            with section("solo"):
                pass
        assert "solo" in timer.stats()
        assert current() is None


def test_disabled_helpers_overhead_bound():
    """With no observation active, the guarded helpers must stay
    effectively free — product hot paths (engine round loop, cache
    get/put, pool dispatch) call them unconditionally.  Same generous
    bound and rationale as tests/perf/test_timer.py's
    test_noop_overhead_bound: ~20x the typical cost so loaded CI
    machines cannot flake it, while still catching an accidental
    always-on slow path.
    """
    iterations = 50_000
    start = time.perf_counter_ns()
    for _ in range(iterations):
        metric_inc("noop")
        metric_observe("noop", 1.0)
        if current_tracer() is not None:  # the product-code guard idiom
            raise AssertionError("tracer unexpectedly active")
    per_iter_ns = (time.perf_counter_ns() - start) / iterations
    assert per_iter_ns < 2_000, f"disabled obs cost {per_iter_ns:.0f} ns"
