"""Tracer: lane registration, event shape, scoping, strict-JSON export."""

import json

from repro.obs import Tracer


def _events(tracer):
    return tracer.to_payload()["traceEvents"]


class TestLanes:
    def test_process_ids_are_stable_and_labelled(self):
        tracer = Tracer()
        pid = tracer.process("cluster")
        assert tracer.process("cluster") == pid
        other = tracer.process("worker 0")
        assert other != pid
        meta = [e for e in _events(tracer) if e["ph"] == "M"
                and e["name"] == "process_name"]
        assert {e["args"]["name"] for e in meta} == {"cluster", "worker 0"}
        assert len(meta) == 2  # registered once, not per lookup

    def test_thread_ids_are_per_process(self):
        tracer = Tracer()
        a, b = tracer.process("a"), tracer.process("b")
        assert tracer.thread(a, "s0") == tracer.thread(b, "s0")  # both tid 1
        assert tracer.thread(a, "s1") != tracer.thread(a, "s0")
        meta = [e for e in _events(tracer) if e["ph"] == "M"
                and e["name"] == "thread_name"]
        assert len(meta) == 3


class TestEvents:
    def test_complete_span_shape(self):
        tracer = Tracer()
        pid = tracer.process("soc")
        tid = tracer.thread(pid, "session")
        tracer.complete("frame.serve", "frame", 10.0, 5.0, pid, tid,
                        args={"frame": 0})
        (span,) = [e for e in _events(tracer) if e["ph"] == "X"]
        assert span == {"name": "frame.serve", "cat": "frame", "ph": "X",
                        "ts": 10.0, "dur": 5.0, "pid": pid, "tid": tid,
                        "args": {"frame": 0}}

    def test_negative_duration_clamped(self):
        tracer = Tracer()
        tracer.complete("x", "c", 0.0, -3.0, 1, 1)
        (span,) = [e for e in _events(tracer) if e["ph"] == "X"]
        assert span["dur"] == 0.0

    def test_instant_shape(self):
        tracer = Tracer()
        tracer.instant("cache.hit", "cache", 2.0, 1, 1)
        (instant,) = [e for e in _events(tracer) if e["ph"] == "i"]
        assert instant["s"] == "t"
        assert instant["ts"] == 2.0

    def test_len_counts_events(self):
        tracer = Tracer()
        assert len(tracer) == 0
        tracer.process("p")
        tracer.instant("e", "c", 0.0, 1, 1)
        assert len(tracer) == 2  # metadata + instant


class TestScope:
    def test_default_scope_makes_engine_lane(self):
        tracer = Tracer()
        pid, base = tracer.current_scope()
        assert base == 0.0
        assert pid == tracer.process("engine")

    def test_scope_nests_and_restores(self):
        tracer = Tracer()
        with tracer.scope("worker 0", base_us=100.0) as outer_pid:
            assert tracer.current_scope() == (outer_pid, 100.0)
            with tracer.scope("worker 1", base_us=200.0) as inner_pid:
                assert tracer.current_scope() == (inner_pid, 200.0)
            assert tracer.current_scope() == (outer_pid, 100.0)
        assert tracer.current_scope("fallback")[0] \
            == tracer.process("fallback")

    def test_scope_pops_on_exception(self):
        tracer = Tracer()
        try:
            with tracer.scope("worker 0", base_us=1.0):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert tracer.current_scope()[1] == 0.0


def test_write_round_trips_strict_json(tmp_path):
    tracer = Tracer()
    pid = tracer.process("soc")
    tracer.complete("span", "cat", 0.0, 1.0, pid, 1)
    path = tracer.write(tmp_path / "out" / "run.trace.json")
    payload = json.loads(path.read_text())
    assert payload["displayTimeUnit"] == "ms"
    assert [e["name"] for e in payload["traceEvents"]] \
        == ["process_name", "span"]
