"""MetricsRegistry: counter/gauge/histogram semantics and snapshots."""

import json
import math

import pytest

from repro.harness.reporting import safe_json_dumps
from repro.obs import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.metrics import DEFAULT_LATENCY_BOUNDS, QUANTILES


class TestCounter:
    def test_accumulates(self):
        counter = Counter("c")
        counter.add()
        counter.add(4)
        assert counter.value == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="cannot add"):
            Counter("c").add(-1)


class TestGauge:
    def test_last_write_wins(self):
        gauge = Gauge("g")
        gauge.set(3)
        gauge.set(1.5)
        assert gauge.value == 1.5


class TestHistogram:
    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError, match="ascending"):
            Histogram("h", bounds=())
        with pytest.raises(ValueError, match="ascending"):
            Histogram("h", bounds=(1.0, 1.0, 2.0))

    def test_empty_snapshot_is_all_zero(self):
        snap = Histogram("h").snapshot()
        assert snap["count"] == 0
        assert snap["buckets"] == {}
        assert all(snap[key] == 0.0 for key, _ in QUANTILES)

    def test_counts_mean_min_max(self):
        hist = Histogram("h")
        for value in (0.001, 0.004, 0.04):
            hist.observe(value)
        assert hist.count == 3
        assert hist.min_value == 0.001
        assert hist.max_value == 0.04
        assert hist.mean == pytest.approx(0.045 / 3)

    def test_bucket_edges_are_upper_inclusive_lower_exclusive(self):
        # bisect_left(bounds, v) puts a value exactly on an edge into
        # the bucket whose upper edge it is.
        hist = Histogram("h", bounds=(1.0, 2.0))
        for value in (0.5, 1.0, 1.5, 2.0, 99.0):
            hist.observe(value)
        assert hist.counts == [2, 2, 1]

    def test_overflow_bucket_keeps_quantiles_finite(self):
        hist = Histogram("h")
        beyond = DEFAULT_LATENCY_BOUNDS[-1] * 10
        for _ in range(100):
            hist.observe(beyond)
        for key, pct in QUANTILES:
            value = hist.percentile(pct)
            assert math.isfinite(value)
            assert value == beyond  # clamped to the observed max

    def test_percentiles_are_ordered_and_clamped(self):
        hist = Histogram("h")
        for i in range(1, 101):
            hist.observe(i / 1000.0)  # 1ms .. 100ms
        p50, p95, p99 = (hist.percentile(p) for p in (50, 95, 99))
        assert hist.min_value <= p50 <= p95 <= p99 <= hist.max_value
        # The median of a uniform 1..100ms sweep sits near 50ms.
        assert 0.02 <= p50 <= 0.08

    def test_single_sample_quantiles_collapse_to_it(self):
        hist = Histogram("h")
        hist.observe(0.0042)
        assert all(hist.percentile(pct) == 0.0042 for _, pct in QUANTILES)

    def test_snapshot_shape_and_sparse_buckets(self):
        hist = Histogram("h", bounds=(1.0, 2.0, 5.0))
        hist.observe(0.5)
        hist.observe(7.0)
        snap = hist.snapshot()
        assert snap["count"] == 2
        assert snap["sum"] == 7.5
        assert snap["buckets"] == {"1.0": 1, "inf": 1}


class TestRegistry:
    def test_get_or_create_is_stable(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")
        assert len(registry) == 3

    def test_shorthands_record(self):
        registry = MetricsRegistry()
        registry.inc("hits", 2)
        registry.set("fleet", 4)
        registry.observe("lat", 0.01)
        snap = registry.snapshot()
        assert snap["counters"] == {"hits": 2}
        assert snap["gauges"] == {"fleet": 4.0}
        assert snap["histograms"]["lat"]["count"] == 1

    def test_snapshot_is_strict_json(self):
        registry = MetricsRegistry()
        registry.observe("lat", 1e9)  # overflow bucket in play
        text = safe_json_dumps(registry.snapshot())
        def reject(token):
            raise AssertionError(f"non-strict constant {token!r}")
        back = json.loads(text, parse_constant=reject)
        assert back["histograms"]["lat"]["p99.9"] == 1e9


class TestHistogramNonFinite:
    """Non-finite observations must be dropped, not folded in.

    Pre-fix, ``observe(nan)`` poisoned ``min_value``/``max_value`` (and
    NaN's undefined ordering under ``bisect_left`` put it in an
    arbitrary bucket), making the strict-JSON (``allow_nan=False``)
    artifact write fail at the end of an otherwise-healthy run.
    """

    @pytest.mark.parametrize("bad", [math.nan, math.inf, -math.inf])
    def test_dropped_and_counted(self, bad):
        histogram = Histogram("lat")
        histogram.observe(0.01)
        histogram.observe(bad)
        assert histogram.count == 1
        assert histogram.dropped == 1
        assert histogram.mean == pytest.approx(0.01)
        assert histogram.min_value == histogram.max_value == 0.01

    def test_snapshot_stays_strict_json_after_nan(self):
        registry = MetricsRegistry()
        registry.observe("lat", 0.02)
        registry.observe("lat", math.nan)
        registry.observe("lat", math.inf)
        text = safe_json_dumps(registry.snapshot())

        def reject(token):
            raise AssertionError(f"non-strict constant {token!r}")

        back = json.loads(text, parse_constant=reject)
        row = back["histograms"]["lat"]
        assert row["count"] == 1
        assert row["dropped"] == 2
        assert all(math.isfinite(row[key]) for key, _ in QUANTILES)

    def test_dropped_key_absent_when_clean(self):
        histogram = Histogram("lat")
        histogram.observe(0.01)
        assert "dropped" not in histogram.snapshot()

    def test_only_nan_observations_snapshot_as_empty(self):
        histogram = Histogram("lat")
        histogram.observe(math.nan)
        row = histogram.snapshot()
        assert row["count"] == 0
        assert row["dropped"] == 1
        assert row["buckets"] == {}
