"""Observation must be read-only: traced runs == untraced runs, bit for bit.

The tracer/metrics hooks live inside the engine round loop, the cluster
simulator, the caches, and the governors — right where a careless
instrumentation change could perturb scheduling or RNG state.  These
tests run the same seeded workload with observability off and fully on
and require *identical* results, so any instrumentation that leaks into
measured state fails loudly.
"""

import dataclasses

import pytest

from repro.harness.configs import FAST
from repro.harness.serve import run_serve
from repro.cluster import simulate_cluster
from repro.obs import MetricsRegistry, Observation, Tracer, activate
from repro.workloads import reset_caches

MIX = "vr-lego:2,dolly-chair"


def _observed(fn):
    """Run ``fn`` under a full Observation; also sanity-check it recorded."""
    tracer, metrics = Tracer(), MetricsRegistry()
    with activate(Observation(tracer=tracer, metrics=metrics)):
        result = fn()
    assert len(tracer) > 0, "traced run recorded no events"
    assert len(metrics) > 0, "traced run recorded no metrics"
    return result


def test_serve_bit_parity():
    def run():
        reset_caches()
        return run_serve(config=FAST, workloads=MIX, frames=3, seed=3,
                         governor="adaptive")
    plain_rows, plain_summary = run()
    traced_rows, traced_summary = _observed(run)
    assert traced_rows == plain_rows
    assert traced_summary == plain_summary


def test_cluster_bit_parity():
    def run():
        reset_caches()
        return simulate_cluster(
            MIX, FAST, arrivals="poisson", rate_hz=4.0, duration_s=3.0,
            seed=7, workers=2, queue_limit=2, frames=4,
            governor="adaptive", slo_fps=30.0)
    plain = run()
    traced = _observed(run)
    assert dataclasses.asdict(traced) == dataclasses.asdict(plain)


def test_cluster_parity_with_parallel_backend():
    # The parallel pool dispatch path has its own instrumentation hook.
    def run():
        reset_caches()
        return simulate_cluster(
            MIX, FAST, arrivals="deterministic", rate_hz=3.0,
            duration_s=2.0, seed=1, workers=1, frames=3,
            backend="parallel")
    plain = run()
    traced = _observed(run)
    assert dataclasses.asdict(traced) == dataclasses.asdict(plain)


def test_metrics_snapshot_in_artifact_is_finite(tmp_path):
    """Every histogram quantile in an observed run's artifact is finite."""
    import json
    import math
    from repro.harness.reporting import write_bench_json

    def run():
        reset_caches()
        return simulate_cluster(MIX, FAST, arrivals="deterministic",
                                rate_hz=3.0, duration_s=2.0, seed=0,
                                workers=1, frames=3)

    with activate(Observation(metrics=MetricsRegistry())):
        run()
        path = write_bench_json(tmp_path, "cluster", [], 0.1,
                                kind="cluster")
    payload = json.loads(path.read_text())
    histograms = payload["metrics"]["histograms"]
    assert "cluster.frame_latency_s" in histograms
    for name, snap in histograms.items():
        assert snap["count"] > 0
        for key in ("p50", "p95", "p99", "p99.9"):
            assert isinstance(snap[key], float) \
                and math.isfinite(snap[key]), (name, key, snap[key])
