"""Tests for the end-to-end SPARW rendering pipeline."""

import numpy as np
import pytest

from repro.core.sparw import SparwRenderer
from repro.metrics import mean_psnr


@pytest.fixture(scope="module")
def sparw_result(fast_renderer, fast_sequence, fast_config):
    from repro.harness.configs import make_camera
    trajectory, _ = fast_sequence
    camera = make_camera(fast_config)
    sparw = SparwRenderer(fast_renderer, camera, window=4)
    return sparw.render_sequence(trajectory.poses)


class TestSequenceStructure:
    def test_frame_count(self, sparw_result, fast_config):
        assert sparw_result.num_frames == fast_config.num_frames

    def test_reference_count_matches_window(self, sparw_result, fast_config):
        expected = -(-fast_config.num_frames // 4)  # ceil(frames / window)
        assert sparw_result.num_references == expected

    def test_first_frame_is_reference_boundary(self, sparw_result):
        assert sparw_result.records[0].new_reference

    def test_sparse_work_much_smaller_than_reference(self, sparw_result):
        sparse = sparw_result.total_sparse_stats()
        reference = sparw_result.total_reference_stats()
        # Sparse re-rendering must be a small fraction of full-frame work.
        assert sparse.num_rays < 0.35 * reference.num_rays

    def test_mean_fractions_partition(self, sparw_result):
        for record in sparw_result.records:
            c = record.classification
            assert (c.warped_fraction + c.disoccluded_fraction
                    + c.void_fraction) == pytest.approx(1.0)

    def test_overlap_high_on_smooth_orbit(self, sparw_result):
        overlaps = [r.overlap for r in sparw_result.records]
        assert np.mean(overlaps) > 0.85


class TestQuality:
    def test_close_to_full_rendering(self, sparw_result, fast_renderer,
                                     fast_sequence, fast_config):
        from repro.harness.configs import make_camera
        trajectory, gt = fast_sequence
        camera = make_camera(fast_config)
        baseline = [fast_renderer.render_frame(camera.with_pose(p))[0]
                    for p in trajectory.poses]
        base_psnr = mean_psnr([f.image for f in baseline],
                              [f.image for f in gt])
        sparw_psnr = mean_psnr([f.image for f in sparw_result.frames],
                               [f.image for f in gt])
        assert sparw_psnr > base_psnr - 1.5

    def test_depth_maps_produced(self, sparw_result):
        frame = sparw_result.frames[2]
        assert np.isfinite(frame.depth[frame.hit]).all()
        assert np.isinf(frame.depth[~frame.hit]).all()


class TestPolicies:
    def test_on_trajectory_accumulates_error(self, fast_renderer,
                                             fast_sequence, fast_config):
        from repro.harness.configs import make_camera
        trajectory, gt = fast_sequence
        camera = make_camera(fast_config)
        chained = SparwRenderer(fast_renderer, camera, window=8,
                                policy="on_trajectory")
        result = chained.render_sequence(trajectory.poses)
        gt_images = [f.image for f in gt]
        early = mean_psnr([result.frames[1].image], [gt_images[1]])
        late = mean_psnr([result.frames[-1].image], [gt_images[-1]])
        assert late < early + 0.5  # error accumulates (or at best holds)

    def test_unknown_policy_rejected(self, fast_renderer, fast_config):
        from repro.harness.configs import make_camera
        with pytest.raises(ValueError):
            SparwRenderer(fast_renderer, make_camera(fast_config),
                          policy="bogus")

    def test_angle_threshold_increases_sparse_work(self, fast_renderer,
                                                   fast_sequence,
                                                   fast_config):
        from repro.harness.configs import make_camera
        trajectory, _ = fast_sequence
        camera = make_camera(fast_config)
        lax = SparwRenderer(fast_renderer, camera, window=4)
        strict = SparwRenderer(fast_renderer, camera, window=4,
                               angle_threshold_deg=0.2)
        lax_result = lax.render_sequence(trajectory.poses[:6])
        strict_result = strict.render_sequence(trajectory.poses[:6])
        assert (strict_result.total_sparse_stats().num_rays
                >= lax_result.total_sparse_stats().num_rays)
