"""Tests for the fully-streaming scheduler."""

import numpy as np
import pytest

from repro.core.streaming import (
    FullyStreamingScheduler,
    reverted_traffic_fraction,
    split_by_reversion,
    streaming_execution_order,
)


@pytest.fixture(scope="module")
def scheduler():
    return FullyStreamingScheduler(buffer_bytes=32 * 1024,
                                   baseline_cache_bytes=64 * 1024)


class TestScheduleGroup:
    def test_streamable_group_fully_streaming(self, gather_groups, scheduler):
        report, rit, layout = scheduler.schedule_group(gather_groups[0])
        assert report.streamable
        assert report.fs_random_bytes == 0
        assert rit is not None and layout is not None

    def test_fs_traffic_bounded_by_model_and_occupancy(self, gather_groups,
                                                       scheduler):
        report, rit, layout = scheduler.schedule_group(gather_groups[0])
        assert report.fs_streaming_bytes == (report.occupied_mvoxels
                                             * layout.mvoxel_bytes)
        assert report.occupied_mvoxels <= report.total_mvoxels

    def test_rit_bytes_accounted(self, gather_groups, scheduler):
        report, rit, _ = scheduler.schedule_group(gather_groups[0])
        assert report.rit_bytes == rit.table_bytes

    def test_baseline_includes_cache_filtering(self, gather_groups):
        no_cache = FullyStreamingScheduler(baseline_cache_bytes=None)
        cached = FullyStreamingScheduler(baseline_cache_bytes=1024 * 1024)
        a, _, _ = no_cache.schedule_group(gather_groups[0])
        b, _, _ = cached.schedule_group(gather_groups[0])
        assert b.baseline_bytes <= a.baseline_bytes

    def test_nonstreamable_group_reverts(self, scheduler, lego_scene):
        from repro.nerf import HashGridField, VoxelGridField
        reference = VoxelGridField.bake(lego_scene, resolution=32)
        field = HashGridField.bake(lego_scene, num_levels=4,
                                   finest_resolution=32, table_size=1 << 12,
                                   reference=reference)
        pts = np.random.default_rng(0).uniform(-1.0, 1.0, size=(500, 3))
        hashed = [g for g in field.gather_plan(pts) if not g.streamable][0]
        report, rit, layout = scheduler.schedule_group(hashed)
        assert not report.streamable
        assert rit is None and layout is None
        assert report.fs_bytes == report.baseline_bytes


class TestAggregateReport:
    def test_totals_sum_groups(self, gather_groups, scheduler):
        report = scheduler.analyze(gather_groups)
        assert report.baseline_bytes == sum(g.baseline_bytes
                                            for g in report.groups)
        assert report.fs_bytes == sum(g.fs_bytes for g in report.groups)

    def test_streaming_fraction_of_pure_grid_is_one(self, gather_groups,
                                                    scheduler):
        report = scheduler.analyze(gather_groups)
        assert report.fs_streaming_fraction == pytest.approx(1.0)


class TestReversionHelpers:
    def test_split(self, gather_groups):
        streamable, reverted = split_by_reversion(gather_groups)
        assert len(streamable) + len(reverted) == len(gather_groups)

    def test_reverted_fraction_zero_for_grid(self, gather_groups):
        assert reverted_traffic_fraction(gather_groups) == 0.0

    def test_reverted_fraction_for_hash(self, lego_scene):
        from repro.nerf import HashGridField, VoxelGridField
        reference = VoxelGridField.bake(lego_scene, resolution=32)
        field = HashGridField.bake(lego_scene, num_levels=4,
                                   finest_resolution=32, table_size=1 << 12,
                                   reference=reference)
        pts = np.random.default_rng(0).uniform(-1.0, 1.0, size=(300, 3))
        frac = reverted_traffic_fraction(field.gather_plan(pts))
        assert 0.0 < frac < 1.0


class TestExecutionOrder:
    def test_order_is_permutation(self, gather_groups):
        order = streaming_execution_order(gather_groups[0])
        assert np.sort(order).tolist() == list(range(
            gather_groups[0].num_samples))

    def test_reordered_interpolation_identical(self, small_field):
        """Memory-centric reordering must not change rendered values."""
        pts = np.random.default_rng(1).uniform(-1.2, 1.2, size=(400, 3))
        group = small_field.gather_plan(pts)[0]
        order = streaming_execution_order(group)
        direct = small_field.interpolate(pts)
        reordered = small_field.interpolate(pts[order])
        np.testing.assert_allclose(reordered, direct[order], atol=1e-12)
