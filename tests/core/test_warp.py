"""Tests for SPARW forward warping (steps 1-3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sparw import VOID_FAR_DEPTH, classify_pixels, warp_frame
from repro.geometry import look_at
from repro.scenes import RayTracer, orbit_trajectory
from repro.scenes.raytracer import Frame


@pytest.fixture(scope="module")
def orbit(lego_scene):
    return orbit_trajectory(6, degrees_per_frame=1.0)


@pytest.fixture(scope="module")
def frames(lego_scene, small_camera, orbit):
    tracer = RayTracer(lego_scene)
    return [tracer.render(small_camera.with_pose(p)) for p in orbit.poses]


class TestIdentityWarp:
    def test_same_pose_reproduces_frame(self, frames, small_camera, orbit):
        ref = frames[0]
        cam = small_camera.with_pose(orbit[0])
        warp = warp_frame(ref, cam, cam)
        covered = warp.covered
        assert covered.mean() > 0.9 * ref.hit.mean()
        np.testing.assert_allclose(warp.image[covered],
                                   ref.image[covered], atol=0.05)

    def test_identity_warp_angle_zero(self, frames, small_camera, orbit):
        cam = small_camera.with_pose(orbit[0])
        warp = warp_frame(frames[0], cam, cam)
        assert warp.warp_angle_deg[warp.covered].max() < 0.01

    def test_void_pixels_classified(self, frames, small_camera, orbit):
        cam = small_camera.with_pose(orbit[0])
        warp = warp_frame(frames[0], cam, cam)
        # Background pixels in the reference must come back as void.
        bg = ~frames[0].hit
        assert warp.void[bg].mean() > 0.95


class TestAdjacentWarp:
    def test_high_coverage(self, frames, small_camera, orbit):
        warp = warp_frame(frames[0], small_camera.with_pose(orbit[0]),
                          small_camera.with_pose(orbit[1]))
        assert warp.hole_mask.mean() < 0.06

    def test_warped_colors_match_target_render(self, frames, small_camera,
                                               orbit):
        warp = warp_frame(frames[0], small_camera.with_pose(orbit[0]),
                          small_camera.with_pose(orbit[1]))
        target = frames[1]
        both = warp.covered & target.hit
        err = np.abs(warp.image[both] - target.image[both]).mean()
        assert err < 0.08

    def test_depth_consistent_with_target(self, frames, small_camera, orbit):
        warp = warp_frame(frames[0], small_camera.with_pose(orbit[0]),
                          small_camera.with_pose(orbit[1]))
        target = frames[1]
        both = warp.covered & target.hit
        err = np.abs(warp.depth[both] - target.depth[both])
        assert np.median(err) < 0.05

    def test_warp_angle_scales_with_pose_delta(self, frames, small_camera,
                                               orbit):
        near = warp_frame(frames[0], small_camera.with_pose(orbit[0]),
                          small_camera.with_pose(orbit[1]))
        far = warp_frame(frames[0], small_camera.with_pose(orbit[0]),
                         small_camera.with_pose(orbit[5]))
        assert (far.warp_angle_deg[far.covered].mean()
                > near.warp_angle_deg[near.covered].mean())

    def test_hole_mask_disjoint_from_covered_and_void(self, frames,
                                                      small_camera, orbit):
        warp = warp_frame(frames[0], small_camera.with_pose(orbit[0]),
                          small_camera.with_pose(orbit[2]))
        assert not (warp.covered & warp.void).any()
        assert not (warp.hole_mask & warp.covered).any()
        assert not (warp.hole_mask & warp.void).any()


class TestPinholeFilling:
    def test_filling_reduces_holes(self, frames, small_camera, orbit):
        raw = warp_frame(frames[0], small_camera.with_pose(orbit[0]),
                         small_camera.with_pose(orbit[2]),
                         fill_pinholes=False)
        filled = warp_frame(frames[0], small_camera.with_pose(orbit[0]),
                            small_camera.with_pose(orbit[2]),
                            fill_pinholes=True)
        assert filled.hole_mask.sum() <= raw.hole_mask.sum()

    def test_resolution_mismatch_rejected(self, frames, small_camera, orbit):
        bad_camera = small_camera.scaled(0.5).with_pose(orbit[0])
        with pytest.raises(ValueError):
            warp_frame(frames[0], bad_camera,
                       small_camera.with_pose(orbit[1]))


class TestVoidFarPlane:
    def test_far_depth_constant_is_far(self, frames):
        assert VOID_FAR_DEPTH > 100.0 * np.nanmax(
            np.where(np.isfinite(frames[0].depth), frames[0].depth, 0.0))


def synthetic_frame(camera, depth_value=2.5, void_rows=0):
    """A flat-plane frame at constant depth; top `void_rows` rows are void."""
    h, w = camera.height, camera.width
    depth = np.full((h, w), float(depth_value))
    hit = np.ones((h, w), dtype=bool)
    if void_rows:
        depth[:void_rows] = np.inf
        hit[:void_rows] = False
    image = np.linspace(0.0, 1.0, h * w * 3).reshape(h, w, 3)
    return Frame(image=image, depth=depth, hit=hit, c2w=camera.c2w.copy())


class TestEdgeCases:
    def test_all_void_reference(self, small_camera, orbit):
        """A reference that saw only background warps to void, never holes."""
        ref_camera = small_camera.with_pose(orbit[0])
        all_void = synthetic_frame(ref_camera,
                                   void_rows=ref_camera.height)
        warp = warp_frame(all_void, ref_camera,
                          small_camera.with_pose(orbit[1]))
        assert not warp.covered.any()
        # The far-plane splats keep carrying "this direction is empty".
        assert warp.void.mean() > 0.9
        classification = classify_pixels(warp)
        assert not classification.warped.any()
        assert not (classification.disoccluded & warp.void).any()

    def test_zero_overlap_target_pose(self, frames, small_camera, orbit):
        """A target looking away from the scene shares no content at all."""
        eye = orbit[0][:3, 3]
        away = look_at(eye, eye + (eye - np.zeros(3)))  # look outward
        warp = warp_frame(frames[0], small_camera.with_pose(orbit[0]),
                          small_camera.with_pose(away))
        assert not warp.covered.any()
        classification = classify_pixels(warp)
        # Everything not void is a disocclusion: full re-render needed.
        assert (classification.disoccluded_fraction
                + classification.void_fraction) == pytest.approx(1.0)

    def test_void_far_splats_never_disoccluded(self, frames, small_camera,
                                               orbit):
        """Pixels covered by VOID_FAR_DEPTH splats are void, not holes."""
        for target_pose in (orbit[1], orbit[3], orbit[5]):
            warp = warp_frame(frames[0], small_camera.with_pose(orbit[0]),
                              small_camera.with_pose(target_pose))
            for phi in (None, 0.1):
                classification = classify_pixels(warp,
                                                 angle_threshold_deg=phi)
                assert not (classification.disoccluded & warp.void).any()
                assert not (classification.warped & warp.void).any()

    def test_half_void_reference_partitions(self, small_camera, orbit):
        ref_camera = small_camera.with_pose(orbit[0])
        half = synthetic_frame(ref_camera,
                               void_rows=ref_camera.height // 2)
        warp = warp_frame(half, ref_camera, small_camera.with_pose(orbit[2]))
        assert warp.covered.any() and warp.void.any()
        classification = classify_pixels(warp)
        total = (classification.warped_fraction
                 + classification.disoccluded_fraction
                 + classification.void_fraction)
        assert total == pytest.approx(1.0)


class TestWarpProperties:
    """Hypothesis invariants over random target poses (pure numpy, fast)."""

    @settings(max_examples=15, deadline=None)
    @given(angle_deg=st.floats(min_value=-25.0, max_value=25.0),
           height=st.floats(min_value=0.2, max_value=1.4),
           void_rows=st.integers(min_value=0, max_value=48))
    def test_partition_and_void_invariants(self, angle_deg, height,
                                           void_rows):
        from repro.geometry import Intrinsics, PinholeCamera
        camera = PinholeCamera(Intrinsics.from_fov(48, 48, 45.0))
        ref_pose = look_at([3.0, 0.8, 0.0], [0.0, 0.0, 0.0])
        a = np.radians(angle_deg)
        tgt_pose = look_at([3.0 * np.cos(a), height, 3.0 * np.sin(a)],
                           [0.0, 0.0, 0.0])
        reference = synthetic_frame(camera.with_pose(ref_pose),
                                    void_rows=void_rows)
        warp = warp_frame(reference, camera.with_pose(ref_pose),
                          camera.with_pose(tgt_pose))

        # The three masks partition the target frame.
        assert not (warp.covered & warp.void).any()
        assert not (warp.hole_mask & (warp.covered | warp.void)).any()
        assert (warp.covered | warp.void | warp.hole_mask).all()

        # Far-plane (void) splats are never promoted to disocclusions,
        # with or without the warping-angle threshold.
        for phi in (None, 1.0):
            classification = classify_pixels(warp, angle_threshold_deg=phi)
            assert not (classification.disoccluded & warp.void).any()

        # Covered pixels carry finite depth; uncovered carry +inf.
        assert np.isfinite(warp.depth[warp.covered]).all()
        assert np.isinf(warp.depth[~warp.covered]).all()
