"""Tests for SPARW forward warping (steps 1-3)."""

import numpy as np
import pytest

from repro.core.sparw import VOID_FAR_DEPTH, warp_frame
from repro.geometry import rotation_angle_deg
from repro.scenes import RayTracer, orbit_trajectory


@pytest.fixture(scope="module")
def orbit(lego_scene):
    return orbit_trajectory(6, degrees_per_frame=1.0)


@pytest.fixture(scope="module")
def frames(lego_scene, small_camera, orbit):
    tracer = RayTracer(lego_scene)
    return [tracer.render(small_camera.with_pose(p)) for p in orbit.poses]


class TestIdentityWarp:
    def test_same_pose_reproduces_frame(self, frames, small_camera, orbit):
        ref = frames[0]
        cam = small_camera.with_pose(orbit[0])
        warp = warp_frame(ref, cam, cam)
        covered = warp.covered
        assert covered.mean() > 0.9 * ref.hit.mean()
        np.testing.assert_allclose(warp.image[covered],
                                   ref.image[covered], atol=0.05)

    def test_identity_warp_angle_zero(self, frames, small_camera, orbit):
        cam = small_camera.with_pose(orbit[0])
        warp = warp_frame(frames[0], cam, cam)
        assert warp.warp_angle_deg[warp.covered].max() < 0.01

    def test_void_pixels_classified(self, frames, small_camera, orbit):
        cam = small_camera.with_pose(orbit[0])
        warp = warp_frame(frames[0], cam, cam)
        # Background pixels in the reference must come back as void.
        bg = ~frames[0].hit
        assert warp.void[bg].mean() > 0.95


class TestAdjacentWarp:
    def test_high_coverage(self, frames, small_camera, orbit):
        warp = warp_frame(frames[0], small_camera.with_pose(orbit[0]),
                          small_camera.with_pose(orbit[1]))
        assert warp.hole_mask.mean() < 0.06

    def test_warped_colors_match_target_render(self, frames, small_camera,
                                               orbit):
        warp = warp_frame(frames[0], small_camera.with_pose(orbit[0]),
                          small_camera.with_pose(orbit[1]))
        target = frames[1]
        both = warp.covered & target.hit
        err = np.abs(warp.image[both] - target.image[both]).mean()
        assert err < 0.08

    def test_depth_consistent_with_target(self, frames, small_camera, orbit):
        warp = warp_frame(frames[0], small_camera.with_pose(orbit[0]),
                          small_camera.with_pose(orbit[1]))
        target = frames[1]
        both = warp.covered & target.hit
        err = np.abs(warp.depth[both] - target.depth[both])
        assert np.median(err) < 0.05

    def test_warp_angle_scales_with_pose_delta(self, frames, small_camera,
                                               orbit):
        near = warp_frame(frames[0], small_camera.with_pose(orbit[0]),
                          small_camera.with_pose(orbit[1]))
        far = warp_frame(frames[0], small_camera.with_pose(orbit[0]),
                         small_camera.with_pose(orbit[5]))
        assert (far.warp_angle_deg[far.covered].mean()
                > near.warp_angle_deg[near.covered].mean())

    def test_hole_mask_disjoint_from_covered_and_void(self, frames,
                                                      small_camera, orbit):
        warp = warp_frame(frames[0], small_camera.with_pose(orbit[0]),
                          small_camera.with_pose(orbit[2]))
        assert not (warp.covered & warp.void).any()
        assert not (warp.hole_mask & warp.covered).any()
        assert not (warp.hole_mask & warp.void).any()


class TestPinholeFilling:
    def test_filling_reduces_holes(self, frames, small_camera, orbit):
        raw = warp_frame(frames[0], small_camera.with_pose(orbit[0]),
                         small_camera.with_pose(orbit[2]),
                         fill_pinholes=False)
        filled = warp_frame(frames[0], small_camera.with_pose(orbit[0]),
                            small_camera.with_pose(orbit[2]),
                            fill_pinholes=True)
        assert filled.hole_mask.sum() <= raw.hole_mask.sum()

    def test_resolution_mismatch_rejected(self, frames, small_camera, orbit):
        bad_camera = small_camera.scaled(0.5).with_pose(orbit[0])
        with pytest.raises(ValueError):
            warp_frame(frames[0], bad_camera,
                       small_camera.with_pose(orbit[1]))


class TestVoidFarPlane:
    def test_far_depth_constant_is_far(self, frames):
        assert VOID_FAR_DEPTH > 100.0 * np.nanmax(
            np.where(np.isfinite(frames[0].depth), frames[0].depth, 0.0))
