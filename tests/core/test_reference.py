"""Tests for reference-frame policies (Eq. 5-6, Fig. 11)."""

import numpy as np
import pytest

from repro.core.sparw import ExtrapolatedReferencePolicy, OnTrajectoryReferencePolicy
from repro.geometry import translation_distance
from repro.scenes import orbit_trajectory


@pytest.fixture
def poses():
    return orbit_trajectory(40, degrees_per_frame=1.0).poses


class TestExtrapolatedPolicy:
    def test_schedule_every_window(self):
        policy = ExtrapolatedReferencePolicy(window=8)
        boundaries = [i for i in range(32) if policy.needs_new_reference(i)]
        assert boundaries == [0, 8, 16, 24]

    def test_bootstrap_uses_current_pose(self, poses):
        policy = ExtrapolatedReferencePolicy(window=8)
        ref = policy.reference_pose(0, poses)
        np.testing.assert_allclose(ref, poses[0])

    def test_extrapolates_ahead_of_trajectory(self, poses):
        """The reference must land near the centre of its window."""
        policy = ExtrapolatedReferencePolicy(window=8)
        ref = policy.reference_pose(8, poses)
        window_center = poses[8 + 4]
        boundary = poses[8]
        assert (translation_distance(ref, window_center)
                < translation_distance(boundary, window_center) + 0.05)

    def test_uses_only_past_poses(self, poses):
        """Future poses must not influence the reference choice."""
        policy = ExtrapolatedReferencePolicy(window=8)
        truncated = poses[:8]  # only the past
        full = policy.reference_pose(8, poses)
        partial = policy.reference_pose(8, truncated + poses[8:9])
        np.testing.assert_allclose(full, partial)

    def test_reference_is_off_trajectory(self, poses):
        policy = ExtrapolatedReferencePolicy(window=8)
        ref = policy.reference_pose(8, poses)
        distances = [translation_distance(ref, p) for p in poses]
        assert min(distances) > 1e-6  # not exactly any trajectory pose

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            ExtrapolatedReferencePolicy(window=0)


class TestOnTrajectoryPolicy:
    def test_reference_is_exact_trajectory_pose(self, poses):
        policy = OnTrajectoryReferencePolicy(window=8)
        ref = policy.reference_pose(8, poses)
        np.testing.assert_allclose(ref, poses[8])

    def test_schedule(self):
        policy = OnTrajectoryReferencePolicy(window=5)
        assert policy.needs_new_reference(0)
        assert not policy.needs_new_reference(3)
        assert policy.needs_new_reference(10)

    def test_does_not_overlap(self):
        assert not OnTrajectoryReferencePolicy(4).overlaps_rendering
        assert ExtrapolatedReferencePolicy(4).overlaps_rendering
