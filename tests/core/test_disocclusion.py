"""Tests for pixel classification and overlap metrics."""

import numpy as np
import pytest

from repro.core.sparw import classify_pixels, overlap_fraction, warp_frame
from repro.core.sparw.warp import WarpResult


def _synthetic_warp(height=8, width=8):
    covered = np.zeros((height, width), dtype=bool)
    void = np.zeros((height, width), dtype=bool)
    covered[:, :4] = True
    void[:, 6:] = True
    angle = np.zeros((height, width))
    angle[:, 1] = 10.0  # wide-angle column inside the covered region
    return WarpResult(
        image=np.zeros((height, width, 3)),
        depth=np.where(covered, 1.0, np.inf),
        covered=covered,
        void=void,
        warp_angle_deg=angle,
    )


class TestClassify:
    def test_partition_covers_all_pixels(self):
        warp = _synthetic_warp()
        cls = classify_pixels(warp)
        total = cls.warped | cls.disoccluded | cls.void
        assert total.all()
        assert not (cls.warped & cls.disoccluded).any()
        assert not (cls.warped & cls.void).any()

    def test_fractions_sum_to_one(self):
        cls = classify_pixels(_synthetic_warp())
        assert (cls.warped_fraction + cls.disoccluded_fraction
                + cls.void_fraction) == pytest.approx(1.0)

    def test_angle_threshold_demotes_pixels(self):
        warp = _synthetic_warp()
        plain = classify_pixels(warp)
        strict = classify_pixels(warp, angle_threshold_deg=5.0)
        assert strict.warped_fraction < plain.warped_fraction
        assert strict.disoccluded_fraction > plain.disoccluded_fraction
        # Column 1 (angle 10 deg) must be demoted.
        assert not strict.warped[:, 1].any()
        assert strict.disoccluded[:, 1].all()

    def test_rerender_ids_are_disoccluded_pixels(self):
        cls = classify_pixels(_synthetic_warp())
        ids = cls.rerender_pixel_ids()
        flat = cls.disoccluded.reshape(-1)
        np.testing.assert_array_equal(np.nonzero(flat)[0], ids)

    def test_no_threshold_keeps_all_covered(self):
        warp = _synthetic_warp()
        cls = classify_pixels(warp, angle_threshold_deg=None)
        np.testing.assert_array_equal(cls.warped, warp.covered)


class TestOverlap:
    def test_full_overlap(self):
        warp = _synthetic_warp()
        warp.covered[:] = True
        warp.void[:] = False
        assert overlap_fraction(warp) == pytest.approx(1.0)

    def test_counts_void_as_overlapped(self):
        warp = _synthetic_warp()  # half covered, quarter void, quarter hole
        assert overlap_fraction(warp) == pytest.approx(1.0 - 2.0 / 8.0)

    def test_real_adjacent_frames_high_overlap(self, lego_scene, small_camera,
                                               gt_frame):
        from repro.scenes import orbit_trajectory
        traj = orbit_trajectory(2, degrees_per_frame=0.5)
        from repro.scenes import RayTracer
        tracer = RayTracer(lego_scene)
        ref = tracer.render(small_camera.with_pose(traj[0]))
        warp = warp_frame(ref, small_camera.with_pose(traj[0]),
                          small_camera.with_pose(traj[1]))
        assert overlap_fraction(warp) > 0.95
