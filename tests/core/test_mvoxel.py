"""Tests for MVoxel partitioning."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.streaming import MVoxelLayout


class TestAutoSizing:
    def test_fits_buffer(self):
        layout = MVoxelLayout(grid_shape=(64, 64, 64), entry_bytes=32,
                              buffer_bytes=32 * 1024)
        assert layout.mvoxel_bytes <= 32 * 1024

    def test_paper_sizing_8cubed(self):
        """32 KB buffer, 32 B entries -> 8^3-cell MVoxels (9^3 vertices)."""
        layout = MVoxelLayout(grid_shape=(64, 64, 64), entry_bytes=32,
                              buffer_bytes=32 * 1024)
        assert layout.side == 8
        assert layout.vertices_per_mvoxel == 9**3

    def test_explicit_side_too_big_rejected(self):
        with pytest.raises(ValueError):
            MVoxelLayout(grid_shape=(64, 64, 64), entry_bytes=32,
                         buffer_bytes=1024, side=16)

    def test_2d_grid(self):
        layout = MVoxelLayout(grid_shape=(64, 64), entry_bytes=48,
                              buffer_bytes=32 * 1024)
        assert layout.ndim == 2
        assert layout.mvoxel_bytes <= 32 * 1024


class TestMapping:
    @pytest.fixture
    def layout(self):
        return MVoxelLayout(grid_shape=(16, 16, 16), entry_bytes=32,
                            buffer_bytes=32 * 1024, side=4)

    def test_origin_cell_in_mvoxel_zero(self, layout):
        assert layout.mvoxel_of_cells(np.array([0]))[0] == 0

    def test_cells_in_same_block_share_mvoxel(self, layout):
        # Cells (0,0,0) and (3,3,3) are both in block 0 with side 4.
        flat_a = 0
        flat_b = 3 * 16 * 16 + 3 * 16 + 3
        ids = layout.mvoxel_of_cells(np.array([flat_a, flat_b]))
        assert ids[0] == ids[1]

    def test_neighbor_blocks_differ(self, layout):
        flat_a = 0
        flat_b = 4  # z = 4 -> next block along z
        ids = layout.mvoxel_of_cells(np.array([flat_a, flat_b]))
        assert ids[0] != ids[1]

    def test_negative_cell_passthrough(self, layout):
        ids = layout.mvoxel_of_cells(np.array([-1, 0]))
        assert ids[0] == -1 and ids[1] >= 0

    def test_num_mvoxels(self, layout):
        assert layout.num_mvoxels == 4**3

    def test_base_addresses_are_contiguous(self, layout):
        addr = layout.mvoxel_base_address(np.arange(4))
        np.testing.assert_array_equal(np.diff(addr), layout.mvoxel_bytes)

    @settings(max_examples=30, deadline=None)
    @given(cell=st.integers(0, 16**3 - 1))
    def test_mvoxel_ids_in_range(self, cell):
        layout = MVoxelLayout(grid_shape=(16, 16, 16), entry_bytes=32,
                              buffer_bytes=32 * 1024, side=4)
        mid = layout.mvoxel_of_cells(np.array([cell]))[0]
        assert 0 <= mid < layout.num_mvoxels

    @settings(max_examples=20, deadline=None)
    @given(cell=st.integers(0, 16**3 - 1))
    def test_block_coordinates_consistent(self, cell):
        """The block of a cell must equal elementwise cell_coord // side."""
        layout = MVoxelLayout(grid_shape=(16, 16, 16), entry_bytes=32,
                              buffer_bytes=32 * 1024, side=4)
        z = cell % 16
        y = (cell // 16) % 16
        x = cell // 256
        expected = (x // 4) * 16 + (y // 4) * 4 + (z // 4)
        assert layout.mvoxel_of_cells(np.array([cell]))[0] == expected


class TestStorageOverhead:
    def test_halo_overhead_bounded(self):
        layout = MVoxelLayout(grid_shape=(64, 64, 64), entry_bytes=32,
                              buffer_bytes=32 * 1024)
        # (9/8)^3 halo duplication ~= 1.42x vs the raw (65/65...) grid.
        assert 1.0 < layout.storage_overhead < 1.7

    def test_single_block_grid_no_overhead(self):
        layout = MVoxelLayout(grid_shape=(4, 4, 4), entry_bytes=32,
                              buffer_bytes=32 * 1024, side=4)
        assert layout.storage_overhead == pytest.approx(1.0)
