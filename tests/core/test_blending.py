"""Tests for warped/rendered seam blending (paper Sec. VIII extension)."""

import numpy as np
import pytest

from repro.core.sparw import blend_seams, seam_band


def _half_split(height=10, width=10):
    warped = np.zeros((height, width), dtype=bool)
    rendered = np.zeros((height, width), dtype=bool)
    warped[:, :5] = True
    rendered[:, 5:] = True
    warped_img = np.zeros((height, width, 3))
    nerf_img = np.ones((height, width, 3))
    return warped_img, nerf_img, warped, rendered


class TestSeamBand:
    def test_band_straddles_seam(self):
        _, _, warped, rendered = _half_split()
        band = seam_band(warped, rendered, band=2)
        assert band[:, 3:7].all()
        assert not band[:, 0].any()
        assert not band[:, 9].any()

    def test_zero_band(self):
        _, _, warped, rendered = _half_split()
        assert not seam_band(warped, rendered, band=0).any()

    def test_no_seam_no_band(self):
        warped = np.zeros((6, 6), dtype=bool)
        rendered = np.zeros((6, 6), dtype=bool)
        warped[:2, :] = True  # rendered empty: no seam
        assert not seam_band(warped, rendered, band=2).any()


class TestBlend:
    def test_away_from_seam_untouched(self):
        warped_img, nerf_img, warped, rendered = _half_split()
        result = blend_seams(warped_img, nerf_img, warped, rendered, band=2)
        np.testing.assert_allclose(result.image[:, 0], 0.0)
        np.testing.assert_allclose(result.image[:, 9], 1.0)

    def test_seam_pixels_mixed(self):
        warped_img, nerf_img, warped, rendered = _half_split()
        result = blend_seams(warped_img, nerf_img, warped, rendered, band=2)
        # Pixels adjacent to the seam carry a 50/50 mix.
        np.testing.assert_allclose(result.image[:, 4], 0.5, atol=1e-9)
        np.testing.assert_allclose(result.image[:, 5], 0.5, atol=1e-9)

    def test_weights_monotone_across_band(self):
        warped_img, nerf_img, warped, rendered = _half_split(10, 12)
        result = blend_seams(warped_img, nerf_img, warped, rendered, band=3)
        row = result.image[5, :, 0]
        assert (np.diff(row) >= -1e-9).all(), "blend must ramp monotonically"

    def test_extra_rendered_counted(self):
        warped_img, nerf_img, warped, rendered = _half_split()
        result = blend_seams(warped_img, nerf_img, warped, rendered, band=2)
        # Two warped columns fall inside the band: 2 * height pixels.
        assert result.extra_rendered == 2 * 10

    def test_overlapping_masks_rejected(self):
        warped_img, nerf_img, warped, rendered = _half_split()
        bad = rendered.copy()
        bad[:, 4] = True
        with pytest.raises(ValueError):
            blend_seams(warped_img, nerf_img, warped, bad)

    def test_no_band_returns_hard_composite(self):
        warped_img, nerf_img, warped, rendered = _half_split()
        rendered[:] = False
        result = blend_seams(warped_img, nerf_img, warped, rendered, band=2)
        assert result.extra_rendered == 0
        np.testing.assert_allclose(result.image[warped], 0.0)
