"""Tests for the Ray Index Table."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.streaming import RIT_ENTRY_BYTES, RayIndexTable


class TestBuild:
    def test_groups_by_mvoxel(self):
        rit = RayIndexTable.build(np.array([2, 0, 2, 1, 0]))
        assert list(rit.mvoxel_ids) == [0, 1, 2]
        np.testing.assert_array_equal(np.sort(rit.samples_for(0)), [1, 4])
        np.testing.assert_array_equal(rit.samples_for(1), [3])
        np.testing.assert_array_equal(np.sort(rit.samples_for(2)), [0, 2])

    def test_outside_samples_dropped(self):
        rit = RayIndexTable.build(np.array([-1, 0, -1, 0]))
        assert rit.num_scheduled_samples == 2
        assert len(rit) == 1

    def test_empty_input(self):
        rit = RayIndexTable.build(np.array([], dtype=np.int64))
        assert len(rit) == 0
        assert rit.num_scheduled_samples == 0
        assert rit.table_bytes == 0

    def test_all_same_mvoxel(self):
        rit = RayIndexTable.build(np.full(10, 7))
        assert len(rit) == 1
        assert rit.mvoxel_ids[0] == 7
        assert len(rit.samples_for(0)) == 10

    def test_entry_bytes_per_paper(self):
        assert RIT_ENTRY_BYTES == 48
        rit = RayIndexTable.build(np.array([0, 1, 2]))
        assert rit.table_bytes == 3 * 48

    def test_iter_entries_ascending(self):
        rit = RayIndexTable.build(np.array([5, 3, 9, 3, 5]))
        order = [mid for mid, _ in rit.iter_entries()]
        assert order == sorted(order)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(-1, 20), min_size=1, max_size=200))
    def test_schedule_is_permutation_of_valid_samples(self, mvoxels):
        arr = np.array(mvoxels)
        rit = RayIndexTable.build(arr)
        order = rit.streaming_sample_order()
        valid = np.nonzero(arr >= 0)[0]
        np.testing.assert_array_equal(np.sort(order), valid)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 20), min_size=1, max_size=200))
    def test_streaming_order_is_mvoxel_sorted(self, mvoxels):
        arr = np.array(mvoxels)
        rit = RayIndexTable.build(arr)
        keys = arr[rit.streaming_sample_order()]
        assert (np.diff(keys) >= 0).all()
