"""Tests for feature-major vs channel-major SRAM layouts (Sec. IV-B)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.layout import (
    ChannelMajorLayout,
    FeatureMajorLayout,
    plan_gather_cycles,
    verify_conflict_free,
)


class TestFeatureMajor:
    def test_conflicting_vertices_detected(self):
        """Two lanes hitting different addresses in one bank conflict."""
        layout = FeatureMajorLayout(num_banks=4)
        vertex_ids = np.array([[0], [4]])  # both map to bank 0
        stats = layout.simulate(vertex_ids, concurrent_rays=2)
        assert stats.conflict_rate > 0.0

    def test_identical_vertices_broadcast(self):
        layout = FeatureMajorLayout(num_banks=4)
        vertex_ids = np.array([[8], [8], [8], [8]])
        stats = layout.simulate(vertex_ids, concurrent_rays=4)
        assert stats.conflict_rate == 0.0

    def test_distinct_banks_no_conflict(self):
        layout = FeatureMajorLayout(num_banks=4)
        vertex_ids = np.array([[0], [1], [2], [3]])
        stats = layout.simulate(vertex_ids, concurrent_rays=4)
        assert stats.conflict_rate == 0.0

    def test_random_traffic_conflicts_grow_with_rays(self, rng):
        layout = FeatureMajorLayout(num_banks=16)
        vertex_ids = rng.integers(0, 100000, size=(4096, 8))
        few = layout.simulate(vertex_ids, concurrent_rays=4)
        many = layout.simulate(vertex_ids, concurrent_rays=32)
        assert many.conflict_rate > few.conflict_rate

    def test_fast_matches_reference_simulator(self, rng):
        """Vectorised and loop simulators must agree exactly."""
        from repro.memsys import BankedSRAM
        layout = FeatureMajorLayout(num_banks=8, ports_per_bank=2)
        vertex_ids = rng.integers(0, 5000, size=(256, 8))
        banks, addresses = layout.issue_groups(vertex_ids, concurrent_rays=16)
        sram = BankedSRAM(8, 2)
        slow = sram.simulate_groups(banks, addresses)
        fast = sram.simulate_groups_fast(banks, addresses)
        assert slow.actual_cycles == fast.actual_cycles
        assert slow.ideal_cycles == fast.ideal_cycles
        assert slow.conflicted_groups == fast.conflicted_groups


class TestChannelMajor:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_always_conflict_free(self, seed):
        """The headline property: zero conflicts for ANY access pattern."""
        rng = np.random.default_rng(seed)
        vertex_ids = rng.integers(0, 100000, size=(128, 8))
        layout = ChannelMajorLayout(num_banks=32, ports_per_bank=2,
                                    feature_dim=16)
        assert verify_conflict_free(vertex_ids, layout)

    def test_wide_vectors_wrap(self):
        layout = ChannelMajorLayout(num_banks=16, ports_per_bank=2,
                                    feature_dim=32)
        assert layout.wraps == 2

    def test_analytic_cycles_formula(self):
        layout = ChannelMajorLayout(num_banks=32, ports_per_bank=2,
                                    feature_dim=16)
        # 100 samples, 8 vertices each, 2 samples per cycle -> 400 cycles.
        assert layout.analytic_cycles(100, 8) == 400

    def test_analytic_cycles_with_wraps(self):
        layout = ChannelMajorLayout(num_banks=8, ports_per_bank=2,
                                    feature_dim=16)
        assert layout.wraps == 2
        assert layout.analytic_cycles(100, 8) == 800


class TestGatherPlan:
    def test_plan_cost_tracks_layout(self):
        layout = ChannelMajorLayout(num_banks=32, ports_per_bank=2,
                                    feature_dim=16)
        cost = plan_gather_cycles(1000, 8, 32, layout)
        assert cost.gather_cycles == layout.analytic_cycles(1000, 8)
        assert cost.vertices_read == 8000
        assert cost.sram_bytes == 8000 * 32

    def test_merge(self):
        layout = ChannelMajorLayout()
        a = plan_gather_cycles(10, 8, 32, layout)
        b = plan_gather_cycles(20, 8, 32, layout)
        c = a.merge(b)
        assert c.samples == 30
        assert c.gather_cycles == a.gather_cycles + b.gather_cycles
