"""Golden regressions: one deterministic run per layer, digested.

Locks the determinism contracts the stack is built on:

* the solo SPARW pipeline produces bit-identical frames run to run,
* the batched multi-session engine (with a reference cache) matches its
  recorded frame bytes and batching counters, and
* a seeded cluster simulation reproduces its entire report.

Any bit drift — a refactor that reorders floating-point work, a changed
default, a scheduler tweak — fails here first, with a one-command
regeneration path (``--update-goldens``) when the change is intentional.
"""

import dataclasses

from repro.cluster import simulate_cluster
from repro.engine import MultiSessionEngine
from repro.harness.configs import FAST
from repro.harness.reporting import jsonable
from repro.workloads import SharedLRUCache, build_mixed_sessions, get_workload

FRAMES = 4


class TestSoloPipelineGolden:
    def test_solo_sparw_digest(self, golden, frames_digest, stats_digest):
        result = get_workload("vr-lego").with_overrides(
            frames=FRAMES + 1).run_solo(FAST)
        sparse = result.total_sparse_stats()
        golden("solo_sparw", {
            "frames": result.num_frames,
            "references": result.num_references,
            "frames_sha256": frames_digest(result.frames),
            "stats_sha256": stats_digest({
                "mean_disoccluded": repr(
                    result.mean_disoccluded_fraction()),
                "mean_warped": repr(result.mean_warped_fraction()),
                "sparse_rays": sparse.num_rays,
                "sparse_samples": sparse.num_samples,
            }),
        })


class TestEngineGolden:
    def test_multi_session_engine_digest(self, golden, frames_digest):
        # A fresh private cache keeps the digest independent of whatever
        # other tests left in the process-global REFERENCE_CACHE.
        sessions = build_mixed_sessions("vr-lego:2,dolly-chair",
                                        FAST, frames=FRAMES)
        cache = SharedLRUCache(name="golden", max_entries=64)
        result = MultiSessionEngine(sessions,
                                    reference_cache=cache).run()
        golden("engine_mixed", {
            "total_frames": result.total_frames,
            "batch": jsonable(dataclasses.asdict(result.batch)),
            "per_session": {
                s.session_id: frames_digest(s.result.frames)
                for s in result.sessions},
        })


class TestClusterGolden:
    def test_seeded_cluster_report_digest(self, golden, stats_digest):
        report = simulate_cluster(
            "vr-lego:3,dolly-chair:1", FAST, arrivals="poisson",
            rate_hz=2.0, duration_s=4.0, workers=2,
            placement="cache_affinity", queue_limit=3, frames=3, seed=7)
        summary = jsonable(report.summary())
        golden("cluster_seeded", {
            "admitted": report.admitted,
            "rejected": report.rejected,
            "total_frames": report.total_frames,
            "report_sha256": stats_digest(summary),
            "per_worker_sha256": stats_digest(report.per_worker),
        })

    def test_governed_cluster_report_digest(self, golden, stats_digest):
        # The governor's decisions are part of the determinism contract:
        # same seed, same degradations, same report.
        report = simulate_cluster(
            "vr-lego:3,dolly-chair:1", FAST, arrivals="poisson",
            rate_hz=30.0, duration_s=0.5, workers=1, queue_limit=2,
            frames=3, seed=7, governor="adaptive", slo_fps=3000.0)
        golden("cluster_governed", {
            "admitted": report.admitted,
            "rejected": report.rejected,
            "overflow_admissions": report.overflow_admissions,
            "tier_transitions": report.tier_transitions,
            "quality_by_level": jsonable(report.quality_by_level),
            "report_sha256": stats_digest(jsonable(report.summary())),
            "events_sha256": stats_digest(report.governor_events),
        })
