"""Property tests on the decode path: linearity, bake/decode consistency."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nerf import SHDecoder

floats = st.floats(min_value=-2.0, max_value=2.0, allow_nan=False)


class TestDecodeProperties:
    @settings(max_examples=25, deadline=None)
    @given(r=floats, g=floats, b=floats)
    def test_diffuse_linearity(self, r, g, b):
        """Without SH coefficients, rgb is the clipped diffuse channels."""
        decoder = SHDecoder(feature_dim=16)
        features = np.zeros((1, 16))
        features[0, 1:4] = [r, g, b]
        _, rgb = decoder.decode(features, np.array([[0.0, 0.0, 1.0]]))
        np.testing.assert_allclose(rgb[0], np.clip([r, g, b], 0.0, 1.0),
                                   atol=1e-9)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 500))
    def test_view_average_of_sh_is_diffuse(self, seed):
        """Linear SH integrates to zero over the sphere: the mean decoded
        color over antipodal direction pairs equals the diffuse color."""
        rng = np.random.default_rng(seed)
        decoder = SHDecoder(feature_dim=16)
        features = np.zeros((1, 16))
        features[0, 1:4] = rng.uniform(0.2, 0.8, 3)
        features[0, 4:13] = rng.uniform(-0.1, 0.1, 9)
        d = rng.normal(size=3)
        d /= np.linalg.norm(d)
        _, rgb_a = decoder.decode(features, d[None])
        _, rgb_b = decoder.decode(features, -d[None])
        np.testing.assert_allclose((rgb_a + rgb_b)[0] / 2, features[0, 1:4],
                                   atol=1e-9)

    def test_density_monotone_in_logit(self):
        decoder = SHDecoder(feature_dim=16, max_density=500.0)
        logits = np.linspace(-10, 10, 21)
        features = np.zeros((21, 16))
        features[:, 0] = logits
        sigma = decoder.density(features)
        assert (np.diff(sigma) > 0).all()
        assert sigma.max() < 500.0

    def test_decode_density_consistent_with_density_helper(self):
        decoder = SHDecoder(feature_dim=16)
        rng = np.random.default_rng(0)
        features = rng.normal(size=(50, 16))
        dirs = rng.normal(size=(50, 3))
        sigma_full, _ = decoder.decode(features, dirs)
        sigma_only = decoder.density(features)
        np.testing.assert_allclose(sigma_full, sigma_only, atol=1e-9)


class TestBakeDecodeRoundtrip:
    def test_vertex_color_roundtrip(self, lego_scene, small_field):
        """Decoded diffuse at near-surface vertices matches the scene."""
        from repro.nerf.baking import vertex_grid_positions
        positions = vertex_grid_positions(lego_scene.bounds, 32)
        d = np.abs(lego_scene.distance(positions))
        near = np.nonzero(d < 0.01)[0][:200]
        if near.size == 0:
            pytest.skip("no vertices on the surface at this resolution")
        features = small_field.vertex_features[near]
        # With zero SH (diffuse lego), rgb == diffuse == scene shading.
        _, rgb = small_field.decoder.decode(
            features, np.tile([0.0, 0.0, 1.0], (near.size, 1)))
        expected = lego_scene.diffuse_radiance(positions[near])
        err = np.abs(rgb - expected).mean()
        assert err < 0.05

    def test_specular_scene_bakes_nonzero_sh(self):
        from repro.nerf import VoxelGridField
        from repro.scenes import get_scene
        scene = get_scene("materials")
        field = VoxelGridField.bake(scene, resolution=24)
        sh = field.vertex_features[:, 4:13]
        assert np.abs(sh).max() > 0.01, "specular scenes need SH content"

    def test_diffuse_scene_view_independent(self, small_field, lego_scene,
                                            rng):
        pts = rng.uniform(-1.0, 1.0, size=(100, 3))
        features = small_field.interpolate(pts)
        d1 = rng.normal(size=(100, 3))
        d1 /= np.linalg.norm(d1, axis=1, keepdims=True)
        _, rgb_a = small_field.decode(features, d1)
        _, rgb_b = small_field.decode(features, -d1)
        # lego is all-diffuse: decoded color may vary only through SH noise
        # fitted as ~0; demand near view-independence.
        assert np.abs(rgb_a - rgb_b).max() < 0.02
