"""Tests for alpha-compositing volume rendering."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nerf import composite


def _single_ray(sigmas, rgbs, ts, delta=0.1):
    n = len(sigmas)
    return composite(
        np.asarray(sigmas, dtype=float),
        np.asarray(rgbs, dtype=float),
        np.asarray(ts, dtype=float),
        np.full(n, delta),
        np.zeros(n, dtype=np.int64),
        num_rays=1,
    )


class TestSingleRay:
    def test_empty_space_is_transparent(self):
        result = _single_ray([0.0, 0.0], [[1, 0, 0], [0, 1, 0]], [0.1, 0.2])
        assert result.opacity[0] == pytest.approx(0.0)
        np.testing.assert_allclose(result.rgb[0], 0.0)
        assert np.isinf(result.depth[0])

    def test_opaque_first_sample_wins(self):
        result = _single_ray([1e6, 1e6], [[1, 0, 0], [0, 1, 0]], [1.0, 2.0])
        np.testing.assert_allclose(result.rgb[0], [1.0, 0.0, 0.0], atol=1e-9)
        assert result.depth[0] == pytest.approx(1.0)
        assert result.opacity[0] == pytest.approx(1.0)

    def test_alpha_formula(self):
        sigma, delta = 3.0, 0.1
        result = _single_ray([sigma], [[1, 1, 1]], [1.0], delta=delta)
        expected = 1.0 - np.exp(-sigma * delta)
        assert result.opacity[0] == pytest.approx(expected)

    def test_two_sample_transmittance(self):
        s = 5.0
        result = _single_ray([s, s], [[1, 0, 0], [0, 1, 0]], [1.0, 2.0],
                             delta=0.2)
        alpha = 1.0 - np.exp(-s * 0.2)
        w0, w1 = alpha, (1 - alpha) * alpha
        np.testing.assert_allclose(result.rgb[0],
                                   [w0 * 1.0, w1 * 1.0, 0.0], atol=1e-9)
        assert result.depth[0] == pytest.approx(
            (w0 * 1.0 + w1 * 2.0) / (w0 + w1))

    def test_negative_sigma_treated_as_zero(self):
        result = _single_ray([-5.0], [[1, 1, 1]], [1.0])
        assert result.opacity[0] == pytest.approx(0.0)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(min_value=0.0, max_value=50.0), min_size=1,
                    max_size=16))
    def test_opacity_bounded(self, sigmas):
        n = len(sigmas)
        result = _single_ray(sigmas, np.ones((n, 3)),
                             np.linspace(1.0, 2.0, n))
        assert 0.0 <= result.opacity[0] <= 1.0
        assert (result.rgb >= 0.0).all() and (result.rgb <= 1.0).all()

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(min_value=0.0, max_value=50.0), min_size=2,
                    max_size=16))
    def test_opacity_monotone_in_prefix(self, sigmas):
        """Adding samples can only increase accumulated opacity."""
        n = len(sigmas)
        ts = np.linspace(1.0, 2.0, n)
        full = _single_ray(sigmas, np.ones((n, 3)), ts)
        partial = _single_ray(sigmas[:-1], np.ones((n - 1, 3)), ts[:-1])
        assert full.opacity[0] >= partial.opacity[0] - 1e-9


class TestMultiRay:
    def test_rays_are_independent(self):
        sigmas = np.array([1e6, 0.0])
        rgbs = np.array([[1.0, 0.0, 0.0], [0.0, 1.0, 0.0]])
        ts = np.array([1.0, 1.0])
        deltas = np.array([0.1, 0.1])
        ray_index = np.array([0, 1])
        result = composite(sigmas, rgbs, ts, deltas, ray_index, num_rays=2)
        np.testing.assert_allclose(result.rgb[0], [1.0, 0.0, 0.0], atol=1e-9)
        assert result.opacity[1] == pytest.approx(0.0)

    def test_matches_per_ray_computation(self):
        rng = np.random.default_rng(0)
        per_ray = 12
        sig_a = rng.uniform(0, 20, per_ray)
        sig_b = rng.uniform(0, 20, per_ray)
        rgb_a = rng.uniform(size=(per_ray, 3))
        rgb_b = rng.uniform(size=(per_ray, 3))
        ts = np.linspace(1.0, 2.0, per_ray)

        batched = composite(
            np.concatenate([sig_a, sig_b]),
            np.concatenate([rgb_a, rgb_b]),
            np.concatenate([ts, ts]),
            np.full(2 * per_ray, 0.08),
            np.repeat([0, 1], per_ray),
            num_rays=2,
        )
        solo_a = _single_ray(sig_a, rgb_a, ts, delta=0.08)
        solo_b = _single_ray(sig_b, rgb_b, ts, delta=0.08)
        np.testing.assert_allclose(batched.rgb[0], solo_a.rgb[0], atol=1e-9)
        np.testing.assert_allclose(batched.rgb[1], solo_b.rgb[0], atol=1e-9)
        np.testing.assert_allclose(batched.depth[1], solo_b.depth[0],
                                   atol=1e-9)

    def test_empty_rays_get_defaults(self):
        result = composite(np.zeros(0), np.zeros((0, 3)), np.zeros(0),
                           np.zeros(0), np.zeros(0, dtype=np.int64),
                           num_rays=3)
        assert result.rgb.shape == (3, 3)
        assert np.isinf(result.depth).all()

    def test_ray_without_samples_in_batch(self):
        # Ray 1 has no samples at all (e.g. culled by occupancy).
        result = composite(np.array([1e6]), np.array([[1.0, 1.0, 1.0]]),
                           np.array([1.0]), np.array([0.1]),
                           np.array([0]), num_rays=2)
        assert result.opacity[0] == pytest.approx(1.0)
        assert result.opacity[1] == pytest.approx(0.0)


class TestVectorizedRGB:
    """The single-bincount RGB path must match the per-channel loop exactly."""

    @staticmethod
    def _per_channel_rgb(weights, rgbs, ray_index, num_rays):
        # The pre-vectorization reference implementation: one segmented
        # sum per color channel.
        rgb = np.zeros((num_rays, 3))
        for channel in range(3):
            rgb[:, channel] = np.bincount(ray_index,
                                          weights=weights * rgbs[:, channel],
                                          minlength=num_rays)
        return rgb

    def test_bit_identical_to_per_channel_loop(self):
        rng = np.random.default_rng(42)
        num_rays = 17
        samples_per_ray = rng.integers(0, 9, size=num_rays)
        ray_index = np.repeat(np.arange(num_rays), samples_per_ray)
        n = len(ray_index)
        sigmas = rng.uniform(0.0, 30.0, n)
        rgbs = rng.uniform(size=(n, 3))
        t_values = np.sort(rng.uniform(1.0, 3.0, n))
        deltas = rng.uniform(0.01, 0.2, n)

        result = composite(sigmas, rgbs, t_values, deltas, ray_index,
                           num_rays=num_rays)

        # Recompute the weights exactly as composite does, then take the
        # unclipped per-channel segmented sums.
        alphas = 1.0 - np.exp(-np.maximum(sigmas, 0.0) * deltas)
        log_trans = np.log(np.clip(1.0 - alphas, 1e-12, 1.0))
        cums = np.cumsum(log_trans)
        starts = np.zeros(n, dtype=bool)
        starts[0] = True
        starts[1:] = ray_index[1:] != ray_index[:-1]
        start_positions = np.maximum.accumulate(
            np.where(starts, np.arange(n), 0))
        seg_offsets = (cums - log_trans)[start_positions]
        weights = np.exp(cums - log_trans - seg_offsets) * alphas

        expected = np.clip(
            self._per_channel_rgb(weights, rgbs, ray_index, num_rays),
            0.0, 1.0)
        np.testing.assert_array_equal(result.rgb, expected)

    def test_unsorted_channels_not_mixed(self):
        # Two rays, pure-channel colors: vectorized binning must not leak
        # one ray's channel sums into another's.
        result = composite(
            np.array([1e6, 1e6]),
            np.array([[1.0, 0.0, 0.0], [0.0, 0.0, 1.0]]),
            np.array([1.0, 1.0]), np.array([0.1, 0.1]),
            np.array([0, 1]), num_rays=2)
        np.testing.assert_allclose(result.rgb[0], [1.0, 0.0, 0.0], atol=1e-9)
        np.testing.assert_allclose(result.rgb[1], [0.0, 0.0, 1.0], atol=1e-9)
