"""Tests for the pixel-centric NeRF renderer."""

import numpy as np

from repro.metrics import psnr


class TestRenderFrame:
    def test_frame_matches_ground_truth_reasonably(self, nerf_frame, gt_frame):
        frame, _ = nerf_frame
        assert psnr(frame.image, gt_frame.image) > 18.0

    def test_hit_mask_close_to_gt(self, nerf_frame, gt_frame):
        frame, _ = nerf_frame
        agreement = (frame.hit == gt_frame.hit).mean()
        assert agreement > 0.93

    def test_depth_close_on_hits(self, nerf_frame, gt_frame):
        frame, _ = nerf_frame
        both = frame.hit & gt_frame.hit
        err = np.abs(frame.depth[both] - gt_frame.depth[both])
        assert np.median(err) < 0.1

    def test_background_filled(self, nerf_frame, gt_frame):
        frame, _ = nerf_frame
        bg = ~frame.hit & ~gt_frame.hit
        assert psnr(frame.image, gt_frame.image, mask=bg) > 25.0

    def test_stats_populated(self, nerf_frame, small_camera):
        _, out = nerf_frame
        assert out.stats.num_rays == small_camera.width * small_camera.height
        assert out.stats.num_samples > 0
        assert out.stats.mlp_macs > 0
        assert out.stats.gather_vertex_accesses == 8 * out.stats.num_samples

    def test_gather_groups_recorded(self, nerf_frame):
        _, out = nerf_frame
        assert len(out.gather_groups) >= 1
        total = sum(g.num_samples for g in out.gather_groups)
        assert total == out.stats.num_samples


class TestRenderPixels:
    def test_sparse_matches_full_frame(self, small_renderer, small_camera,
                                       nerf_frame):
        frame, _ = nerf_frame
        ids = np.array([0, 777, 1200, 48 * 48 - 1])
        colors, depth, _ = small_renderer.render_pixels(small_camera, ids)
        np.testing.assert_allclose(colors, frame.image.reshape(-1, 3)[ids],
                                   atol=1e-9)
        np.testing.assert_allclose(depth, frame.depth.reshape(-1)[ids],
                                   atol=1e-9)

    def test_empty_pixel_set(self, small_renderer, small_camera):
        colors, depth, out = small_renderer.render_pixels(
            small_camera, np.array([], dtype=np.int64))
        assert colors.shape == (0, 3)
        assert out.stats.num_samples == 0

    def test_chunking_is_invisible(self, small_renderer, small_camera):
        """Chunked and unchunked rendering must agree exactly."""
        import copy
        tiny_chunks = copy.copy(small_renderer)
        tiny_chunks.chunk_size = 97
        a, _ = small_renderer.render_frame(small_camera)
        b, _ = tiny_chunks.render_frame(small_camera)
        np.testing.assert_allclose(a.image, b.image, atol=1e-12)
        np.testing.assert_allclose(a.depth, b.depth, atol=1e-9)


class TestStatsMerge:
    def test_merge_adds_counts(self):
        from repro.nerf import RenderStats
        a = RenderStats(num_rays=10, num_samples=100, mlp_macs=1000,
                        gather_vertex_accesses=800, gather_bytes=25600)
        b = RenderStats(num_rays=5, num_samples=50, mlp_macs=500,
                        gather_vertex_accesses=400, gather_bytes=12800)
        c = a.merge(b)
        assert c.num_rays == 15
        assert c.num_samples == 150
        assert c.gather_bytes == 38400
