"""Tests for the NumPy MLP and exact affine construction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nerf import MLP, identity_affine_mlp


class TestMLPBasics:
    def test_random_forward_shape(self):
        mlp = MLP.random([8, 16, 4], seed=0)
        out = mlp(np.zeros((5, 8)))
        assert out.shape == (5, 4)

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            MLP(weights=[np.zeros((4, 8)), np.zeros((9, 2))],
                biases=[np.zeros(8), np.zeros(2)])

    def test_bias_mismatch_rejected(self):
        with pytest.raises(ValueError):
            MLP(weights=[np.zeros((4, 8))], biases=[np.zeros(7)])

    def test_macs_per_sample(self):
        mlp = MLP.random([8, 16, 4])
        assert mlp.macs_per_sample() == 8 * 16 + 16 * 4

    def test_weight_bytes_fp16(self):
        mlp = MLP.random([8, 16, 4])
        params = 8 * 16 + 16 + 16 * 4 + 4
        assert mlp.weight_bytes() == params * 2

    def test_layer_dims(self):
        mlp = MLP.random([8, 16, 4])
        assert mlp.layer_dims == [8, 16, 4]

    def test_relu_applied_to_hidden_only(self):
        # A single layer has no activation: negative outputs allowed.
        w = np.array([[-1.0]])
        mlp = MLP(weights=[w], biases=[np.zeros(1)])
        assert mlp(np.array([[2.0]]))[0, 0] == pytest.approx(-2.0)


class TestIdentityAffine:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 1000), hidden=st.integers(1, 3))
    def test_exact_affine(self, seed, hidden):
        """The constructed ReLU network must equal x @ M + b bit-for-bit-ish."""
        rng = np.random.default_rng(seed)
        matrix = rng.normal(size=(6, 4))
        bias = rng.normal(size=4)
        mlp = identity_affine_mlp(matrix, bias, hidden_layers=hidden)
        x = rng.normal(size=(32, 6))
        np.testing.assert_allclose(mlp(x), x @ matrix + bias, atol=1e-12)

    def test_is_genuine_multilayer_network(self):
        mlp = identity_affine_mlp(np.eye(3), hidden_layers=2)
        assert len(mlp.weights) == 3
        assert mlp.macs_per_sample() > 3 * 3  # more than the plain matmul

    def test_zero_hidden_layers_is_plain_affine(self):
        matrix = np.arange(6.0).reshape(2, 3)
        mlp = identity_affine_mlp(matrix, hidden_layers=0)
        assert len(mlp.weights) == 1
        np.testing.assert_allclose(mlp(np.array([[1.0, 2.0]])),
                                   np.array([[1.0, 2.0]]) @ matrix)

    def test_negative_inputs_pass_through(self):
        mlp = identity_affine_mlp(np.eye(2))
        x = np.array([[-5.0, -0.1]])
        np.testing.assert_allclose(mlp(x), x, atol=1e-12)
