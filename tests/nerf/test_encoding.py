"""Tests for positional and spherical-harmonics encodings."""

import numpy as np
import pytest

from repro.nerf import frequency_encoding, sh_basis_deg1


class TestFrequencyEncoding:
    def test_output_dim(self):
        x = np.zeros((5, 3))
        out = frequency_encoding(x, num_frequencies=4)
        assert out.shape == (5, 3 * (1 + 2 * 4))

    def test_without_input_passthrough(self):
        x = np.zeros((5, 3))
        out = frequency_encoding(x, num_frequencies=2, include_input=False)
        assert out.shape == (5, 3 * 4)

    def test_zero_maps_to_zero_sines(self):
        out = frequency_encoding(np.zeros((1, 2)), num_frequencies=1)
        np.testing.assert_allclose(out[0, :2], 0.0)  # passthrough
        np.testing.assert_allclose(out[0, 2:4], 0.0)  # sin(0)
        np.testing.assert_allclose(out[0, 4:6], 1.0)  # cos(0)

    def test_octave_frequencies(self):
        x = np.array([[0.25]])
        out = frequency_encoding(x, num_frequencies=2, include_input=False)
        np.testing.assert_allclose(out[0, 0], np.sin(0.25 * np.pi))
        np.testing.assert_allclose(out[0, 2], np.sin(0.5 * np.pi))


class TestSHBasis:
    def test_shape_and_constant_term(self):
        dirs = np.array([[0.0, 0.0, 1.0], [1.0, 0.0, 0.0]])
        basis = sh_basis_deg1(dirs)
        assert basis.shape == (2, 4)
        np.testing.assert_allclose(basis[:, 0], 0.28209479177387814)

    def test_linear_terms_track_direction(self):
        z = sh_basis_deg1(np.array([[0.0, 0.0, 1.0]]))
        assert z[0, 2] == pytest.approx(0.4886025119029199)
        assert z[0, 1] == pytest.approx(0.0)
        assert z[0, 3] == pytest.approx(0.0)

    def test_antipodal_flips_linear_terms(self):
        d = np.array([[0.3, -0.5, 0.8]])
        a = sh_basis_deg1(d)
        b = sh_basis_deg1(-d)
        np.testing.assert_allclose(a[:, 1:], -b[:, 1:], atol=1e-12)
        np.testing.assert_allclose(a[:, 0], b[:, 0])

    def test_unnormalized_input_normalized(self):
        a = sh_basis_deg1(np.array([[0.0, 0.0, 10.0]]))
        b = sh_basis_deg1(np.array([[0.0, 0.0, 1.0]]))
        np.testing.assert_allclose(a, b, atol=1e-12)
