"""Tests for the three radiance-field families and the shared decoder."""

import numpy as np
import pytest

from repro.nerf import (
    HashGridField,
    SHDecoder,
    TensorFactorField,
    VoxelGridField,
)
from repro.nerf.baking import bake_vertex_features, vertex_grid_positions
from repro.scenes import get_scene


@pytest.fixture(scope="module")
def scene():
    return get_scene("lego")


@pytest.fixture(scope="module")
def reference(scene):
    return VoxelGridField.bake(scene, resolution=32)


@pytest.fixture(scope="module")
def surface_points(scene):
    rng = np.random.default_rng(0)
    pts = rng.uniform(-1.4, 1.4, size=(30000, 3))
    d = scene.distance(pts)
    return pts[np.abs(d) < 0.05][:500]


class TestSHDecoder:
    def test_rejects_small_feature_dim(self):
        with pytest.raises(ValueError):
            SHDecoder(feature_dim=4)

    def test_decode_shapes(self):
        decoder = SHDecoder(feature_dim=16)
        sigma, rgb = decoder.decode(np.zeros((7, 16)), np.ones((7, 3)))
        assert sigma.shape == (7,)
        assert rgb.shape == (7, 3)

    def test_density_sigmoid_of_logit(self):
        decoder = SHDecoder(feature_dim=16, max_density=100.0)
        features = np.zeros((3, 16))
        features[0, 0] = 40.0
        features[1, 0] = 0.0
        features[2, 0] = -40.0
        sigma, _ = decoder.decode(features, np.tile([0.0, 0.0, 1.0], (3, 1)))
        assert sigma[0] == pytest.approx(100.0, rel=1e-6)
        assert sigma[1] == pytest.approx(50.0)
        assert sigma[2] == pytest.approx(0.0, abs=1e-6)

    def test_diffuse_passthrough(self):
        decoder = SHDecoder(feature_dim=16)
        features = np.zeros((1, 16))
        features[0, 1:4] = [0.2, 0.4, 0.6]
        _, rgb = decoder.decode(features, np.array([[0.0, 0.0, 1.0]]))
        np.testing.assert_allclose(rgb[0], [0.2, 0.4, 0.6], atol=1e-9)

    def test_sh_coefficients_add_view_dependence(self):
        decoder = SHDecoder(feature_dim=16)
        features = np.zeros((1, 16))
        features[0, 1:4] = 0.5
        features[0, 4:13] = 0.3  # uniform linear-SH coefficients
        _, rgb_a = decoder.decode(features, np.array([[0.0, 0.0, 1.0]]))
        _, rgb_b = decoder.decode(features, np.array([[0.0, 0.0, -1.0]]))
        assert not np.allclose(rgb_a, rgb_b)

    def test_mac_count_positive(self):
        assert SHDecoder(feature_dim=16).macs_per_sample() > 0


class TestBaking:
    def test_vertex_positions_count_and_order(self, scene):
        positions = vertex_grid_positions(scene.bounds, 4)
        assert positions.shape == (125, 3)
        lo, hi = scene.bounds
        np.testing.assert_allclose(positions[0], lo)
        np.testing.assert_allclose(positions[-1], hi)

    def test_logit_sign_tracks_sdf(self, scene):
        inside = np.array([[0.35, 0.05, 0.0]])  # inside the tower box
        outside = np.array([[0.0, 1.4, 1.4]])
        features = bake_vertex_features(scene, np.vstack([inside, outside]),
                                        density_sharpness=200.0)
        assert features[0, 0] > 0.0
        assert features[1, 0] < 0.0

    def test_rejects_small_feature_dim(self, scene):
        with pytest.raises(ValueError):
            bake_vertex_features(scene, np.zeros((2, 3)), feature_dim=4)

    def test_color_only_near_surface(self, scene):
        far = np.array([[1.45, 1.45, 1.45]])
        features = bake_vertex_features(scene, far, shell_width=0.01)
        np.testing.assert_allclose(features[0, 1:4], 0.0)


class TestVoxelGridField:
    def test_model_size_accounts_grid_and_mlp(self, reference):
        vertices = (32 + 1) ** 3
        expected_grid = vertices * reference.entry_bytes
        assert reference.model_size_bytes > expected_grid
        assert reference.model_size_bytes < expected_grid * 1.1

    def test_interpolation_matches_bake_at_vertices(self, scene, reference):
        positions = vertex_grid_positions(scene.bounds, 32)
        idx = np.random.default_rng(1).choice(len(positions), 64)
        interp = reference.interpolate(positions[idx])
        np.testing.assert_allclose(interp, reference.vertex_features[idx],
                                   atol=1e-9)

    def test_gather_plan_single_streamable_group(self, reference):
        pts = np.random.default_rng(2).uniform(-1.0, 1.0, size=(50, 3))
        groups = reference.gather_plan(pts)
        assert len(groups) == 1
        assert groups[0].streamable
        assert groups[0].vertex_ids.shape == (50, 8)
        np.testing.assert_allclose(groups[0].weights.sum(axis=1), 1.0)

    def test_wrong_vertex_count_rejected(self, scene):
        with pytest.raises(ValueError):
            VoxelGridField(np.zeros((10, 16)), resolution=32,
                           bounds=scene.bounds)

    def test_density_positive_near_surface(self, reference, surface_points):
        features = reference.interpolate(surface_points)
        sigma = reference.decoder.density(features)
        assert (sigma > 1.0).mean() > 0.8


class TestHashGridField:
    @pytest.fixture(scope="class")
    def field(self, scene, reference):
        return HashGridField.bake(scene, num_levels=4, base_resolution=8,
                                  finest_resolution=32, table_size=1 << 12,
                                  reference=reference)

    def test_level_structure(self, field):
        resolutions = [level.resolution for level in field.levels]
        assert resolutions == sorted(resolutions)
        assert field.levels[0].dense  # coarse level fits its table
        assert not field.levels[-1].dense  # finest level is hashed

    def test_gather_plan_one_group_per_level(self, field):
        pts = np.random.default_rng(3).uniform(-1.0, 1.0, size=(20, 3))
        groups = field.gather_plan(pts)
        assert len(groups) == len(field.levels)
        hashed = [g for g in groups if not g.streamable]
        assert hashed, "expected at least one reverted (hashed) level"

    def test_hashed_slots_within_table(self, field):
        pts = np.random.default_rng(4).uniform(-1.4, 1.4, size=(200, 3))
        for group, level in zip(field.gather_plan(pts), field.levels):
            assert (group.vertex_ids >= 0).all()
            assert (group.vertex_ids < level.num_entries).all()

    def test_reconstruction_tracks_reference(self, field, reference,
                                             surface_points):
        target = reference.interpolate(surface_points)
        approx = field.interpolate(surface_points)
        # Hash collisions make this lossy; demand correlation, not equality.
        corr = np.corrcoef(target[:, 0], approx[:, 0])[0, 1]
        assert corr > 0.9

    def test_model_smaller_than_dense_equivalent(self, scene, field):
        dense = VoxelGridField.bake(scene, resolution=32)
        assert field.model_size_bytes < dense.model_size_bytes * 2


class TestTensorFactorField:
    @pytest.fixture(scope="class")
    def field(self, scene, reference):
        return TensorFactorField.bake(scene, resolution=32, rank_per_mode=16,
                                      reference=reference)

    def test_three_modes(self, field):
        assert len(field.modes) == 3
        assert field.rank == 16

    def test_gather_plan_planes_and_vectors(self, field):
        pts = np.random.default_rng(5).uniform(-1.0, 1.0, size=(30, 3))
        groups = field.gather_plan(pts)
        assert len(groups) == 6
        plane_groups = [g for g in groups if g.name.startswith("plane")]
        vector_groups = [g for g in groups if g.name.startswith("vector")]
        assert len(plane_groups) == 3 and len(vector_groups) == 3
        assert plane_groups[0].vertex_ids.shape[1] == 4
        assert vector_groups[0].vertex_ids.shape[1] == 2

    def test_compression(self, field, reference):
        assert field.model_size_bytes < reference.model_size_bytes / 3

    def test_reconstruction_tracks_reference(self, field, reference,
                                             surface_points):
        target = reference.interpolate(surface_points)
        approx = field.interpolate(surface_points)
        corr = np.corrcoef(target[:, 0], approx[:, 0])[0, 1]
        assert corr > 0.9

    def test_wrong_mode_count_rejected(self, field, scene):
        with pytest.raises(ValueError):
            TensorFactorField(field.modes[:2], scene.bounds)
