"""Tests for ray sampling and occupancy skipping."""

import numpy as np

from repro.nerf import OccupancyGrid, UniformSampler

BOUNDS = (np.array([-1.0, -1.0, -1.0]), np.array([1.0, 1.0, 1.0]))


class TestUniformSampler:
    def test_sample_count_for_hitting_ray(self):
        sampler = UniformSampler(num_samples=32)
        samples = sampler.sample(np.array([[0.0, 0.0, -3.0]]),
                                 np.array([[0.0, 0.0, 1.0]]), BOUNDS)
        assert len(samples) == 32
        assert samples.num_rays == 1

    def test_missing_ray_has_no_samples(self):
        sampler = UniformSampler(num_samples=32)
        samples = sampler.sample(np.array([[0.0, 5.0, -3.0]]),
                                 np.array([[0.0, 0.0, 1.0]]), BOUNDS)
        assert len(samples) == 0

    def test_positions_inside_bounds(self):
        sampler = UniformSampler(num_samples=64)
        rng = np.random.default_rng(0)
        origins = rng.uniform(-3, 3, size=(20, 3))
        dirs = rng.normal(size=(20, 3))
        dirs /= np.linalg.norm(dirs, axis=1, keepdims=True)
        samples = sampler.sample(origins, dirs, BOUNDS)
        lo, hi = BOUNDS
        assert (samples.positions >= lo - 1e-6).all()
        assert (samples.positions <= hi + 1e-6).all()

    def test_t_values_sorted_within_ray(self):
        sampler = UniformSampler(num_samples=16)
        samples = sampler.sample(np.array([[0.0, 0.0, -3.0]]),
                                 np.array([[0.0, 0.0, 1.0]]), BOUNDS)
        assert (np.diff(samples.t_values) > 0).all()

    def test_deterministic_without_jitter(self):
        sampler = UniformSampler(num_samples=16)
        a = sampler.sample(np.array([[0.0, 0.0, -3.0]]),
                           np.array([[0.0, 0.0, 1.0]]), BOUNDS)
        b = sampler.sample(np.array([[0.0, 0.0, -3.0]]),
                           np.array([[0.0, 0.0, 1.0]]), BOUNDS)
        np.testing.assert_allclose(a.positions, b.positions)

    def test_jitter_changes_positions(self):
        a = UniformSampler(16, jitter=True, seed=1).sample(
            np.array([[0.0, 0.0, -3.0]]), np.array([[0.0, 0.0, 1.0]]), BOUNDS)
        b = UniformSampler(16, jitter=True, seed=2).sample(
            np.array([[0.0, 0.0, -3.0]]), np.array([[0.0, 0.0, 1.0]]), BOUNDS)
        assert not np.allclose(a.positions, b.positions)

    def test_deltas_cover_span(self):
        sampler = UniformSampler(num_samples=10)
        samples = sampler.sample(np.array([[0.0, 0.0, -3.0]]),
                                 np.array([[0.0, 0.0, 1.0]]), BOUNDS)
        # Span through the box is 2.0 -> delta = 0.2 each.
        np.testing.assert_allclose(samples.deltas, 0.2, atol=1e-9)

    def test_ray_index_maps_back(self):
        sampler = UniformSampler(num_samples=8)
        origins = np.array([[0.0, 0.0, -3.0], [0.0, 5.0, -3.0],
                            [0.1, 0.0, -3.0]])
        dirs = np.tile([0.0, 0.0, 1.0], (3, 1))
        samples = sampler.sample(origins, dirs, BOUNDS)
        assert set(np.unique(samples.ray_index)) == {0, 2}


class TestOccupancyGrid:
    def test_from_field_culls_empty_space(self, small_field):
        grid = OccupancyGrid.from_field(small_field, resolution=24)
        assert 0.0 < grid.occupancy_rate < 0.6

    def test_occupied_lookup_shapes(self, small_field):
        grid = OccupancyGrid.from_field(small_field, resolution=24)
        pts = np.random.default_rng(0).uniform(-1.4, 1.4, size=(100, 3))
        occ = grid.occupied(pts)
        assert occ.shape == (100,)
        assert occ.dtype == bool

    def test_surface_points_occupied(self, small_field, lego_scene):
        grid = OccupancyGrid.from_field(small_field, resolution=24)
        rng = np.random.default_rng(1)
        pts = rng.uniform(-1.4, 1.4, size=(20000, 3))
        near = pts[np.abs(lego_scene.distance(pts)) < 0.02]
        assert grid.occupied(near).mean() > 0.95

    def test_sampler_with_occupancy_reduces_samples(self, small_field):
        origins = np.array([[3.0, 1.0, 0.5]])
        dirs = np.array([[-0.9, -0.3, -0.15]])
        dirs = dirs / np.linalg.norm(dirs)
        plain = UniformSampler(64).sample(origins, dirs, small_field.bounds)
        grid = OccupancyGrid.from_field(small_field, resolution=24)
        culled = UniformSampler(64, occupancy=grid).sample(
            origins, dirs, small_field.bounds)
        assert 0 < len(culled) < len(plain)
