"""Tests for N-linear interpolation setup (Indexing stage)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nerf.fields.interp import (
    bilinear_setup,
    flatten_index,
    linear_setup,
    trilinear_setup,
)

unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


class TestFlattenIndex:
    def test_row_major(self):
        idx = np.array([[1, 2, 3]])
        assert flatten_index(idx, (4, 5, 6))[0] == 1 * 30 + 2 * 6 + 3

    def test_2d(self):
        idx = np.array([[2, 3]])
        assert flatten_index(idx, (5, 7))[0] == 2 * 7 + 3


class TestTrilinear:
    def test_weights_sum_to_one(self):
        coords = np.random.default_rng(0).uniform(size=(100, 3))
        _, _, weights = trilinear_setup(coords, 8)
        np.testing.assert_allclose(weights.sum(axis=1), 1.0, atol=1e-12)

    def test_vertex_coordinate_gives_single_weight(self):
        coords = np.array([[0.25, 0.5, 0.75]])  # exact vertex of an 8-grid
        _, vertex_ids, weights = trilinear_setup(coords, 8)
        assert weights.max() == pytest.approx(1.0)

    def test_cell_ids_in_range(self):
        coords = np.random.default_rng(1).uniform(size=(200, 3))
        cell_ids, vertex_ids, _ = trilinear_setup(coords, 8)
        assert (cell_ids >= 0).all() and (cell_ids < 8**3).all()
        assert (vertex_ids >= 0).all() and (vertex_ids < 9**3).all()

    def test_boundary_coordinate_clamped(self):
        cell_ids, vertex_ids, weights = trilinear_setup(
            np.array([[1.0, 1.0, 1.0]]), 8)
        assert cell_ids[0] == 8**3 - 1
        assert (vertex_ids[0] < 9**3).all()
        np.testing.assert_allclose(weights.sum(), 1.0)

    def test_corner_offsets_structure(self):
        """Vertex ids of one sample must be the 8 corners of its cell."""
        _, vertex_ids, _ = trilinear_setup(np.array([[0.1, 0.1, 0.1]]), 4)
        side = 5
        base = vertex_ids[0, 0]
        expected = [base + dz + dy * side + dx * side * side
                    for dx in (0, 1) for dy in (0, 1) for dz in (0, 1)]
        np.testing.assert_array_equal(np.sort(vertex_ids[0]),
                                      np.sort(expected))

    @settings(max_examples=40, deadline=None)
    @given(x=unit, y=unit, z=unit)
    def test_interpolates_linear_functions_exactly(self, x, y, z):
        """Trilinear weights must reproduce any linear function exactly."""
        resolution = 4
        side = resolution + 1
        grid = np.stack(np.meshgrid(np.arange(side), np.arange(side),
                                    np.arange(side), indexing="ij"),
                        axis=-1).reshape(-1, 3) / resolution
        values = 2.0 * grid[:, 0] - 3.0 * grid[:, 1] + 0.5 * grid[:, 2] + 1.0
        _, vertex_ids, weights = trilinear_setup(np.array([[x, y, z]]),
                                                 resolution)
        interp = (values[vertex_ids[0]] * weights[0]).sum()
        expected = 2.0 * x - 3.0 * y + 0.5 * z + 1.0
        assert interp == pytest.approx(expected, abs=1e-9)


class TestBilinear:
    def test_weights_sum_to_one(self):
        coords = np.random.default_rng(2).uniform(size=(50, 2))
        _, _, weights = bilinear_setup(coords, 8)
        np.testing.assert_allclose(weights.sum(axis=1), 1.0, atol=1e-12)

    def test_four_vertices(self):
        _, vertex_ids, _ = bilinear_setup(np.array([[0.3, 0.7]]), 8)
        assert vertex_ids.shape == (1, 4)

    def test_linear_exactness(self):
        resolution = 6
        side = resolution + 1
        grid = np.stack(np.meshgrid(np.arange(side), np.arange(side),
                                    indexing="ij"), axis=-1).reshape(-1, 2)
        values = grid[:, 0] * 1.5 - grid[:, 1] * 0.5
        _, vertex_ids, weights = bilinear_setup(np.array([[0.37, 0.61]]),
                                                resolution)
        interp = (values[vertex_ids[0]] * weights[0]).sum()
        expected = 0.37 * resolution * 1.5 - 0.61 * resolution * 0.5
        assert interp == pytest.approx(expected, abs=1e-9)


class TestLinear:
    def test_two_vertices_and_weights(self):
        cell, vertices, weights = linear_setup(np.array([0.25]), 4)
        assert cell[0] == 1
        np.testing.assert_array_equal(vertices[0], [1, 2])
        np.testing.assert_allclose(weights[0], [1.0, 0.0])

    def test_boundary_clamp(self):
        cell, vertices, weights = linear_setup(np.array([1.0]), 4)
        assert cell[0] == 3
        np.testing.assert_allclose(weights.sum(), 1.0)
