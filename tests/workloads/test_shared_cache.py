"""Tests for the bounded shared LRU cache and its configs integration."""

import numpy as np
import pytest

from repro.harness.configs import FAST, build_renderer
from repro.workloads import FIELD_CACHE, SharedLRUCache, pose_hash


class TestSharedLRUCache:
    def test_miss_then_hit(self):
        cache = SharedLRUCache(name="t", max_entries=4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.insertions == 1
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_entry_bound_evicts_lru(self):
        cache = SharedLRUCache(name="t", max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh 'a'; 'b' is now LRU
        cache.put("c", 3)
        assert "b" not in cache
        assert "a" in cache and "c" in cache
        assert cache.stats.evictions == 1

    def test_byte_bound_evicts(self):
        cache = SharedLRUCache(name="t", max_entries=10, max_bytes=100)
        cache.put("a", 1, size_bytes=60)
        cache.put("b", 2, size_bytes=60)
        assert "a" not in cache
        assert cache.total_bytes == 60

    def test_oversized_entry_is_refused(self):
        # Pre-fix, an entry larger than max_bytes was retained forever:
        # it could never be evicted (the bound never evicts the newest
        # entry), so total_bytes sat above max_bytes while every other
        # entry got evicted around it.  Now the byte bound is a strict
        # invariant: an entry that cannot fit on its own is refused.
        cache = SharedLRUCache(name="t", max_entries=10, max_bytes=100)
        cache.put("b", 2, size_bytes=60)
        cache.put("c", 3, size_bytes=500)
        assert "c" not in cache
        assert "b" in cache  # the refusal does not evict smaller entries
        assert cache.total_bytes == 60
        assert cache.stats.insertions == 2
        assert cache.stats.evictions == 1  # counted as insert-then-evict
        # Refreshing an existing key with an oversized value drops it.
        cache.put("b", 4, size_bytes=500)
        assert "b" not in cache
        assert cache.total_bytes == 0

    def test_put_refreshes_existing_key(self):
        cache = SharedLRUCache(name="t", max_entries=2)
        cache.put("a", 1, size_bytes=10)
        cache.put("a", 2, size_bytes=20)
        assert len(cache) == 1
        assert cache.total_bytes == 20
        assert cache.get("a") == 2
        assert cache.stats.evictions == 0

    def test_get_or_build_builds_once(self):
        cache = SharedLRUCache(name="t", max_entries=4)
        calls = []

        def build():
            calls.append(1)
            return "value"

        assert cache.get_or_build("k", build) == "value"
        assert cache.get_or_build("k", build) == "value"
        assert len(calls) == 1

    def test_get_or_build_caches_none_values(self):
        cache = SharedLRUCache(name="t", max_entries=4)
        calls = []
        assert cache.get_or_build("k", lambda: calls.append(1)) is None
        assert cache.get_or_build("k", lambda: calls.append(1)) is None
        assert len(calls) == 1

    def test_snapshot_and_since(self):
        cache = SharedLRUCache(name="t", max_entries=4)
        cache.put("a", 1)
        before = cache.stats.snapshot()
        cache.get("a")
        cache.get("missing")
        delta = cache.stats.since(before)
        assert (delta.hits, delta.misses, delta.insertions) == (1, 1, 0)

    def test_report_shape(self):
        cache = SharedLRUCache(name="t", max_entries=4)
        cache.put("a", 1, size_bytes=5)
        report = cache.report()
        assert report["entries"] == 1
        assert report["bytes"] == 5
        assert set(report) == {"hits", "misses", "insertions", "evictions",
                               "hit_rate", "entries", "bytes"}

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            SharedLRUCache(name="t", max_entries=0)
        with pytest.raises(ValueError):
            SharedLRUCache(name="t", max_entries=1, max_bytes=0)


class TestPoseHash:
    def test_equal_poses_equal_hashes(self):
        pose = np.eye(4)
        assert pose_hash(pose) == pose_hash(pose.copy())

    def test_sensitive_to_any_element(self):
        pose = np.eye(4)
        perturbed = pose.copy()
        perturbed[0, 3] = 1e-12
        assert pose_hash(pose) != pose_hash(perturbed)


class TestConfigsIntegration:
    """build_renderer is served from the bounded FIELD_CACHE."""

    def test_same_args_share_renderer_instance(self):
        before = FIELD_CACHE.stats.snapshot()
        a = build_renderer("directvoxgo", "lego", FAST)
        b = build_renderer("directvoxgo", "lego", FAST)
        assert a is b
        assert FIELD_CACHE.stats.since(before).hits >= 1

    def test_field_cache_is_bounded(self):
        assert FIELD_CACHE.max_entries < 1000
