"""SharedLRUCache under real threads: the live frame server's usage.

The cache started life single-threaded (one harness process); the live
frame server builds sessions on worker threads, so every operation must
hold the lock and ``get_or_build`` must be single-flight.  These tests
fail against the pre-fix unlocked cache: concurrent misses ran the
builder once per thread, and racing ``put`` calls corrupted the
``OrderedDict``/byte accounting.
"""

from __future__ import annotations

import threading
import time

from repro.workloads import SharedLRUCache


def _run_threads(count, target):
    threads = [threading.Thread(target=target, args=(index,))
               for index in range(count)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30.0)
    assert not any(thread.is_alive() for thread in threads)


class TestSingleFlight:
    def test_concurrent_misses_build_once(self):
        cache = SharedLRUCache(name="t", max_entries=8)
        builds = []
        barrier = threading.Barrier(8)
        results = [None] * 8

        def builder():
            builds.append(threading.get_ident())
            time.sleep(0.05)  # widen the race window
            return object()

        def worker(index):
            barrier.wait()
            results[index] = cache.get_or_build("key", builder)

        _run_threads(8, worker)
        assert len(builds) == 1
        assert all(value is results[0] for value in results)
        # Exactly one lookup counted per caller: one miss, the rest hits.
        assert cache.stats.misses == 1
        assert cache.stats.hits == 7

    def test_failed_build_hands_over_to_a_waiter(self):
        cache = SharedLRUCache(name="t", max_entries=8)
        attempts = []
        barrier = threading.Barrier(4)
        results = [None] * 4
        errors = []

        def builder():
            attempts.append(1)
            if len(attempts) == 1:
                time.sleep(0.02)
                raise RuntimeError("first build dies")
            return "ok"

        def worker(index):
            barrier.wait()
            try:
                results[index] = cache.get_or_build("key", builder)
            except RuntimeError as exc:
                errors.append(exc)

        _run_threads(4, worker)
        # The failing thread sees its own exception; every waiter retries
        # and one of them completes the build for the rest.
        assert len(errors) == 1
        assert [r for r in results if r is not None].count("ok") == 3
        assert cache.get("key") == "ok"

    def test_distinct_keys_build_concurrently(self):
        cache = SharedLRUCache(name="t", max_entries=8)
        inside = []
        lock = threading.Lock()
        overlapped = threading.Event()

        def make_builder(key):
            def builder():
                with lock:
                    inside.append(key)
                    if len(inside) > 1:
                        overlapped.set()
                time.sleep(0.05)
                with lock:
                    inside.remove(key)
                return key
            return builder

        def worker(index):
            key = f"k{index}"
            assert cache.get_or_build(key, make_builder(key)) == key

        _run_threads(4, worker)
        # Single-flight is per key, not a global serialisation.
        assert overlapped.is_set()


class TestConcurrentMutation:
    def test_bounds_hold_under_racing_puts(self):
        cache = SharedLRUCache(name="t", max_entries=16, max_bytes=1000)
        barrier = threading.Barrier(8)

        def worker(index):
            barrier.wait()
            for step in range(200):
                key = f"{index}:{step % 24}"
                cache.put(key, step, size_bytes=50 + (step % 3) * 25)
                cache.get(key)
                len(cache)

        _run_threads(8, worker)
        assert len(cache) <= 16
        assert cache.total_bytes <= 1000
        # The byte ledger must agree with the surviving entries.
        assert cache.total_bytes == sum(
            entry.size_bytes for entry in cache._entries.values())

    def test_counters_are_not_lost(self):
        cache = SharedLRUCache(name="t", max_entries=4)
        cache.put("k", 1)
        barrier = threading.Barrier(8)

        def worker(index):
            barrier.wait()
            for _ in range(500):
                cache.get("k")

        _run_threads(8, worker)
        # Pre-fix the unlocked `hits += 1` read-modify-write dropped
        # increments under contention.
        assert cache.stats.hits == 8 * 500
