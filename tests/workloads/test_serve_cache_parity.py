"""Regression: cached serving == uncached serving, bit for bit.

The shared cross-session reference cache must change *work*, never
*output*: for a mixed-workload serve (>= 3 distinct specs, one duplicated)
every session's frames, pixel classifications, and recorded work stats
must be identical with the cache enabled and disabled — while the cached
run demonstrably serves reference renders from the cache.
"""

import numpy as np
import pytest

from repro.engine import MultiSessionEngine
from repro.harness.configs import FAST
from repro.harness.serve import run_serve
from repro.workloads import SharedLRUCache, build_mixed_sessions

# Three distinct workloads; vr-lego duplicated so two users consume the
# identical content (the case the shared cache exists for).
MIX = "vr-lego:2,vr-headshake,dolly-chair"
FRAMES = 4


def _run(cache):
    sessions = build_mixed_sessions(MIX, FAST, frames=FRAMES)
    result = MultiSessionEngine(sessions, reference_cache=cache).run()
    return result


@pytest.fixture(scope="module")
def uncached():
    return _run(cache=None)


@pytest.fixture(scope="module")
def cached_run():
    cache = SharedLRUCache(name="test-references", max_entries=64)
    return _run(cache=cache), cache


class TestCachedServingParity:
    def test_cache_actually_used(self, cached_run):
        result, cache = cached_run
        assert result.batch.cache_hits > 0
        assert cache.stats.hits == result.batch.cache_hits
        assert cache.stats.insertions > 0
        # The duplicated vr-lego sessions issue one reference per window;
        # every one after the primary's must be served from the cache.
        lego = result.session("vr-lego-01").result
        assert result.batch.cache_hits >= lego.num_references

    def test_fewer_rays_rendered_with_cache(self, cached_run, uncached):
        result, _ = cached_run
        assert result.batch.total_rays < uncached.batch.total_rays

    def test_frames_bit_identical(self, cached_run, uncached):
        result, _ = cached_run
        for solo in uncached.sessions:
            twin = result.session(solo.session_id).result
            ref = solo.result
            assert twin.num_frames == ref.num_frames == FRAMES
            for bf, sf in zip(twin.frames, ref.frames):
                assert np.array_equal(bf.image, sf.image)
                assert np.array_equal(bf.depth, sf.depth)
                assert np.array_equal(bf.hit, sf.hit)

    def test_records_identical(self, cached_run, uncached):
        result, _ = cached_run
        for solo in uncached.sessions:
            twin = result.session(solo.session_id).result
            for br, sr in zip(twin.records, solo.result.records):
                assert br.frame_index == sr.frame_index
                assert br.new_reference == sr.new_reference
                assert br.sparse_stats == sr.sparse_stats
                assert br.reference_stats == sr.reference_stats
                assert br.overlap == sr.overlap
                assert br.mean_warp_angle_deg == sr.mean_warp_angle_deg
                assert np.array_equal(br.classification.warped,
                                      sr.classification.warped)
                assert np.array_equal(br.classification.disoccluded,
                                      sr.classification.disoccluded)
                assert np.array_equal(br.classification.void,
                                      sr.classification.void)

    def test_duplicated_sessions_identical_output(self, cached_run):
        """Two users of one workload see exactly the same frames."""
        result, _ = cached_run
        a = result.session("vr-lego-00").result
        b = result.session("vr-lego-01").result
        for fa, fb in zip(a.frames, b.frames):
            assert np.array_equal(fa.image, fb.image)

    def test_ray_budget_ignores_cache_served_requests(self):
        """Cache-served reference requests render nothing, so they must
        not consume the per-round ray budget (which would defer sessions
        that actually render)."""
        budget = FAST.image_size * FAST.image_size  # one reference frame
        cache = SharedLRUCache(name="budget-refs", max_entries=16)
        cached = MultiSessionEngine(
            build_mixed_sessions("vr-lego:2", FAST, frames=2),
            ray_budget=budget, reference_cache=cache).run()
        uncached = MultiSessionEngine(
            build_mixed_sessions("vr-lego:2", FAST, frames=2),
            ray_budget=budget).run()
        # Without the cache the second session's reference blows the
        # budget and defers it a round; with it, both fit every round.
        assert cached.batch.cache_hits > 0
        assert cached.batch.rounds < uncached.batch.rounds

    def test_sessions_without_cache_key_bypass_cache(self):
        """Raw engine sessions (no workload identity) never touch the cache."""
        from repro.core.sparw import SparwRenderer
        from repro.engine import RenderSession
        from repro.harness.configs import build_renderer, make_camera
        from repro.scenes import orbit_trajectory

        renderer = build_renderer("directvoxgo", "lego", FAST)
        poses = orbit_trajectory(2, radius=FAST.orbit_radius).poses
        sessions = [
            RenderSession(f"anon{i}",
                          SparwRenderer(renderer, make_camera(FAST), window=2),
                          poses)
            for i in range(2)
        ]
        cache = SharedLRUCache(name="unused", max_entries=8)
        result = MultiSessionEngine(sessions, reference_cache=cache).run()
        assert result.batch.cache_hits == 0
        assert len(cache) == 0
        assert cache.stats.lookups == 0


class TestServeHarnessParity:
    """run_serve end-to-end: same rows either way, hit stats surfaced."""

    @pytest.fixture(scope="class")
    def serve_results(self):
        rows_on, summary_on = run_serve(FAST, workloads=MIX, frames=FRAMES,
                                        use_cache=True)
        rows_off, summary_off = run_serve(FAST, workloads=MIX, frames=FRAMES,
                                          use_cache=False)
        return rows_on, summary_on, rows_off, summary_off

    def test_rows_identical(self, serve_results):
        rows_on, _, rows_off, _ = serve_results
        assert rows_on == rows_off

    def test_cache_stats_reported(self, serve_results):
        _, summary_on, _, summary_off = serve_results
        assert summary_on["cache_enabled"] is True
        assert summary_on["ref_cache_hits"] > 0
        assert 0.0 < summary_on["ref_cache_hit_rate"] <= 1.0
        assert summary_on["cache"]["references"]["hits"] \
            == summary_on["ref_cache_hits"]
        assert summary_off["cache_enabled"] is False

    def test_cached_run_renders_fewer_rays(self, serve_results):
        _, summary_on, _, summary_off = serve_results
        assert summary_on["total_rays"] < summary_off["total_rays"]
        # Latency/throughput pricing is off the recorded stats, which are
        # identical — so the aggregate numbers agree exactly.
        assert summary_on["aggregate_fps"] == summary_off["aggregate_fps"]
        assert summary_on["p95_latency_ms"] == summary_off["p95_latency_ms"]

    def test_per_spec_variants_priced(self):
        """Heterogeneous mixes price each session under its spec's variant."""
        import dataclasses

        from repro.workloads import WORKLOADS

        cicero = WORKLOADS["vr-lego"]
        gpu = dataclasses.replace(cicero, name="vr-lego-gpu", variant="gpu")
        rows, summary = run_serve(FAST, workloads=[(cicero, 1), (gpu, 1)],
                                  frames=2)
        assert summary["variant"] == "mixed"
        # Identical content, different SoC variant: pricing must differ.
        assert rows[0]["solo_fps"] != rows[1]["solo_fps"]
