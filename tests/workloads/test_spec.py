"""Tests for WorkloadSpec, the named registry, and mix parsing."""

import dataclasses

import numpy as np
import pytest

from repro.harness.configs import ALGORITHMS, DEFAULT, FAST
from repro.scenes import TRAJECTORY_KINDS, get_scene, orbit_trajectory
from repro.workloads import (
    WORKLOADS,
    WorkloadSpec,
    build_mixed_sessions,
    get_workload,
    list_workloads,
    parse_mix,
    register_workload,
)


class TestSpec:
    def test_make_moves_extra_kwargs_to_trajectory_params(self):
        spec = WorkloadSpec.make("w", trajectory="orbit", window=4,
                                 degrees_per_frame=2.0, start_angle_deg=90.0)
        assert spec.window == 4
        assert spec.trajectory_params == (
            ("degrees_per_frame", 2.0), ("start_angle_deg", 90.0))

    def test_unknown_trajectory_rejected(self):
        with pytest.raises(ValueError, match="unknown trajectory"):
            WorkloadSpec(name="w", trajectory="spiral")

    def test_unknown_trajectory_param_rejected_at_construction(self):
        # A generator-param typo (or a misspelled spec field routed into
        # trajectory_params by make()) fails immediately, not at build.
        with pytest.raises(ValueError, match="does not accept"):
            WorkloadSpec.make("w", trajectory="orbit", radiu=3.0)
        with pytest.raises(ValueError, match="does not accept"):
            WorkloadSpec.make("w", algoritm="tensorf")
        with pytest.raises(ValueError, match="does not accept"):
            WorkloadSpec.make("w", trajectory="replay",
                              degrees_per_frame=5.0)

    def test_unknown_tier_rejected(self):
        with pytest.raises(ValueError, match="unknown tier"):
            WorkloadSpec(name="w", tier="ultra")

    def test_hash_ignores_display_name(self):
        a = WorkloadSpec(name="a", scene="lego")
        b = WorkloadSpec(name="b", scene="lego")
        assert a.spec_hash() == b.spec_hash()

    def test_hash_sensitive_to_content(self):
        base = WorkloadSpec(name="w")
        for change in ({"scene": "chair"}, {"algorithm": "tensorf"},
                       {"trajectory": "dolly"}, {"window": 3},
                       {"phi": 4.0}, {"seed": 1}, {"tier": "preview"},
                       {"trajectory_params": (("start_angle_deg", 10.0),)}):
            assert dataclasses.replace(base, **change).spec_hash() \
                != base.spec_hash()

    def test_cache_key_includes_config_scale(self):
        spec = WorkloadSpec(name="w")
        assert spec.cache_key(FAST) != spec.cache_key(DEFAULT)
        assert spec.cache_key(FAST) == spec.cache_key(FAST)

    def test_tier_resolution(self):
        assert WorkloadSpec(name="w").resolve_config(FAST) is FAST
        assert WorkloadSpec(name="w", tier="fast").resolve_config(DEFAULT) \
            is FAST
        assert WorkloadSpec(name="w", tier="default").resolve_config(FAST) \
            is DEFAULT
        preview = WorkloadSpec(name="w", tier="preview").resolve_config(FAST)
        assert preview.image_size == max(32, FAST.image_size // 2)
        assert preview.samples_per_ray <= FAST.samples_per_ray

    def test_build_trajectory_matches_figure_orbit(self):
        """Spec-built orbits are pose-identical to the GT harness orbits."""
        spec = WorkloadSpec(name="w", trajectory="orbit")
        built = spec.build_trajectory(FAST)
        expected = orbit_trajectory(FAST.num_frames,
                                    radius=FAST.orbit_radius,
                                    degrees_per_frame=FAST.degrees_per_frame)
        assert len(built) == len(expected)
        for pa, pb in zip(built.poses, expected.poses):
            np.testing.assert_array_equal(pa, pb)

    def test_build_trajectory_deterministic(self):
        spec = WorkloadSpec(name="w", trajectory="random_walk", seed=5,
                            frames=6)
        a = spec.build_trajectory(FAST)
        b = spec.build_trajectory(FAST)
        for pa, pb in zip(a.poses, b.poses):
            np.testing.assert_array_equal(pa, pb)

    def test_frames_override(self):
        assert WorkloadSpec(name="w", frames=3).num_frames(FAST) == 3
        assert WorkloadSpec(name="w").num_frames(FAST) == FAST.num_frames


class TestRegistry:
    def test_builtins_are_valid(self):
        specs = list_workloads()
        assert len(specs) >= 5
        trajectories = set()
        for spec in specs:
            get_scene(spec.scene)  # raises on unknown scene
            assert spec.algorithm in ALGORITHMS
            assert spec.trajectory in TRAJECTORY_KINDS
            trajectories.add(spec.trajectory)
        # The registry exercises heterogeneous motion, not just orbits.
        assert len(trajectories) >= 3

    def test_get_unknown_workload(self):
        with pytest.raises(KeyError, match="unknown workload"):
            get_workload("nope")

    def test_register_duplicate_rejected(self):
        spec = WORKLOADS["vr-lego"]
        with pytest.raises(ValueError, match="already registered"):
            register_workload(spec)

    def test_parse_mix_string(self):
        mix = parse_mix("vr-lego:3,dolly-chair")
        assert [(s.name, n) for s, n in mix] == [("vr-lego", 3),
                                                 ("dolly-chair", 1)]

    def test_parse_mix_list_and_pairs(self):
        spec = WORKLOADS["vr-lego"]
        assert parse_mix(["vr-lego:2"])[0][1] == 2
        assert parse_mix([(spec, 4)]) == [(spec, 4)]
        # Pairs may name the spec by string; it resolves via the registry.
        assert parse_mix([("vr-lego", 2)]) == [(spec, 2)]
        with pytest.raises(KeyError, match="unknown workload"):
            parse_mix([("bogus", 2)])
        with pytest.raises(ValueError, match="count must be >= 1"):
            parse_mix([("vr-lego", 0)])

    def test_parse_mix_merges_repeated_names(self):
        mix = parse_mix("vr-lego,dolly-chair,vr-lego:2")
        assert [(s.name, n) for s, n in mix] == [("vr-lego", 3),
                                                 ("dolly-chair", 1)]

    def test_parse_mix_rejects_same_name_different_specs(self):
        clone = dataclasses.replace(WORKLOADS["vr-lego"], seed=99)
        with pytest.raises(ValueError, match="same name"):
            parse_mix([(WORKLOADS["vr-lego"], 1), (clone, 1)])

    def test_parse_mix_errors(self):
        with pytest.raises(ValueError, match="empty workload mix"):
            parse_mix("")
        with pytest.raises(ValueError, match="count must be >= 1"):
            parse_mix("vr-lego:0")
        with pytest.raises(ValueError, match="bad workload count"):
            parse_mix("vr-lego:x")
        with pytest.raises(KeyError, match="unknown workload"):
            parse_mix("vr-lego,bogus:2")

    def test_build_mixed_sessions_ids_and_frames(self):
        sessions = build_mixed_sessions("vr-lego:2,vr-headshake", FAST,
                                        frames=2)
        assert [s.session_id for s in sessions] == [
            "vr-lego-00", "vr-lego-01", "vr-headshake-00"]
        assert all(s.num_frames == 2 for s in sessions)
        # Copies of one spec share the identical trajectory + cache key;
        # distinct specs do not.
        assert np.array_equal(sessions[0].poses[0], sessions[1].poses[0])
        assert sessions[0].cache_key == sessions[1].cache_key
        assert sessions[0].cache_key != sessions[2].cache_key
