"""Tests for SoC variant pricing and SPARW sequencing."""

import pytest

from repro.hw import FrameWorkload, GatherTraffic, SoCModel, SparwWorkloads


@pytest.fixture
def full_frame():
    return FrameWorkload(
        num_rays=9216,
        num_samples=400_000,
        mlp_macs=400_000 * 3000,
        gather_accesses=3_200_000,
        gather_bytes=3_200_000 * 32,
        baseline_traffic=GatherTraffic(5e6, 45e6),
        streaming_traffic=GatherTraffic(8e6, 0.0),
        rit_bytes=400_000 * 48,
        gather_conflict_slowdown=2.0,
    )


@pytest.fixture
def sparw_workloads(full_frame):
    target = full_frame.scaled(0.04)  # ~4% sparse pixels
    target.warp_points = 9216
    return SparwWorkloads(target=target, reference=full_frame, window=16)


@pytest.fixture
def soc():
    return SoCModel()


class TestVariantOrdering:
    def test_paper_ordering_of_variants(self, soc, full_frame,
                                        sparw_workloads):
        """baseline > sparw > sparw_fs > cicero in latency (Fig. 19a)."""
        base = soc.price_nerf(full_frame, "baseline").time_s
        sparw = soc.price_sparw_local(sparw_workloads, "sparw").time_s
        fs = soc.price_sparw_local(sparw_workloads, "sparw_fs").time_s
        cicero = soc.price_sparw_local(sparw_workloads, "cicero").time_s
        assert base > sparw > fs > cicero

    def test_energy_ordering(self, soc, full_frame, sparw_workloads):
        base = soc.price_nerf(full_frame, "baseline").energy_j
        sparw = soc.price_sparw_local(sparw_workloads, "sparw").energy_j
        cicero = soc.price_sparw_local(sparw_workloads, "cicero").energy_j
        assert base > sparw > cicero

    def test_npu_beats_pure_gpu(self, soc, full_frame):
        gpu = soc.price_nerf(full_frame, "gpu")
        npu = soc.price_nerf(full_frame, "baseline")
        assert npu.time_s < gpu.time_s

    def test_sparw_speedup_tracks_window(self, soc, full_frame,
                                         sparw_workloads):
        base = soc.price_nerf(full_frame, "baseline").time_s
        speedup = base / soc.price_sparw_local(sparw_workloads, "sparw").time_s
        # With a window of 16 and ~4% sparse work, speed-up lands near
        # 16 / (1 + 16*0.04) ~ 9.7; allow a generous band.
        assert 4.0 < speedup < 16.0

    def test_unknown_variant_rejected(self, soc, full_frame):
        with pytest.raises(ValueError):
            soc.price_nerf(full_frame, "warp9")


class TestCostStructure:
    def test_stage_times_present(self, soc, full_frame):
        cost = soc.price_nerf(full_frame, "baseline")
        for key in ("indexing", "gathering", "computation", "dram"):
            assert key in cost.stage_times

    def test_energy_parts_sum(self, soc, full_frame):
        cost = soc.price_nerf(full_frame, "cicero")
        assert cost.energy_j == pytest.approx(sum(cost.energy_parts.values()))

    def test_fs_reduces_dram_energy(self, soc, full_frame):
        base = soc.price_nerf(full_frame, "baseline")
        fs = soc.price_nerf(full_frame, "sparw_fs")
        assert fs.energy_parts["dram"] < base.energy_parts["dram"]

    def test_gu_removes_gather_from_gpu(self, soc, full_frame):
        base = soc.price_nerf(full_frame, "baseline")
        cicero = soc.price_nerf(full_frame, "cicero")
        assert cicero.stage_times["gathering"] < base.stage_times["gathering"]
        assert cicero.energy_parts["gpu"] < base.energy_parts["gpu"]

    def test_merge_and_scale(self, soc, full_frame):
        cost = soc.price_nerf(full_frame, "baseline")
        double = cost.merge(cost)
        assert double.time_s == pytest.approx(2 * cost.time_s)
        half = cost.scaled(0.5)
        assert half.energy_j == pytest.approx(0.5 * cost.energy_j)


class TestWorkloadAlgebra:
    def test_scaled_counts(self, full_frame):
        half = full_frame.scaled(0.5)
        assert half.num_samples == full_frame.num_samples // 2
        assert half.baseline_traffic.total_bytes == pytest.approx(
            full_frame.baseline_traffic.total_bytes / 2)

    def test_merge_weighted_slowdown(self, full_frame):
        other = full_frame.scaled(1.0)
        other.gather_conflict_slowdown = 4.0
        merged = full_frame.merge(other)
        assert 2.0 < merged.gather_conflict_slowdown < 4.0
