"""Tests for remote rendering, rival accelerators, and scheduling timelines."""

import pytest

from repro.hw import (
    FrameWorkload,
    GatherTraffic,
    NGPCModel,
    NeuRexModel,
    RemoteConfig,
    RemoteScenario,
    SoCModel,
    SparwWorkloads,
    overlapped_timeline,
    serialized_timeline,
)


@pytest.fixture
def full_frame():
    return FrameWorkload(
        num_rays=9216, num_samples=400_000, mlp_macs=400_000 * 3000,
        gather_accesses=3_200_000, gather_bytes=3_200_000 * 32,
        baseline_traffic=GatherTraffic(5e6, 45e6),
        streaming_traffic=GatherTraffic(8e6, 0.0),
        rit_bytes=400_000 * 48, gather_conflict_slowdown=2.5,
    )


@pytest.fixture
def workloads(full_frame):
    target = full_frame.scaled(0.04)
    target.warp_points = 9216
    return SparwWorkloads(target=target, reference=full_frame, window=16)


class TestRemote:
    def test_baseline_remote_has_lowest_device_energy(self, full_frame,
                                                      workloads):
        """Fig. 19b's observation: offloading everything minimises energy."""
        soc = SoCModel()
        remote = RemoteScenario(soc)
        frame_bytes = 96 * 96 * 4
        base = remote.price_baseline_remote(full_frame, frame_bytes)
        cicero = remote.price_sparw_remote(workloads, "cicero", frame_bytes)
        assert base.energy_j < cicero.energy_j

    def test_cicero_remote_faster_than_baseline_remote(self, full_frame,
                                                       workloads):
        soc = SoCModel()
        remote = RemoteScenario(soc)
        frame_bytes = 96 * 96 * 4
        base = remote.price_baseline_remote(full_frame, frame_bytes)
        cicero = remote.price_sparw_remote(workloads, "cicero", frame_bytes)
        assert cicero.time_s < base.time_s

    def test_compression_shrinks_link_bytes(self):
        config = RemoteConfig(compression_ratio=20.0)
        assert config.frame_bytes_on_link(2000) == pytest.approx(100.0)

    def test_reference_overlap_hides_latency(self, full_frame, workloads):
        """With a large window the remote reference fully hides."""
        soc = SoCModel()
        remote = RemoteScenario(soc)
        cost = remote.price_sparw_remote(workloads, "cicero", 96 * 96 * 4)
        target = soc.price_nerf(workloads.target, "cicero")
        assert cost.time_s >= target.time_s  # never faster than local path


class TestRivals:
    def test_cicero_no_sparw_beats_neurex(self, full_frame):
        """Paper: ~2x over NeuRex from conflict elimination."""
        soc = SoCModel()
        neurex = NeuRexModel().price_frame(full_frame)
        cicero = soc.price_nerf(full_frame, "cicero")
        assert cicero.time_s < neurex.time_s

    def test_ngpc_close_to_cicero_no_sparw(self, full_frame):
        soc = SoCModel()
        ngpc = NGPCModel().price_frame(full_frame)
        cicero = soc.price_nerf(full_frame, "cicero")
        ratio = ngpc.time_s / cicero.time_s
        assert 0.5 < ratio < 2.5

    def test_ngpc_has_no_dram_gather_traffic(self, full_frame):
        cost = NGPCModel().price_frame(full_frame)
        assert cost.energy_parts["dram"] == pytest.approx(0.0)

    def test_neurex_pays_conflicts(self, full_frame):
        slow = NeuRexModel().price_frame(full_frame)
        no_conflicts = FrameWorkload(**{**full_frame.__dict__,
                                        "gather_conflict_slowdown": 1.0})
        fast = NeuRexModel().price_frame(no_conflicts)
        # Gather-stage energy dilates by the conflict slowdown; latency only
        # when the engine (not DRAM) is the gather bottleneck.
        assert slow.energy_parts["gather"] > fast.energy_parts["gather"]
        assert slow.time_s >= fast.time_s


class TestTimelines:
    def test_serialized_boundary_stall(self):
        result = serialized_timeline(target_time=0.01, reference_time=0.2,
                                     window=10)
        assert result.worst_frame_time == pytest.approx(0.21)
        assert result.reference_stall == pytest.approx(0.2)

    def test_overlapped_shared_mean_matches_serialized(self):
        ser = serialized_timeline(0.01, 0.2, 10)
        ovl = overlapped_timeline(0.01, 0.2, 10, shared_resources=True)
        assert ovl.mean_frame_time == pytest.approx(ser.mean_frame_time)
        assert ovl.worst_frame_time < ser.worst_frame_time

    def test_overlapped_dedicated_hides_reference(self):
        result = overlapped_timeline(0.01, 0.05, 10, shared_resources=False)
        assert result.mean_frame_time == pytest.approx(0.01)

    def test_overlapped_dedicated_reference_bound(self):
        result = overlapped_timeline(0.01, 0.5, 10, shared_resources=False)
        assert result.mean_frame_time == pytest.approx(0.05)

    def test_fps(self):
        assert serialized_timeline(0.01, 0.0, 1).fps == pytest.approx(100.0)
