"""Tests for GPU/NPU/GU component models."""

import pytest

from repro.hw import (
    FrameWorkload,
    GatherTraffic,
    GatheringUnitModel,
    GPUModel,
    GUConfig,
    NPUConfig,
    NPUModel,
)


@pytest.fixture
def workload():
    return FrameWorkload(
        num_rays=1000,
        num_samples=50_000,
        mlp_macs=50_000 * 3000,
        gather_accesses=400_000,
        gather_bytes=400_000 * 32,
        baseline_traffic=GatherTraffic(1e6, 9e6),
        streaming_traffic=GatherTraffic(4e6, 0.0),
        rit_bytes=50_000 * 48,
        gather_conflict_slowdown=2.0,
    )


class TestGPUModel:
    def test_gathering_dominates_breakdown(self, workload):
        gpu = GPUModel()
        breakdown = gpu.frame_breakdown(workload)
        assert breakdown.gathering > breakdown.indexing
        assert breakdown.gathering > 0.4 * breakdown.total

    def test_conflicts_slow_gathering(self, workload):
        gpu = GPUModel()
        slow = gpu.gathering_time(workload)
        fast_wl = FrameWorkload(**{**workload.__dict__,
                                   "gather_conflict_slowdown": 1.0})
        assert gpu.gathering_time(fast_wl) < slow

    def test_random_traffic_slows_gathering(self, workload):
        gpu = GPUModel()
        streaming_wl = FrameWorkload(**{**workload.__dict__,
                                        "baseline_traffic": GatherTraffic(10e6, 0.0)})
        assert gpu.gathering_time(streaming_wl) < gpu.gathering_time(workload)

    def test_warp_cost_matches_paper_scale(self):
        """Paper: ~1 ms per million warped points on the mobile GPU."""
        gpu = GPUModel()
        wl = FrameWorkload(warp_points=1_000_000)
        assert gpu.warping_time(wl) == pytest.approx(1e-3, rel=0.5)

    def test_energy_includes_dram(self, workload):
        gpu = GPUModel()
        power_only = gpu.frame_time(workload) * gpu.config.average_power_w
        assert gpu.frame_energy(workload) > power_only

    def test_breakdown_merge(self, workload):
        gpu = GPUModel()
        b = gpu.frame_breakdown(workload)
        double = b.merge(b)
        assert double.total == pytest.approx(2 * b.total)


class TestNPUModel:
    def test_faster_than_gpu_for_mlp(self, workload):
        assert (NPUModel().computation_time(workload)
                < GPUModel().computation_time(workload))

    def test_mac_rate_from_array(self):
        config = NPUConfig(array_rows=24, array_cols=24, clock_hz=1e9,
                           utilization=1.0)
        assert config.effective_mac_rate == pytest.approx(576e9)

    def test_cycles_consistent(self, workload):
        npu = NPUModel()
        assert npu.computation_cycles(workload) == pytest.approx(
            npu.computation_time(workload) * npu.config.clock_hz, rel=1e-6)

    def test_energy_positive(self, workload):
        assert NPUModel().computation_energy(workload) > 0.0


class TestGUModel:
    def test_gather_cycles_scale_with_samples(self, workload):
        gu = GatheringUnitModel()
        half = FrameWorkload(**{**workload.__dict__,
                                "num_samples": workload.num_samples // 2})
        assert gu.gather_cost(half).cycles < gu.gather_cost(workload).cycles

    def test_gu_beats_gpu_gather(self, workload):
        gu = GatheringUnitModel()
        gpu = GPUModel()
        assert gu.gather_cost(workload).time_s < gpu.gathering_time(workload)

    def test_vft_energy_grows_with_size(self, workload):
        small = GatheringUnitModel(GUConfig(vft_bytes=32 * 1024))
        big = GatheringUnitModel(GUConfig(vft_bytes=256 * 1024))
        assert big.gather_cost(workload).energy_j > (
            small.gather_cost(workload).energy_j)

    def test_vft_energy_floor_below_8kb(self, workload):
        tiny = GatheringUnitModel(GUConfig(vft_bytes=4 * 1024))
        small = GatheringUnitModel(GUConfig(vft_bytes=8 * 1024))
        ratio = (tiny.gather_cost(workload).energy_j
                 / small.gather_cost(workload).energy_j)
        assert ratio > 0.85  # flattens out, no free lunch from shrinking

    def test_area_overhead_matches_paper(self):
        """Paper: 44 KB of SRAM -> ~0.048 mm^2 at 12 nm."""
        gu = GatheringUnitModel(GUConfig())
        assert gu.area_overhead_mm2() == pytest.approx(0.048, rel=0.15)

    def test_rit_buffer_size(self):
        config = GUConfig()
        assert config.rit_buffer_bytes == 2 * 128 * 48  # two 6 KB halves
