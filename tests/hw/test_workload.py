"""Tests for workload descriptors and their construction from render stats."""

import pytest

from repro.hw import FrameWorkload, GatherTraffic, workload_from_stats
from repro.nerf import RenderStats


class TestGatherTraffic:
    def test_totals(self):
        traffic = GatherTraffic(100.0, 50.0)
        assert traffic.total_bytes == 150.0

    def test_scaled(self):
        traffic = GatherTraffic(100.0, 50.0).scaled(0.5)
        assert traffic.streaming_bytes == 50.0
        assert traffic.random_bytes == 25.0


class TestWorkloadFromStats:
    @pytest.fixture
    def stats(self):
        return RenderStats(num_rays=100, num_samples=5000,
                           mlp_macs=5000 * 2000,
                           gather_vertex_accesses=40000,
                           gather_bytes=40000 * 32)

    def test_basic_mapping(self, stats):
        wl = workload_from_stats(stats)
        assert wl.num_rays == 100
        assert wl.num_samples == 5000
        assert wl.vertices_per_sample == pytest.approx(8.0)

    def test_without_report_all_random(self, stats):
        wl = workload_from_stats(stats)
        assert wl.baseline_traffic.random_bytes == stats.gather_bytes
        assert wl.baseline_traffic.streaming_bytes == 0.0

    def test_with_report_traffic_copied(self, stats, gather_groups):
        from repro.core.streaming import FullyStreamingScheduler
        report = FullyStreamingScheduler(
            baseline_cache_bytes=None).analyze(gather_groups)
        wl = workload_from_stats(stats, streaming_report=report)
        assert wl.streaming_traffic.streaming_bytes == report.fs_streaming_bytes
        assert wl.rit_bytes == sum(g.rit_bytes for g in report.groups)

    def test_conflict_slowdown_passthrough(self, stats):
        wl = workload_from_stats(stats, conflict_slowdown=3.5)
        assert wl.gather_conflict_slowdown == 3.5

    def test_warp_points_passthrough(self, stats):
        wl = workload_from_stats(stats, warp_points=9216)
        assert wl.warp_points == 9216

    def test_empty_stats_safe(self):
        wl = workload_from_stats(RenderStats())
        assert wl.num_samples == 0
        assert wl.vertices_per_sample == 8.0  # default retained


class TestWorkloadMergeScale:
    def test_merge_empty_with_nonempty(self):
        a = FrameWorkload(num_samples=100, gather_accesses=800,
                          gather_conflict_slowdown=2.0)
        b = FrameWorkload()
        merged = a.merge(b)
        assert merged.num_samples == 100
        assert merged.gather_conflict_slowdown == 2.0

    def test_scale_zero(self):
        wl = FrameWorkload(num_samples=100, mlp_macs=1000,
                           baseline_traffic=GatherTraffic(10.0, 20.0))
        zero = wl.scaled(0.0)
        assert zero.num_samples == 0
        assert zero.baseline_traffic.total_bytes == 0.0
