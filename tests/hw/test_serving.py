"""Tests for the aggregate multi-session serving model."""

import pytest

from repro.core.sparw.pipeline import SparwSequenceResult, TargetFrameRecord
from repro.hw.serving import aggregate_serving, price_session_frames
from repro.hw.soc import SoCModel
from repro.nerf.renderer import RenderStats


def make_result(num_frames, window, sparse_rays=200, sparse_samples=2000):
    """A synthetic SPARW sequence: reference every `window` frames."""
    result = SparwSequenceResult()
    for i in range(num_frames):
        is_ref = i % window == 0
        result.records.append(TargetFrameRecord(
            frame_index=i, frame=None, classification=None, overlap=0.95,
            new_reference=is_ref,
            sparse_stats=RenderStats(
                num_rays=sparse_rays, num_samples=sparse_samples,
                mlp_macs=sparse_samples * 100,
                gather_vertex_accesses=sparse_samples * 8,
                gather_bytes=sparse_samples * 8 * 32),
            reference_stats=RenderStats(
                num_rays=2304, num_samples=40000, mlp_macs=40000 * 100,
                gather_vertex_accesses=40000 * 8,
                gather_bytes=40000 * 8 * 32) if is_ref else None,
            warp_points=2304, mean_warp_angle_deg=0.5))
    return result


@pytest.fixture(scope="module")
def soc():
    return SoCModel()


class TestPriceSessionFrames:
    def test_one_time_per_frame(self, soc):
        result = make_result(6, window=3)
        times = price_session_frames(result, soc)
        assert len(times) == 6
        assert all(t > 0 for t in times)

    def test_reference_frames_cost_more(self, soc):
        result = make_result(6, window=3)
        times = price_session_frames(result, soc)
        # Window boundaries (0 and 3) pay the full-frame reference render.
        assert times[0] > 2 * times[1]
        assert times[3] > 2 * times[4]


class TestAggregateServing:
    def test_conservation(self, soc):
        results = {"a": make_result(4, 2), "b": make_result(4, 2)}
        report = aggregate_serving(results, soc=soc)
        assert report.num_sessions == 2
        assert report.total_frames == 8
        busy = sum(s.busy_s for s in report.per_session)
        assert report.makespan_s == pytest.approx(busy)
        assert report.aggregate_fps == pytest.approx(8 / report.makespan_s)

    def test_latency_includes_queueing(self, soc):
        solo = aggregate_serving({"a": make_result(4, 2)}, soc=soc)
        shared = aggregate_serving({"a": make_result(4, 2),
                                    "b": make_result(4, 2),
                                    "c": make_result(4, 2)}, soc=soc)
        # With 3 sessions on one SoC the tail waits behind two others.
        assert shared.p95_latency_s > solo.p95_latency_s
        assert shared.worst_latency_s >= shared.p95_latency_s
        assert shared.p95_latency_s >= shared.mean_latency_s

    def test_sjf_no_worse_mean_latency(self, soc):
        results = {"heavy": make_result(4, 1),  # reference every frame
                   "light": make_result(4, 4, sparse_rays=20,
                                        sparse_samples=200)}
        arrival = aggregate_serving(results, soc=soc, order="arrival")
        sjf = aggregate_serving(results, soc=soc, order="sjf")
        assert sjf.mean_latency_s <= arrival.mean_latency_s
        # Throughput is order-independent: same work either way.
        assert sjf.aggregate_fps == pytest.approx(arrival.aggregate_fps)

    def test_references_reported(self, soc):
        report = aggregate_serving({"a": make_result(6, 3)}, soc=soc)
        assert report.per_session[0].references == 2

    def test_unequal_session_lengths(self, soc):
        report = aggregate_serving({"long": make_result(5, 5),
                                    "short": make_result(2, 2)}, soc=soc)
        assert report.total_frames == 7
        frames = {s.session_id: s.frames for s in report.per_session}
        assert frames == {"long": 5, "short": 2}

    def test_unknown_order_rejected(self, soc):
        with pytest.raises(ValueError):
            aggregate_serving({}, soc=soc, order="lifo")

    def test_empty(self, soc):
        report = aggregate_serving({}, soc=soc)
        assert report.total_frames == 0
        assert report.aggregate_fps == 0.0
        assert report.cache is None

    def test_per_session_variants(self, soc):
        results = {"a": make_result(4, 2), "b": make_result(4, 2)}
        uniform = aggregate_serving(results, soc=soc, variant="baseline")
        mixed = aggregate_serving(results, soc=soc, variant="baseline",
                                  variants={"b": "cicero"})
        per = {s.session_id: s for s in mixed.per_session}
        base = {s.session_id: s for s in uniform.per_session}
        # Session "a" falls back to the default variant; "b" is priced
        # under the (faster) cicero variant.
        assert per["a"].busy_s == pytest.approx(base["a"].busy_s)
        assert per["b"].busy_s < base["b"].busy_s

    def test_cache_stats_attached(self, soc):
        cache_stats = {"references": {"hits": 3, "misses": 1}}
        report = aggregate_serving({"a": make_result(2, 2)}, soc=soc,
                                   cache_stats=cache_stats)
        assert report.cache == cache_stats
