"""Memory deep dive: why NeRF gathering is memory-hostile and how Cicero fixes it.

Reproduces the Sec. II-D characterisation and the Sec. IV remedies on one
frame of each algorithm:

* the pixel-centric DRAM access stream and its (non-)streaming fraction,
* the MVoxel/RIT fully-streaming schedule and its traffic,
* feature-major vs channel-major bank-conflict behaviour.

Run:  python examples/memory_deep_dive.py
"""

import numpy as np

from repro.core.layout import ChannelMajorLayout, FeatureMajorLayout
from repro.core.streaming import FullyStreamingScheduler
from repro.harness import FAST, print_table
from repro.harness.configs import DEFAULT
from repro.harness.figures import full_frame_profile
from repro.memsys import analyze_streaming, interleaved_gather_trace


def main():
    config = DEFAULT
    rows = []
    conflict_rows = []
    for algorithm in ("directvoxgo", "instant_ngp", "tensorf"):
        profile = full_frame_profile(algorithm, "lego", config)

        trace = interleaved_gather_trace(profile.gather_groups)
        coalesced = trace.coalesced(config.cache_block_bytes)
        analysis = analyze_streaming(coalesced)
        report = profile.streaming_report
        rows.append({
            "algorithm": algorithm,
            "gather_MB": trace.total_bytes / 1e6,
            "nonstreaming_frac": analysis.non_streaming_fraction,
            "fs_MB": report.fs_bytes / 1e6,
            "fs_streaming_frac": report.fs_streaming_fraction,
            "traffic_reduction": report.baseline_bytes / max(report.fs_bytes, 1),
        })

        feature_major = FeatureMajorLayout(num_banks=16)
        channel_major = ChannelMajorLayout(num_banks=32, ports_per_bank=2,
                                           feature_dim=config.feature_dim)
        group = profile.gather_groups[0]
        fm = feature_major.simulate(group.vertex_ids[:20000],
                                    concurrent_rays=16)
        cm = channel_major.simulate(group.vertex_ids[:8000])
        conflict_rows.append({
            "algorithm": algorithm,
            "feature_major_conflict": fm.conflict_rate,
            "feature_major_slowdown": fm.slowdown,
            "channel_major_conflict": cm.conflict_rate,
        })

    print_table(rows, title="DRAM behaviour: pixel-centric vs fully-streaming")
    print_table(conflict_rows,
                title="SRAM bank conflicts: feature-major vs channel-major")

    # Show the actual MVoxel schedule for the dense grid.
    profile = full_frame_profile("directvoxgo", "lego", config)
    scheduler = FullyStreamingScheduler(buffer_bytes=config.vft_buffer_bytes,
                                        baseline_cache_bytes=None)
    report, rit, layout = scheduler.schedule_group(profile.gather_groups[0])
    print(f"\nMVoxel schedule: {report.occupied_mvoxels}/{report.total_mvoxels}"
          f" MVoxels occupied (side {report.mvoxel_side} cells, "
          f"{layout.mvoxel_bytes / 1024:.1f} KB each), "
          f"RIT {rit.table_bytes / 1024:.1f} KB for "
          f"{rit.num_scheduled_samples:,} samples")
    first = [int(m) for m, _ in list(rit.iter_entries())[:8]]
    print(f"first MVoxels streamed: {first} ... (ascending = sequential DRAM)")


if __name__ == "__main__":
    main()
