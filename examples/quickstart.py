"""Quickstart: bake a NeRF field, render a frame, and run SPARW.

Walks the three layers of the library in ~a minute:

1. build a procedural scene and its exact ray-traced ground truth,
2. bake a DirectVoxGO-style voxel-grid field and render it with volume
   rendering (the paper's baseline pipeline), and
3. render a short camera orbit with sparse radiance warping, comparing
   quality and the amount of NeRF work avoided.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core.sparw import SparwRenderer
from repro.geometry import Intrinsics, PinholeCamera
from repro.metrics import mean_psnr, psnr
from repro.nerf import NeRFRenderer, OccupancyGrid, UniformSampler, VoxelGridField
from repro.scenes import RayTracer, get_scene, orbit_trajectory


def main():
    # 1. Scene + ground truth ------------------------------------------------
    scene = get_scene("lego")
    trajectory = orbit_trajectory(12, degrees_per_frame=0.5)
    camera = PinholeCamera(Intrinsics.from_fov(96, 96, 45.0), trajectory[0])

    tracer = RayTracer(scene)
    gt_frames = [tracer.render(camera.with_pose(p)) for p in trajectory.poses]
    print(f"scene {scene.name!r}: rendered {len(gt_frames)} ground-truth "
          f"frames at {camera.width}x{camera.height}")

    # 2. Bake + render a NeRF field -------------------------------------------
    field = VoxelGridField.bake(scene, resolution=96)
    occupancy = OccupancyGrid.from_field(field, resolution=32)
    renderer = NeRFRenderer(field, UniformSampler(96, occupancy=occupancy),
                            background=scene.background)
    frame, out = renderer.render_frame(camera)
    print(f"baked field: {field.model_size_bytes / 1e6:.1f} MB, "
          f"frame used {out.stats.num_samples:,} ray samples, "
          f"PSNR vs ground truth {psnr(frame.image, gt_frames[0].image):.2f} dB")

    # 3. SPARW over the orbit -------------------------------------------------
    sparw = SparwRenderer(renderer, camera, window=8)
    result = sparw.render_sequence(trajectory.poses)

    gt_images = [f.image for f in gt_frames]
    sparw_psnr = mean_psnr([f.image for f in result.frames], gt_images)
    full_rays = len(trajectory) * camera.width * camera.height
    nerf_rays = (result.total_sparse_stats().num_rays
                 + result.total_reference_stats().num_rays)
    print(f"SPARW (window 8): PSNR {sparw_psnr:.2f} dB, "
          f"{result.num_references} reference frames, "
          f"mean disocclusion {result.mean_disoccluded_fraction():.1%}")
    print(f"NeRF rays traced: {nerf_rays:,} of {full_rays:,} "
          f"({1.0 - nerf_rays / full_rays:.1%} of radiance computation avoided)")

    worst = min(psnr(f.image, g) for f, g in zip(result.frames, gt_images))
    print(f"worst-frame PSNR: {worst:.2f} dB")


if __name__ == "__main__":
    main()
