"""Local VR rendering: price a head-tracked orbit on the Cicero SoC.

The scenario the paper's intro motivates: a standalone VR headset rendering
a NeRF scene on-device.  This example renders a smooth head orbit with
SPARW on all three NeRF algorithms, feeds the measured workloads to the SoC
model, and prints the per-variant frame rates and energy — the data behind
Fig. 19a at example scale.

Run:  python examples/vr_local_rendering.py
"""

from repro.harness import DEFAULT, print_table
from repro.harness.configs import ExperimentConfig
from repro.harness.figures import (
    full_frame_profile,
    run_sparw,
    sparw_workloads_from_result,
)
from repro.hw import SoCModel

CONFIG = ExperimentConfig(
    image_size=80, samples_per_ray=80, grid_resolution=80,
    hash_levels=DEFAULT.hash_levels,
    hash_finest_resolution=DEFAULT.hash_finest_resolution,
    hash_table_size=DEFAULT.hash_table_size,
    tensorf_resolution=DEFAULT.tensorf_resolution,
    tensorf_rank=DEFAULT.tensorf_rank,
    num_frames=12, window=8,
)


def main():
    soc = SoCModel(feature_dim=CONFIG.feature_dim)
    rows = []
    for algorithm in ("directvoxgo", "instant_ngp", "tensorf"):
        profile = full_frame_profile(algorithm, "lego", CONFIG)
        result = run_sparw(algorithm, "lego", CONFIG, window=CONFIG.window)
        workloads = sparw_workloads_from_result(result, profile,
                                                CONFIG.window)

        baseline = soc.price_nerf(profile.workload, "baseline")
        row = {"algorithm": algorithm,
               "baseline_fps": 1.0 / baseline.time_s}
        for variant in ("sparw", "sparw_fs", "cicero"):
            cost = soc.price_sparw_local(workloads, variant)
            row[f"{variant}_fps"] = 1.0 / cost.time_s
            row[f"{variant}_energy_mj"] = cost.energy_j * 1e3
        rows.append(row)

    print_table(rows, title=(
        "Local VR rendering — simulated FPS and per-frame energy\n"
        f"({CONFIG.image_size}x{CONFIG.image_size} frames, "
        f"window {CONFIG.window}; see benchmarks/ for the full Fig. 19 run)"))

    best = max(rows, key=lambda r: r["cicero_fps"])
    print(f"\nfastest configuration: {best['algorithm']} at "
          f"{best['cicero_fps']:.0f} FPS with the full Cicero SoC "
          f"(vs {best['baseline_fps']:.1f} FPS baseline)")


if __name__ == "__main__":
    main()
