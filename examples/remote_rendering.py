"""Remote rendering: offload reference frames to a workstation GPU.

Reproduces the paper's second deployment scenario (Sec. V / Fig. 19b): the
headset tethers wirelessly to a 2080 Ti-class machine.  We compare

* the render-everything-remotely baseline (lowest device energy, but frame
  rate limited by remote rendering + streaming), against
* Cicero, which renders only *reference* frames remotely and produces every
  displayed frame locally by warping — possible only because off-trajectory
  references decouple reference rendering from the frame stream.

Run:  python examples/remote_rendering.py
"""

from repro.harness import print_table
from repro.harness.configs import FAST, ExperimentConfig
from repro.harness.figures import (
    full_frame_profile,
    run_sparw,
    sparw_workloads_from_result,
)
from repro.hw import RemoteConfig, RemoteScenario, SoCModel

CONFIG = ExperimentConfig(
    image_size=80, samples_per_ray=80, grid_resolution=80,
    num_frames=12, window=8,
)
ALGORITHM = "directvoxgo"


def main():
    soc = SoCModel(feature_dim=CONFIG.feature_dim)
    frame_bytes = CONFIG.image_size * CONFIG.image_size * 4  # RGB + depth

    profile = full_frame_profile(ALGORITHM, "lego", CONFIG)
    result = run_sparw(ALGORITHM, "lego", CONFIG, window=CONFIG.window)
    workloads = sparw_workloads_from_result(result, profile, CONFIG.window)

    rows = []
    for speedup in (10.0, 4.0, 2.0):
        remote = RemoteScenario(soc, RemoteConfig(remote_speedup=speedup))
        base = remote.price_baseline_remote(profile.workload, frame_bytes)
        cicero = remote.price_sparw_remote(workloads, "cicero", frame_bytes)
        rows.append({
            "remote_gpu_speedup": speedup,
            "baseline_fps": 1.0 / base.time_s,
            "cicero_fps": 1.0 / cicero.time_s,
            "baseline_device_mj": base.energy_j * 1e3,
            "cicero_device_mj": cicero.energy_j * 1e3,
        })

    print_table(rows, title=(
        "Remote rendering — Cicero (references offloaded) vs "
        "render-everything-remotely"))
    print("\nNote the paper's trade-off: the full-offload baseline always "
          "wins on device energy\n(radio only), while Cicero wins on frame "
          "rate by keeping the per-frame path local.")


if __name__ == "__main__":
    main()
