"""Session scheduling: which sessions' ray work is served each round.

Every engine round serves a prefix of the scheduler's ordering (bounded by
the engine's per-round ray budget), so the ordering decides who renders
first when the hardware is oversubscribed:

* :class:`RoundRobinScheduler` rotates the starting session every round —
  fair shares, no starvation.
* :class:`DeadlineScheduler` serves the session whose next frame is most
  overdue at its target frame rate first (earliest-deadline-first), which
  trades fairness for tail latency.
"""

from __future__ import annotations

__all__ = ["RoundRobinScheduler", "DeadlineScheduler", "SCHEDULERS",
           "make_scheduler"]


class RoundRobinScheduler:
    """Rotate session order by one slot per round."""

    name = "round_robin"

    def order(self, sessions: list, round_index: int) -> list:
        """Rotate the session list by the round index (fair round-robin)."""
        if not sessions:
            return []
        start = round_index % len(sessions)
        return sessions[start:] + sessions[:start]


class DeadlineScheduler:
    """Earliest-deadline-first by each session's frame-rate target.

    A session that has completed ``k`` frames owes frame ``k`` at virtual
    time ``k / fps_target``; the most-behind session goes first.  Ties fall
    back to session id so the ordering is deterministic.
    """

    name = "deadline"

    def order(self, sessions: list, round_index: int) -> list:
        """Sort by next frame deadline (ties broken by session id)."""
        return sorted(sessions,
                      key=lambda s: (s.next_deadline, s.session_id))


SCHEDULERS = {
    RoundRobinScheduler.name: RoundRobinScheduler,
    DeadlineScheduler.name: DeadlineScheduler,
}


def make_scheduler(name: str):
    """Scheduler instance by name (``round_robin`` or ``deadline``)."""
    try:
        return SCHEDULERS[name]()
    except KeyError:
        raise ValueError(
            f"unknown scheduler {name!r}; one of {tuple(SCHEDULERS)}"
        ) from None
