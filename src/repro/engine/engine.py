"""The batched multi-session engine: interleave sessions, batch their rays.

Each round the engine collects the pending :class:`RayRequest` of every
runnable session (in scheduler order, optionally capped by a per-round ray
budget), groups the requests by renderer, flattens each group's rays into
one :meth:`~repro.nerf.renderer.NeRFRenderer.render_ray_batch` call — a
single vectorized field evaluation spanning all of that renderer's sessions
— and scatters the outputs back.  Because the batched evaluation is exact,
every session produces frames and work statistics identical to running it
alone through :meth:`SparwRenderer.render_sequence`.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field

from ..obs.runtime import current_metrics, current_tracer
from ..obs.tracer import WORK_US_PER_RAY
from ..perf.timer import section
from ..workloads.cache import pose_hash
from .scheduler import RoundRobinScheduler
from .session import RenderSession

__all__ = ["BatchStats", "EngineResult", "MultiSessionEngine", "batch_key"]


def batch_key(renderer) -> tuple | None:
    """Grouping key for renderers whose ray work can share one evaluation.

    Two sessions may be answered from the same vectorized field query iff
    their renderers would produce identical outputs for the same rays:
    same field and sampler state, same chunk geometry, and a deterministic
    sampler.  Returns ``None`` for renderers with a stochastic (jittered)
    sampler — their requests must each get their own render call (even two
    sessions sharing one such renderer cannot batch: combined chunks would
    reorder the sampler's RNG stream).
    """
    sampler = renderer.sampler
    if getattr(sampler, "jitter", False):
        return None
    return (id(renderer.field), id(getattr(sampler, "occupancy", None)),
            sampler.num_samples, renderer.chunk_size)


@dataclass
class BatchStats:
    """How much ray work the engine coalesced across sessions.

    ``requests`` counts only requests answered by *rendering* (flattened
    into a batched field evaluation); requests served from the shared
    reference cache — direct hits and same-round coalesced followers —
    are counted in ``cache_hits`` instead, so the total served is
    ``requests + cache_hits``.
    """

    rounds: int = 0
    requests: int = 0  # session-level ray requests actually rendered
    nerf_calls: int = 0  # batched field evaluations issued
    total_rays: int = 0
    max_batch_rays: int = 0
    cache_hits: int = 0  # requests answered from the shared reference cache

    @property
    def requests_per_call(self) -> float:
        """Mean *rendered* requests folded into one field evaluation.

        Cache-served requests are excluded: they measure render work
        avoided entirely, not batching density.
        """
        return self.requests / self.nerf_calls if self.nerf_calls else 0.0

    @property
    def mean_batch_rays(self) -> float:
        """Mean rays per batched field evaluation."""
        return self.total_rays / self.nerf_calls if self.nerf_calls else 0.0


@dataclass
class EngineResult:
    """Per-session sequence results plus engine-level batching statistics."""

    sessions: list = field(default_factory=list)
    batch: BatchStats = field(default_factory=BatchStats)
    # (indexed list, its length at index time, id -> session) cache.
    _index: tuple | None = field(default=None, init=False, repr=False,
                                 compare=False)

    def session(self, session_id: str) -> RenderSession:
        """Look up a session by id; raises KeyError for unknown ids."""
        # Index built once on first lookup, so lookups are O(1) for
        # fleet-scale consumers instead of a linear scan per call.
        # Rebuilt when the sessions list is replaced (identity) or grows/
        # shrinks in place; same-length in-place element assignment is
        # not detected.
        sessions = self.sessions
        if (self._index is None or self._index[0] is not sessions
                or self._index[1] != len(sessions)):
            self._index = (sessions, len(sessions),
                           {s.session_id: s for s in sessions})
        try:
            return self._index[2][session_id]
        except KeyError:
            raise KeyError(f"no session {session_id!r}") from None

    @property
    def total_frames(self) -> int:
        """Frames completed across every session."""
        return sum(s.frames_completed for s in self.sessions)


class MultiSessionEngine:
    """Runs N sessions to completion with cross-session ray batching.

    Parameters
    ----------
    sessions:
        The :class:`RenderSession` list to serve.  Session ids must be
        unique.
    scheduler:
        Ordering policy (default round-robin); see
        :mod:`repro.engine.scheduler`.
    ray_budget:
        Optional cap on rays served per round.  Sessions are taken in
        scheduler order until the cap is reached (always at least one), so
        an undersized budget makes the scheduler's priorities visible:
        lagging sessions are served, leading ones wait.  ``None`` serves
        every runnable session each round.
    reference_cache:
        Optional shared :class:`~repro.workloads.cache.SharedLRUCache` of
        full-frame reference render outputs.  Reference requests of
        sessions carrying a content-addressed ``cache_key`` are answered
        from it (and identical requests arriving in the same round share
        one evaluation).  Because rendering is deterministic, cached
        serving is bit-identical to uncached serving.  ``None`` disables
        cross-session reference reuse.
    governor:
        Optional :class:`~repro.control.EngineGovernor`.  When attached,
        each completed frame is reported to it (it may retune a session's
        quality tier mid-stream), and with a ``ray_budget`` the per-round
        budget is split into per-session shares by the governor's weights
        (conserving the total — see
        :func:`~repro.control.governor.split_budget`) instead of served
        as a plain prefix.  ``None`` keeps the engine bit-identical to
        the ungoverned behaviour.
    backend:
        Optional kernel-backend name (see :mod:`repro.backend`) activated
        for the whole run.  ``"parallel"`` additionally fans each
        deterministic render group's bundles out to the persistent
        worker pool — results stay bit-identical to serial serving
        because per-bundle rendering is exact (see
        :meth:`~repro.nerf.renderer.NeRFRenderer.render_ray_batch`).
    engine_workers:
        Pool size for the ``parallel`` backend (default:
        the backend's ``default_workers``); ignored otherwise.
    """

    def __init__(self, sessions: list, scheduler=None,
                 ray_budget: int | None = None, reference_cache=None,
                 governor=None, backend: str | None = None,
                 engine_workers: int | None = None):
        ids = [s.session_id for s in sessions]
        if len(set(ids)) != len(ids):
            raise ValueError("session ids must be unique")
        if ray_budget is not None and ray_budget < 1:
            raise ValueError("ray_budget must be >= 1")
        if engine_workers is not None and engine_workers < 1:
            raise ValueError("engine_workers must be >= 1")
        self.sessions = list(sessions)
        self.scheduler = scheduler or RoundRobinScheduler()
        self.ray_budget = ray_budget
        self.reference_cache = reference_cache
        self.governor = governor
        self.backend = backend
        self.engine_workers = engine_workers
        self._pool = None
        # Trace lane state while a tracer is active (see _trace_setup);
        # None keeps every hook on the no-op fast path.
        self._trace = None
        # Live-serving state (see admit/retire/run_round): admission
        # mutations and round execution synchronise on this lock, so a
        # server connection thread can admit/retire sessions while the
        # engine-host thread is mid-round.
        self._admission = threading.Lock()
        self._round_index = 0
        self.batch = BatchStats()  # cumulative stats across run_round calls

    @contextmanager
    def serving(self):
        """Activate the kernel backend for a span of ``run_round`` calls.

        ``run()`` wraps its whole drain in this; the live frame server's
        engine-host thread enters it once and serves rounds until
        shutdown.  On exit (normal or not) the scratch arenas and
        geometry memos are released — both locally and, for the
        ``parallel`` backend, in every pool worker — so repeated runs
        don't accumulate arenas.
        """
        from ..backend.registry import use_backend
        with use_backend(self.backend) as active:
            if active.name == "parallel":
                from ..backend.parallel import get_pool
                workers = self.engine_workers or active.default_workers
                self._pool = get_pool(workers)
            try:
                yield self
            finally:
                self._release_memory()

    def run(self) -> EngineResult:
        """Serve every session to completion; returns the combined result.

        The configured kernel backend is active for the whole run (see
        :meth:`serving`).
        """
        with self.serving():
            return self._run_rounds()

    # -- live admission (the frame server's API) --------------------------------

    def admit(self, session: RenderSession) -> RenderSession:
        """Thread-safely add a session mid-serve (live connections).

        Safe to call from any thread while another thread is inside
        :meth:`run_round`: the admission lands between rounds.  Session
        ids must stay unique across the currently-admitted set.
        """
        with self._admission:
            if any(s.session_id == session.session_id
                   for s in self.sessions):
                raise ValueError(
                    f"session id {session.session_id!r} already admitted")
            self.sessions = [*self.sessions, session]
            if self.governor is not None:
                self.governor.attach([session])
        return session

    def retire(self, session_id: str) -> RenderSession:
        """Thread-safely remove a session mid-serve (connection closed).

        Returns the retired session; raises ``KeyError`` for unknown
        ids.  A retired session simply stops being scheduled — any
        in-flight round that already snapshotted it finishes serving it
        first (rounds and admissions serialise on one lock).
        """
        with self._admission:
            for session in self.sessions:
                if session.session_id == session_id:
                    self.sessions = [s for s in self.sessions
                                     if s is not session]
                    return session
        raise KeyError(f"no admitted session {session_id!r}")

    def run_round(self) -> list:
        """Serve one batched round over the currently-admitted sessions.

        Returns ``[(session, new_records), ...]`` for every served
        session that completed at least one frame this round (records
        are the freshly-appended ``TargetFrameRecord`` objects, in
        order).  Returns ``[]`` when no admitted session is runnable —
        but also for rounds that advance sessions without finishing a
        frame (a mid-sequence reference refresh renders the reference
        one round and the warped frame the next), so poll the sessions'
        ``done`` flags, not this return value, to detect drain
        completion.
        Cumulative batching statistics accrue on :attr:`batch`.  The
        caller owns backend activation (:meth:`serving`) and must call
        ``run_round`` from one thread at a time; ``admit``/``retire``
        may race freely against it.
        """
        with self._admission:
            active = [s for s in self.sessions if not s.done]
            if not active:
                return []
            ordered = self.scheduler.order(active, self._round_index)
            served = self._select(ordered)
            frames_before = [(s, s.result.num_frames) for s in served]
            with section("engine.round"):
                self._serve_round(served, self.batch)
            self.batch.rounds += 1
            self._round_index += 1
        completed = []
        for session, frames in frames_before:
            records = session.result.records[frames:]
            if self.governor is not None:
                for record in records:
                    self.governor.observe_record(session, record)
            if records:
                completed.append((session, records))
        return completed

    def _run_rounds(self) -> EngineResult:
        stats = BatchStats()
        round_index = 0
        if self.governor is not None:
            self.governor.attach(self.sessions)
        self._trace_setup()
        metrics = current_metrics()
        try:
            while True:
                active = [s for s in self.sessions if not s.done]
                if not active:
                    break
                ordered = self.scheduler.order(active, round_index)
                served = self._select(ordered)
                before = (stats.requests, stats.total_rays,
                          stats.nerf_calls, stats.cache_hits)
                with section("engine.round"):
                    if self.governor is None:
                        self._serve_round(served, stats)
                    else:
                        frames_before = [(s, s.result.num_frames)
                                         for s in served]
                        self._serve_round(served, stats)
                        for session, frames in frames_before:
                            for record in session.result.records[frames:]:
                                self.governor.observe_record(session, record)
                stats.rounds += 1
                self._trace_round(round_index, len(served), stats, before)
                if metrics is not None:
                    metrics.inc("engine.rounds")
                    metrics.inc("engine.requests",
                                stats.requests - before[0])
                    metrics.inc("engine.rays", stats.total_rays - before[1])
                    metrics.inc("engine.nerf_calls",
                                stats.nerf_calls - before[2])
                    metrics.inc("engine.cache_hits",
                                stats.cache_hits - before[3])
                    metrics.observe("engine.round_rays",
                                    stats.total_rays - before[1])
                round_index += 1
        finally:
            self._trace = None
        return EngineResult(sessions=list(self.sessions), batch=stats)

    # -- tracing ----------------------------------------------------------------
    #
    # The engine has no clock of its own, so its spans run on a synthetic
    # work clock (1 ray = WORK_US_PER_RAY trace-us) anchored at the
    # enclosing scope's base time — inside a cluster worker that is the
    # admit instant, so engine activity draws as a short burst there.

    def _trace_setup(self) -> None:
        tracer = current_tracer()
        if tracer is None:
            self._trace = None
            return
        pid, base_us = tracer.current_scope("engine")
        self._trace = {
            "tracer": tracer,
            "pid": pid,
            "rounds_tid": tracer.thread(pid, "rounds"),
            "cursor_us": base_us,
        }

    def _trace_round(self, round_index: int, sessions: int,
                     stats: BatchStats, before: tuple) -> None:
        trace = self._trace
        if trace is None:
            return
        rays = stats.total_rays - before[1]
        start_us = trace.get("round_start_us", trace["cursor_us"])
        duration = max(trace["cursor_us"] - start_us,
                       rays * WORK_US_PER_RAY, 0.01)
        trace["tracer"].complete(
            "engine.round", "engine", start_us, duration,
            trace["pid"], trace["rounds_tid"],
            args={"round": round_index, "sessions": sessions,
                  "requests": stats.requests - before[0],
                  "rays": rays,
                  "nerf_calls": stats.nerf_calls - before[2],
                  "cache_hits": stats.cache_hits - before[3]})
        trace["cursor_us"] = start_us + duration
        trace["round_start_us"] = trace["cursor_us"]

    def _trace_render(self, session: RenderSession, rays: int) -> None:
        trace = self._trace
        if trace is None:
            return
        tracer = trace["tracer"]
        trace.setdefault("round_start_us", trace["cursor_us"])
        duration = max(rays * WORK_US_PER_RAY, 0.01)
        tracer.complete(
            "frame.render", "frame", trace["cursor_us"], duration,
            trace["pid"], tracer.thread(trace["pid"], session.session_id),
            args={"session": session.session_id, "rays": rays})
        trace["cursor_us"] += duration

    def _trace_cache(self, session: RenderSession, hit: bool) -> None:
        trace = self._trace
        if trace is None:
            return
        tracer = trace["tracer"]
        trace.setdefault("round_start_us", trace["cursor_us"])
        tracer.instant(
            "cache.hit" if hit else "cache.miss", "cache",
            trace["cursor_us"], trace["pid"],
            tracer.thread(trace["pid"], session.session_id),
            args={"session": session.session_id})

    def _trace_dispatch(self, group: int, bundles: int) -> None:
        trace = self._trace
        if trace is None:
            return
        trace.setdefault("round_start_us", trace["cursor_us"])
        trace["tracer"].instant(
            "pool.dispatch", "pool", trace["cursor_us"],
            trace["pid"], trace["rounds_tid"],
            args={"group": group, "bundles": bundles})

    def _release_memory(self) -> None:
        """Drop scratch arenas and geometry memos after a run.

        The memos are pure functions of their keys, so releasing them
        never changes results — it only returns the engine to its
        pre-run memory footprint (asserted by
        ``tests/engine/test_memory_release.py``).
        """
        from ..backend.parallel import release_process_memory
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.release()
        release_process_memory()

    # -- internals --------------------------------------------------------------

    def _select(self, ordered: list) -> list:
        """Prefix of the scheduler ordering that fits the ray budget.

        Requests that will be answered from the reference cache (already
        cached, or coalescing with an identical request earlier in this
        round's ordering) render zero new rays, so they don't consume
        budget.
        """
        if self.ray_budget is None:
            return ordered
        if self.governor is not None:
            return self._select_weighted(ordered)
        served, spent = [], 0
        seen_keys: set = set()
        for session in ordered:
            ckey = self._reference_cache_key(session)
            if ckey is not None and (ckey in seen_keys
                                     or ckey in self.reference_cache):
                rays = 0
            else:
                rays = session.pending_request.num_rays
                if ckey is not None:
                    seen_keys.add(ckey)
            if served and spent + rays > self.ray_budget:
                break
            served.append(session)
            spent += rays
        return served

    def _select_weighted(self, ordered: list) -> list:
        """Governed budget: each session owns a weighted share of the round.

        The round's ray budget is split into integer per-session shares
        by the governor's weights (``split_budget`` conserves the total);
        unused allowance rolls forward to later sessions in scheduler
        order, so the round stays work-conserving.  Cache-served requests
        cost no budget, and the head of the ordering is always served.
        """
        from ..control.governor import split_budget
        shares = split_budget(self.ray_budget,
                              self.governor.share_weights(ordered))
        served, carry = [], 0
        seen_keys: set = set()
        for session, share in zip(ordered, shares):
            ckey = self._reference_cache_key(session)
            if ckey is not None and (ckey in seen_keys
                                     or ckey in self.reference_cache):
                rays = 0
            else:
                rays = session.pending_request.num_rays
            allowance = share + carry
            if not served or rays <= allowance:
                if rays and ckey is not None:
                    seen_keys.add(ckey)
                served.append(session)
                carry = max(allowance - rays, 0)
            else:
                carry = allowance
        return served

    def _reference_cache_key(self, session: RenderSession) -> tuple | None:
        """Shared-cache key of the session's pending request, if cacheable.

        Only full-frame reference requests of sessions with a
        content-addressed workload identity qualify, and only when the
        renderer is deterministic (a jittered sampler would make "the same
        reference" a different image every time).
        """
        if self.reference_cache is None or session.cache_key is None:
            return None
        request = session.pending_request
        if request.kind != "reference" or request.pose is None:
            return None
        if batch_key(session.renderer) is None:  # stochastic sampler
            return None
        return (session.cache_key, pose_hash(request.pose), request.num_rays)

    @staticmethod
    def _output_size(output) -> int:
        return int(output.rgb.nbytes + output.depth_t.nbytes
                   + output.opacity.nbytes)

    def _serve_round(self, served: list, stats: BatchStats) -> None:
        """Batch the pending requests of ``served`` by renderer and answer.

        With a reference cache attached, cached reference requests are
        answered without touching the renderer, and identical reference
        requests arriving in the same round (sessions consuming the same
        content in lockstep) coalesce into a single evaluation.
        """
        groups: dict = {}
        followers: dict = {}  # cache key -> sessions awaiting the primary
        for index, session in enumerate(served):
            ckey = self._reference_cache_key(session)
            if ckey is not None:
                if ckey in followers:  # coalesce with this round's primary
                    followers[ckey].append(session)
                    continue
                cached = self.reference_cache.get(ckey)
                if cached is not None:
                    stats.cache_hits += 1
                    self._trace_cache(session, hit=True)
                    session.deliver(cached)
                    continue
                self._trace_cache(session, hit=False)
                followers[ckey] = []
            key = batch_key(session.renderer)
            if key is None:  # stochastic sampler: one call per request
                key = ("solo", index)
            groups.setdefault(key, []).append((session, ckey))

        # With the parallel backend, every deterministic group's bundles
        # are queued to the pool up-front so workers overlap across
        # groups; stochastic (solo) groups render on the main process to
        # keep their RNG streams untouched.  Accounting and delivery
        # below walk groups in insertion order either way, so stats,
        # cache traffic, and delivery order are identical to serial.
        group_list = list(groups.values())
        tickets: dict = {}
        if self._pool is not None:
            from ..backend.parallel import supports_parallel
            for gi, members in enumerate(group_list):
                renderer = members[0][0].renderer
                if supports_parallel(renderer):
                    bundles = [(s.pending_request.origins,
                                s.pending_request.directions)
                               for s, _ in members]
                    tickets[gi] = self._pool.submit_bundles(renderer, bundles)
                    self._trace_dispatch(gi, len(bundles))

        for gi, members in enumerate(group_list):
            renderer = members[0][0].renderer
            requests = [s.pending_request for s, _ in members]
            if gi in tickets:
                from ..nerf.renderer import RenderOutput
                outputs = [RenderOutput(rgb=rgb, depth_t=depth_t,
                                        opacity=opacity, stats=out_stats)
                           for rgb, depth_t, opacity, out_stats
                           in self._pool.collect(tickets[gi])]
            else:
                bundles = [(r.origins, r.directions) for r in requests]
                outputs = renderer.render_ray_batch(bundles)
            stats.nerf_calls += 1
            stats.requests += len(requests)
            batch_rays = sum(r.num_rays for r in requests)
            stats.total_rays += batch_rays
            stats.max_batch_rays = max(stats.max_batch_rays, batch_rays)
            for (session, ckey), request, output in zip(members, requests,
                                                        outputs):
                if ckey is not None:
                    self.reference_cache.put(ckey, output,
                                             size_bytes=self._output_size(output))
                self._trace_render(session, request.num_rays)
                session.deliver(output)
                for follower in (followers.get(ckey, ())
                                 if ckey is not None else ()):
                    # Followers read the entry the primary just inserted, so
                    # coalesced requests register as cache hits too.
                    shared = self.reference_cache.get(ckey)
                    stats.cache_hits += 1
                    self._trace_cache(follower, hit=True)
                    follower.deliver(shared if shared is not None else output)
