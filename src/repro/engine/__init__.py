"""Batched multi-session render engine.

Serves N concurrent viewing sessions (one SPARW pipeline each) by
interleaving their per-frame stepping and batching the sparse-NeRF ray work
of all sessions that share a field into single vectorized queries — the
multi-user serving dimension on top of the paper's single-user pipeline.
"""

from .engine import BatchStats, EngineResult, MultiSessionEngine
from .scheduler import (
    DeadlineScheduler,
    RoundRobinScheduler,
    SCHEDULERS,
    make_scheduler,
)
from .session import RenderSession

__all__ = [
    "BatchStats",
    "EngineResult",
    "MultiSessionEngine",
    "DeadlineScheduler",
    "RoundRobinScheduler",
    "SCHEDULERS",
    "make_scheduler",
    "RenderSession",
]
