"""Per-user rendering sessions: scene + trajectory + resumable SPARW state.

A :class:`RenderSession` wraps one user's :class:`SparwRenderer` pipeline,
driven through its resumable :meth:`~SparwRenderer.step` generator.  The
session pauses whenever the pipeline needs NeRF ray results and resumes when
the engine delivers them — which is what lets the engine interleave many
sessions and batch their ray work into shared field queries.
"""

from __future__ import annotations

from ..core.sparw.pipeline import (
    RayRequest,
    SparwRenderer,
    SparwSequenceResult,
)

__all__ = ["RenderSession"]


class RenderSession:
    """One concurrent user's viewing session.

    Parameters
    ----------
    session_id:
        Stable identifier used in engine results and reports.
    sparw:
        The session's SPARW pipeline (its renderer determines which batch
        group the session's ray work joins — sessions sharing a renderer
        share field evaluations).
    poses:
        The session's camera trajectory.
    fps_target:
        Frame-rate the user expects; deadline scheduling orders sessions by
        how far each one has fallen behind this rate.
    cache_key:
        Optional content-addressed identity of the session's workload
        (spec hash + config hash, see
        :meth:`~repro.workloads.WorkloadSpec.cache_key`).  Sessions that
        share a ``cache_key`` render identical references for identical
        poses, so the engine may answer their reference requests from the
        shared cross-session cache.  ``None`` disables reference caching
        for this session.
    workload:
        Optional spec this session was built from (opaque to the engine;
        the serving harness reads it back for per-session pricing).
    """

    def __init__(self, session_id: str, sparw: SparwRenderer, poses: list,
                 fps_target: float = 30.0, cache_key: str | None = None,
                 workload=None):
        if fps_target <= 0.0:
            raise ValueError("fps_target must be positive")
        self.session_id = str(session_id)
        self.sparw = sparw
        self.poses = list(poses)
        self.fps_target = float(fps_target)
        self.cache_key = cache_key
        self.workload = workload
        self.quality_level = 0  # ladder rung (0 = the spec's native tier)
        self.result = SparwSequenceResult()
        self._gen = sparw.step(self.poses)
        self._pending: RayRequest | None = None
        self._done = len(self.poses) == 0
        if not self._done:
            self._advance(None)

    # -- state ------------------------------------------------------------------

    @property
    def renderer(self):
        """The NeRF renderer whose field this session queries."""
        return self.sparw.renderer

    @property
    def done(self) -> bool:
        """True once the session's pose sequence is fully rendered."""
        return self._done

    @property
    def num_frames(self) -> int:
        """Total frames this session will render."""
        return len(self.poses)

    @property
    def frames_completed(self) -> int:
        """Frames rendered so far."""
        return self.result.num_frames

    @property
    def pending_request(self) -> RayRequest | None:
        """The ray work the session is blocked on (None once done)."""
        return self._pending

    @property
    def next_deadline(self) -> float:
        """Virtual due-time of the next frame at the session's target rate."""
        return self.frames_completed / self.fps_target

    # -- retuning ---------------------------------------------------------------

    def retune(self, renderer, camera, level: int | None = None,
               cache_key: str | None = None) -> None:
        """Switch this session's quality tier mid-stream (governor move).

        Stages the swap in the SPARW pipeline; it lands at the next frame
        boundary with a forced fresh reference.  The session's ladder
        level and content-addressed ``cache_key`` update *when the swap
        lands*, not when it is staged — a request generated at the old
        settings may still be pending, and it must keep coalescing with
        old-tier peers in the shared cache until the new tier actually
        renders.
        """
        def _apply() -> None:
            if level is not None:
                self.quality_level = int(level)
            if cache_key is not None:
                self.cache_key = cache_key

        self.sparw.retune(renderer=renderer, camera=camera,
                          on_apply=_apply)

    # -- driving ----------------------------------------------------------------

    def deliver(self, output) -> None:
        """Hand the pipeline the RenderOutput for its pending request."""
        if self._pending is None:
            raise RuntimeError(
                f"session {self.session_id!r} has no pending ray request")
        self._pending = None
        self._advance(output)

    def _advance(self, send_value) -> None:
        """Run the pipeline until it needs rays again or finishes."""
        while True:
            try:
                event = self._gen.send(send_value)
            except StopIteration:
                self._done = True
                return
            if isinstance(event, RayRequest):
                self._pending = event
                return
            self.result.records.append(event)
            send_value = None

    def __repr__(self) -> str:
        return (f"RenderSession({self.session_id!r}, "
                f"{self.frames_completed}/{self.num_frames} frames)")
