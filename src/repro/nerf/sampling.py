"""Ray sampling: stratified samples inside the field AABB + occupancy skipping.

The Indexing stage (I) begins here: every ray takes a fixed budget of samples
between its AABB entry and exit points.  An optional occupancy grid (built
from the baked density) culls samples in empty space, as DirectVoxGO and
Instant-NGP both do.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..geometry.rays import intersect_aabb

__all__ = ["RaySamples", "OccupancyGrid", "UniformSampler"]


@dataclass
class RaySamples:
    """Samples along a bundle of rays, flattened for batched field queries.

    ``ray_index`` maps each sample back to its ray; ``t_values`` are distances
    along the (unit-norm) ray directions; ``deltas`` are the spacing used for
    alpha compositing.
    """

    positions: np.ndarray  # (S, 3)
    directions: np.ndarray  # (S, 3) per-sample view dirs
    t_values: np.ndarray  # (S,)
    deltas: np.ndarray  # (S,)
    ray_index: np.ndarray  # (S,) int
    num_rays: int

    def __len__(self) -> int:
        return self.positions.shape[0]


class OccupancyGrid:
    """Binary occupancy over the field bounds for empty-space skipping."""

    def __init__(self, occupancy: np.ndarray, bounds: tuple):
        self.occupancy = np.asarray(occupancy, dtype=bool)
        self.bounds = (np.asarray(bounds[0], dtype=float),
                       np.asarray(bounds[1], dtype=float))

    @classmethod
    def from_field(cls, field, resolution: int = 32,
                   threshold: float = 0.05, dilate: int = 1) -> "OccupancyGrid":
        """Probe the field's density on a lattice and threshold + dilate it."""
        lo, hi = field.bounds
        axes = [np.linspace(lo[a], hi[a], resolution) for a in range(3)]
        grid = np.stack(np.meshgrid(*axes, indexing="ij"), axis=-1)
        points = grid.reshape(-1, 3)
        features = field.interpolate(points)
        density = field.decoder.density(features).reshape((resolution,) * 3)
        occ = density > threshold
        for _ in range(dilate):
            grown = occ.copy()
            grown[1:, :, :] |= occ[:-1, :, :]
            grown[:-1, :, :] |= occ[1:, :, :]
            grown[:, 1:, :] |= occ[:, :-1, :]
            grown[:, :-1, :] |= occ[:, 1:, :]
            grown[:, :, 1:] |= occ[:, :, :-1]
            grown[:, :, :-1] |= occ[:, :, 1:]
            occ = grown
        return cls(occ, field.bounds)

    def occupied(self, points: np.ndarray) -> np.ndarray:
        """Boolean occupancy lookup for (N, 3) world points."""
        lo, hi = self.bounds
        res = self.occupancy.shape[0]
        coords = (np.asarray(points, dtype=float) - lo) / (hi - lo)
        idx = np.clip((coords * res).astype(np.int64), 0, res - 1)
        return self.occupancy[idx[:, 0], idx[:, 1], idx[:, 2]]

    @property
    def occupancy_rate(self) -> float:
        return float(self.occupancy.mean())


class UniformSampler:
    """Stratified uniform sampling within the AABB, with optional occupancy cull.

    ``jitter=False`` (default) centres samples in their strata, making renders
    deterministic; set ``jitter=True`` with a seed for stochastic sampling.
    """

    def __init__(self, num_samples: int = 96, occupancy: OccupancyGrid | None = None,
                 jitter: bool = False, seed: int = 0):
        self.num_samples = int(num_samples)
        self.occupancy = occupancy
        self.jitter = jitter
        self._rng = np.random.default_rng(seed)

    def sample(self, origins: np.ndarray, directions: np.ndarray,
               bounds: tuple) -> RaySamples:
        """Generate flattened samples for a bundle of rays."""
        origins = np.atleast_2d(np.asarray(origins, dtype=float))
        directions = np.atleast_2d(np.asarray(directions, dtype=float))
        num_rays = origins.shape[0]
        lo, hi = bounds

        t_near, t_far, hit = intersect_aabb(origins, directions, lo, hi,
                                            near=1e-4)
        spans = np.where(hit, t_far - t_near, 0.0)
        steps = np.arange(self.num_samples)
        if self.jitter:
            offsets = self._rng.uniform(size=(num_rays, self.num_samples))
        else:
            offsets = np.full((num_rays, self.num_samples), 0.5)
        t = t_near[:, None] + (steps[None, :] + offsets) / self.num_samples * spans[:, None]
        delta = spans / self.num_samples

        positions = origins[:, None, :] + t[..., None] * directions[:, None, :]
        keep = np.repeat(hit[:, None], self.num_samples, axis=1)
        if self.occupancy is not None:
            occ = self.occupancy.occupied(positions.reshape(-1, 3))
            keep &= occ.reshape(num_rays, self.num_samples)

        flat_keep = keep.reshape(-1)
        ray_index = np.repeat(np.arange(num_rays), self.num_samples)[flat_keep]
        return RaySamples(
            positions=positions.reshape(-1, 3)[flat_keep],
            directions=np.repeat(directions, self.num_samples, axis=0)[flat_keep],
            t_values=t.reshape(-1)[flat_keep],
            deltas=np.repeat(delta, self.num_samples)[flat_keep],
            ray_index=ray_index,
            num_rays=num_rays,
        )
