"""Ray sampling: stratified samples inside the field AABB + occupancy skipping.

The Indexing stage (I) begins here: every ray takes a fixed budget of samples
between its AABB entry and exit points.  An optional occupancy grid (built
from the baked density) culls samples in empty space, as DirectVoxGO and
Instant-NGP both do.

This is a measured hot path (see ``cli bench``): the occupancy lookup runs
over every ray-sample pair of every render call.  The grid therefore
precomputes a flattened mask + integer strides at construction, and the
sampler derives per-sample arrays from the kept indices instead of
materialising repeat-expanded arrays first.  Both rewrites are bit-identical
to their predecessors (kept in :mod:`repro.perf.reference`, locked by
``tests/perf/test_equivalence.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..geometry.rays import intersect_aabb

__all__ = ["RaySamples", "OccupancyGrid", "UniformSampler",
           "clear_sampling_scratch"]

# Slot-named scratch arenas for the sampler's large per-call temporaries
# (the (rays x samples) lattices).  Refreshing multi-megabyte temporaries
# every call costs more in page zeroing than the arithmetic that fills
# them; each slot instead grows to the largest size seen and is re-viewed
# per call.  Every value returned from this module is a fresh gather (a
# copy), never a scratch view, so reuse cannot alias results.  Like the
# rest of the simulator, this is single-threaded by design.
_SCRATCH: dict = {}


def _scratch(slot: str, shape: tuple, dtype) -> np.ndarray:
    """A ``shape``/``dtype`` view of the named slot's reusable arena."""
    dtype = np.dtype(dtype)
    count = 1
    for extent in shape:
        count *= int(extent)
    nbytes = count * dtype.itemsize
    arena = _SCRATCH.get(slot)
    if arena is None or arena.nbytes < nbytes:
        arena = _SCRATCH[slot] = np.empty(max(nbytes, 1), dtype=np.uint8)
    return arena[:nbytes].view(dtype).reshape(shape)


def clear_sampling_scratch() -> None:
    """Release the scratch arenas (tests / memory-pressure hook)."""
    _SCRATCH.clear()


@dataclass
class RaySamples:
    """Samples along a bundle of rays, flattened for batched field queries.

    ``ray_index`` maps each sample back to its ray; ``t_values`` are distances
    along the (unit-norm) ray directions; ``deltas`` are the spacing used for
    alpha compositing.
    """

    positions: np.ndarray  # (S, 3)
    directions: np.ndarray  # (S, 3) per-sample view dirs
    t_values: np.ndarray  # (S,)
    deltas: np.ndarray  # (S,)
    ray_index: np.ndarray  # (S,) int
    num_rays: int

    def __len__(self) -> int:
        return self.positions.shape[0]


class OccupancyGrid:
    """Binary occupancy over the field bounds for empty-space skipping.

    The cubic mask is raveled once at construction so point lookups are a
    single flat ``take`` instead of three-axis fancy indexing.
    """

    def __init__(self, occupancy: np.ndarray, bounds: tuple):
        self.occupancy = np.asarray(occupancy, dtype=bool)
        self.bounds = (np.asarray(bounds[0], dtype=float),
                       np.asarray(bounds[1], dtype=float))
        # Precomputed masked-array lookup state: the raveled mask plus the
        # row-major strides implied by the cubic resolution.
        self._flat = np.ascontiguousarray(self.occupancy).reshape(-1)

    @classmethod
    def from_field(cls, field, resolution: int = 32,
                   threshold: float = 0.05, dilate: int = 1) -> "OccupancyGrid":
        """Probe the field's density on a lattice and threshold + dilate it."""
        lo, hi = field.bounds
        axes = [np.linspace(lo[a], hi[a], resolution) for a in range(3)]
        grid = np.stack(np.meshgrid(*axes, indexing="ij"), axis=-1)
        points = grid.reshape(-1, 3)
        features = field.interpolate(points)
        density = field.decoder.density(features).reshape((resolution,) * 3)
        occ = density > threshold
        for _ in range(dilate):
            grown = occ.copy()
            grown[1:, :, :] |= occ[:-1, :, :]
            grown[:-1, :, :] |= occ[1:, :, :]
            grown[:, 1:, :] |= occ[:, :-1, :]
            grown[:, :-1, :] |= occ[:, 1:, :]
            grown[:, :, 1:] |= occ[:, :, :-1]
            grown[:, :, :-1] |= occ[:, :, 1:]
            occ = grown
        return cls(occ, field.bounds)

    def occupied(self, points: np.ndarray) -> np.ndarray:
        """Boolean occupancy lookup for (N, 3) world points.

        Same arithmetic as the per-axis predecessor
        (:func:`repro.perf.reference.occupied_reference`) — normalise,
        scale, truncate, clip — but with in-place intermediates and one
        flat gather from the precomputed mask.
        """
        lo, hi = self.bounds
        res = self.occupancy.shape[0]
        points = np.asarray(points, dtype=float)
        coords = _scratch("occ.coords", points.shape, np.float64)
        np.subtract(points, lo, out=coords)
        coords /= (hi - lo)
        coords *= res
        # int32 halves the index traffic; grid resolutions are tiny, and
        # the scaled coordinates of renderable points are far inside the
        # int32 range, so the truncation matches the int64 predecessor.
        idx = _scratch("occ.idx", points.shape, np.int32)
        idx[...] = coords  # C-cast truncation, as astype did
        np.clip(idx, 0, res - 1, out=idx)
        flat = _scratch("occ.flat", points.shape[:1], np.int32)
        np.multiply(idx[:, 0], res, out=flat)
        flat += idx[:, 1]
        flat *= res
        flat += idx[:, 2]
        # flat ids are in range by construction (per-axis clip above), so
        # mode="clip" only selects take's no-bounds-check fast path.
        return np.take(self._flat, flat, mode="clip")

    @property
    def occupancy_rate(self) -> float:
        """Fraction of grid cells marked occupied."""
        return float(self.occupancy.mean())


class UniformSampler:
    """Stratified uniform sampling within the AABB, with optional occupancy cull.

    ``jitter=False`` (default) centres samples in their strata, making renders
    deterministic; set ``jitter=True`` with a seed for stochastic sampling.
    """

    def __init__(self, num_samples: int = 96, occupancy: OccupancyGrid | None = None,
                 jitter: bool = False, seed: int = 0):
        self.num_samples = int(num_samples)
        self.occupancy = occupancy
        self.jitter = jitter
        self._rng = np.random.default_rng(seed)
        # Deterministic strata midpoints (steps + 0.5) / S, precomputed:
        # the jitter-free path reuses them every call.
        self._midpoints = ((np.arange(self.num_samples) + 0.5)
                           / self.num_samples)

    def sample(self, origins: np.ndarray, directions: np.ndarray,
               bounds: tuple) -> RaySamples:
        """Generate flattened samples for a bundle of rays.

        Bit-identical to the repeat-then-mask predecessor
        (:func:`repro.perf.reference.sample_reference`): per-sample
        directions, deltas, and ray ids are pure gathers, so deriving
        them from the kept flat indices gives the same arrays without
        materialising the dense (rays x samples) expansions.
        """
        origins = np.atleast_2d(np.asarray(origins, dtype=float))
        directions = np.atleast_2d(np.asarray(directions, dtype=float))
        num_rays = origins.shape[0]
        num_samples = self.num_samples
        lo, hi = bounds

        t_near, t_far, hit = intersect_aabb(origins, directions, lo, hi,
                                            near=1e-4)
        all_hit = bool(hit.all())
        if all_hit:
            spans = t_far - t_near  # np.where(hit, ...) with hit all-True
        else:
            spans = np.where(hit, t_far - t_near, 0.0)
        if self.jitter:
            steps = np.arange(num_samples)
            offsets = self._rng.uniform(size=(num_rays, num_samples))
            frac = (steps[None, :] + offsets) / num_samples
        else:
            frac = self._midpoints[None, :]
        # t_near + frac*spans and origins + t*d, accumulated into scratch
        # (addition is commutative, so summing into the product term gives
        # the same array with no fresh multi-megabyte temporaries).
        t = _scratch("sample.t", (num_rays, num_samples), np.float64)
        np.multiply(frac, spans[:, None], out=t)
        t += t_near[:, None]
        delta = spans / num_samples

        positions = _scratch("sample.positions",
                             (num_rays, num_samples, 3), np.float64)
        np.multiply(t[..., None], directions[:, None, :], out=positions)
        positions += origins[:, None, :]
        if self.occupancy is not None:
            occ = self.occupancy.occupied(positions.reshape(-1, 3))
            keep = occ.reshape(num_rays, num_samples)
            if not all_hit:
                keep = keep & hit[:, None]
        else:
            keep = np.broadcast_to(hit[:, None], (num_rays, num_samples))

        flat_idx = np.flatnonzero(keep)
        ray_index = flat_idx // num_samples
        # All gathers below copy out of the scratch lattices (indices in
        # range by construction; mode="clip" is take's fast path).
        return RaySamples(
            positions=np.take(positions.reshape(-1, 3), flat_idx, axis=0,
                              mode="clip"),
            directions=np.take(directions, ray_index, axis=0, mode="clip"),
            t_values=np.take(t.reshape(-1), flat_idx, mode="clip"),
            deltas=np.take(delta, ray_index, mode="clip"),
            ray_index=ray_index,
            num_rays=num_rays,
        )
