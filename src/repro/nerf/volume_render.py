"""Volume rendering: alpha compositing of per-sample density and radiance.

Classic emission-absorption integration (Kajiya/Levoy, as used by NeRF):
``alpha_i = 1 - exp(-sigma_i * delta_i)``, transmittance is the running
product of ``1 - alpha``, and per-ray color/depth are weight-sums.  Operates
on the flattened :class:`~repro.nerf.sampling.RaySamples` layout via
segmented scans, so rays with different live-sample counts batch together.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..backend.dispatch import override

__all__ = ["CompositeResult", "composite", "composite_numpy"]


@dataclass
class CompositeResult:
    """Per-ray outputs of volume rendering.

    ``depth`` is the expected termination distance along the ray (same units
    as the sample ``t_values``); rays with opacity below the caller's
    threshold should be treated as void/background.
    """

    rgb: np.ndarray  # (R, 3)
    depth: np.ndarray  # (R,)
    opacity: np.ndarray  # (R,)


def composite(
    sigmas: np.ndarray,
    rgbs: np.ndarray,
    t_values: np.ndarray,
    deltas: np.ndarray,
    ray_index: np.ndarray,
    num_rays: int,
) -> CompositeResult:
    """Backend-dispatched :func:`composite_numpy` (see there)."""
    fn = override("volume.composite")
    if fn is not None:
        return fn(sigmas, rgbs, t_values, deltas, ray_index, num_rays)
    return composite_numpy(sigmas, rgbs, t_values, deltas, ray_index,
                           num_rays)


def composite_numpy(
    sigmas: np.ndarray,
    rgbs: np.ndarray,
    t_values: np.ndarray,
    deltas: np.ndarray,
    ray_index: np.ndarray,
    num_rays: int,
) -> CompositeResult:
    """Composite flattened samples into per-ray color, depth, and opacity.

    Samples must be sorted by (ray, t) — the sampler emits them that way.
    """
    sigmas = np.asarray(sigmas, dtype=float)
    alphas = 1.0 - np.exp(-np.maximum(sigmas, 0.0) * np.asarray(deltas, dtype=float))

    # Segmented exclusive product of (1 - alpha) per ray, computed via
    # cumulative log-sums reset at each ray boundary.
    log_trans = np.log(np.clip(1.0 - alphas, 1e-12, 1.0))
    cums = np.cumsum(log_trans)
    ray_index = np.asarray(ray_index, dtype=np.int64)

    if len(sigmas) == 0:
        return CompositeResult(rgb=np.zeros((num_rays, 3)),
                               depth=np.full(num_rays, np.inf),
                               opacity=np.zeros(num_rays))

    starts = np.zeros(len(sigmas), dtype=bool)
    starts[0] = True
    starts[1:] = ray_index[1:] != ray_index[:-1]
    # Offset to subtract: the cumulative sum just before each segment's start,
    # forward-filled across the segment.
    start_positions = np.maximum.accumulate(
        np.where(starts, np.arange(len(sigmas)), 0))
    seg_offsets = (cums - log_trans)[start_positions]
    exclusive = cums - log_trans - seg_offsets
    transmittance = np.exp(exclusive)
    weights = transmittance * alphas

    # All three channels in one segmented sum: flatten (sample, channel) to
    # interleaved bins so a single bincount covers the RGB block.  Per-bin
    # accumulation order stays sample-ascending, so results are
    # bit-identical to the per-channel form (see test_volume_render).
    flat_bins = (ray_index[:, None] * 3 + np.arange(3)).ravel()
    rgb = np.bincount(flat_bins,
                      weights=(weights[:, None] * np.asarray(rgbs)).ravel(),
                      minlength=num_rays * 3).reshape(num_rays, 3)
    depth_sum = np.bincount(ray_index, weights=weights * t_values,
                            minlength=num_rays)
    opacity = np.bincount(ray_index, weights=weights, minlength=num_rays)
    opacity = np.clip(opacity, 0.0, 1.0)

    safe = np.where(opacity > 1e-8, opacity, 1.0)
    depth = np.where(opacity > 1e-8, depth_sum / safe, np.inf)
    return CompositeResult(rgb=np.clip(rgb, 0.0, 1.0), depth=depth,
                           opacity=opacity)
