"""Input encodings: frequency (positional) and spherical-harmonics (view).

The baked fields store per-vertex spherical-harmonic (SH) coefficients so the
decoded radiance can be view-dependent — the same mechanism PlenOctrees and
DirectVoxGO-style models use.  Degree-1 SH (4 basis functions) captures the
broad specular lobes of the procedural scenes.
"""

from __future__ import annotations

import numpy as np

__all__ = ["frequency_encoding", "sh_basis_deg1", "SH_DEG1_DIM"]

SH_DEG1_DIM = 4

# Real SH normalisation constants for l=0 and l=1.
_SH_C0 = 0.28209479177387814
_SH_C1 = 0.4886025119029199


def frequency_encoding(x: np.ndarray, num_frequencies: int,
                       include_input: bool = True) -> np.ndarray:
    """Classic NeRF sinusoidal encoding of coordinates.

    Maps (..., D) to (..., D * (2 * num_frequencies [+ 1])) by appending
    sin/cos at octave frequencies.
    """
    x = np.asarray(x, dtype=float)
    parts = [x] if include_input else []
    for level in range(num_frequencies):
        scaled = x * (2.0**level) * np.pi
        parts.append(np.sin(scaled))
        parts.append(np.cos(scaled))
    return np.concatenate(parts, axis=-1)


def sh_basis_deg1(directions: np.ndarray) -> np.ndarray:
    """Degree-1 real spherical harmonics basis evaluated at unit directions.

    Returns (..., 4): [Y00, Y1-1, Y10, Y11] = [c0, -c1*y, c1*z, -c1*x].
    """
    d = np.asarray(directions, dtype=float)
    norm = np.linalg.norm(d, axis=-1, keepdims=True)
    d = d / np.where(norm < 1e-12, 1.0, norm)
    x, y, z = d[..., 0], d[..., 1], d[..., 2]
    return np.stack([
        np.full_like(x, _SH_C0),
        -_SH_C1 * y,
        _SH_C1 * z,
        -_SH_C1 * x,
    ], axis=-1)
