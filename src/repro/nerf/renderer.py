"""Pixel-centric NeRF renderer: full frames and sparse pixel sets.

This is the *baseline* rendering order the paper starts from: rays are
processed in image order (pixel-centric), each ray sampling, gathering, and
decoding independently — which is exactly what produces the irregular memory
traffic characterised in Sec. II-D.  The renderer also produces
:class:`RenderStats` (ray/sample/MAC counts) that feed the hardware model,
and can record the gather plan of every batch for the memory experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..geometry.camera import PinholeCamera
from ..scenes.raytracer import Frame
from .sampling import RaySamples, UniformSampler
from .volume_render import composite

__all__ = ["RenderStats", "NeRFRenderer"]


@dataclass
class RenderStats:
    """Work counters for one render call (inputs to the hardware model)."""

    num_rays: int = 0
    num_samples: int = 0
    mlp_macs: int = 0
    gather_vertex_accesses: int = 0
    gather_bytes: int = 0

    def merge(self, other: "RenderStats") -> "RenderStats":
        return RenderStats(
            num_rays=self.num_rays + other.num_rays,
            num_samples=self.num_samples + other.num_samples,
            mlp_macs=self.mlp_macs + other.mlp_macs,
            gather_vertex_accesses=(self.gather_vertex_accesses
                                    + other.gather_vertex_accesses),
            gather_bytes=self.gather_bytes + other.gather_bytes,
        )


@dataclass
class RenderOutput:
    """Raw per-ray render results plus bookkeeping."""

    rgb: np.ndarray
    depth_t: np.ndarray  # distance along the ray
    opacity: np.ndarray
    stats: RenderStats
    gather_groups: list = field(default_factory=list)


class NeRFRenderer:
    """Renders a radiance field through volume rendering, in ray chunks."""

    def __init__(self, fld, sampler: UniformSampler | None = None,
                 background=None, chunk_size: int = 16384,
                 opacity_threshold: float = 0.5):
        self.field = fld
        self.sampler = sampler or UniformSampler()
        self.background = background
        self.chunk_size = int(chunk_size)
        self.opacity_threshold = opacity_threshold

    # -- core ray rendering ----------------------------------------------------

    def render_rays(self, origins: np.ndarray, directions: np.ndarray,
                    record_gather: bool = False) -> RenderOutput:
        """Render a flat bundle of rays; returns per-ray color/depth/opacity."""
        origins = np.atleast_2d(np.asarray(origins, dtype=float))
        directions = np.atleast_2d(np.asarray(directions, dtype=float))
        num_rays = origins.shape[0]

        rgb = np.zeros((num_rays, 3))
        depth = np.full(num_rays, np.inf)
        opacity = np.zeros(num_rays)
        stats = RenderStats(num_rays=num_rays)
        groups = []

        for start in range(0, num_rays, self.chunk_size):
            stop = min(start + self.chunk_size, num_rays)
            samples = self.sampler.sample(origins[start:stop],
                                          directions[start:stop],
                                          self.field.bounds)
            out = self._render_samples(samples, record_gather)
            rgb[start:stop] = out.rgb
            depth[start:stop] = out.depth_t
            opacity[start:stop] = out.opacity
            stats = stats.merge(out.stats)
            groups.extend(out.gather_groups)

        stats.num_rays = num_rays
        return RenderOutput(rgb=rgb, depth_t=depth, opacity=opacity,
                            stats=stats, gather_groups=groups)

    def _render_samples(self, samples: RaySamples, record_gather: bool
                        ) -> RenderOutput:
        stats = RenderStats(num_samples=len(samples))
        groups = []
        if len(samples) == 0:
            zeros = np.zeros(samples.num_rays)
            return RenderOutput(rgb=np.zeros((samples.num_rays, 3)),
                                depth_t=np.full(samples.num_rays, np.inf),
                                opacity=zeros, stats=stats)

        if record_gather:
            groups = self.field.gather_plan(samples.positions)
            counted = groups
            scale = 1
        else:
            # A one-sample plan gives the per-sample access shape cheaply.
            counted = self.field.gather_plan(samples.positions[:1])
            scale = len(samples)
        for group in counted:
            accesses = group.vertices_per_sample * group.num_samples * scale
            stats.gather_vertex_accesses += accesses
            stats.gather_bytes += accesses * group.entry_bytes

        features = self.field.interpolate(samples.positions)
        sigma, rgb_s = self.field.decode(features, samples.directions)
        stats.mlp_macs = len(samples) * self.field.decoder.macs_per_sample()

        result = composite(sigma, rgb_s, samples.t_values, samples.deltas,
                           samples.ray_index, samples.num_rays)
        return RenderOutput(rgb=result.rgb, depth_t=result.depth,
                            opacity=result.opacity, stats=stats,
                            gather_groups=groups)

    # -- frame-level API ---------------------------------------------------------

    def render_frame(self, camera: PinholeCamera,
                     record_gather: bool = False) -> tuple[Frame, RenderOutput]:
        """Render a full frame; returns the Frame and the raw output."""
        origins, directions = camera.generate_rays()
        flat_o = origins.reshape(-1, 3)
        flat_d = directions.reshape(-1, 3)
        out = self.render_rays(flat_o, flat_d, record_gather=record_gather)

        height, width = camera.height, camera.width
        solid = out.opacity >= self.opacity_threshold
        image = out.rgb.copy()
        if self.background is not None:
            bg = self.background(flat_d)
            image = image + (1.0 - out.opacity[:, None]) * bg
        forward = camera.c2w[:3, 2]
        z = out.depth_t * (flat_d @ forward)
        depth = np.where(solid & np.isfinite(out.depth_t), z, np.inf)

        frame = Frame(image=np.clip(image, 0.0, 1.0).reshape(height, width, 3),
                      depth=depth.reshape(height, width),
                      hit=solid.reshape(height, width),
                      c2w=camera.c2w.copy())
        return frame, out

    def render_pixels(self, camera: PinholeCamera, pixel_ids: np.ndarray,
                      record_gather: bool = False
                      ) -> tuple[np.ndarray, np.ndarray, RenderOutput]:
        """Render a sparse pixel subset; returns (colors, z_depth, output)."""
        pixel_ids = np.asarray(pixel_ids, dtype=np.int64)
        if pixel_ids.size == 0:
            empty = RenderOutput(rgb=np.zeros((0, 3)), depth_t=np.zeros(0),
                                 opacity=np.zeros(0), stats=RenderStats())
            return np.zeros((0, 3)), np.zeros(0), empty
        v, u = np.divmod(pixel_ids, camera.width)
        origins, directions = camera.rays_for_pixels(u + 0.5, v + 0.5)
        out = self.render_rays(origins, directions, record_gather=record_gather)

        colors = out.rgb.copy()
        if self.background is not None:
            colors = colors + (1.0 - out.opacity[:, None]) * self.background(directions)
        forward = camera.c2w[:3, 2]
        z = out.depth_t * (directions @ forward)
        solid = out.opacity >= self.opacity_threshold
        z = np.where(solid & np.isfinite(out.depth_t), z, np.inf)
        return np.clip(colors, 0.0, 1.0), z, out
