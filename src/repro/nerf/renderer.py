"""Pixel-centric NeRF renderer: full frames and sparse pixel sets.

This is the *baseline* rendering order the paper starts from: rays are
processed in image order (pixel-centric), each ray sampling, gathering, and
decoding independently — which is exactly what produces the irregular memory
traffic characterised in Sec. II-D.  The renderer also produces
:class:`RenderStats` (ray/sample/MAC counts) that feed the hardware model,
and can record the gather plan of every batch for the memory experiments.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field

import numpy as np

from ..geometry.camera import PinholeCamera
from ..perf.timer import section
from ..scenes.raytracer import Frame
from .sampling import RaySamples, UniformSampler
from .volume_render import composite

__all__ = ["RenderStats", "NeRFRenderer"]


@dataclass
class RenderStats:
    """Work counters for one render call (inputs to the hardware model)."""

    num_rays: int = 0
    num_samples: int = 0
    mlp_macs: int = 0
    gather_vertex_accesses: int = 0
    gather_bytes: int = 0

    def merge(self, other: "RenderStats") -> "RenderStats":
        return RenderStats(
            num_rays=self.num_rays + other.num_rays,
            num_samples=self.num_samples + other.num_samples,
            mlp_macs=self.mlp_macs + other.mlp_macs,
            gather_vertex_accesses=(self.gather_vertex_accesses
                                    + other.gather_vertex_accesses),
            gather_bytes=self.gather_bytes + other.gather_bytes,
        )


@dataclass
class RenderOutput:
    """Raw per-ray render results plus bookkeeping."""

    rgb: np.ndarray
    depth_t: np.ndarray  # distance along the ray
    opacity: np.ndarray
    stats: RenderStats
    gather_groups: list = field(default_factory=list)


class NeRFRenderer:
    """Renders a radiance field through volume rendering, in ray chunks.

    ``backend`` optionally pins a kernel backend (a
    :mod:`repro.backend` registry name) for this renderer's render
    calls; ``None`` (the default) uses whatever backend the caller has
    activated — usually the canonical numpy kernels.
    """

    def __init__(self, fld, sampler: UniformSampler | None = None,
                 background=None, chunk_size: int = 16384,
                 opacity_threshold: float = 0.5, backend: str | None = None):
        self.field = fld
        self.sampler = sampler or UniformSampler()
        self.background = background
        self.chunk_size = int(chunk_size)
        self.opacity_threshold = opacity_threshold
        self.backend = backend

    def _backend_scope(self):
        """Kernel-dispatch scope for one render call (no-op when unset)."""
        if self.backend is None:
            return nullcontext()
        from ..backend.registry import use_backend
        return use_backend(self.backend)

    # -- core ray rendering ----------------------------------------------------

    def render_rays(self, origins: np.ndarray, directions: np.ndarray,
                    record_gather: bool = False) -> RenderOutput:
        """Render a flat bundle of rays; returns per-ray color/depth/opacity."""
        with self._backend_scope():
            return self._render_rays(origins, directions, record_gather)

    def _render_rays(self, origins: np.ndarray, directions: np.ndarray,
                     record_gather: bool = False) -> RenderOutput:
        origins = np.atleast_2d(np.asarray(origins, dtype=float))
        directions = np.atleast_2d(np.asarray(directions, dtype=float))
        num_rays = origins.shape[0]

        rgb = np.zeros((num_rays, 3))
        depth = np.full(num_rays, np.inf)
        opacity = np.zeros(num_rays)
        stats = RenderStats(num_rays=num_rays)
        groups = []

        for start in range(0, num_rays, self.chunk_size):
            stop = min(start + self.chunk_size, num_rays)
            with section("nerf.sample"):
                samples = self.sampler.sample(origins[start:stop],
                                              directions[start:stop],
                                              self.field.bounds)
            out = self._render_samples(samples, record_gather)
            rgb[start:stop] = out.rgb
            depth[start:stop] = out.depth_t
            opacity[start:stop] = out.opacity
            stats = stats.merge(out.stats)
            groups.extend(out.gather_groups)

        stats.num_rays = num_rays
        return RenderOutput(rgb=rgb, depth_t=depth, opacity=opacity,
                            stats=stats, gather_groups=groups)

    def _render_samples(self, samples: RaySamples, record_gather: bool
                        ) -> RenderOutput:
        stats = RenderStats(num_samples=len(samples))
        groups = []
        if len(samples) == 0:
            zeros = np.zeros(samples.num_rays)
            return RenderOutput(rgb=np.zeros((samples.num_rays, 3)),
                                depth_t=np.full(samples.num_rays, np.inf),
                                opacity=zeros, stats=stats)

        if record_gather:
            groups = self.field.gather_plan(samples.positions)
            counted = groups
            scale = 1
        else:
            # A one-sample plan gives the per-sample access shape cheaply.
            counted = self.field.gather_plan(samples.positions[:1])
            scale = len(samples)
        for group in counted:
            accesses = group.vertices_per_sample * group.num_samples * scale
            stats.gather_vertex_accesses += accesses
            stats.gather_bytes += accesses * group.entry_bytes

        with section("nerf.interpolate"):
            features = self.field.interpolate(samples.positions)
        with section("nerf.decode"):
            sigma, rgb_s = self.field.decode(features, samples.directions)
        stats.mlp_macs = len(samples) * self.field.decoder.macs_per_sample()

        with section("nerf.composite"):
            result = composite(sigma, rgb_s, samples.t_values, samples.deltas,
                               samples.ray_index, samples.num_rays)
        return RenderOutput(rgb=result.rgb, depth_t=result.depth,
                            opacity=result.opacity, stats=stats,
                            gather_groups=groups)

    # -- batched ray rendering ---------------------------------------------------

    def render_ray_batch(self, bundles: list) -> list:
        """Render several ray bundles through shared vectorized field queries.

        ``bundles`` is a list of ``(origins, directions)`` flat ray arrays
        (e.g. one bundle per concurrent rendering session).  All rays are
        flattened into one stream so sampling, feature interpolation, and
        decoding run on combined chunks — a single field evaluation spans
        every bundle.  Compositing and work-stat accounting then replay the
        exact per-bundle chunk boundaries of :meth:`render_rays`, so each
        returned :class:`RenderOutput` is identical to rendering its bundle
        alone (the sampler must be deterministic, i.e. ``jitter=False``).
        """
        with self._backend_scope():
            return self._render_ray_batch(bundles)

    def _render_ray_batch(self, bundles: list) -> list:
        prepped = []
        for origins, directions in bundles:
            o = np.atleast_2d(np.asarray(origins, dtype=float))
            d = np.atleast_2d(np.asarray(directions, dtype=float))
            prepped.append((o, d))
        sizes = [o.shape[0] for o, _ in prepped]
        total = sum(sizes)
        if total == 0:
            return [RenderOutput(rgb=np.zeros((0, 3)), depth_t=np.zeros(0),
                                 opacity=np.zeros(0), stats=RenderStats())
                    for _ in prepped]
        flat_o = np.concatenate([o for o, _ in prepped], axis=0)
        flat_d = np.concatenate([d for _, d in prepped], axis=0)

        # Phase 1: one vectorized sample/interpolate/decode pass over chunks
        # of the *combined* ray stream.  Per-sample values are independent of
        # chunk composition, so this is safe to share across bundles.
        parts: list = []
        for start in range(0, total, self.chunk_size):
            stop = min(start + self.chunk_size, total)
            with section("nerf.sample"):
                samples = self.sampler.sample(flat_o[start:stop],
                                              flat_d[start:stop],
                                              self.field.bounds)
            if len(samples) == 0:
                continue
            with section("nerf.interpolate"):
                features = self.field.interpolate(samples.positions)
            with section("nerf.decode"):
                sigma, rgb_s = self.field.decode(features, samples.directions)
            parts.append((samples.ray_index + start, samples.positions,
                          sigma, rgb_s, samples.t_values, samples.deltas))
        if parts:
            ray_of = np.concatenate([p[0] for p in parts])
            positions = np.concatenate([p[1] for p in parts], axis=0)
            sigma = np.concatenate([p[2] for p in parts])
            rgb_s = np.concatenate([p[3] for p in parts], axis=0)
            t_values = np.concatenate([p[4] for p in parts])
            deltas = np.concatenate([p[5] for p in parts])
        else:
            ray_of = np.zeros(0, dtype=np.int64)

        # Phase 2: composite and count work per bundle, replaying the chunk
        # boundaries render_rays would have used for that bundle alone (the
        # segmented scan in `composite` and the one-sample gather plan both
        # depend on them).
        outputs = []
        offset = 0
        macs = self.field.decoder.macs_per_sample()
        for n in sizes:
            rgb = np.zeros((n, 3))
            depth = np.full(n, np.inf)
            opacity = np.zeros(n)
            stats = RenderStats(num_rays=n)
            for cs in range(0, n, self.chunk_size):
                ce = min(cs + self.chunk_size, n)
                lo = np.searchsorted(ray_of, offset + cs)
                hi = np.searchsorted(ray_of, offset + ce)
                nsamp = int(hi - lo)
                stats.num_samples += nsamp
                if nsamp == 0:
                    continue
                result = composite(sigma[lo:hi], rgb_s[lo:hi], t_values[lo:hi],
                                   deltas[lo:hi], ray_of[lo:hi] - (offset + cs),
                                   ce - cs)
                rgb[cs:ce] = result.rgb
                depth[cs:ce] = result.depth
                opacity[cs:ce] = result.opacity
                for group in self.field.gather_plan(positions[lo:lo + 1]):
                    accesses = (group.vertices_per_sample * group.num_samples
                                * nsamp)
                    stats.gather_vertex_accesses += accesses
                    stats.gather_bytes += accesses * group.entry_bytes
                stats.mlp_macs += nsamp * macs
            outputs.append(RenderOutput(rgb=rgb, depth_t=depth,
                                        opacity=opacity, stats=stats))
            offset += n
        return outputs

    # -- frame-level API ---------------------------------------------------------

    def compose_frame(self, camera: PinholeCamera, flat_directions: np.ndarray,
                      out: RenderOutput) -> Frame:
        """Assemble a :class:`Frame` from the raw output of a full-frame pass."""
        height, width = camera.height, camera.width
        solid = out.opacity >= self.opacity_threshold
        image = out.rgb.copy()
        if self.background is not None:
            bg = self.background(flat_directions)
            image = image + (1.0 - out.opacity[:, None]) * bg
        forward = camera.c2w[:3, 2]
        z = out.depth_t * (flat_directions @ forward)
        depth = np.where(solid & np.isfinite(out.depth_t), z, np.inf)

        return Frame(image=np.clip(image, 0.0, 1.0).reshape(height, width, 3),
                     depth=depth.reshape(height, width),
                     hit=solid.reshape(height, width),
                     c2w=camera.c2w.copy())

    def compose_pixels(self, camera: PinholeCamera, directions: np.ndarray,
                       out: RenderOutput) -> tuple[np.ndarray, np.ndarray]:
        """(colors, z_depth) for a sparse pixel pass from its raw output."""
        colors = out.rgb.copy()
        if self.background is not None:
            colors = colors + (1.0 - out.opacity[:, None]) * self.background(directions)
        forward = camera.c2w[:3, 2]
        z = out.depth_t * (directions @ forward)
        solid = out.opacity >= self.opacity_threshold
        z = np.where(solid & np.isfinite(out.depth_t), z, np.inf)
        return np.clip(colors, 0.0, 1.0), z

    def render_frame(self, camera: PinholeCamera,
                     record_gather: bool = False) -> tuple[Frame, RenderOutput]:
        """Render a full frame; returns the Frame and the raw output."""
        origins, directions = camera.generate_rays()
        flat_o = origins.reshape(-1, 3)
        flat_d = directions.reshape(-1, 3)
        out = self.render_rays(flat_o, flat_d, record_gather=record_gather)
        return self.compose_frame(camera, flat_d, out), out

    def render_pixels(self, camera: PinholeCamera, pixel_ids: np.ndarray,
                      record_gather: bool = False
                      ) -> tuple[np.ndarray, np.ndarray, RenderOutput]:
        """Render a sparse pixel subset; returns (colors, z_depth, output)."""
        pixel_ids = np.asarray(pixel_ids, dtype=np.int64)
        if pixel_ids.size == 0:
            empty = RenderOutput(rgb=np.zeros((0, 3)), depth_t=np.zeros(0),
                                 opacity=np.zeros(0), stats=RenderStats())
            return np.zeros((0, 3)), np.zeros(0), empty
        v, u = np.divmod(pixel_ids, camera.width)
        origins, directions = camera.rays_for_pixels(u + 0.5, v + 0.5)
        out = self.render_rays(origins, directions, record_gather=record_gather)
        colors, z = self.compose_pixels(camera, directions, out)
        return colors, z, out
