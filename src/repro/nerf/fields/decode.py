"""Shared Feature Computation (F): MLP + spherical-harmonics radiance decode.

All three field families store the same per-vertex feature layout and share
this decoder, mirroring how the paper treats Feature Computation as a fixed
MLP stage independent of the feature representation:

====  ======================================================
 ch    meaning
====  ======================================================
 0     density (sigma, non-negative)
 1-3   diffuse RGB
 4-12  view-dependence: 3x3 linear-SH coefficients (RGB x xyz)
 13+   zero padding up to ``feature_dim``
====  ======================================================
"""

from __future__ import annotations

import numpy as np

from ..encoding import SH_DEG1_DIM, sh_basis_deg1
from ..mlp import MLP, identity_affine_mlp

__all__ = ["SHDecoder", "CORE_FEATURE_DIM"]

# sigma + rgb + 3x3 SH coefficients.  Kept in sync with
# repro.nerf.baking.CORE_FEATURE_DIM (the bake side defines its own copy to
# avoid an import cycle through the fields package).
CORE_FEATURE_DIM = 13


class SHDecoder:
    """Decode interpolated features (+ view direction) to (sigma, rgb).

    The MLP consumes ``feature_dim + 4`` inputs (features concatenated with
    the degree-1 SH view encoding) and emits the 13 core channels.  Its
    weights are constructed so the core channels pass through exactly; the
    view-dependent radiance is then the SH expansion
    ``rgb = diffuse + C @ [Y(x), Y(y), Y(z)]``.

    Density follows the standard NeRF recipe of a nonlinearity on the raw
    network output: ``sigma = max_density * sigmoid(logit)``.  Fields store
    the *logit* (linear in the SDF), which interpolates and factorises far
    better than the sharp density itself.
    """

    def __init__(self, feature_dim: int = 16, hidden_layers: int = 2,
                 max_density: float = 800.0):
        if feature_dim < CORE_FEATURE_DIM:
            raise ValueError(
                f"feature_dim must be >= {CORE_FEATURE_DIM}, got {feature_dim}")
        self.feature_dim = feature_dim
        self.max_density = float(max_density)
        matrix = np.zeros((feature_dim + SH_DEG1_DIM, CORE_FEATURE_DIM))
        matrix[:CORE_FEATURE_DIM, :CORE_FEATURE_DIM] = np.eye(CORE_FEATURE_DIM)
        self.mlp: MLP = identity_affine_mlp(matrix, hidden_layers=hidden_layers)

    def density(self, features: np.ndarray) -> np.ndarray:
        """Density activation alone (used by occupancy-grid construction)."""
        features = np.atleast_2d(np.asarray(features, dtype=float))
        logit = np.clip(features[:, 0], -40.0, 40.0)
        return self.max_density / (1.0 + np.exp(-logit))

    def decode(self, features: np.ndarray, view_dirs: np.ndarray
               ) -> tuple[np.ndarray, np.ndarray]:
        """(N, F) features + (N, 3) dirs -> (sigma (N,), rgb (N, 3))."""
        features = np.atleast_2d(np.asarray(features, dtype=float))
        view_dirs = np.atleast_2d(np.asarray(view_dirs, dtype=float))
        sh = sh_basis_deg1(view_dirs)
        # The identity-affine MLP's weights are all 0/+1/-1, so every dot
        # product in its forward pass reduces to at most two exact terms:
        # the network output *bit-equals* the first CORE_FEATURE_DIM input
        # channels, and this measured hot path skips the matmuls.  The
        # full forward stays available for the cost model and the
        # equivalence test (perf.reference.decode_reference).
        core = features[:, :CORE_FEATURE_DIM]

        logit = np.clip(core[:, 0], -40.0, 40.0)
        sigma = self.max_density / (1.0 + np.exp(-logit))
        diffuse = core[:, 1:4]
        coeffs = core[:, 4:13].reshape(-1, 3, 3)
        # Linear SH terms only (the constant term is folded into diffuse).
        view_basis = sh[:, 1:4]
        rgb = np.clip(diffuse + np.einsum("ncb,nb->nc", coeffs, view_basis), 0.0, 1.0)
        return sigma, rgb

    # -- costs ------------------------------------------------------------------

    def macs_per_sample(self) -> int:
        return self.mlp.macs_per_sample()

    def weight_bytes(self) -> int:
        return self.mlp.weight_bytes()
