"""Factorised-tensor radiance field (TensoRF-style VM decomposition).

The feature volume is approximated as a sum over three modes, each a set of
rank components pairing a 1-D *vector* factor along one axis with a 2-D
*plane* factor over the other two axes, plus a per-mode channel-mixing basis
matrix.  Gathering fetches 4 plane texels + 2 vector texels per sample per
mode — the distinct access pattern the paper covers with the "factorized
tensor" representation.

Factors are fitted greedily from a dense reference grid by per-mode SVD
(top singular vectors per mode, residual passed to the next mode).
"""

from __future__ import annotations

import numpy as np

from .base import GatherGroup, RadianceField
from .decode import SHDecoder
from .interp import bilinear_setup, linear_setup
from .voxel_grid import VoxelGridField

__all__ = ["TensorFactorField"]

# Mode m uses vector axis _VECTOR_AXIS[m] and plane axes _PLANE_AXES[m].
_VECTOR_AXIS = (0, 1, 2)
_PLANE_AXES = ((1, 2), (0, 2), (0, 1))


class _Mode:
    """One VM mode: rank vectors, rank planes, and the channel basis."""

    def __init__(self, vectors: np.ndarray, planes: np.ndarray,
                 basis: np.ndarray):
        self.vectors = vectors  # (rank, S)
        self.planes = planes  # (rank, S, S)
        self.basis = basis  # (rank, F)

    @property
    def rank(self) -> int:
        return self.vectors.shape[0]

    @property
    def side(self) -> int:
        return self.vectors.shape[1]


def _fit_mode(residual: np.ndarray, mode: int, rank: int) -> _Mode:
    """Greedy rank-``rank`` VM fit of one mode via SVD of the unfolding."""
    side = residual.shape[0]
    feature_dim = residual.shape[3]
    unfold = np.moveaxis(residual, mode, 0).reshape(side, -1)
    u, s, vt = np.linalg.svd(unfold, full_matrices=False)
    rank = min(rank, s.shape[0])

    vectors = np.zeros((rank, side))
    planes = np.zeros((rank, side, side))
    basis = np.zeros((rank, feature_dim))
    for r in range(rank):
        vectors[r] = u[:, r]
        w = (s[r] * vt[r]).reshape(side * side, feature_dim)
        # Constrain the co-factor to plane x channel-mix (TensoRF structure)
        # by a rank-1 SVD.
        pu, ps, pvt = np.linalg.svd(w, full_matrices=False)
        planes[r] = (pu[:, 0] * ps[0]).reshape(side, side)
        basis[r] = pvt[0]
    return _Mode(vectors, planes, basis)


def _mode_reconstruction(mode_idx: int, mode: _Mode, side: int,
                         feature_dim: int) -> np.ndarray:
    """Dense (S, S, S, F) reconstruction contributed by one mode."""
    outer = np.einsum("rx,ryz->rxyz", mode.vectors,
                      mode.planes.reshape(mode.rank, side, side))
    dense = np.einsum("rxyz,rf->xyzf", outer, mode.basis)
    # The einsum laid axes as (vector, plane0, plane1); restore world order.
    order = [_VECTOR_AXIS[mode_idx], *_PLANE_AXES[mode_idx]]
    inverse = np.argsort(order)
    return np.transpose(dense, (*inverse, 3))


class TensorFactorField(RadianceField):
    """Vector-matrix factorised feature volume with shared SH decode."""

    name = "tensorf"

    def __init__(self, modes: list, bounds: tuple,
                 decoder: SHDecoder | None = None, feature_dim: int = 16,
                 bytes_per_channel: int = 2):
        if len(modes) != 3:
            raise ValueError("TensorFactorField needs exactly 3 modes")
        self.modes = modes
        self._bounds = (np.asarray(bounds[0], dtype=float),
                        np.asarray(bounds[1], dtype=float))
        self._feature_dim = feature_dim
        self.decoder = decoder or SHDecoder(feature_dim=feature_dim)
        self.bytes_per_channel = bytes_per_channel

    # -- construction ------------------------------------------------------------

    @classmethod
    def bake(cls, scene, resolution: int = 64, rank_per_mode: int = 24,
             feature_dim: int = 16, reference: VoxelGridField | None = None
             ) -> "TensorFactorField":
        """Fit VM factors against a dense reference grid of ``resolution``."""
        if reference is None:
            reference = VoxelGridField.bake(scene, resolution=resolution,
                                            feature_dim=feature_dim)
        side = reference.resolution + 1
        dense = reference.vertex_features.reshape(side, side, side, feature_dim)

        residual = dense.astype(float).copy()
        modes = []
        for mode_idx in range(3):
            mode = _fit_mode(residual, _VECTOR_AXIS[mode_idx], rank_per_mode)
            modes.append(mode)
            residual = residual - _mode_reconstruction(mode_idx, mode, side,
                                                       feature_dim)
        decoder = SHDecoder(feature_dim=feature_dim,
                            max_density=reference.decoder.max_density)
        return cls(modes, scene.bounds, decoder=decoder,
                   feature_dim=feature_dim)

    # -- RadianceField API ----------------------------------------------------------

    @property
    def feature_dim(self) -> int:
        return self._feature_dim

    @property
    def bounds(self) -> tuple:
        return self._bounds

    @property
    def rank(self) -> int:
        return self.modes[0].rank

    @property
    def plane_entry_bytes(self) -> int:
        return self.rank * self.bytes_per_channel

    @property
    def model_size_bytes(self) -> int:
        total = 0
        for mode in self.modes:
            total += mode.planes.size + mode.vectors.size + mode.basis.size
        return total * self.bytes_per_channel + self.decoder.weight_bytes()

    def _mode_features(self, coords01: np.ndarray, mode_idx: int) -> np.ndarray:
        """Per-sample (N, rank) products of vector and plane factors."""
        mode = self.modes[mode_idx]
        cells = mode.side - 1
        vec_axis = _VECTOR_AXIS[mode_idx]
        pa, pb = _PLANE_AXES[mode_idx]

        _, vec_vertices, vec_weights = linear_setup(coords01[:, vec_axis], cells)
        vec_vals = np.einsum("rnv,nv->nr",
                             mode.vectors[:, vec_vertices], vec_weights)

        plane_coords = coords01[:, [pa, pb]]
        _, plane_vertices, plane_weights = bilinear_setup(plane_coords, cells,
                                                          assume_clipped=True)
        flat_planes = mode.planes.reshape(mode.rank, -1)
        plane_vals = np.einsum("rnv,nv->nr",
                               flat_planes[:, plane_vertices], plane_weights)
        return vec_vals * plane_vals

    def interpolate(self, points: np.ndarray) -> np.ndarray:
        coords = self.normalized_coords(points)
        total = np.zeros((coords.shape[0], self._feature_dim))
        for mode_idx, mode in enumerate(self.modes):
            products = self._mode_features(coords, mode_idx)
            total += products @ mode.basis
        return total

    def gather_plan(self, points: np.ndarray) -> list:
        coords = self.normalized_coords(points)
        groups = []
        base_address = 0
        for mode_idx, mode in enumerate(self.modes):
            cells = mode.side - 1
            vec_axis = _VECTOR_AXIS[mode_idx]
            pa, pb = _PLANE_AXES[mode_idx]

            plane_cells, plane_vertices, plane_weights = bilinear_setup(
                coords[:, [pa, pb]], cells, assume_clipped=True)
            groups.append(GatherGroup(
                name=f"plane{mode_idx}",
                grid_shape=(cells, cells),
                cell_ids=plane_cells,
                vertex_ids=plane_vertices,
                weights=plane_weights,
                entry_bytes=self.plane_entry_bytes,
                num_entries=mode.side * mode.side,
                base_address=base_address,
                streamable=True,
            ))
            base_address += mode.side * mode.side * self.plane_entry_bytes

            vec_cells, vec_vertices, vec_weights = linear_setup(
                coords[:, vec_axis], cells)
            groups.append(GatherGroup(
                name=f"vector{mode_idx}",
                grid_shape=(cells,),
                cell_ids=vec_cells,
                vertex_ids=vec_vertices,
                weights=vec_weights,
                entry_bytes=self.plane_entry_bytes,
                num_entries=mode.side,
                base_address=base_address,
                streamable=True,
            ))
            base_address += mode.side * self.plane_entry_bytes
        return groups

    def decode(self, features: np.ndarray, view_dirs: np.ndarray):
        return self.decoder.decode(features, view_dirs)
