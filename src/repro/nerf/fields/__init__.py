"""NeRF field families: dense grid, hash grid, and factorised tensor."""

from .base import GatherGroup, RadianceField
from .decode import CORE_FEATURE_DIM, SHDecoder
from .hash_grid import HashGridField
from .tensor_factor import TensorFactorField
from .voxel_grid import VoxelGridField

__all__ = [
    "GatherGroup",
    "RadianceField",
    "CORE_FEATURE_DIM",
    "SHDecoder",
    "HashGridField",
    "TensorFactorField",
    "VoxelGridField",
]
