"""Dense voxel-grid radiance field (DirectVoxGO-style).

Features live at the vertices of a regular 3-D lattice and are trilinearly
interpolated per ray sample — the simplest of the three representations the
paper evaluates, and the one whose feature storage dominates model size
(Fig. 2's large-model/fast corner).
"""

from __future__ import annotations

import numpy as np

from ..baking import bake_vertex_features, vertex_grid_positions
from .base import GatherGroup, RadianceField
from .decode import SHDecoder
from .interp import accumulate_gather, trilinear_gather, trilinear_setup

__all__ = ["VoxelGridField"]


class VoxelGridField(RadianceField):
    """Dense vertex-feature grid with trilinear gathering."""

    name = "directvoxgo"

    def __init__(self, vertex_features: np.ndarray, resolution: int,
                 bounds: tuple, decoder: SHDecoder | None = None,
                 bytes_per_channel: int = 2):
        resolution = int(resolution)
        expected = (resolution + 1) ** 3
        vertex_features = np.asarray(vertex_features, dtype=float)
        if vertex_features.shape[0] != expected:
            raise ValueError(
                f"expected {expected} vertices for resolution {resolution}, "
                f"got {vertex_features.shape[0]}")
        self.vertex_features = vertex_features
        self.resolution = resolution
        self._bounds = (np.asarray(bounds[0], dtype=float),
                        np.asarray(bounds[1], dtype=float))
        self.decoder = decoder or SHDecoder(feature_dim=vertex_features.shape[1])
        self.bytes_per_channel = bytes_per_channel

    # -- construction --------------------------------------------------------

    @classmethod
    def bake(cls, scene, resolution: int = 64, feature_dim: int = 16,
             **bake_kwargs) -> "VoxelGridField":
        """Bake a field from an analytic scene at the given grid resolution."""
        positions = vertex_grid_positions(scene.bounds, resolution)
        lo, hi = scene.bounds
        voxel = float((hi - lo).max()) / resolution
        bake_kwargs.setdefault("shell_width", 2.5 * voxel)
        bake_kwargs.setdefault("surface_bias", 0.3 * voxel)
        # Density transition ~1/6 voxel wide: sharp at any grid resolution.
        bake_kwargs.setdefault("density_sharpness", 6.0 / voxel)
        max_density = bake_kwargs.pop("max_density", 800.0)
        features = bake_vertex_features(scene, positions, feature_dim,
                                        **bake_kwargs)
        return cls(features, resolution, scene.bounds,
                   decoder=SHDecoder(feature_dim=feature_dim,
                                     max_density=max_density))

    # -- RadianceField API ------------------------------------------------------

    @property
    def feature_dim(self) -> int:
        return self.vertex_features.shape[1]

    @property
    def bounds(self) -> tuple:
        return self._bounds

    @property
    def entry_bytes(self) -> int:
        return self.feature_dim * self.bytes_per_channel

    @property
    def model_size_bytes(self) -> int:
        return (self.vertex_features.shape[0] * self.entry_bytes
                + self.decoder.weight_bytes())

    def interpolate(self, points: np.ndarray) -> np.ndarray:
        """Trilinearly interpolated features for (N, 3) world points.

        Hot path: accumulates the eight corner gathers in ascending
        corner order instead of materialising the (N, 8, F) block the
        einsum predecessor reduced — same addition order, bit-identical
        result (locked by ``tests/perf/test_equivalence.py``), an order
        of magnitude less peak memory.
        """
        coords = self.normalized_coords(points)
        base_ids, offsets, factors = trilinear_gather(coords,
                                                      self.resolution,
                                                      assume_clipped=True)
        return accumulate_gather(self.vertex_features, base_ids, offsets,
                                 factors)

    def gather_plan(self, points: np.ndarray) -> list:
        """Single-group gather plan (dense grids stream perfectly)."""
        coords = self.normalized_coords(points)
        cell_ids, vertex_ids, weights = trilinear_setup(coords,
                                                        self.resolution,
                                                        assume_clipped=True)
        group = GatherGroup(
            name="grid",
            grid_shape=(self.resolution,) * 3,
            cell_ids=cell_ids,
            vertex_ids=vertex_ids,
            weights=weights,
            entry_bytes=self.entry_bytes,
            num_entries=self.vertex_features.shape[0],
            base_address=0,
            streamable=True,
        )
        return [group]

    def decode(self, features: np.ndarray, view_dirs: np.ndarray):
        return self.decoder.decode(features, view_dirs)
