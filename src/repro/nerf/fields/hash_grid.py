"""Multi-resolution hash-grid radiance field (Instant-NGP-style).

A pyramid of virtual voxel grids whose vertex features live in per-level
tables.  Coarse levels fit densely in their tables (slot = vertex id); fine
levels exceed the table size and are *hashed*, so distinct vertices collide —
the irregular-access behaviour that drives Instant-NGP's bank-conflict and
cache numbers in the paper (Figs. 4-6), and the reason the fully-streaming
dataflow reverts to pixel-centric order on those levels (Sec. IV-A).

Features are baked coarse-to-fine as residuals against a reference dense
grid, then summed across levels at query time.
"""

from __future__ import annotations

import numpy as np

from .base import GatherGroup, RadianceField
from .decode import SHDecoder
from .interp import accumulate_gather, trilinear_gather, trilinear_setup
from .voxel_grid import VoxelGridField

__all__ = ["HashGridField"]

_HASH_PRIMES = np.array([1, 2654435761, 805459861], dtype=np.uint64)


def _hash_vertices(vertex_multi: np.ndarray, table_size: int) -> np.ndarray:
    """Instant-NGP spatial hash of integer vertex coordinates."""
    v = vertex_multi.astype(np.uint64)
    h = v[..., 0] * _HASH_PRIMES[0]
    h ^= v[..., 1] * _HASH_PRIMES[1]
    h ^= v[..., 2] * _HASH_PRIMES[2]
    return (h % np.uint64(table_size)).astype(np.int64)


class _Level:
    """One resolution level: a virtual grid plus its feature table."""

    def __init__(self, resolution: int, table_size: int, feature_dim: int):
        self.resolution = int(resolution)
        self.table_size = int(table_size)
        vertex_count = (self.resolution + 1) ** 3
        self.dense = vertex_count <= self.table_size
        self.num_entries = vertex_count if self.dense else self.table_size
        self.table = np.zeros((self.num_entries, feature_dim))

    def slots_for(self, coords01: np.ndarray
                  ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(cell_ids, slot_ids (N, 8), weights) for normalised coordinates."""
        cell_ids, vertex_ids, weights = trilinear_setup(coords01,
                                                        self.resolution,
                                                        assume_clipped=True)
        if self.dense:
            return cell_ids, vertex_ids, weights
        # Reconstruct integer vertex coords from flat ids to hash them.
        side = self.resolution + 1
        vx = vertex_ids // (side * side)
        rem = vertex_ids % (side * side)
        vy = rem // side
        vz = rem % side
        multi = np.stack([vx, vy, vz], axis=-1)
        return cell_ids, _hash_vertices(multi, self.table_size), weights

    def interpolate(self, coords01: np.ndarray) -> np.ndarray:
        """Level features for normalised coords (corner-accumulated gather).

        Same ascending-corner addition order as the einsum predecessor,
        so the sum is bit-identical without the (N, 8, F) intermediate.
        Dense levels add per-corner offsets to a base vertex id; hashed
        levels must still materialise per-corner slot columns (the hash
        is not linear in the vertex coordinate).
        """
        if self.dense:
            base_ids, offsets, factors = trilinear_gather(
                coords01, self.resolution, assume_clipped=True)
            return accumulate_gather(self.table, base_ids, offsets, factors)
        _, slots, weights = self.slots_for(coords01)
        table = self.table
        total = table[slots[:, 0]] * weights[:, 0, None]
        for corner in range(1, slots.shape[1]):
            total += table[slots[:, corner]] * weights[:, corner, None]
        return total


class HashGridField(RadianceField):
    """Summed multi-resolution hash grid with shared SH decode."""

    name = "instant_ngp"

    def __init__(self, levels: list, bounds: tuple,
                 decoder: SHDecoder | None = None, bytes_per_channel: int = 2):
        if not levels:
            raise ValueError("need at least one level")
        self.levels = levels
        self._bounds = (np.asarray(bounds[0], dtype=float),
                        np.asarray(bounds[1], dtype=float))
        feature_dim = levels[0].table.shape[1]
        self.decoder = decoder or SHDecoder(feature_dim=feature_dim)
        self.bytes_per_channel = bytes_per_channel

    # -- construction --------------------------------------------------------

    @classmethod
    def bake(
        cls,
        scene,
        num_levels: int = 6,
        base_resolution: int = 8,
        finest_resolution: int = 64,
        table_size: int = 1 << 14,
        feature_dim: int = 16,
        reference: VoxelGridField | None = None,
    ) -> "HashGridField":
        """Bake residual features per level against a dense reference grid.

        ``reference`` (a baked :class:`VoxelGridField`) provides the target
        features; it is baked at ``finest_resolution`` when not supplied.
        Each level stores the residual between the target and what the
        coarser levels already reconstruct, so the level sum approximates
        the target; hash collisions on fine levels average their residuals.
        """
        if reference is None:
            reference = VoxelGridField.bake(scene, resolution=finest_resolution,
                                            feature_dim=feature_dim)
        if num_levels == 1:
            resolutions = [finest_resolution]
        else:
            ratio = (finest_resolution / base_resolution) ** (1.0 / (num_levels - 1))
            resolutions = [int(round(base_resolution * ratio**i))
                           for i in range(num_levels)]

        levels = []
        lo, hi = scene.bounds
        for resolution in resolutions:
            level = _Level(resolution, table_size, feature_dim)
            side = resolution + 1
            axes = [np.linspace(0.0, 1.0, side)] * 3
            grid = np.stack(np.meshgrid(*axes, indexing="ij"), axis=-1)
            coords01 = grid.reshape(-1, 3)
            positions = lo + coords01 * (hi - lo)

            target = reference.interpolate(positions)
            recon = np.zeros_like(target)
            for prev in levels:
                recon += prev.interpolate(coords01)
            residual = target - recon

            if level.dense:
                level.table[:] = residual
            else:
                multi = np.stack(np.meshgrid(
                    np.arange(side), np.arange(side), np.arange(side),
                    indexing="ij"), axis=-1).reshape(-1, 3)
                slots = _hash_vertices(multi, table_size)
                # Collision resolution: importance-weighted average.  Trained
                # hash grids resolve collisions implicitly — empty-space
                # vertices receive near-zero gradients, so occupied vertices
                # dominate their slot.  We reproduce that with weights
                # proportional to the reference density at each vertex.
                occupancy = 1.0 / (1.0 + np.exp(-np.clip(target[:, 0],
                                                         -40.0, 40.0)))
                weight = 0.01 + occupancy
                denom = np.bincount(slots, weights=weight,
                                    minlength=table_size)
                denom = np.where(denom == 0.0, 1.0, denom)
                for channel in range(feature_dim):
                    sums = np.bincount(slots,
                                       weights=residual[:, channel] * weight,
                                       minlength=table_size)
                    level.table[:, channel] = sums / denom
            levels.append(level)
        decoder = SHDecoder(feature_dim=feature_dim,
                            max_density=reference.decoder.max_density)
        return cls(levels, scene.bounds, decoder=decoder)

    # -- RadianceField API ------------------------------------------------------

    @property
    def feature_dim(self) -> int:
        return self.levels[0].table.shape[1]

    @property
    def bounds(self) -> tuple:
        return self._bounds

    @property
    def entry_bytes(self) -> int:
        return self.feature_dim * self.bytes_per_channel

    @property
    def model_size_bytes(self) -> int:
        entries = sum(level.num_entries for level in self.levels)
        return entries * self.entry_bytes + self.decoder.weight_bytes()

    def interpolate(self, points: np.ndarray) -> np.ndarray:
        coords = self.normalized_coords(points)
        total = None
        for level in self.levels:
            part = level.interpolate(coords)
            total = part if total is None else total + part
        return total

    def gather_plan(self, points: np.ndarray) -> list:
        coords = self.normalized_coords(points)
        groups = []
        base_address = 0
        for i, level in enumerate(self.levels):
            cell_ids, slots, weights = level.slots_for(coords)
            groups.append(GatherGroup(
                name=f"level{i}_r{level.resolution}" + ("" if level.dense else "_hashed"),
                grid_shape=(level.resolution,) * 3,
                cell_ids=cell_ids,
                vertex_ids=slots,
                weights=weights,
                entry_bytes=self.entry_bytes,
                num_entries=level.num_entries,
                base_address=base_address,
                streamable=level.dense,
            ))
            base_address += level.num_entries * self.entry_bytes
        return groups

    def decode(self, features: np.ndarray, view_dirs: np.ndarray):
        return self.decoder.decode(features, view_dirs)
