"""Radiance-field protocol shared by the three NeRF model families.

Every field exposes the same three operations the paper's pipeline names:

* Indexing (I): map sample positions to cells — surfaced via
  :meth:`RadianceField.gather_plan`, which also exposes the exact vertex
  addresses touched (the raw material for all memory experiments).
* Feature Gathering (G): :meth:`RadianceField.interpolate` — fetch vertex
  features and interpolate them per sample.
* Feature Computation (F): :meth:`RadianceField.decode` — run the MLP and
  spherical-harmonics decode to density + view-dependent radiance.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

__all__ = ["GatherGroup", "RadianceField"]


@dataclass
class GatherGroup:
    """Vertex accesses into one gather structure for a batch of samples.

    A dense voxel grid produces a single group; a multi-resolution hash grid
    produces one per level; a factorised tensor produces one per plane/vector
    factor.  The streaming scheduler, cache simulator, and SRAM bank model
    all consume this uniform record.
    """

    name: str
    grid_shape: tuple  # logical cell-grid dims (1-, 2- or 3-D)
    cell_ids: np.ndarray  # (N,) flat cell id per sample; -1 = outside
    vertex_ids: np.ndarray  # (N, V) flat storage index per gathered vertex
    weights: np.ndarray  # (N, V) interpolation weights
    entry_bytes: int  # bytes per stored feature entry
    num_entries: int  # entries in this group's storage
    base_address: int  # byte offset of the group's storage in DRAM
    streamable: bool  # False => paper's reversion rule applies (hashed levels)

    @property
    def vertices_per_sample(self) -> int:
        return self.vertex_ids.shape[1]

    @property
    def num_samples(self) -> int:
        return self.vertex_ids.shape[0]

    @property
    def storage_bytes(self) -> int:
        return self.num_entries * self.entry_bytes

    def vertex_addresses(self) -> np.ndarray:
        """Byte address in DRAM of every gathered vertex, shape (N, V)."""
        return self.base_address + self.vertex_ids.astype(np.int64) * self.entry_bytes


class RadianceField(ABC):
    """A renderable neural radiance field with traceable memory behaviour."""

    name: str = "field"

    @property
    @abstractmethod
    def feature_dim(self) -> int:
        """Channels in the interpolated per-sample feature vector."""

    @property
    @abstractmethod
    def bounds(self) -> tuple:
        """(min, max) AABB of the field in world coordinates."""

    @property
    @abstractmethod
    def model_size_bytes(self) -> int:
        """Total size of feature storage + MLP weights."""

    @abstractmethod
    def interpolate(self, points: np.ndarray) -> np.ndarray:
        """Stage G: interpolated features for (N, 3) points -> (N, F)."""

    @abstractmethod
    def gather_plan(self, points: np.ndarray) -> list:
        """Stage I: list of :class:`GatherGroup` describing vertex accesses."""

    @abstractmethod
    def decode(self, features: np.ndarray, view_dirs: np.ndarray
               ) -> tuple[np.ndarray, np.ndarray]:
        """Stage F: features (N, F) + dirs (N, 3) -> (sigma (N,), rgb (N, 3))."""

    # -- shared convenience ----------------------------------------------------

    def query(self, points: np.ndarray, view_dirs: np.ndarray
              ) -> tuple[np.ndarray, np.ndarray]:
        """Full per-sample query: interpolate then decode."""
        features = self.interpolate(points)
        return self.decode(features, view_dirs)

    def normalized_coords(self, points: np.ndarray) -> np.ndarray:
        """Map world points into [0, 1]^3 field coordinates (clipped)."""
        lo, hi = self.bounds
        coords = (np.asarray(points, dtype=float) - lo) / (hi - lo)
        return np.clip(coords, 0.0, 1.0)
