"""N-linear interpolation index/weight computation on regular grids.

The Indexing stage (I) of every NeRF model boils down to these routines:
given normalised coordinates, find the enclosing cell, the ids of its corner
vertices, and the interpolation weights.  They are shared by the dense voxel
grid (trilinear), the hash-grid levels (trilinear on a virtual grid), and the
factorised tensor (bilinear planes + linear vectors).

These are measured hot paths (see ``cli bench``): the per-resolution corner
tables and flat per-corner vertex offsets are precomputed once and reused, so
a setup call is a handful of fused array operations instead of flattening an
(N, corners, D) index lattice.  Results are bit-identical to the
predecessors kept in :mod:`repro.perf.reference` (vertex-id flattening is
integer-linear, so ``flatten(cell + corner) == flatten(cell) +
flatten(corner)`` exactly).
"""

from __future__ import annotations

import numpy as np

from ...backend.dispatch import override

__all__ = ["trilinear_setup", "bilinear_setup", "linear_setup",
           "trilinear_gather", "trilinear_gather_numpy",
           "accumulate_gather", "accumulate_gather_numpy",
           "setup_tables_for", "flatten_index"]

# Corner lattices in the fixed ascending order every consumer assumes:
# axis 0 is the slowest-varying bit, matching the original list-comprehension
# construction [[i, j, k] for i in (0, 1) for j in (0, 1) for k in (0, 1)].
_CORNERS3 = np.array([[i, j, k]
                      for i in (0, 1) for j in (0, 1) for k in (0, 1)])
_CORNERS2 = np.array([[i, j] for i in (0, 1) for j in (0, 1)])

# Per-resolution setup tables: cell shape -> (cells_float, cells_minus_1,
# vertex_shape, per-corner flat vertex offsets).  A process touches only a
# handful of grid resolutions (field scales x hash levels), so the cache is
# effectively constant-size.
_TABLES: dict = {}


def flatten_index(indices: np.ndarray, shape: tuple) -> np.ndarray:
    """Row-major flattening of multi-dimensional integer indices.

    ``indices`` has shape (..., D) matching ``len(shape) == D``.
    """
    indices = np.asarray(indices)
    out = np.zeros(indices.shape[:-1], dtype=np.int64)
    for axis, extent in enumerate(shape):
        out = out * int(extent) + indices[..., axis].astype(np.int64)
    return out


def _setup_tables(cell_shape: tuple, corners: np.ndarray) -> tuple:
    """Cached per-resolution constants for :func:`trilinear_setup` kin."""
    key = cell_shape
    cached = _TABLES.get(key)
    if cached is None:
        vertex_shape = tuple(c + 1 for c in cell_shape)
        cached = (
            np.asarray(cell_shape, dtype=float),
            np.asarray(cell_shape, dtype=np.int64) - 1,
            vertex_shape,
            flatten_index(corners, vertex_shape),  # (V,) corner offsets
        )
        _TABLES[key] = cached
    return cached


def setup_tables_for(resolution, dim: int = 3) -> tuple:
    """Public per-resolution setup constants for alternate backends.

    Returns the cached ``(cells_float, cells_minus_1, vertex_shape,
    corner_offsets)`` tuple backing :func:`trilinear_gather` (``dim=3``)
    or its bilinear analogue (``dim=2``), so a replacement kernel can
    reuse exactly the same lattice constants.
    """
    corners = _CORNERS3 if dim == 3 else _CORNERS2
    cells = np.broadcast_to(np.asarray(resolution, dtype=np.int64), (dim,))
    return _setup_tables(tuple(int(c) for c in cells), corners)


def _cell_and_frac(coords01: np.ndarray, cells_float: np.ndarray,
                   cells_minus_1: np.ndarray, assume_clipped: bool
                   ) -> tuple[np.ndarray, np.ndarray]:
    """Split [0, 1] coordinates into integer cell index and fraction.

    ``assume_clipped`` skips the redundant clip for callers (the fields'
    ``normalized_coords``) that already clipped — clipping is idempotent,
    so results are unchanged either way.  ``scaled`` is non-negative after
    clipping, so the integer cast truncates exactly like the floor the
    predecessor applied.
    """
    if not assume_clipped:
        coords01 = np.clip(coords01, 0.0, 1.0)
    scaled = coords01 * cells_float
    cell = np.minimum(scaled.astype(np.int64), cells_minus_1)
    frac = scaled - cell
    return cell, frac


def _nlinear_setup(coords01: np.ndarray, resolution, corners: np.ndarray,
                   assume_clipped: bool
                   ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Shared tri/bilinear setup over a precomputed corner lattice."""
    dim = corners.shape[1]
    coords01 = np.atleast_2d(np.asarray(coords01, dtype=float))
    cells = np.broadcast_to(np.asarray(resolution, dtype=np.int64), (dim,))
    cell_shape = tuple(int(c) for c in cells)
    cells_float, cells_minus_1, vertex_shape, corner_offsets = _setup_tables(
        cell_shape, corners)

    cell, frac = _cell_and_frac(coords01, cells_float, cells_minus_1,
                                assume_clipped)
    cell_ids = flatten_index(cell, cell_shape)
    # flatten_index is linear in its integer argument, so the corner sum
    # can move outside the flattening: one (N,) base + (V,) offsets.
    vertex_ids = flatten_index(cell, vertex_shape)[:, None] \
        + corner_offsets[None, :]

    w = np.stack([1.0 - frac, frac], axis=-1)  # (N, D, 2)
    weights = w[:, 0, corners[:, 0]]
    for axis in range(1, dim):
        weights = weights * w[:, axis, corners[:, axis]]
    return cell_ids, vertex_ids, weights


def trilinear_setup(coords01: np.ndarray, resolution,
                    assume_clipped: bool = False
                    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Trilinear cell/vertex/weight computation.

    Parameters
    ----------
    coords01:
        (N, 3) coordinates in [0, 1]^3.
    resolution:
        Cells per axis (scalar or length-3); the vertex grid has one more
        point per axis.
    assume_clipped:
        Skip the defensive clip into [0, 1] (callers that already clipped
        pass True; results are identical either way).

    Returns
    -------
    (cell_ids, vertex_ids, weights):
        ``cell_ids`` (N,) flat ids into the cell grid; ``vertex_ids`` (N, 8)
        flat ids into the vertex grid; ``weights`` (N, 8) summing to 1.
    """
    return _nlinear_setup(coords01, resolution, _CORNERS3, assume_clipped)


def trilinear_gather(coords01: np.ndarray, resolution,
                     assume_clipped: bool = False
                     ) -> tuple[np.ndarray, np.ndarray, tuple]:
    """Backend-dispatched :func:`trilinear_gather_numpy` (see there)."""
    fn = override("field.trilinear_gather")
    if fn is not None:
        return fn(coords01, resolution, assume_clipped)
    return trilinear_gather_numpy(coords01, resolution, assume_clipped)


def trilinear_gather_numpy(coords01: np.ndarray, resolution,
                           assume_clipped: bool = False
                           ) -> tuple[np.ndarray, np.ndarray, tuple]:
    """Corner-major trilinear setup for accumulation-style gathers.

    Returns ``(base_ids, corner_offsets, (one_minus_frac, frac))`` where
    ``base_ids`` (N,) are flat *vertex-grid* ids of each sample's low
    corner, ``corner_offsets`` (8,) are the per-corner flat deltas, and
    the weight factors are the per-axis (N, 3) lerp endpoints.  Corner
    ``k``'s vertex ids are ``base_ids + corner_offsets[k]`` (contiguous,
    so the feature gather takes numpy's fast path) and its weight is the
    product of one factor per axis, in axis order — the same values, in
    the same order, as column ``k`` of :func:`trilinear_setup`'s weights.
    """
    coords01 = np.atleast_2d(np.asarray(coords01, dtype=float))
    cells = np.broadcast_to(np.asarray(resolution, dtype=np.int64), (3,))
    cell_shape = tuple(int(c) for c in cells)
    cells_float, cells_minus_1, vertex_shape, corner_offsets = _setup_tables(
        cell_shape, _CORNERS3)
    cell, frac = _cell_and_frac(coords01, cells_float, cells_minus_1,
                                assume_clipped)
    base_ids = flatten_index(cell, vertex_shape)
    return base_ids, corner_offsets, (1.0 - frac, frac)


def accumulate_gather(table: np.ndarray, base_ids: np.ndarray,
                      corner_offsets: np.ndarray, weight_factors: tuple
                      ) -> np.ndarray:
    """Backend-dispatched :func:`accumulate_gather_numpy` (see there)."""
    fn = override("field.accumulate_gather")
    if fn is not None:
        return fn(table, base_ids, corner_offsets, weight_factors)
    return accumulate_gather_numpy(table, base_ids, corner_offsets,
                                   weight_factors)


def accumulate_gather_numpy(table: np.ndarray, base_ids: np.ndarray,
                            corner_offsets: np.ndarray, weight_factors: tuple
                            ) -> np.ndarray:
    """Weighted corner-feature sum without the (N, V, F) intermediate.

    ``table`` is (entries, F); the result is ``sum_k table[base + off_k]
    * w_k`` accumulated in ascending corner order — bit-identical to the
    einsum over a materialised (N, V, F) gather (same multiply, same
    addition order), with V times less peak memory and contiguous index
    vectors throughout.
    """
    corners = _CORNERS3 if corner_offsets.shape[0] == 8 else _CORNERS2
    num_corners, dim = corners.shape
    # Scratch reused across the corner loop: per-corner vertex ids, the
    # gathered feature block, and the weight product.  All are consumed
    # within the iteration (the accumulator is separate), so reuse never
    # aliases the result.
    ids = np.empty_like(base_ids)
    gathered = np.empty((base_ids.shape[0], table.shape[1]),
                        dtype=table.dtype)
    weight = np.empty(base_ids.shape[0])
    total = np.empty_like(gathered)
    for k in range(num_corners):
        np.multiply(weight_factors[corners[k, 0]][:, 0],
                    weight_factors[corners[k, 1]][:, 1], out=weight)
        for axis in range(2, dim):
            weight *= weight_factors[corners[k, axis]][:, axis]
        np.add(base_ids, corner_offsets[k], out=ids)
        # Corner 0 gathers straight into the accumulator; later corners
        # go through the scratch block and are added on.  Ids are valid
        # vertex ids by construction, so mode="clip" never clips — it
        # just selects take's fast no-bounds-check path.
        target = total if k == 0 else gathered
        np.take(table, ids, axis=0, out=target, mode="clip")
        target *= weight[:, None]
        if k:
            total += gathered
    return total


def bilinear_setup(coords01: np.ndarray, resolution,
                   assume_clipped: bool = False
                   ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Bilinear analogue of :func:`trilinear_setup` on a 2-D grid.

    ``coords01`` is (N, 2); returns 4 vertices per sample.
    """
    return _nlinear_setup(coords01, resolution, _CORNERS2, assume_clipped)


def linear_setup(coords01: np.ndarray, resolution: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Linear interpolation on a 1-D grid; 2 vertices per sample."""
    coords01 = np.asarray(coords01, dtype=float).reshape(-1)
    cells = float(resolution)
    scaled = np.clip(coords01, 0.0, 1.0) * cells
    cell = np.minimum(np.floor(scaled).astype(np.int64), int(resolution) - 1)
    frac = scaled - cell

    cell_ids = cell.copy()
    vertex_ids = np.stack([cell, cell + 1], axis=-1)
    weights = np.stack([1.0 - frac, frac], axis=-1)
    return cell_ids, vertex_ids, weights
