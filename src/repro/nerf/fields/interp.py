"""N-linear interpolation index/weight computation on regular grids.

The Indexing stage (I) of every NeRF model boils down to these routines:
given normalised coordinates, find the enclosing cell, the ids of its corner
vertices, and the interpolation weights.  They are shared by the dense voxel
grid (trilinear), the hash-grid levels (trilinear on a virtual grid), and the
factorised tensor (bilinear planes + linear vectors).
"""

from __future__ import annotations

import numpy as np

__all__ = ["trilinear_setup", "bilinear_setup", "linear_setup", "flatten_index"]


def flatten_index(indices: np.ndarray, shape: tuple) -> np.ndarray:
    """Row-major flattening of multi-dimensional integer indices.

    ``indices`` has shape (..., D) matching ``len(shape) == D``.
    """
    indices = np.asarray(indices)
    out = np.zeros(indices.shape[:-1], dtype=np.int64)
    for axis, extent in enumerate(shape):
        out = out * int(extent) + indices[..., axis].astype(np.int64)
    return out


def _cell_and_frac(coords01: np.ndarray, cells: np.ndarray
                   ) -> tuple[np.ndarray, np.ndarray]:
    """Split [0, 1] coordinates into integer cell index and fraction."""
    scaled = np.clip(coords01, 0.0, 1.0) * cells
    cell = np.minimum(np.floor(scaled).astype(np.int64), cells - 1)
    frac = scaled - cell
    return cell, frac


def trilinear_setup(coords01: np.ndarray, resolution) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Trilinear cell/vertex/weight computation.

    Parameters
    ----------
    coords01:
        (N, 3) coordinates in [0, 1]^3.
    resolution:
        Cells per axis (scalar or length-3); the vertex grid has one more
        point per axis.

    Returns
    -------
    (cell_ids, vertex_ids, weights):
        ``cell_ids`` (N,) flat ids into the cell grid; ``vertex_ids`` (N, 8)
        flat ids into the vertex grid; ``weights`` (N, 8) summing to 1.
    """
    coords01 = np.atleast_2d(np.asarray(coords01, dtype=float))
    cells = np.broadcast_to(np.asarray(resolution, dtype=np.int64), (3,))
    cell, frac = _cell_and_frac(coords01, cells.astype(float))

    cell_shape = tuple(int(c) for c in cells)
    vertex_shape = tuple(int(c) + 1 for c in cells)
    cell_ids = flatten_index(cell, cell_shape)

    corners = np.array([[i, j, k] for i in (0, 1) for j in (0, 1) for k in (0, 1)])
    vertex_multi = cell[:, None, :] + corners[None, :, :]
    vertex_ids = flatten_index(vertex_multi, vertex_shape)

    w = np.stack([1.0 - frac, frac], axis=-1)  # (N, 3, 2)
    weights = (
        w[:, 0, corners[:, 0]] * w[:, 1, corners[:, 1]] * w[:, 2, corners[:, 2]]
    )
    return cell_ids, vertex_ids, weights


def bilinear_setup(coords01: np.ndarray, resolution) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Bilinear analogue of :func:`trilinear_setup` on a 2-D grid.

    ``coords01`` is (N, 2); returns 4 vertices per sample.
    """
    coords01 = np.atleast_2d(np.asarray(coords01, dtype=float))
    cells = np.broadcast_to(np.asarray(resolution, dtype=np.int64), (2,))
    cell, frac = _cell_and_frac(coords01, cells.astype(float))

    cell_shape = tuple(int(c) for c in cells)
    vertex_shape = tuple(int(c) + 1 for c in cells)
    cell_ids = flatten_index(cell, cell_shape)

    corners = np.array([[i, j] for i in (0, 1) for j in (0, 1)])
    vertex_multi = cell[:, None, :] + corners[None, :, :]
    vertex_ids = flatten_index(vertex_multi, vertex_shape)

    w = np.stack([1.0 - frac, frac], axis=-1)
    weights = w[:, 0, corners[:, 0]] * w[:, 1, corners[:, 1]]
    return cell_ids, vertex_ids, weights


def linear_setup(coords01: np.ndarray, resolution: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Linear interpolation on a 1-D grid; 2 vertices per sample."""
    coords01 = np.asarray(coords01, dtype=float).reshape(-1)
    cells = float(resolution)
    scaled = np.clip(coords01, 0.0, 1.0) * cells
    cell = np.minimum(np.floor(scaled).astype(np.int64), int(resolution) - 1)
    frac = scaled - cell

    cell_ids = cell.copy()
    vertex_ids = np.stack([cell, cell + 1], axis=-1)
    weights = np.stack([1.0 - frac, frac], axis=-1)
    return cell_ids, vertex_ids, weights
