"""NeRF substrate: fields, sampling, volume rendering, and the renderer."""

from .baking import bake_vertex_features, vertex_grid_positions
from .encoding import frequency_encoding, sh_basis_deg1
from .fields import (
    CORE_FEATURE_DIM,
    GatherGroup,
    HashGridField,
    RadianceField,
    SHDecoder,
    TensorFactorField,
    VoxelGridField,
)
from .mlp import MLP, identity_affine_mlp
from .renderer import NeRFRenderer, RenderStats
from .sampling import OccupancyGrid, RaySamples, UniformSampler
from .volume_render import CompositeResult, composite

__all__ = [
    "bake_vertex_features",
    "vertex_grid_positions",
    "frequency_encoding",
    "sh_basis_deg1",
    "CORE_FEATURE_DIM",
    "GatherGroup",
    "HashGridField",
    "RadianceField",
    "SHDecoder",
    "TensorFactorField",
    "VoxelGridField",
    "MLP",
    "identity_affine_mlp",
    "NeRFRenderer",
    "RenderStats",
    "OccupancyGrid",
    "RaySamples",
    "UniformSampler",
    "CompositeResult",
    "composite",
]
