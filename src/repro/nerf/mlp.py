"""NumPy multilayer perceptron with exact analytic-weight construction.

The paper's Feature Computation stage (F) runs each ray sample's interpolated
feature vector through a small MLP.  This module provides that MLP:

* a general :class:`MLP` (linear layers + ReLU) whose forward pass is what
  the NPU model charges cycles for, and
* :func:`identity_affine_mlp`, which builds explicit weights so the network
  computes a *chosen affine function exactly* (via the ``x = relu(x) -
  relu(-x)`` split).  Baked fields use this so rendering is exact while the
  compute cost (MACs, weight bytes) remains that of a genuine MLP inference.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["MLP", "identity_affine_mlp"]


def _relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


@dataclass
class MLP:
    """A ReLU MLP defined by explicit weight/bias lists.

    ``weights[i]`` has shape (fan_in, fan_out); activation is applied after
    every layer except the last.
    """

    weights: list
    biases: list

    def __post_init__(self):
        if len(self.weights) != len(self.biases):
            raise ValueError("weights and biases must pair up")
        for w, b in zip(self.weights, self.biases):
            if w.shape[1] != b.shape[0]:
                raise ValueError("bias dimension mismatch")
        for prev, nxt in zip(self.weights, self.weights[1:]):
            if prev.shape[1] != nxt.shape[0]:
                raise ValueError("layer dimension mismatch")

    @classmethod
    def random(cls, layer_dims: list, seed: int = 0, scale: float = 0.1) -> "MLP":
        """He-style random initialisation (used in tests and cost studies)."""
        rng = np.random.default_rng(seed)
        weights, biases = [], []
        for fan_in, fan_out in zip(layer_dims[:-1], layer_dims[1:]):
            weights.append(rng.normal(scale=scale / np.sqrt(fan_in),
                                      size=(fan_in, fan_out)))
            biases.append(np.zeros(fan_out))
        return cls(weights=weights, biases=biases)

    # -- inference -----------------------------------------------------------

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Batched forward pass over (..., fan_in) inputs."""
        out = np.asarray(x, dtype=float)
        last = len(self.weights) - 1
        for i, (w, b) in enumerate(zip(self.weights, self.biases)):
            out = out @ w + b
            if i != last:
                out = _relu(out)
        return out

    __call__ = forward

    # -- cost accounting -------------------------------------------------------

    @property
    def input_dim(self) -> int:
        return self.weights[0].shape[0]

    @property
    def output_dim(self) -> int:
        return self.weights[-1].shape[1]

    @property
    def layer_dims(self) -> list:
        return [self.weights[0].shape[0]] + [w.shape[1] for w in self.weights]

    def macs_per_sample(self) -> int:
        """Multiply-accumulates for one input vector (NPU cost input)."""
        return int(sum(w.shape[0] * w.shape[1] for w in self.weights))

    def weight_bytes(self, bytes_per_param: int = 2) -> int:
        """Model-weight footprint (fp16 by default, as on the paper's NPU)."""
        params = sum(w.size + b.size for w, b in zip(self.weights, self.biases))
        return int(params) * bytes_per_param


def identity_affine_mlp(matrix: np.ndarray, bias: np.ndarray | None = None,
                        hidden_layers: int = 1) -> MLP:
    """Build an MLP that computes ``y = x @ matrix + bias`` *exactly*.

    Every hidden layer doubles the width and splits each value into its
    positive and negative parts (``relu(v)`` and ``relu(-v)``); the final
    layer recombines them through ``matrix``.  The result is a real ReLU
    network — the NPU simulator charges for all its MACs — whose output is
    bit-exact to the requested affine map, which is what lets the baked
    fields render deterministically without gradient training.
    """
    matrix = np.asarray(matrix, dtype=float)
    fan_in, fan_out = matrix.shape
    if bias is None:
        bias = np.zeros(fan_out)
    bias = np.asarray(bias, dtype=float)
    if hidden_layers < 1:
        return MLP(weights=[matrix.copy()], biases=[bias.copy()])

    split = np.concatenate([np.eye(fan_in), -np.eye(fan_in)], axis=1)
    merge = np.concatenate([np.eye(fan_in), -np.eye(fan_in)], axis=0)

    weights = [split]
    biases = [np.zeros(2 * fan_in)]
    for _ in range(hidden_layers - 1):
        weights.append(merge @ split)
        biases.append(np.zeros(2 * fan_in))
    weights.append(merge @ matrix)
    biases.append(bias.copy())
    return MLP(weights=weights, biases=biases)
