"""Baking: fill per-vertex NeRF features from an analytic scene.

The paper renders *trained* checkpoints; training is never on its critical
path (all measurements are inference-time).  This module replaces gradient
training with direct evaluation: density comes from the scene SDF, diffuse
radiance from Lambertian shading, and the view-dependent component is fitted
per vertex onto the degree-1 spherical-harmonics basis by least squares over
a fixed set of probe directions.  The baked features follow the layout in
:mod:`repro.nerf.fields.decode`.
"""

from __future__ import annotations

import numpy as np

from .encoding import sh_basis_deg1

# Matches repro.nerf.fields.decode.CORE_FEATURE_DIM (imported lazily there to
# avoid a package-init cycle: fields.voxel_grid depends on this module).
CORE_FEATURE_DIM = 13

__all__ = ["vertex_grid_positions", "bake_vertex_features", "PROBE_DIRECTIONS"]

# Twelve roughly uniform probe directions (icosahedron vertices) used for the
# least-squares fit of the view-dependent radiance.
_PHI = (1.0 + np.sqrt(5.0)) / 2.0
PROBE_DIRECTIONS = np.array([
    [-1, _PHI, 0], [1, _PHI, 0], [-1, -_PHI, 0], [1, -_PHI, 0],
    [0, -1, _PHI], [0, 1, _PHI], [0, -1, -_PHI], [0, 1, -_PHI],
    [_PHI, 0, -1], [_PHI, 0, 1], [-_PHI, 0, -1], [-_PHI, 0, 1],
])
PROBE_DIRECTIONS = PROBE_DIRECTIONS / np.linalg.norm(PROBE_DIRECTIONS, axis=1,
                                                     keepdims=True)


def vertex_grid_positions(bounds: tuple, resolution) -> np.ndarray:
    """World positions of the ``(R+1)^3`` vertex lattice over ``bounds``.

    Vertices are ordered row-major to match
    :func:`repro.nerf.fields.interp.trilinear_setup` ids.
    """
    lo, hi = np.asarray(bounds[0], dtype=float), np.asarray(bounds[1], dtype=float)
    cells = np.broadcast_to(np.asarray(resolution, dtype=np.int64), (3,))
    axes = [np.linspace(lo[a], hi[a], int(cells[a]) + 1) for a in range(3)]
    grid = np.stack(np.meshgrid(*axes, indexing="ij"), axis=-1)
    return grid.reshape(-1, 3)


def _fit_view_dependence(scene, positions: np.ndarray) -> np.ndarray:
    """Least-squares linear-SH coefficients of the specular radiance.

    For each position we evaluate the full shaded radiance along the probe
    directions (as if viewed from each direction), subtract the diffuse part,
    and project the residual onto the three linear SH basis functions.
    Returns (N, 3 colors, 3 basis).
    """
    normals = scene.normals(positions)
    diffuse = scene.diffuse_radiance(positions)

    num = positions.shape[0]
    num_probes = PROBE_DIRECTIONS.shape[0]
    residuals = np.zeros((num, num_probes, 3))
    for k, probe in enumerate(PROBE_DIRECTIONS):
        # View direction points from camera toward the surface: the camera
        # sits along +probe, looking along -probe.
        view = np.broadcast_to(-probe, positions.shape)
        shaded = scene.shade(positions, normals, view)
        residuals[:, k, :] = shaded - diffuse

    # Basis matrix over probes: note view dirs are -probe.
    basis = sh_basis_deg1(-PROBE_DIRECTIONS)[:, 1:4]  # (K, 3)
    pinv = np.linalg.pinv(basis)  # (3, K)
    return np.einsum("mk,nkc->ncm", pinv, residuals)


def bake_vertex_features(
    scene,
    positions: np.ndarray,
    feature_dim: int = 16,
    shell_width: float | None = None,
    density_sharpness: float = 40.0,
    max_density: float = 120.0,
    surface_bias: float = 0.0,
) -> np.ndarray:
    """Evaluate the feature layout of :class:`SHDecoder` at ``positions``.

    Only vertices within ``shell_width`` of a surface get color/SH content
    (their density is the only thing that matters elsewhere), which keeps
    baking cost proportional to surface area rather than volume.

    ``surface_bias`` shifts the density transition *inward* (positive bias,
    world units), compensating the residual silhouette bloat of the soft
    density shell.

    Channel 0 stores the density *logit* ``-sharpness * (d + bias)``
    (clipped); the decoder's sigmoid turns it into density.  The logit is
    linear in the SDF, so trilinear interpolation, hash-level residuals and
    tensor factorisation all represent it far more faithfully than the
    near-discontinuous density itself.
    """
    positions = np.asarray(positions, dtype=float)
    if feature_dim < CORE_FEATURE_DIM:
        raise ValueError(f"feature_dim must be >= {CORE_FEATURE_DIM}")
    del max_density  # density scale lives in the decoder (sigmoid output)

    features = np.zeros((positions.shape[0], feature_dim))
    distance = scene.distance(positions)
    biased = distance + surface_bias
    features[:, 0] = np.clip(-density_sharpness * biased, -40.0, 40.0)

    if shell_width is None:
        lo, hi = scene.bounds
        # Default shell: a few voxels of the coarsest plausible grid.
        shell_width = float((hi - lo).max()) * 0.05
    near = np.abs(distance) < shell_width
    if near.any():
        near_pos = positions[near]
        features[near, 1:4] = scene.diffuse_radiance(near_pos)
        has_specular = any(obj.material.specular > 0.0 for obj in scene.objects)
        if has_specular:
            coeffs = _fit_view_dependence(scene, near_pos)
            features[near, 4:13] = coeffs.reshape(-1, 9)
    return features
