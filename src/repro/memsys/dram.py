"""DRAM timing/energy model (LPDDR3-1600 x4 channels, per the paper).

The model charges each access either a streaming cost (row-buffer hit,
back-to-back bursts) or a random cost (row activation + bus turnaround), with
effective bandwidths derived from the part's peak.  Costs are computed from
either an explicit :class:`~repro.memsys.trace.AccessTrace` or pre-classified
byte counts (the streaming scheduler reports those directly).
"""

from __future__ import annotations

from dataclasses import dataclass

from .energy import DEFAULT_ENERGY, EnergyModel
from .trace import AccessTrace, analyze_streaming

__all__ = ["DRAMConfig", "DRAMCost", "DRAMModel"]


@dataclass(frozen=True)
class DRAMConfig:
    """Bandwidth parameters of the memory system."""

    # LPDDR3-1600, 4 channels x 32 bit: 4 * 6.4 GB/s peak.
    peak_bytes_per_second: float = 25.6e9
    streaming_efficiency: float = 0.85  # fraction of peak for long bursts
    random_efficiency: float = 0.25  # fraction of peak for scattered bursts

    @property
    def stream_bw(self) -> float:
        return self.peak_bytes_per_second * self.streaming_efficiency

    @property
    def random_bw(self) -> float:
        return self.peak_bytes_per_second * self.random_efficiency


@dataclass
class DRAMCost:
    """Latency + energy of a DRAM traffic mix."""

    streaming_bytes: int
    random_bytes: int
    time_s: float
    energy_j: float

    @property
    def total_bytes(self) -> int:
        return self.streaming_bytes + self.random_bytes

    @property
    def streaming_fraction(self) -> float:
        total = self.total_bytes
        return 1.0 if total == 0 else self.streaming_bytes / total

    def merge(self, other: "DRAMCost") -> "DRAMCost":
        return DRAMCost(
            streaming_bytes=self.streaming_bytes + other.streaming_bytes,
            random_bytes=self.random_bytes + other.random_bytes,
            time_s=self.time_s + other.time_s,
            energy_j=self.energy_j + other.energy_j,
        )


class DRAMModel:
    """Turns traffic (traces or byte counts) into time and energy."""

    def __init__(self, config: DRAMConfig | None = None,
                 energy: EnergyModel | None = None):
        self.config = config or DRAMConfig()
        self.energy = energy or DEFAULT_ENERGY

    def cost_of_bytes(self, streaming_bytes: float, random_bytes: float
                      ) -> DRAMCost:
        """Cost of a pre-classified traffic mix."""
        time_s = (streaming_bytes / self.config.stream_bw
                  + random_bytes / self.config.random_bw)
        energy_j = self.energy.dram_energy(streaming_bytes, random_bytes)
        return DRAMCost(streaming_bytes=int(streaming_bytes),
                        random_bytes=int(random_bytes),
                        time_s=time_s, energy_j=energy_j)

    def cost_of_trace(self, trace: AccessTrace,
                      stream_window: int = 128) -> DRAMCost:
        """Cost of an explicit access trace (classifies runs first)."""
        analysis = analyze_streaming(trace, stream_window=stream_window)
        return self.cost_of_bytes(analysis.streaming_bytes,
                                  analysis.random_bytes)
