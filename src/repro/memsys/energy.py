"""Energy constants and models (Sec. V of the paper).

The paper calibrates three ratios that everything downstream depends on:

* random DRAM : streaming DRAM energy  = 3 : 1
* random DRAM : SRAM energy            = 25 : 1
* wireless link: 100 nJ/B at 10 MB/s

Absolute values are anchored at a representative LPDDR3-class random-access
cost; every result in the benches is reported relative to a baseline, so the
anchor only sets units.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["EnergyModel", "DEFAULT_ENERGY"]


@dataclass(frozen=True)
class EnergyModel:
    """Per-byte / per-op energy constants in picojoules."""

    dram_random_pj_per_byte: float = 6.25
    dram_stream_pj_per_byte: float = 6.25 / 3.0
    sram_pj_per_byte: float = 6.25 / 25.0
    mac_pj: float = 0.25  # one fp16 multiply-accumulate at ~12 nm
    gpu_idle_pj_per_cycle: float = 0.0
    wireless_nj_per_byte: float = 100.0
    wireless_bytes_per_second: float = 10.0e6

    # -- DRAM ------------------------------------------------------------------

    def dram_energy(self, streaming_bytes: float, random_bytes: float) -> float:
        """DRAM energy in joules for a mix of streaming and random bytes."""
        return (streaming_bytes * self.dram_stream_pj_per_byte
                + random_bytes * self.dram_random_pj_per_byte) * 1e-12

    # -- SRAM ------------------------------------------------------------------

    def sram_energy(self, bytes_accessed: float) -> float:
        """On-chip SRAM access energy in joules."""
        return bytes_accessed * self.sram_pj_per_byte * 1e-12

    # -- compute ----------------------------------------------------------------

    def mac_energy(self, macs: float) -> float:
        """MAC-array compute energy in joules."""
        return macs * self.mac_pj * 1e-12

    # -- wireless (remote rendering) ----------------------------------------------

    def wireless_energy(self, bytes_transferred: float) -> float:
        """Radio energy in joules for the remote-rendering link."""
        return bytes_transferred * self.wireless_nj_per_byte * 1e-9

    def wireless_latency(self, bytes_transferred: float) -> float:
        """Transfer time in seconds over the 10 MB/s link."""
        return bytes_transferred / self.wireless_bytes_per_second


DEFAULT_ENERGY = EnergyModel()
