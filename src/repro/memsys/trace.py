"""DRAM access traces and stream-run analysis.

An :class:`AccessTrace` is an ordered sequence of (byte address, size)
accesses.  The analysis here answers the paper's Fig. 4 question — what
fraction of DRAM traffic is *non-streaming* — by detecting forward-sequential
runs: an access continues a stream when it starts within ``stream_window``
bytes after the previous access's end (covering burst alignment and small
skips that a DRAM prefetcher absorbs).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["AccessTrace", "StreamAnalysis", "analyze_streaming",
           "trace_from_gather_group", "interleaved_gather_trace"]


@dataclass
class AccessTrace:
    """An ordered DRAM access sequence (addresses in bytes)."""

    addresses: np.ndarray  # (N,) int64 start addresses
    sizes: np.ndarray  # (N,) int64 access sizes in bytes

    def __post_init__(self):
        self.addresses = np.asarray(self.addresses, dtype=np.int64)
        self.sizes = np.asarray(self.sizes, dtype=np.int64)
        if self.addresses.shape != self.sizes.shape:
            raise ValueError("addresses and sizes must have equal length")

    def __len__(self) -> int:
        return self.addresses.shape[0]

    @property
    def total_bytes(self) -> int:
        return int(self.sizes.sum())

    def unique_bytes(self, granularity: int = 32) -> int:
        """Distinct bytes touched, at ``granularity``-byte block resolution."""
        if len(self) == 0:
            return 0
        first = self.addresses // granularity
        last = (self.addresses + self.sizes - 1) // granularity
        if int((last - first).max()) == 0:
            blocks = np.unique(first)
            return int(blocks.size) * granularity
        spans = [np.arange(f, l + 1) for f, l in zip(first, last)]
        blocks = np.unique(np.concatenate(spans))
        return int(blocks.size) * granularity

    def coalesced(self, block_bytes: int = 64) -> "AccessTrace":
        """Merge temporally adjacent accesses that form one DRAM burst.

        Consecutive accesses are merged while they stay within the running
        burst window (same or next ``block_bytes`` block).  This models the
        memory controller's write-combining/burst behaviour: fetching the
        two z-adjacent corners of a voxel is one DRAM transaction, not two.
        """
        if len(self) == 0:
            return AccessTrace(addresses=self.addresses.copy(),
                               sizes=self.sizes.copy())
        blocks_start = self.addresses // block_bytes
        blocks_end = (self.addresses + self.sizes - 1) // block_bytes
        starts = np.ones(len(self), dtype=bool)
        starts[1:] = ~((blocks_start[1:] >= blocks_end[:-1])
                       & (blocks_start[1:] <= blocks_end[:-1] + 1))
        start_idx = np.nonzero(starts)[0]
        addresses = blocks_start[start_idx] * block_bytes
        seg_end = np.maximum.reduceat(blocks_end, start_idx)
        ends = (seg_end + 1) * block_bytes
        return AccessTrace(addresses=addresses, sizes=ends - addresses)

    @classmethod
    def concatenate(cls, traces: list) -> "AccessTrace":
        if not traces:
            return cls(addresses=np.zeros(0, dtype=np.int64),
                       sizes=np.zeros(0, dtype=np.int64))
        return cls(
            addresses=np.concatenate([t.addresses for t in traces]),
            sizes=np.concatenate([t.sizes for t in traces]),
        )


@dataclass
class StreamAnalysis:
    """Streaming/irregularity summary of a trace."""

    num_accesses: int
    streaming_accesses: int
    total_bytes: int
    streaming_bytes: int

    @property
    def streaming_fraction(self) -> float:
        if self.num_accesses == 0:
            return 1.0
        return self.streaming_accesses / self.num_accesses

    @property
    def non_streaming_fraction(self) -> float:
        return 1.0 - self.streaming_fraction

    @property
    def random_bytes(self) -> int:
        return self.total_bytes - self.streaming_bytes


def analyze_streaming(trace: AccessTrace, stream_window: int = 2048
                      ) -> StreamAnalysis:
    """Classify each access as stream-continuing or random.

    The first access of a run is charged as random (it opens a new DRAM row);
    subsequent accesses landing within ``[end, end + stream_window)`` of the
    previous access continue the stream.  The default window is one LPDDR3
    row (2 KB): forward jumps within the open row are row-buffer hits and
    cost streaming energy.
    """
    n = len(trace)
    if n == 0:
        return StreamAnalysis(0, 0, 0, 0)
    ends = trace.addresses + trace.sizes
    gaps = trace.addresses[1:] - ends[:-1]
    streaming = np.zeros(n, dtype=bool)
    streaming[1:] = (gaps >= 0) & (gaps < stream_window)
    return StreamAnalysis(
        num_accesses=n,
        streaming_accesses=int(streaming.sum()),
        total_bytes=int(trace.sizes.sum()),
        streaming_bytes=int(trace.sizes[streaming].sum()),
    )


def interleaved_gather_trace(groups: list, block_samples: int = 4096
                             ) -> AccessTrace:
    """Realistic pixel-centric access order across multiple gather groups.

    Hierarchical models process a *block* of samples through every level
    before moving on (per-level kernel launches over a ray batch).  The
    resulting DRAM stream interleaves the levels block-wise; feeding a cache
    simulator the levels one-after-another would overstate locality.
    """
    if not groups:
        return AccessTrace(addresses=np.zeros(0, dtype=np.int64),
                           sizes=np.zeros(0, dtype=np.int64))
    per_group = [(g.vertex_addresses(), g.entry_bytes) for g in groups]
    num_samples = max(a.shape[0] for a, _ in per_group)
    addr_parts = []
    size_parts = []
    for start in range(0, num_samples, block_samples):
        stop = start + block_samples
        for addresses, entry_bytes in per_group:
            chunk = addresses[start:stop].reshape(-1)
            if chunk.size:
                addr_parts.append(chunk)
                size_parts.append(np.full(chunk.shape, entry_bytes,
                                          dtype=np.int64))
    return AccessTrace(addresses=np.concatenate(addr_parts),
                       sizes=np.concatenate(size_parts))


def trace_from_gather_group(group, sample_order: np.ndarray | None = None
                            ) -> AccessTrace:
    """Flatten a gather group's vertex fetches into a DRAM access trace.

    The default order is pixel-centric: samples in the order the renderer
    produced them (ray-major), each fetching its vertices in corner order —
    exactly the access stream of the baseline pipeline.  ``sample_order``
    reorders samples (e.g. by MVoxel for memory-centric rendering).
    """
    addresses = group.vertex_addresses()
    if sample_order is not None:
        addresses = addresses[sample_order]
    flat = addresses.reshape(-1)
    sizes = np.full(flat.shape, group.entry_bytes, dtype=np.int64)
    return AccessTrace(addresses=flat, sizes=sizes)
