"""Cache simulation: LRU and Belady-optimal replacement.

Used for the Fig. 5 characterisation: the paper assumes a 2 MB on-chip buffer
with *oracle* (Belady/MIN) replacement and measures the feature-gathering
miss rate of each NeRF algorithm under pixel-centric rendering.  Belady is
the upper bound on what any replacement policy could achieve, which makes the
observed high miss rates an algorithmic property, not a cache-policy
artifact.
"""

from __future__ import annotations

import heapq
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

__all__ = ["CacheStats", "simulate_lru", "simulate_belady",
           "simulate_set_associative"]


@dataclass
class CacheStats:
    """Hit/miss summary of a cache simulation."""

    accesses: int
    misses: int
    capacity_blocks: int
    block_bytes: int

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        return 0.0 if self.accesses == 0 else self.misses / self.accesses

    @property
    def hit_rate(self) -> float:
        return 1.0 - self.miss_rate

    @property
    def miss_bytes(self) -> int:
        return self.misses * self.block_bytes


def _to_blocks(addresses: np.ndarray, block_bytes: int) -> np.ndarray:
    return (np.asarray(addresses, dtype=np.int64) // block_bytes)


def simulate_lru(addresses: np.ndarray, capacity_bytes: int,
                 block_bytes: int = 64) -> CacheStats:
    """Fully-associative LRU cache over a byte-address sequence."""
    blocks = _to_blocks(addresses, block_bytes)
    capacity = max(1, capacity_bytes // block_bytes)
    cache: OrderedDict = OrderedDict()
    misses = 0
    for block in blocks.tolist():
        if block in cache:
            cache.move_to_end(block)
        else:
            misses += 1
            cache[block] = True
            if len(cache) > capacity:
                cache.popitem(last=False)
    return CacheStats(accesses=len(blocks), misses=misses,
                      capacity_blocks=capacity, block_bytes=block_bytes)


def simulate_set_associative(addresses: np.ndarray, capacity_bytes: int,
                             block_bytes: int = 64, ways: int = 8
                             ) -> CacheStats:
    """Set-associative LRU cache (realistic GPU-L2-style organisation).

    Fully-associative LRU is the optimistic bound; real caches index sets by
    low block-address bits and suffer conflict misses on top.  ``ways`` = 1
    gives a direct-mapped cache.
    """
    blocks = _to_blocks(addresses, block_bytes)
    capacity = max(1, capacity_bytes // block_bytes)
    num_sets = max(1, capacity // ways)
    sets: list = [OrderedDict() for _ in range(num_sets)]
    misses = 0
    for block in blocks.tolist():
        cache = sets[block % num_sets]
        if block in cache:
            cache.move_to_end(block)
        else:
            misses += 1
            cache[block] = True
            if len(cache) > ways:
                cache.popitem(last=False)
    return CacheStats(accesses=len(blocks), misses=misses,
                      capacity_blocks=capacity, block_bytes=block_bytes)


def simulate_belady(addresses: np.ndarray, capacity_bytes: int,
                    block_bytes: int = 64) -> CacheStats:
    """Fully-associative Belady (MIN / oracle) cache simulation.

    Evicts the resident block whose next use is farthest in the future.
    Implemented with a lazy max-heap over next-use distances; the next-use
    chain is precomputed in one reverse pass.
    """
    blocks = _to_blocks(addresses, block_bytes)
    n = len(blocks)
    capacity = max(1, capacity_bytes // block_bytes)

    # next_use[i] = next index at which blocks[i] recurs (n = never).
    next_use = np.full(n, n, dtype=np.int64)
    last_seen: dict = {}
    for i in range(n - 1, -1, -1):
        b = int(blocks[i])
        next_use[i] = last_seen.get(b, n)
        last_seen[b] = i

    resident: dict = {}  # block -> its current next-use index
    heap: list = []  # (-next_use, block) lazy entries
    misses = 0
    for i in range(n):
        b = int(blocks[i])
        nu = int(next_use[i])
        if b in resident:
            resident[b] = nu
            heapq.heappush(heap, (-nu, b))
            continue
        misses += 1
        if len(resident) >= capacity:
            while True:
                neg_nu, victim = heapq.heappop(heap)
                if victim in resident and resident[victim] == -neg_nu:
                    del resident[victim]
                    break
        resident[b] = nu
        heapq.heappush(heap, (-nu, b))
    return CacheStats(accesses=n, misses=misses, capacity_blocks=capacity,
                      block_bytes=block_bytes)
