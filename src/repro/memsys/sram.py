"""Banked SRAM model: conflict detection for concurrent gather requests.

Models the on-chip feature buffer of Sec. II-D / IV-B: B banks, each with M
read ports.  Per "issue group" (one vertex fetch for each of the concurrent
rays), requests map to banks via the data layout; multiple *distinct*
addresses landing in the same bank serialise.  Identical addresses broadcast
(a single read feeds several PEs) — which is why algorithms whose adjacent
rays share voxels conflict less.

The conflict rate reported matches the paper's definition operationally:
the fraction of issue cycles lost to serialisation,
``1 - ideal_cycles / actual_cycles``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["BankConflictStats", "BankedSRAM"]


@dataclass
class BankConflictStats:
    """Cycle accounting of a banked-SRAM access simulation."""

    issue_groups: int
    ideal_cycles: int
    actual_cycles: int
    conflicted_groups: int

    @property
    def conflict_rate(self) -> float:
        """Fraction of cycles lost to bank serialisation."""
        if self.actual_cycles == 0:
            return 0.0
        return 1.0 - self.ideal_cycles / self.actual_cycles

    @property
    def conflicted_group_fraction(self) -> float:
        if self.issue_groups == 0:
            return 0.0
        return self.conflicted_groups / self.issue_groups

    @property
    def slowdown(self) -> float:
        if self.ideal_cycles == 0:
            return 1.0
        return self.actual_cycles / self.ideal_cycles

    def merge(self, other: "BankConflictStats") -> "BankConflictStats":
        return BankConflictStats(
            issue_groups=self.issue_groups + other.issue_groups,
            ideal_cycles=self.ideal_cycles + other.ideal_cycles,
            actual_cycles=self.actual_cycles + other.actual_cycles,
            conflicted_groups=self.conflicted_groups + other.conflicted_groups,
        )


class BankedSRAM:
    """B banks x M ports with broadcast on identical addresses."""

    def __init__(self, num_banks: int = 16, ports_per_bank: int = 1):
        if num_banks < 1 or ports_per_bank < 1:
            raise ValueError("banks and ports must be positive")
        self.num_banks = int(num_banks)
        self.ports_per_bank = int(ports_per_bank)

    def simulate_groups(self, bank_ids: np.ndarray, addresses: np.ndarray
                        ) -> BankConflictStats:
        """Simulate issue groups of concurrent requests.

        ``bank_ids`` and ``addresses`` are (G, R): G issue groups of R
        concurrent requests each.  Negative bank ids mark inactive lanes.
        Cycles per group = max over banks of ceil(#distinct addresses / M).
        """
        bank_ids = np.atleast_2d(np.asarray(bank_ids, dtype=np.int64))
        addresses = np.atleast_2d(np.asarray(addresses, dtype=np.int64))
        if bank_ids.shape != addresses.shape:
            raise ValueError("bank_ids and addresses shapes differ")

        groups, _ = bank_ids.shape
        ideal = 0
        actual = 0
        conflicted = 0
        for g in range(groups):
            active = bank_ids[g] >= 0
            if not active.any():
                continue
            # Distinct (bank, address) pairs: identical addresses broadcast.
            pairs = np.unique(np.stack([bank_ids[g][active],
                                        addresses[g][active]], axis=1), axis=0)
            counts = np.bincount(pairs[:, 0], minlength=self.num_banks)
            cycles = int(np.ceil(counts / self.ports_per_bank).max())
            cycles = max(cycles, 1)
            ideal += 1
            actual += cycles
            if cycles > 1:
                conflicted += 1
        return BankConflictStats(issue_groups=groups, ideal_cycles=ideal,
                                 actual_cycles=actual,
                                 conflicted_groups=conflicted)

    def simulate_groups_fast(self, bank_ids: np.ndarray, addresses: np.ndarray
                             ) -> BankConflictStats:
        """Vectorised equivalent of :meth:`simulate_groups`.

        Handles the millions of issue groups a full frame produces.  Same
        semantics: identical (bank, address) pairs within a group broadcast;
        distinct addresses in one bank serialise across its ports.
        """
        bank_ids = np.atleast_2d(np.asarray(bank_ids, dtype=np.int64))
        addresses = np.atleast_2d(np.asarray(addresses, dtype=np.int64))
        groups, lanes = bank_ids.shape
        if groups == 0:
            return BankConflictStats(0, 0, 0, 0)

        active = bank_ids >= 0
        # Compose a sortable key; inactive lanes get a sentinel that sorts
        # last and is excluded from distinct counting.
        addr_span = int(addresses.max(initial=0)) + 2
        key = np.where(active, bank_ids * addr_span + addresses + 1, 0)
        key_sorted = np.sort(key, axis=1)
        distinct = np.ones_like(key_sorted, dtype=bool)
        distinct[:, 1:] = key_sorted[:, 1:] != key_sorted[:, :-1]
        distinct &= key_sorted > 0

        banks_sorted = np.where(key_sorted > 0,
                                (key_sorted - 1) // addr_span, -1)
        cycles = np.ones(groups, dtype=np.int64)
        for b in range(self.num_banks):
            count_b = ((banks_sorted == b) & distinct).sum(axis=1)
            need = -(-count_b // self.ports_per_bank)  # ceil division
            cycles = np.maximum(cycles, need)

        any_active = active.any(axis=1)
        ideal = int(any_active.sum())
        actual = int(cycles[any_active].sum())
        conflicted = int((cycles[any_active] > 1).sum())
        return BankConflictStats(issue_groups=groups, ideal_cycles=ideal,
                                 actual_cycles=actual,
                                 conflicted_groups=conflicted)
