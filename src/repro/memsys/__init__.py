"""Memory-system simulators: DRAM, caches, banked SRAM, energy."""

from .cache import CacheStats, simulate_belady, simulate_lru
from .dram import DRAMConfig, DRAMCost, DRAMModel
from .energy import DEFAULT_ENERGY, EnergyModel
from .sram import BankConflictStats, BankedSRAM
from .trace import (
    AccessTrace,
    StreamAnalysis,
    analyze_streaming,
    interleaved_gather_trace,
    trace_from_gather_group,
)

__all__ = [
    "CacheStats",
    "simulate_belady",
    "simulate_lru",
    "DRAMConfig",
    "DRAMCost",
    "DRAMModel",
    "DEFAULT_ENERGY",
    "EnergyModel",
    "BankConflictStats",
    "BankedSRAM",
    "AccessTrace",
    "StreamAnalysis",
    "analyze_streaming",
    "interleaved_gather_trace",
    "trace_from_gather_group",
]
