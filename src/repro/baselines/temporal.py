"""TEMP-N baseline: prior-work temporal warping from rendered frames.

Fig. 16's TEMP-16 comparator: reference frames are *previously rendered
output frames on the trajectory*, so (a) rendering serialises (Fig. 11a) and
(b) warping chains output-to-output, accumulating error across the window.
This is a thin wrapper configuring :class:`SparwRenderer` in its
``on_trajectory`` mode so both techniques share one implementation.
"""

from __future__ import annotations

from ..core.sparw.pipeline import SparwRenderer, SparwSequenceResult
from ..geometry.camera import PinholeCamera
from ..nerf.renderer import NeRFRenderer

__all__ = ["TemporalWarpRenderer"]


class TemporalWarpRenderer:
    """Chained temporal warping with window-size ``window`` (TEMP-N)."""

    def __init__(self, renderer: NeRFRenderer, camera: PinholeCamera,
                 window: int = 16,
                 angle_threshold_deg: float | None = None):
        self._sparw = SparwRenderer(renderer, camera, window=window,
                                    policy="on_trajectory",
                                    angle_threshold_deg=angle_threshold_deg)

    @property
    def window(self) -> int:
        return self._sparw.window

    def render_sequence(self, poses: list) -> SparwSequenceResult:
        return self._sparw.render_sequence(poses)
