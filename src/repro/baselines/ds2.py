"""DS-2 baseline: render at half resolution, bilinearly upsample (Fig. 16).

The paper's quality/speed strawman: a 2x downsampled NeRF render costs ~1/4
the rays, then bilinear interpolation restores full resolution.  SPARW must
beat this trade-off to be interesting.
"""

from __future__ import annotations

import numpy as np

from ..geometry.camera import PinholeCamera
from ..nerf.renderer import NeRFRenderer, RenderStats
from ..scenes.raytracer import Frame

__all__ = ["bilinear_upsample", "DS2Renderer"]


def bilinear_upsample(image: np.ndarray, out_height: int, out_width: int
                      ) -> np.ndarray:
    """Bilinear upsampling of (h, w[, c]) to (out_height, out_width[, c])."""
    image = np.asarray(image, dtype=float)
    in_h, in_w = image.shape[:2]
    ys = (np.arange(out_height) + 0.5) * in_h / out_height - 0.5
    xs = (np.arange(out_width) + 0.5) * in_w / out_width - 0.5
    ys = np.clip(ys, 0.0, in_h - 1.0)
    xs = np.clip(xs, 0.0, in_w - 1.0)

    y0 = np.floor(ys).astype(np.int64)
    x0 = np.floor(xs).astype(np.int64)
    y1 = np.minimum(y0 + 1, in_h - 1)
    x1 = np.minimum(x0 + 1, in_w - 1)
    wy = (ys - y0)[:, None]
    wx = (xs - x0)[None, :]
    if image.ndim == 3:
        wy = wy[..., None]
        wx = wx[..., None]

    top = image[y0][:, x0] * (1 - wx) + image[y0][:, x1] * wx
    bottom = image[y1][:, x0] * (1 - wx) + image[y1][:, x1] * wx
    return top * (1 - wy) + bottom * wy


class DS2Renderer:
    """Renders every frame at ``1/factor`` resolution and upsamples."""

    def __init__(self, renderer: NeRFRenderer, camera: PinholeCamera,
                 factor: int = 2):
        if factor < 1:
            raise ValueError("factor must be >= 1")
        self.renderer = renderer
        self.camera = camera
        self.factor = int(factor)

    def render_frame(self, pose: np.ndarray) -> tuple[Frame, RenderStats]:
        """One DS-``factor`` frame at ``pose``, upsampled to full resolution."""
        low_camera = self.camera.scaled(1.0 / self.factor).with_pose(pose)
        low_frame, out = self.renderer.render_frame(low_camera)

        height, width = self.camera.height, self.camera.width
        image = bilinear_upsample(low_frame.image, height, width)
        # Depth/hit upsample nearest-neighbour (interpolating depth across
        # silhouettes would invent geometry).
        ys = np.minimum((np.arange(height) * low_frame.depth.shape[0]) // height,
                        low_frame.depth.shape[0] - 1)
        xs = np.minimum((np.arange(width) * low_frame.depth.shape[1]) // width,
                        low_frame.depth.shape[1] - 1)
        depth = low_frame.depth[ys][:, xs]
        hit = low_frame.hit[ys][:, xs]
        frame = Frame(image=np.clip(image, 0.0, 1.0), depth=depth, hit=hit,
                      c2w=np.asarray(pose, dtype=float))
        return frame, out.stats

    def render_sequence(self, poses: list) -> tuple[list, RenderStats]:
        """Render a pose sequence; returns (frames, total stats)."""
        frames = []
        total = RenderStats()
        for pose in poses:
            frame, stats = self.render_frame(pose)
            frames.append(frame)
            total = total.merge(stats)
        return frames, total
