"""Comparison baselines: DS-2 downsampling and TEMP-N temporal warping."""

from .ds2 import DS2Renderer, bilinear_upsample
from .temporal import TemporalWarpRenderer

__all__ = ["DS2Renderer", "bilinear_upsample", "TemporalWarpRenderer"]
