"""The quality-degradation ladder the SLO governor moves sessions along.

Each workload owns a ladder of *quality levels* relative to its native
tier (:data:`~repro.workloads.spec.QUALITY_LEVELS`): level 0 renders at
the spec's resolved config, and every step down halves frame resolution
and ray-march depth — roughly quartering the per-frame ray work, which is
exactly the spend-compute-where-it-buys-quality trade of the paper turned
into a serving control knob.  Ladder configs differ only in imaging
parameters, so :func:`~repro.harness.configs.build_renderer` resolves a
degraded renderer around the *same* baked field via the shared
``FIELD_CACHE`` — a tier switch never re-bakes.
"""

from __future__ import annotations

import dataclasses

from ..workloads.spec import QUALITY_LEVELS, WorkloadSpec

__all__ = ["QUALITY_LEVELS", "ladder_config", "spec_at_level",
           "build_level_session"]

# Floors keep degraded configs renderable (and strictly ordered at the
# FAST test scale: 48px -> 24px -> 16px).
_MIN_IMAGE_SIZE = 16
_MIN_SAMPLES = 12


def ladder_config(spec: WorkloadSpec, base, level: int):
    """The :class:`ExperimentConfig` this spec renders at ``level``.

    Level 0 is the spec's own resolved config; each further level halves
    ``image_size`` and ``samples_per_ray`` (floored so the ladder stays
    strictly ordered at test scales).
    """
    if not 0 <= level < len(QUALITY_LEVELS):
        raise ValueError(f"quality level must be in "
                         f"0..{len(QUALITY_LEVELS) - 1}, got {level}")
    resolved = spec.resolve_config(base)
    if level == 0:
        return resolved
    factor = 2 ** level
    return dataclasses.replace(
        resolved,
        image_size=max(_MIN_IMAGE_SIZE, resolved.image_size // factor),
        samples_per_ray=max(_MIN_SAMPLES,
                            resolved.samples_per_ray // factor))


def spec_at_level(spec: WorkloadSpec, base, level: int) -> tuple:
    """``(spec', config')`` rendering this workload at a ladder level.

    The returned spec has ``tier="inherit"`` so building it against the
    concrete ladder config bypasses its own tier resolution; its
    ``spec_hash``/``cache_key`` therefore stay content-addressed per
    level (degraded references never collide with full-quality ones in
    the shared caches).
    """
    return (dataclasses.replace(spec, tier="inherit"),
            ladder_config(spec, base, level))


def build_level_session(spec: WorkloadSpec, session_id: str, base,
                        level: int, poses=None):
    """An engine :class:`~repro.engine.RenderSession` at a ladder level.

    ``poses`` optionally replaces the spec's own trajectory (the cluster
    worker re-renders the *remaining* poses of a resident session when
    the governor retunes it mid-serve).  Level 0 with default poses is
    bit-identical to ``spec.build_session``.
    """
    if level == 0 and poses is None:
        session = spec.build_session(session_id, base)
    else:
        from ..engine.session import RenderSession
        level_spec, config = spec_at_level(spec, base, level)
        if poses is None:
            poses = level_spec.build_trajectory(config).poses
        session = RenderSession(
            session_id, level_spec.build_sparw(config), poses,
            fps_target=spec.fps_target,
            cache_key=level_spec.cache_key(config), workload=spec)
    session.quality_level = level
    return session
