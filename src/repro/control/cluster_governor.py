"""Cluster-layer governor: graceful load-shedding across a worker fleet.

Extends the per-session SLO loop to the fleet's front door: admission
pressure maps to a degraded *admission level* (heavily loaded workers take
newcomers at a lower rung), SLO-violating resident sessions are retuned
at frame boundaries, and — the graceful-shedding move — when every worker
sits at its admission queue limit, the governor degrades the residents of
the least-loaded worker and admits the newcomer at its deepest allowed
rung into a bounded *overflow* slot instead of rejecting it.  Quality
bends before the admission controller breaks.

Duck-typed over workers (``load``/``worker_id``), so it carries no
dependency on :mod:`repro.cluster`.
"""

from __future__ import annotations

from .governor import GovernorPolicy, QualityGovernor

__all__ = ["ClusterGovernor"]


class ClusterGovernor:
    """Fleet-level quality/admission policy around a QualityGovernor.

    Parameters
    ----------
    config:
        Base experiment config (ladder configs derive from it).
    mode:
        ``"static"`` or ``"adaptive"`` (``"off"`` means no governor).
    queue_limit:
        The admission controller's per-worker resident bound; admission
        levels scale against it and overflow extends it.
    overflow_slots:
        Extra resident slots per worker the adaptive governor may fill by
        degrading (default: half the queue limit, at least one).

    Latency targets come from each workload's own ``slo_latency_s``;
    mix-wide SLO overrides are a spec rewrite
    (:func:`repro.workloads.apply_slo`), not a governor knob.
    """

    def __init__(self, config, mode: str = "adaptive",
                 policy: GovernorPolicy | None = None,
                 queue_limit: int = 4, overflow_slots: int | None = None):
        if queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        self.config = config
        self.governor = QualityGovernor(mode, policy)
        self.queue_limit = int(queue_limit)
        self.overflow_slots = (max(1, queue_limit // 2)
                               if overflow_slots is None
                               else int(overflow_slots))
        if self.overflow_slots < 1:
            raise ValueError("overflow_slots must be >= 1")
        self.overflow_admissions = 0

    @property
    def mode(self) -> str:
        """Governor mode ("static" or "adaptive")."""
        return self.governor.mode

    # -- admission ---------------------------------------------------------------

    def admission_level(self, spec, worker) -> int:
        """Ladder rung a newcomer lands on, from the worker's pressure.

        Empty workers admit at full quality; a worker at its queue limit
        admits at the spec's deepest allowed rung; loads in between map
        linearly.  ``static`` mode always pins the deepest rung.
        """
        max_level = spec.max_quality_level
        if self.mode == "static":
            return max_level
        if self.mode != "adaptive" or max_level == 0:
            return 0
        pressure = worker.load / self.queue_limit
        return min(max_level, int(pressure * (max_level + 1)))

    def register(self, session_id: str, spec, level: int) -> None:
        """Start governing an admitted session at its admission level."""
        self.governor.register(session_id, spec.slo_latency_s,
                               spec.max_quality_level, level=level)

    def overflow_target(self, workers: list):
        """Worker to shed onto when the whole fleet is at its queue limit.

        Least-loaded worker with a free overflow slot (ties by id), or
        ``None`` when overflow capacity is exhausted too — only then does
        the admission controller reject.
        """
        if self.mode != "adaptive":
            return None
        cap = self.queue_limit + self.overflow_slots
        open_workers = [w for w in workers if w.load < cap]
        if not open_workers:
            return None
        self.overflow_admissions += 1
        return min(open_workers, key=lambda w: (w.load, w.worker_id))

    # -- the per-frame loop ------------------------------------------------------

    def on_frame(self, session_id: str, latency_s: float) -> int | None:
        """Observe a resident frame completion; new level on transition."""
        if session_id not in self.governor.sessions:
            return None
        return self.governor.observe(session_id, latency_s)
