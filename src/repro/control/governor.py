"""SLO-driven quality governor: degrade before dropping frames.

The governor closes the loop the serving stack was missing: it observes
each session's recent frame latency against its workload's SLO
(:attr:`~repro.workloads.WorkloadSpec.slo_fps`) and moves the session
along its quality ladder — degrading quickly when the SLO is violated,
recovering *hysteretically* (only after sustained headroom) so the tier
doesn't thrash, and never dropping below the workload's
``min_quality_tier``.  It also assigns per-session ray-budget weights so
an engine under a global ray budget serves lagging sessions a larger
share.

Three modes (:data:`GOVERNOR_MODES`):

* ``off`` — no governor; every session renders at its native tier.
* ``static`` — pin every session at its ``min_quality_tier`` rung from
  the start (the max-throughput/min-quality frontier endpoint), no
  feedback.
* ``adaptive`` — the closed loop described above.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

__all__ = ["GOVERNOR_MODES", "GovernorPolicy", "SessionControl",
           "QualityGovernor", "split_budget"]

GOVERNOR_MODES = ("off", "static", "adaptive")


def split_budget(total: int, weights: list) -> list:
    """Integer shares of ``total`` proportional to ``weights``.

    Largest-remainder apportionment: shares are non-negative, ordered
    ties break toward earlier entries, and — the conservation contract
    the engine relies on — ``sum(shares) == total`` for *any* weight
    assignment (non-positive or non-finite weights are treated as an
    equal split).
    """
    if total < 0:
        raise ValueError("total must be >= 0")
    n = len(weights)
    if n == 0:
        return []
    safe = [float(w) for w in weights]
    if any(w != w or w == float("inf") for w in safe) \
            or sum(max(w, 0.0) for w in safe) <= 0.0:
        safe = [1.0] * n
    else:
        safe = [max(w, 0.0) for w in safe]
    scale = sum(safe)
    # Normalise before multiplying: total * w can overflow to inf for
    # huge (but finite) weights, and inf/inf is NaN.  w/scale is always
    # in [0, 1] (0 when the weight sum itself overflowed to inf).
    raw = [total * (w / scale) for w in safe]
    shares = [int(r) for r in raw]
    remainder = total - sum(shares)
    # Hand the leftover units to the largest fractional parts, cycling
    # round-robin if the deficit exceeds one unit per entry (it can when
    # the normalised weights collapsed to ~0) — and trim back, largest
    # first, in the opposite float pathology.  Either way the sum lands
    # exactly on ``total``.
    order = sorted(range(n), key=lambda i: (-(raw[i] - shares[i]), i))
    step = 0
    while remainder > 0:
        shares[order[step % n]] += 1
        remainder -= 1
        step += 1
    while remainder < 0:
        index = order[step % n]
        if shares[index] > 0:
            shares[index] -= 1
            remainder += 1
        step += 1
    return shares


@dataclass(frozen=True)
class GovernorPolicy:
    """Tuning constants of the adaptive loop (deterministic throughout)."""

    latency_window: int = 4    # sliding window backing the budget weights
    degrade_after: int = 2     # consecutive SLO violations before degrading
    recover_after: int = 6     # consecutive headroom frames before recovering
    headroom_ratio: float = 0.5  # "headroom" = latency below this x budget
    min_weight: float = 0.25   # budget-weight clamp
    max_weight: float = 4.0

    def __post_init__(self):
        if self.latency_window < 1 or self.degrade_after < 1 \
                or self.recover_after < 1:
            raise ValueError("window/streak lengths must be >= 1")
        if not 0.0 < self.headroom_ratio < 1.0:
            raise ValueError("headroom_ratio must be in (0, 1)")
        if not 0.0 < self.min_weight <= self.max_weight:
            raise ValueError("need 0 < min_weight <= max_weight")


@dataclass
class SessionControl:
    """One governed session's control state."""

    session_id: str
    target_latency_s: float  # per-frame budget implied by the SLO
    max_level: int           # deepest allowed ladder rung
    level: int = 0
    transitions: int = 0
    violation_streak: int = 0
    headroom_streak: int = 0
    recent: deque = field(default_factory=lambda: deque(maxlen=8))

    @property
    def mean_recent_latency_s(self) -> float:
        """Mean of the recent-latency window (0.0 while empty)."""
        return sum(self.recent) / len(self.recent) if self.recent else 0.0


class QualityGovernor:
    """Per-session SLO feedback controller over the quality ladder.

    Layer-agnostic: the multi-session engine and the cluster workers both
    feed it ``observe(session_id, latency_s)`` per completed frame and act
    on the returned level.  All state is deterministic, so governed runs
    stay reproducible per seed.
    """

    def __init__(self, mode: str = "adaptive",
                 policy: GovernorPolicy | None = None):
        if mode not in GOVERNOR_MODES:
            raise ValueError(f"unknown governor mode {mode!r}; "
                             f"one of {GOVERNOR_MODES}")
        self.mode = mode
        self.policy = policy or GovernorPolicy()
        self.sessions: dict = {}

    # -- registration -----------------------------------------------------------

    def register(self, session_id: str, target_latency_s: float,
                 max_level: int, level: int | None = None
                 ) -> SessionControl:
        """Start governing a session; returns its control block.

        ``level`` overrides the starting rung (``static`` mode pins the
        deepest allowed rung; ``adaptive`` starts at full quality).
        """
        if target_latency_s <= 0.0:
            raise ValueError("target_latency_s must be positive")
        if max_level < 0:
            raise ValueError("max_level must be >= 0")
        if level is None:
            level = max_level if self.mode == "static" else 0
        level = min(max(level, 0), max_level)
        control = SessionControl(
            session_id=str(session_id),
            target_latency_s=float(target_latency_s),
            max_level=int(max_level), level=level,
            recent=deque(maxlen=self.policy.latency_window))
        self.sessions[control.session_id] = control
        return control

    def control(self, session_id: str) -> SessionControl:
        """The session's control state; raises KeyError if never registered."""
        try:
            return self.sessions[session_id]
        except KeyError:
            raise KeyError(f"session {session_id!r} is not governed"
                           ) from None

    # -- the control loop -------------------------------------------------------

    def observe(self, session_id: str, latency_s: float) -> int | None:
        """Feed one frame latency; returns the new level on a transition.

        Invariants (property-tested): the level never leaves
        ``[0, max_level]``, and under sustained headroom it is monotone
        non-increasing — recovery cannot overshoot or oscillate.
        """
        control = self.control(session_id)
        control.recent.append(float(latency_s))
        if self.mode != "adaptive":
            return None
        policy = self.policy
        target = control.target_latency_s
        if latency_s > target:
            control.violation_streak += 1
            control.headroom_streak = 0
            if control.violation_streak >= policy.degrade_after \
                    and control.level < control.max_level:
                control.level += 1
                control.transitions += 1
                control.violation_streak = 0
                return control.level
        elif latency_s < policy.headroom_ratio * target:
            control.headroom_streak += 1
            control.violation_streak = 0
            if control.headroom_streak >= policy.recover_after \
                    and control.level > 0:
                control.level -= 1
                control.transitions += 1
                control.headroom_streak = 0
                return control.level
        else:  # dead band: neither violating nor comfortable
            control.violation_streak = 0
            control.headroom_streak = 0
        return None

    def pin(self, session_id: str, level: int) -> int:
        """Force a session's level (an external decision, e.g. shedding).

        Resets both hysteresis streaks so the forced move sticks: a
        session degraded to make room for an overflow admission must earn
        ``recover_after`` fresh headroom frames before climbing back,
        instead of cashing in a streak accumulated before the shed.
        Returns the clamped level actually applied.
        """
        control = self.control(session_id)
        control.level = min(max(int(level), 0), control.max_level)
        control.violation_streak = 0
        control.headroom_streak = 0
        return control.level

    # -- budget weights ----------------------------------------------------------

    def weight(self, session_id: str) -> float:
        """Ray-budget share weight: behind-SLO sessions pull more rays."""
        control = self.sessions.get(session_id)
        if control is None or self.mode != "adaptive" or not control.recent:
            return 1.0
        ratio = control.mean_recent_latency_s / control.target_latency_s
        return min(max(ratio, self.policy.min_weight),
                   self.policy.max_weight)

    # -- reporting ---------------------------------------------------------------

    @property
    def total_transitions(self) -> int:
        """Tier moves taken across every governed session."""
        return sum(c.transitions for c in self.sessions.values())

    def level_of(self, session_id: str) -> int:
        """Current quality level of a session (0 if unregistered)."""
        control = self.sessions.get(session_id)
        return control.level if control is not None else 0
