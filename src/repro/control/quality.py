"""Perceptual-quality accounting for governed serving.

Deterministic probe: render the first frames of a workload's trajectory
through the real SPARW pipeline at a ladder level and score them against
the ray-traced ground truth at the same resolution.  Probes are cached in
the shared ``FIELD_CACHE`` (content-addressed by the level spec's cache
key), so a frontier sweep prices each (workload, level) pair once per
process.  ``psnr`` may legitimately return ``inf`` for identical frames;
the reporting layer's strict JSON encoder keeps that out of artifacts.
"""

from __future__ import annotations

from ..metrics.quality import mean_psnr
from .tiers import spec_at_level

__all__ = ["level_quality", "quality_floor", "mean_psnr_of_levels"]

_PROBE_FRAMES = 2


def level_quality(spec, base, level: int, frames: int = _PROBE_FRAMES
                  ) -> float:
    """Probe PSNR (dB) of this workload rendered at a ladder level."""
    from ..harness.configs import make_camera, scene_of
    from ..scenes.raytracer import RayTracer
    from ..workloads.cache import FIELD_CACHE
    level_spec, config = spec_at_level(spec, base, level)
    key = ("tier_psnr", level_spec.cache_key(config), frames)

    def _probe() -> float:
        poses = level_spec.build_trajectory(config).poses[:frames]
        result = level_spec.build_sparw(config).render_sequence(poses)
        tracer = RayTracer(scene_of(spec.scene))
        camera = make_camera(config)
        truth = [tracer.render(camera.with_pose(p)) for p in poses]
        return mean_psnr([f.image for f in result.frames],
                         [f.image for f in truth])

    return FIELD_CACHE.get_or_build(key, _probe)


def quality_floor(spec, base) -> float:
    """Lowest probe PSNR the governor may reach for this workload.

    The minimum over every *allowed* ladder rung (down to the spec's
    ``min_quality_tier``), so "mean served PSNR stays above the floor"
    holds by construction whenever the governor respects the tier bound.
    """
    return min(level_quality(spec, base, level)
               for level in range(spec.max_quality_level + 1))


def mean_psnr_of_levels(spec, base, frames_by_level: dict) -> float:
    """Frame-weighted mean probe PSNR of one workload's served frames.

    ``frames_by_level`` maps ladder level -> frames served at it (the
    cluster report's quality accounting).  Returns 0.0 for no frames.
    """
    total = sum(frames_by_level.values())
    if not total:
        return 0.0
    return sum(level_quality(spec, base, int(level)) * count
               for level, count in frames_by_level.items()) / total
