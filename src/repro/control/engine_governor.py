"""Engine-layer governor: closed-loop tier/budget control inside one SoC.

Wraps a :class:`~.governor.QualityGovernor` with everything the
multi-session engine needs to run it online: a virtual service clock
(each completed frame is priced on the SoC model and advances it), SLO
latency derivation per workload, mid-stream retuning (resolving the
degraded renderer through the shared ``FIELD_CACHE`` — no re-bake), and
the per-round ray-budget weights.  The engine itself stays policy-free:
it only calls :meth:`share_weights` and :meth:`observe_record`.
"""

from __future__ import annotations

from ..hw.serving import price_frame_record
from ..hw.soc import SoCModel
from ..obs.runtime import current_tracer, metric_inc
from .governor import GovernorPolicy, QualityGovernor
from .tiers import spec_at_level

__all__ = ["EngineGovernor"]


class EngineGovernor:
    """Online SLO feedback for a :class:`~repro.engine.MultiSessionEngine`.

    Parameters
    ----------
    config:
        Base :class:`ExperimentConfig` the sessions were built against
        (ladder configs derive from it).
    mode:
        ``"static"`` or ``"adaptive"`` (``"off"`` means: don't attach a
        governor at all).
    soc:
        Hardware model pricing completed frames for the virtual service
        clock (default-configured :class:`SoCModel` if None).

    Each session's latency target comes from its own workload's
    ``slo_latency_s`` — mix-wide SLO overrides are a spec rewrite
    (:func:`repro.workloads.apply_slo`), not a governor knob, so there is
    exactly one place an SLO can come from.
    """

    def __init__(self, config, mode: str = "adaptive",
                 policy: GovernorPolicy | None = None,
                 soc: SoCModel | None = None):
        self.config = config
        self.governor = QualityGovernor(mode, policy)
        self.soc = soc or SoCModel(feature_dim=config.feature_dim)
        self.clock_s = 0.0
        self.events: list = []

    @property
    def mode(self) -> str:
        """Governor mode ("static" or "adaptive")."""
        return self.governor.mode

    # -- engine hooks ------------------------------------------------------------

    def attach(self, sessions: list) -> None:
        """Register every workload-built session (others stay ungoverned).

        ``static`` mode pins sessions at their deepest allowed rung; a
        session not already built there is retuned before its next frame.
        """
        for session in sessions:
            spec = session.workload
            if spec is None:
                continue
            control = self.governor.register(
                session.session_id, spec.slo_latency_s,
                spec.max_quality_level)
            if control.level != session.quality_level:
                self._retune(session, control.level)

    def share_weights(self, sessions: list) -> list:
        """Per-session ray-budget weights in the given order."""
        return [self.governor.weight(s.session_id) for s in sessions]

    def observe_record(self, session, record) -> None:
        """Account one completed frame; maybe retune the session.

        The virtual clock models one shared SoC serving frames in
        completion order; a frame's latency is the clock at completion
        minus its open-loop request time (``frame_index / fps_target``).
        """
        spec = session.workload
        if spec is None or session.session_id not in self.governor.sessions:
            return
        self.clock_s += price_frame_record(record, self.soc, spec.variant)
        request_s = record.frame_index / spec.fps_target
        latency_s = max(self.clock_s - request_s, 0.0)
        new_level = self.governor.observe(session.session_id, latency_s)
        if new_level is not None:
            self._retune(session, new_level)

    # -- retuning ----------------------------------------------------------------

    def _retune(self, session, level: int) -> None:
        spec = session.workload
        level_spec, config = spec_at_level(spec, self.config, level)
        from ..harness.configs import make_camera
        session.retune(level_spec.build_renderer(config),
                       make_camera(config), level=level,
                       cache_key=level_spec.cache_key(config))
        self.events.append({
            "clock_s": self.clock_s, "session": session.session_id,
            "frame": session.frames_completed, "level": level})
        metric_inc("governor.engine_transitions")
        tracer = current_tracer()
        if tracer is not None:
            pid, base_us = tracer.current_scope("engine")
            tracer.instant(
                "governor.retune", "governor",
                base_us + self.clock_s * 1e6, pid,
                tracer.thread(pid, "governor"),
                args={"session": session.session_id, "level": level,
                      "frame": session.frames_completed})

    # -- reporting ---------------------------------------------------------------

    def summary(self) -> dict:
        """Flat report row: mode, transitions, final per-session levels."""
        levels = {sid: c.level for sid, c in self.governor.sessions.items()}
        return {
            "governor": self.mode,
            "tier_transitions": len(self.events),
            "governed_sessions": len(levels),
            "mean_final_level": (sum(levels.values()) / len(levels)
                                 if levels else 0.0),
        }
