"""SLO-driven adaptive quality control plane.

The paper's core trade — spend compute only where it buys perceptible
quality — turned into a serving control loop: a per-session
:class:`QualityGovernor` observes frame latency against each workload's
SLO and moves sessions along a quality ladder (degrading before frames
drop, recovering hysteretically when headroom returns), with integration
shims for the multi-session engine (:class:`EngineGovernor`: mid-stream
tier switches + per-round ray-budget weights) and the cluster fleet
(:class:`ClusterGovernor`: pressure-scaled admission levels, resident
degradation, bounded overflow admission instead of rejection).
"""

from .cluster_governor import ClusterGovernor
from .engine_governor import EngineGovernor
from .governor import (
    GOVERNOR_MODES,
    GovernorPolicy,
    QualityGovernor,
    SessionControl,
    split_budget,
)
from .quality import level_quality, mean_psnr_of_levels, quality_floor
from .tiers import (
    QUALITY_LEVELS,
    build_level_session,
    ladder_config,
    spec_at_level,
)

__all__ = [
    "ClusterGovernor",
    "EngineGovernor",
    "GOVERNOR_MODES",
    "GovernorPolicy",
    "QualityGovernor",
    "SessionControl",
    "split_budget",
    "level_quality",
    "mean_psnr_of_levels",
    "quality_floor",
    "QUALITY_LEVELS",
    "build_level_session",
    "ladder_config",
    "spec_at_level",
]
