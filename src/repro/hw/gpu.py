"""Mobile-GPU timing/energy model (Volta-class, Xavier SoC).

A calibrated analytic model standing in for the paper's direct measurements.
Per-stage costs are derived from the workload counts:

* Indexing (I): per-ray setup plus per-sample cell/weight computation.
* Feature Gathering (G): latency-bound irregular fetches; the per-fetch cost
  scales with the measured bank-conflict slowdown and the random-access
  share of the traffic, which is what makes gathering dominate (Fig. 3).
* Feature Computation (F): MAC-throughput-bound MLP inference.
* SPARW warp ops: the paper measures ~1 ms per million points on Volta.

Constants are chosen so the baseline reproduces the paper's qualitative
breakdown (G > 56% of time) and the DVGO-on-Xavier throughput scale.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..memsys.energy import DEFAULT_ENERGY, EnergyModel
from .workload import FrameWorkload

__all__ = ["GPUConfig", "StageBreakdown", "GPUModel"]


@dataclass(frozen=True)
class GPUConfig:
    """Calibrated mobile-GPU cost constants."""

    mac_rate: float = 5.0e10  # effective fp16 MACs/s on small-batch MLPs
    index_ray_cost_s: float = 40e-9  # ray setup
    index_sample_cost_s: float = 4.0e-9  # cell id + weights per sample
    gather_fetch_cost_s: float = 2.0e-9  # per vertex fetch, conflict-free
    gather_random_penalty_s: float = 6.0e-9  # extra per random-DRAM fetch
    conflict_exposure: float = 0.5  # fraction of bank-conflict stalls exposed
    warp_point_cost_s: float = 1.0e-9  # SPARW steps 1-3 per point (paper)
    average_power_w: float = 10.0  # measured board power under load


@dataclass
class StageBreakdown:
    """Per-stage latency (seconds) of one frame on one engine."""

    indexing: float = 0.0
    gathering: float = 0.0
    computation: float = 0.0
    warping: float = 0.0

    @property
    def total(self) -> float:
        return self.indexing + self.gathering + self.computation + self.warping

    def merge(self, other: "StageBreakdown") -> "StageBreakdown":
        return StageBreakdown(
            indexing=self.indexing + other.indexing,
            gathering=self.gathering + other.gathering,
            computation=self.computation + other.computation,
            warping=self.warping + other.warping,
        )


class GPUModel:
    """Prices a workload when every stage runs on the mobile GPU."""

    def __init__(self, config: GPUConfig | None = None,
                 energy: EnergyModel | None = None):
        self.config = config or GPUConfig()
        self.energy = energy or DEFAULT_ENERGY

    # -- per-stage timing ---------------------------------------------------------

    def indexing_time(self, workload: FrameWorkload) -> float:
        return (workload.num_rays * self.config.index_ray_cost_s
                + workload.num_samples * self.config.index_sample_cost_s)

    def gathering_time(self, workload: FrameWorkload) -> float:
        """Irregular-fetch-bound gather time.

        Random-DRAM fetches pay the extra latency penalty; the whole stage
        additionally dilates by the banked-SRAM conflict slowdown measured
        for the feature-major layout.
        """
        accesses = workload.gather_accesses
        if accesses == 0:
            return 0.0
        traffic = workload.baseline_traffic
        random_fraction = (traffic.random_bytes / traffic.total_bytes
                           if traffic.total_bytes else 1.0)
        per_fetch = (self.config.gather_fetch_cost_s
                     + random_fraction * self.config.gather_random_penalty_s)
        # GPUs hide part of the bank-conflict serialisation behind other
        # warps; only `conflict_exposure` of the measured slowdown bites.
        conflict_factor = 1.0 + self.config.conflict_exposure * (
            workload.gather_conflict_slowdown - 1.0)
        return accesses * per_fetch * conflict_factor

    def computation_time(self, workload: FrameWorkload) -> float:
        return workload.mlp_macs / self.config.mac_rate

    def warping_time(self, workload: FrameWorkload) -> float:
        return workload.warp_points * self.config.warp_point_cost_s

    # -- frame-level ----------------------------------------------------------------

    def frame_breakdown(self, workload: FrameWorkload) -> StageBreakdown:
        return StageBreakdown(
            indexing=self.indexing_time(workload),
            gathering=self.gathering_time(workload),
            computation=self.computation_time(workload),
            warping=self.warping_time(workload),
        )

    def frame_time(self, workload: FrameWorkload) -> float:
        return self.frame_breakdown(workload).total

    def frame_energy(self, workload: FrameWorkload) -> float:
        """Board energy: measured-power x time plus DRAM traffic energy."""
        traffic = workload.baseline_traffic
        dram = self.energy.dram_energy(traffic.streaming_bytes,
                                       traffic.random_bytes)
        return self.frame_time(workload) * self.config.average_power_w + dram
