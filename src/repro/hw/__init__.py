"""SoC performance/energy models: GPU, NPU, GU, remote, rival accelerators."""

from .gpu import GPUConfig, GPUModel, StageBreakdown
from .gu import GatheringUnitModel, GUConfig, GUCost
from .npu import NPUConfig, NPUModel
from .pipeline import TimelineResult, overlapped_timeline, serialized_timeline
from .remote import RemoteConfig, RemoteScenario
from .rivals import NGPCModel, NeuRexModel
from .soc import VARIANTS, FrameCost, SoCModel, SparwWorkloads
from .workload import FrameWorkload, GatherTraffic, workload_from_stats

__all__ = [
    "GPUConfig",
    "GPUModel",
    "StageBreakdown",
    "GatheringUnitModel",
    "GUConfig",
    "GUCost",
    "NPUConfig",
    "NPUModel",
    "TimelineResult",
    "overlapped_timeline",
    "serialized_timeline",
    "RemoteConfig",
    "RemoteScenario",
    "NGPCModel",
    "NeuRexModel",
    "VARIANTS",
    "FrameCost",
    "SoCModel",
    "SparwWorkloads",
    "FrameWorkload",
    "GatherTraffic",
    "workload_from_stats",
]
