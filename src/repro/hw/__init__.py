"""SoC performance/energy models: GPU, NPU, GU, remote, rival accelerators."""

from .gpu import GPUConfig, GPUModel, StageBreakdown
from .gu import GatheringUnitModel, GUConfig, GUCost
from .npu import NPUConfig, NPUModel
from .pipeline import TimelineResult, overlapped_timeline, serialized_timeline
from .remote import RemoteConfig, RemoteScenario
from .rivals import NGPCModel, NeuRexModel
from .serving import (
    ServingReport,
    SessionServingStats,
    aggregate_serving,
    price_session_frames,
)
from .soc import VARIANTS, FrameCost, SoCModel, SparwWorkloads
from .workload import FrameWorkload, GatherTraffic, workload_from_stats

__all__ = [
    "GPUConfig",
    "GPUModel",
    "StageBreakdown",
    "GatheringUnitModel",
    "GUConfig",
    "GUCost",
    "NPUConfig",
    "NPUModel",
    "TimelineResult",
    "overlapped_timeline",
    "serialized_timeline",
    "RemoteConfig",
    "RemoteScenario",
    "NGPCModel",
    "NeuRexModel",
    "ServingReport",
    "SessionServingStats",
    "aggregate_serving",
    "price_session_frames",
    "VARIANTS",
    "FrameCost",
    "SoCModel",
    "SparwWorkloads",
    "FrameWorkload",
    "GatherTraffic",
    "workload_from_stats",
]
