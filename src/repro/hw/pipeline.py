"""Reference/target scheduling timelines (Fig. 11 ablation).

Quantifies the paper's key scheduling insight: on-trajectory references
serialise the pipeline (each window boundary stalls for a full-frame NeRF
render), while off-trajectory extrapolated references let reference rendering
proceed concurrently with target rendering — fully when a second compute
resource exists (remote GPU), time-sliced when sharing the local SoC.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TimelineResult", "serialized_timeline", "overlapped_timeline"]


@dataclass
class TimelineResult:
    """Per-frame latency statistics of one scheduling policy."""

    mean_frame_time: float
    worst_frame_time: float
    reference_stall: float  # boundary stall exposed to the user

    @property
    def fps(self) -> float:
        return 0.0 if self.mean_frame_time == 0.0 else 1.0 / self.mean_frame_time


def serialized_timeline(target_time: float, reference_time: float,
                        window: int) -> TimelineResult:
    """On-trajectory policy: the reference blocks the frame stream.

    The reference can only start once its pose is reached, so one frame per
    window pays the full reference latency on top of its own (Fig. 11a).
    """
    window = max(window, 1)
    mean = target_time + reference_time / window
    worst = target_time + reference_time
    return TimelineResult(mean_frame_time=mean, worst_frame_time=worst,
                          reference_stall=reference_time)


def overlapped_timeline(target_time: float, reference_time: float,
                        window: int, shared_resources: bool = True
                        ) -> TimelineResult:
    """Off-trajectory policy: reference rendering overlaps targets.

    With ``shared_resources`` (local rendering) the reference steals cycles
    from every target slot — the mean matches the serialised policy but the
    worst case stays flat because the work is spread.  With dedicated
    resources (remote rendering) targets hide the reference entirely as long
    as ``reference_time <= window * target_time``.
    """
    window = max(window, 1)
    if shared_resources:
        slice_per_frame = reference_time / window
        mean = target_time + slice_per_frame
        worst = target_time + slice_per_frame
    else:
        mean = max(target_time, reference_time / window)
        worst = mean
    return TimelineResult(mean_frame_time=mean, worst_frame_time=worst,
                          reference_stall=0.0)
