"""NPU model: systolic-array DNN accelerator (Sec. V hardware details).

A 24x24 MAC array at 1 GHz with a 1.5 MB double-buffered global feature
buffer and a 96 KB weight buffer, mirroring the paper's TPU-style design.
The NPU executes Feature Computation (F): batched MLP inference over ray
samples.  Utilisation accounts for dimension padding to the array size.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..memsys.energy import DEFAULT_ENERGY, EnergyModel
from .workload import FrameWorkload

__all__ = ["NPUConfig", "NPUModel"]


@dataclass(frozen=True)
class NPUConfig:
    """Systolic-array parameters."""

    array_rows: int = 24
    array_cols: int = 24
    clock_hz: float = 1.0e9
    feature_buffer_bytes: int = 1536 * 1024  # 1.5 MB double-buffered
    weight_buffer_bytes: int = 96 * 1024
    utilization: float = 0.75  # average array efficiency on small MLP layers

    @property
    def macs_per_cycle(self) -> float:
        return self.array_rows * self.array_cols

    @property
    def effective_mac_rate(self) -> float:
        return self.macs_per_cycle * self.clock_hz * self.utilization


class NPUModel:
    """Prices MLP inference (stage F) on the systolic array."""

    def __init__(self, config: NPUConfig | None = None,
                 energy: EnergyModel | None = None):
        self.config = config or NPUConfig()
        self.energy = energy or DEFAULT_ENERGY

    def computation_time(self, workload: FrameWorkload) -> float:
        """Latency of the frame's MLP MACs on the array."""
        return workload.mlp_macs / self.config.effective_mac_rate

    def computation_cycles(self, workload: FrameWorkload) -> int:
        return int(round(self.computation_time(workload)
                         * self.config.clock_hz))

    def computation_energy(self, workload: FrameWorkload) -> float:
        """MAC energy + feature-buffer SRAM traffic for activations."""
        mac = self.energy.mac_energy(workload.mlp_macs)
        # Each sample's feature vector is written once and read once from the
        # global feature buffer.
        feature_bytes = 2.0 * workload.gather_bytes / max(
            workload.vertices_per_sample, 1.0)
        return mac + self.energy.sram_energy(feature_bytes)
