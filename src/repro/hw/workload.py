"""Frame workload descriptors: the interface between rendering and hardware.

The renderers/SPARW pipeline produce work *counts* (rays, samples, MACs,
gather accesses, warp points); the streaming scheduler produces DRAM traffic
mixes.  A :class:`FrameWorkload` bundles them so every SoC variant prices the
same physical work.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["GatherTraffic", "FrameWorkload", "workload_from_stats"]


@dataclass
class GatherTraffic:
    """DRAM traffic of the feature-gathering stage under one dataflow."""

    streaming_bytes: float = 0.0
    random_bytes: float = 0.0

    @property
    def total_bytes(self) -> float:
        return self.streaming_bytes + self.random_bytes

    def scaled(self, factor: float) -> "GatherTraffic":
        return GatherTraffic(self.streaming_bytes * factor,
                             self.random_bytes * factor)


@dataclass
class FrameWorkload:
    """Work counts for rendering one frame (or one frame's NeRF portion).

    ``gather_conflict_slowdown`` is the measured feature-major banked-SRAM
    slowdown (Fig. 6) applied to gather throughput on conflict-prone
    hardware; the GU is immune to it.
    """

    num_rays: int = 0
    num_samples: int = 0
    mlp_macs: int = 0
    gather_accesses: int = 0
    gather_bytes: int = 0
    baseline_traffic: GatherTraffic = field(default_factory=GatherTraffic)
    streaming_traffic: GatherTraffic = field(default_factory=GatherTraffic)
    rit_bytes: int = 0
    gather_conflict_slowdown: float = 1.0
    warp_points: int = 0  # SPARW steps 1-3 point ops (0 for full frames)
    vertices_per_sample: float = 8.0

    def merge(self, other: "FrameWorkload") -> "FrameWorkload":
        def wavg(a, wa, b, wb):
            total = wa + wb
            return (a * wa + b * wb) / total if total else 1.0

        return FrameWorkload(
            num_rays=self.num_rays + other.num_rays,
            num_samples=self.num_samples + other.num_samples,
            mlp_macs=self.mlp_macs + other.mlp_macs,
            gather_accesses=self.gather_accesses + other.gather_accesses,
            gather_bytes=self.gather_bytes + other.gather_bytes,
            baseline_traffic=GatherTraffic(
                self.baseline_traffic.streaming_bytes
                + other.baseline_traffic.streaming_bytes,
                self.baseline_traffic.random_bytes
                + other.baseline_traffic.random_bytes),
            streaming_traffic=GatherTraffic(
                self.streaming_traffic.streaming_bytes
                + other.streaming_traffic.streaming_bytes,
                self.streaming_traffic.random_bytes
                + other.streaming_traffic.random_bytes),
            rit_bytes=self.rit_bytes + other.rit_bytes,
            gather_conflict_slowdown=wavg(
                self.gather_conflict_slowdown, self.gather_accesses,
                other.gather_conflict_slowdown, other.gather_accesses),
            warp_points=self.warp_points + other.warp_points,
            vertices_per_sample=wavg(
                self.vertices_per_sample, self.num_samples,
                other.vertices_per_sample, other.num_samples),
        )

    def scaled(self, factor: float) -> "FrameWorkload":
        """Scale all work counts (e.g. amortise a reference over a window)."""
        return FrameWorkload(
            num_rays=int(self.num_rays * factor),
            num_samples=int(self.num_samples * factor),
            mlp_macs=int(self.mlp_macs * factor),
            gather_accesses=int(self.gather_accesses * factor),
            gather_bytes=int(self.gather_bytes * factor),
            baseline_traffic=self.baseline_traffic.scaled(factor),
            streaming_traffic=self.streaming_traffic.scaled(factor),
            rit_bytes=int(self.rit_bytes * factor),
            gather_conflict_slowdown=self.gather_conflict_slowdown,
            warp_points=int(self.warp_points * factor),
            vertices_per_sample=self.vertices_per_sample,
        )


def workload_from_stats(stats, streaming_report=None,
                        conflict_slowdown: float = 1.0,
                        warp_points: int = 0) -> FrameWorkload:
    """Build a workload from renderer stats (+ optional streaming report).

    Without a streaming report, baseline DRAM traffic defaults to all gather
    bytes charged as random (no cache) — callers wanting cache-filtered
    traffic pass a report from :class:`FullyStreamingScheduler`.
    """
    wl = FrameWorkload(
        num_rays=stats.num_rays,
        num_samples=stats.num_samples,
        mlp_macs=stats.mlp_macs,
        gather_accesses=stats.gather_vertex_accesses,
        gather_bytes=stats.gather_bytes,
        gather_conflict_slowdown=conflict_slowdown,
        warp_points=warp_points,
    )
    if stats.num_samples > 0:
        wl.vertices_per_sample = (stats.gather_vertex_accesses
                                  / stats.num_samples)
    if streaming_report is not None:
        wl.baseline_traffic = GatherTraffic(
            float(streaming_report.baseline_streaming_bytes),
            float(streaming_report.baseline_random_bytes))
        wl.streaming_traffic = GatherTraffic(
            float(streaming_report.fs_streaming_bytes),
            float(streaming_report.fs_random_bytes))
        wl.rit_bytes = int(sum(g.rit_bytes for g in streaming_report.groups))
    else:
        wl.baseline_traffic = GatherTraffic(0.0, float(stats.gather_bytes))
        wl.streaming_traffic = GatherTraffic(float(stats.gather_bytes), 0.0)
    return wl
