"""Aggregate multi-session throughput model: frames/s and tail latency.

Prices the frames of N concurrent SPARW sessions on one shared SoC and
simulates round-interleaved service: round ``i`` renders every session's
frame ``i`` back to back, so a frame's latency is its completion offset
within the round (its own cost plus queueing behind the sessions served
before it).  Window-boundary frames carry their full-frame reference cost,
which is exactly what the p95 tail captures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..metrics.stats import percentile_or_zero
from ..obs.runtime import current_metrics, current_tracer
from .soc import FrameCost, SoCModel
from .workload import workload_from_stats

__all__ = ["SessionServingStats", "ServingReport", "frame_cost_record",
           "price_frame_record", "session_frame_costs",
           "price_session_frames", "aggregate_serving"]


@dataclass
class SessionServingStats:
    """One session's share of the serving simulation.

    ``utilization`` is the fraction of the run's makespan this session
    kept the shared SoC busy (``busy_s / makespan_s``); the per-session
    utilizations sum to 1.0 when the SoC never idles.
    """

    session_id: str
    frames: int
    references: int
    busy_s: float  # SoC time spent on this session's frames
    solo_fps: float  # rate if the session had the SoC to itself
    mean_latency_s: float
    p95_latency_s: float
    p50_latency_s: float = 0.0
    p99_latency_s: float = 0.0
    utilization: float = 0.0
    energy_j: float = 0.0  # SoC energy spent on this session's frames


@dataclass
class ServingReport:
    """Aggregate service metrics across every session.

    ``cache`` carries the shared cross-session cache counters of the run
    (``{"references": {hits, misses, evictions, hit_rate, ...}, "fields":
    {...}}``) when the serving harness ran with the workload-layer caches
    attached; ``None`` means uncached serving.

    The latency/throughput model is deliberately *cache-blind*: frames
    are priced from their recorded per-frame stats, which are identical
    with and without the cache (the bit-parity contract), so
    ``aggregate_fps``/latency do not move when caching is enabled.  The
    cache's savings show up in the engine's ``nerf_calls``/``total_rays``
    and in the ``cache`` counters, not here.
    """

    num_sessions: int
    total_frames: int
    makespan_s: float
    aggregate_fps: float
    mean_latency_s: float
    p95_latency_s: float
    worst_latency_s: float
    p50_latency_s: float = 0.0
    p99_latency_s: float = 0.0
    total_energy_j: float = 0.0
    per_session: list = field(default_factory=list)
    cache: dict | None = None


def frame_cost_record(record, soc: SoCModel, variant: str = "cicero"
                      ) -> FrameCost:
    """Full SoC cost (time *and* energy) of one recorded SPARW frame.

    The frame is priced from its recorded sparse-NeRF stats and warp
    work; a frame that rendered a new reference additionally pays the
    full-frame render (local rendering serialises the two paths on the
    shared SoC).  The latency is the signal the quality governor closes
    its loop on; the energy feeds the J/frame run-table columns.
    """
    target = workload_from_stats(record.sparse_stats,
                                 warp_points=record.warp_points)
    cost = soc.price_nerf(target, variant)
    if record.reference_stats is not None:
        reference = workload_from_stats(record.reference_stats)
        cost = cost.merge(soc.price_nerf(reference, variant))
    return cost


def price_frame_record(record, soc: SoCModel, variant: str = "cicero"
                       ) -> float:
    """SoC time (seconds) of one recorded SPARW target frame."""
    return frame_cost_record(record, soc, variant).time_s


def session_frame_costs(result, soc: SoCModel, variant: str = "cicero"
                        ) -> list:
    """Per-frame :class:`FrameCost` of one SPARW sequence result."""
    return [frame_cost_record(record, soc, variant)
            for record in result.records]


def price_session_frames(result, soc: SoCModel, variant: str = "cicero"
                         ) -> list:
    """Per-frame SoC time of one SPARW sequence result (seconds)."""
    return [cost.time_s for cost in session_frame_costs(result, soc, variant)]


def aggregate_serving(session_results: dict, soc: SoCModel | None = None,
                      variant: str = "cicero",
                      order: str = "arrival",
                      variants: dict | None = None,
                      cache_stats: dict | None = None) -> ServingReport:
    """Simulate interleaved service of many sessions on one SoC.

    Parameters
    ----------
    session_results:
        ``{session_id: SparwSequenceResult}`` — the engine's per-session
        outputs (or any solo pipeline results).
    soc:
        Hardware model to price frames on (default configuration if None).
    variant:
        SoC variant to price under (see :data:`repro.hw.soc.VARIANTS`).
    order:
        Within-round service order: ``"arrival"`` keeps dict order (the
        engine's round-robin) or ``"sjf"`` serves cheapest frames first,
        which minimises mean queueing delay (the deadline scheduler's
        latency-oriented counterpart).
    variants:
        Optional ``{session_id: variant}`` overrides for heterogeneous
        workload mixes (each session priced under its spec's variant);
        sessions absent from the dict fall back to ``variant``.
    cache_stats:
        Optional shared-cache counters (from
        :func:`repro.workloads.cache.cache_report`) to attach to the
        report.
    """
    if order not in ("arrival", "sjf"):
        raise ValueError(f"unknown service order {order!r}")
    soc = soc or SoCModel()
    variants = variants or {}
    frame_costs = {
        sid: session_frame_costs(result, soc, variants.get(sid, variant))
        for sid, result in session_results.items()}
    frame_times = {sid: [c.time_s for c in costs]
                   for sid, costs in frame_costs.items()}

    # Observability hooks (read-only: instrumentation records the same
    # clock/latency values the report is built from, never changes them).
    tracer = current_tracer()
    metrics = current_metrics()
    if tracer is not None:
        soc_pid = tracer.process("soc")
        rounds_tid = tracer.thread(soc_pid, "rounds")
        session_tids = {sid: tracer.thread(soc_pid, sid)
                        for sid in frame_times}

    latencies: dict = {sid: [] for sid in frame_times}
    clock = 0.0
    max_frames = max((len(t) for t in frame_times.values()), default=0)
    for i in range(max_frames):
        due = [(sid, times[i]) for sid, times in frame_times.items()
               if i < len(times)]
        if order == "sjf":
            due.sort(key=lambda item: item[1])
        round_start = clock
        for sid, cost in due:
            start = clock
            clock += cost
            latency = clock - round_start
            latencies[sid].append(latency)
            if metrics is not None:
                metrics.inc("serve.frames")
                metrics.observe("serve.frame_latency_s", latency)
            if tracer is not None:
                args = {"session": sid, "frame": i,
                        "latency_ms": latency * 1e3}
                tracer.complete("frame.wait", "frame", round_start * 1e6,
                                (start - round_start) * 1e6, soc_pid,
                                session_tids[sid], args=args)
                tracer.complete("frame.serve", "frame", start * 1e6,
                                cost * 1e6, soc_pid, session_tids[sid],
                                args=args)
        if tracer is not None and due:
            tracer.complete("serve.round", "engine", round_start * 1e6,
                            (clock - round_start) * 1e6, soc_pid,
                            rounds_tid,
                            args={"round": i, "sessions": len(due)})
        if metrics is not None and due:
            metrics.inc("serve.rounds")

    _pct = percentile_or_zero  # local alias keeps the stat rows compact
    per_session = []
    all_latencies = []
    for sid, result in session_results.items():
        times = frame_times[sid]
        lats = latencies[sid]
        all_latencies.extend(lats)
        busy = float(sum(times))
        per_session.append(SessionServingStats(
            session_id=sid,
            frames=len(times),
            references=result.num_references,
            busy_s=busy,
            solo_fps=len(times) / busy if busy > 0 else 0.0,
            mean_latency_s=float(np.mean(lats)) if lats else 0.0,
            p95_latency_s=_pct(lats, 95),
            p50_latency_s=_pct(lats, 50),
            p99_latency_s=_pct(lats, 99),
            utilization=busy / clock if clock > 0 else 0.0,
            energy_j=float(sum(c.energy_j for c in frame_costs[sid])),
        ))

    total_frames = sum(s.frames for s in per_session)
    return ServingReport(
        num_sessions=len(per_session),
        total_frames=total_frames,
        makespan_s=clock,
        aggregate_fps=total_frames / clock if clock > 0 else 0.0,
        mean_latency_s=(float(np.mean(all_latencies))
                        if all_latencies else 0.0),
        p95_latency_s=_pct(all_latencies, 95),
        worst_latency_s=max(all_latencies, default=0.0),
        p50_latency_s=_pct(all_latencies, 50),
        p99_latency_s=_pct(all_latencies, 99),
        total_energy_j=sum(s.energy_j for s in per_session),
        per_session=per_session,
        cache=cache_stats,
    )
