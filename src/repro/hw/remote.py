"""Remote-rendering scenario (Sec. V "Application Scenarios", Fig. 19b).

The device tethers wirelessly to a workstation-class GPU (2080 Ti).  Two
deployments are compared:

* **Baseline remote**: every frame is rendered remotely and streamed to the
  device; the device's energy is almost pure radio.
* **Cicero remote**: only *reference* frames render remotely; target frames
  are warped (+ sparse NeRF) locally.  Reference rendering overlaps local
  target rendering — the off-trajectory reference policy is what makes that
  legal — so per-frame latency is ``max(local target, remote ref / window)``
  plus the per-frame share of communication.

Frames cross the link video-compressed; the paper's link model is 100 nJ/B
at 10 MB/s.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..memsys.energy import DEFAULT_ENERGY, EnergyModel
from .soc import FrameCost, SoCModel, SparwWorkloads
from .workload import FrameWorkload

__all__ = ["RemoteConfig", "RemoteScenario"]


@dataclass(frozen=True)
class RemoteConfig:
    """Remote machine + wireless link parameters."""

    remote_speedup: float = 10.0  # 2080 Ti vs mobile Volta on NeRF inference
    frame_bytes_raw: int = 0  # set per experiment: H * W * 4 (RGB + depth)
    compression_ratio: float = 20.0  # video-codec compression on the link

    def frame_bytes_on_link(self, raw_bytes: int | None = None) -> float:
        raw = raw_bytes if raw_bytes is not None else self.frame_bytes_raw
        return raw / self.compression_ratio


class RemoteScenario:
    """Prices the remote-rendering deployments."""

    def __init__(self, soc: SoCModel, config: RemoteConfig | None = None,
                 energy: EnergyModel | None = None):
        self.soc = soc
        self.config = config or RemoteConfig()
        self.energy = energy or DEFAULT_ENERGY

    # -- baseline: render everything remotely ----------------------------------------

    def price_baseline_remote(self, full_frame: FrameWorkload,
                              frame_bytes: int) -> FrameCost:
        """Every frame rendered on the remote GPU, streamed to the device."""
        remote_render = self.soc.price_nerf(full_frame, "gpu")
        remote_time = remote_render.time_s / self.config.remote_speedup
        link_bytes = self.config.frame_bytes_on_link(frame_bytes)
        comm_time = self.energy.wireless_latency(link_bytes)
        comm_energy = self.energy.wireless_energy(link_bytes)
        # Remote rendering and streaming pipeline across frames.
        time_s = max(remote_time, comm_time)
        return FrameCost(time_s=time_s, energy_j=comm_energy,
                         stage_times={"remote_render": remote_time,
                                      "communication": comm_time},
                         energy_parts={"wireless": comm_energy})

    # -- Cicero: offload reference frames only ------------------------------------------

    def price_sparw_remote(self, workloads: SparwWorkloads, variant: str,
                           frame_bytes: int) -> FrameCost:
        """Reference frames remote, target frames local, overlapped."""
        target = self.soc.price_nerf(workloads.target, variant)
        reference = self.soc.price_nerf(workloads.reference, variant)
        remote_ref_time = (reference.time_s / self.config.remote_speedup
                           / max(workloads.window, 1))

        link_bytes = self.config.frame_bytes_on_link(frame_bytes)
        comm_time = self.energy.wireless_latency(link_bytes) / max(
            workloads.window, 1)
        comm_energy = self.energy.wireless_energy(link_bytes) / max(
            workloads.window, 1)

        # Off-trajectory references let remote rendering and the local
        # target path overlap (Fig. 11b): latency is the slower of the two.
        time_s = max(target.time_s, remote_ref_time + comm_time)
        energy_j = target.energy_j + comm_energy  # device-side energy
        stage_times = dict(target.stage_times)
        stage_times["remote_reference"] = remote_ref_time
        stage_times["communication"] = comm_time
        parts = dict(target.energy_parts)
        parts["wireless"] = comm_energy
        return FrameCost(time_s=time_s, energy_j=energy_j,
                         stage_times=stage_times, energy_parts=parts)
