"""Prior NeRF accelerators: NeuRex and NGPC analytic models (Fig. 24).

Both accelerate Instant-NGP-style hash-grid rendering.  Following the
paper's own methodology (it re-implemented NGPC from its description and
converted NeuRex's reported numbers), we model each from its published
architecture:

* **NeuRex** (ISCA'23): 32x32 PE array and a 64 KB feature buffer whose
  banked SRAM keeps the *feature-major* layout — so run-time bank conflicts
  dilate gathering (the 2x gap to Cicero the paper attributes to conflicts).
  Feature traffic still goes through DRAM pixel-centrically.
* **NGPC** (ISCA'23): 24x24 PEs with a 16 MB on-chip feature store — all
  gather traffic stays on-chip and conflict-free (one bank per level), but
  the buffer is unrealistically large for mobile and there is no SPARW-style
  work reduction.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..memsys.dram import DRAMModel
from ..memsys.energy import DEFAULT_ENERGY, EnergyModel
from .gpu import GPUConfig, GPUModel
from .gu import GatheringUnitModel, GUConfig
from .npu import NPUConfig, NPUModel
from .soc import FrameCost
from .workload import FrameWorkload

__all__ = ["NeuRexModel", "NGPCModel"]


@dataclass(frozen=True)
class _RivalConfig:
    array_rows: int
    array_cols: int
    feature_buffer_bytes: int


class _RivalBase:
    """Shared pricing skeleton: GPU indexing + dedicated gather + PE array."""

    def __init__(self, array_rows: int, array_cols: int,
                 energy: EnergyModel | None = None):
        self.energy = energy or DEFAULT_ENERGY
        self.gpu = GPUModel(GPUConfig(), self.energy)
        self.npu = NPUModel(NPUConfig(array_rows=array_rows,
                                      array_cols=array_cols), self.energy)
        self.gather = GatheringUnitModel(GUConfig(), self.energy)
        self.dram = DRAMModel(energy=self.energy)

    def _price(self, workload: FrameWorkload, gather_slowdown: float,
               dram_traffic) -> FrameCost:
        t_index = self.gpu.indexing_time(workload)
        gu_cost = self.gather.gather_cost(workload)
        t_gather_engine = gu_cost.time_s * gather_slowdown
        dram_cost = self.dram.cost_of_bytes(dram_traffic.streaming_bytes,
                                            dram_traffic.random_bytes)
        t_gather = max(t_gather_engine, dram_cost.time_s)
        t_compute = self.npu.computation_time(workload)

        e_gpu = t_index * self.gpu.config.average_power_w
        e_parts = {
            "gpu": e_gpu,
            "compute": self.npu.computation_energy(workload),
            "gather": gu_cost.energy_j * gather_slowdown,
            "dram": dram_cost.energy_j,
        }
        return FrameCost(
            time_s=t_index + t_gather + t_compute,
            energy_j=sum(e_parts.values()),
            stage_times={"indexing": t_index, "gathering": t_gather,
                         "computation": t_compute, "dram": dram_cost.time_s},
            energy_parts=e_parts,
        )


class NeuRexModel(_RivalBase):
    """NeuRex: bigger PE array, feature-major buffer with bank conflicts."""

    name = "neurex"

    def __init__(self, energy: EnergyModel | None = None):
        super().__init__(array_rows=32, array_cols=32, energy=energy)

    def price_frame(self, workload: FrameWorkload) -> FrameCost:
        """Gathering dilates by the measured feature-major conflict slowdown."""
        return self._price(workload,
                           gather_slowdown=workload.gather_conflict_slowdown,
                           dram_traffic=workload.baseline_traffic)


class NGPCModel(_RivalBase):
    """NGPC: same PE count as Cicero, 16 MB on-chip feature store."""

    name = "ngpc"
    feature_buffer_bytes = 16 * 1024 * 1024

    def __init__(self, energy: EnergyModel | None = None):
        super().__init__(array_rows=24, array_cols=24, energy=energy)

    def price_frame(self, workload: FrameWorkload) -> FrameCost:
        """Conflict-free per-level banks; feature traffic never leaves chip."""
        from .workload import GatherTraffic
        no_dram = GatherTraffic(0.0, 0.0)
        return self._price(workload, gather_slowdown=1.0, dram_traffic=no_dram)
