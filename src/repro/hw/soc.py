"""SoC composition: pricing frames on the baseline and Cicero variants.

The SoC (Fig. 14) couples a mobile GPU, a systolic-array NPU, and — in the
full Cicero configuration — the Gathering Unit.  This module prices a frame
workload under the paper's evaluation variants:

====================  ========================================================
 variant               meaning
====================  ========================================================
 ``gpu``               pure software on the mobile GPU (Sec. VI-B baseline)
 ``baseline``          GPU for I+G, NPU for F (the paper's main baseline)
 ``sparw``             baseline hardware + SPARW workloads
 ``sparw_fs``          + fully-streaming DRAM traffic
 ``cicero``            + Gathering Unit (conflict-free gather)
====================  ========================================================

Latency composition: indexing and warping run on the GPU; gathering runs on
the GPU or GU overlapped with its DRAM traffic (double buffering, so the
stage costs ``max(engine, DRAM)``); feature computation runs on the GPU or
NPU.  SPARW sequences charge one reference frame per window on top of every
target frame (local rendering serialises them — the resource contention the
paper notes; remote rendering offloads them, see :mod:`repro.hw.remote`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..memsys.dram import DRAMModel
from ..memsys.energy import DEFAULT_ENERGY, EnergyModel
from .gpu import GPUConfig, GPUModel
from .gu import GatheringUnitModel, GUConfig
from .npu import NPUConfig, NPUModel
from .workload import FrameWorkload

__all__ = ["FrameCost", "SparwWorkloads", "SoCModel", "VARIANTS"]

VARIANTS = ("gpu", "baseline", "sparw", "sparw_fs", "cicero")


@dataclass
class FrameCost:
    """Latency and energy of one frame, with per-stage visibility."""

    time_s: float = 0.0
    energy_j: float = 0.0
    stage_times: dict = field(default_factory=dict)
    energy_parts: dict = field(default_factory=dict)

    def merge(self, other: "FrameCost") -> "FrameCost":
        stages = dict(self.stage_times)
        for k, v in other.stage_times.items():
            stages[k] = stages.get(k, 0.0) + v
        parts = dict(self.energy_parts)
        for k, v in other.energy_parts.items():
            parts[k] = parts.get(k, 0.0) + v
        return FrameCost(time_s=self.time_s + other.time_s,
                         energy_j=self.energy_j + other.energy_j,
                         stage_times=stages, energy_parts=parts)

    def scaled(self, factor: float) -> "FrameCost":
        return FrameCost(
            time_s=self.time_s * factor,
            energy_j=self.energy_j * factor,
            stage_times={k: v * factor for k, v in self.stage_times.items()},
            energy_parts={k: v * factor for k, v in self.energy_parts.items()},
        )


@dataclass
class SparwWorkloads:
    """Per-window workload split of a SPARW sequence.

    ``target`` is the *average per-frame* lightweight path (warp + sparse
    NeRF); ``reference`` is one full-frame NeRF render, amortised over
    ``window`` target frames.
    """

    target: FrameWorkload
    reference: FrameWorkload
    window: int


class SoCModel:
    """Prices workloads under the five evaluation variants."""

    def __init__(self, gpu: GPUConfig | None = None,
                 npu: NPUConfig | None = None,
                 gu: GUConfig | None = None,
                 dram: DRAMModel | None = None,
                 energy: EnergyModel | None = None,
                 feature_dim: int = 16):
        self.energy = energy or DEFAULT_ENERGY
        self.gpu = GPUModel(gpu, self.energy)
        self.npu = NPUModel(npu, self.energy)
        self.gu = GatheringUnitModel(gu, self.energy, feature_dim=feature_dim)
        self.dram = dram or DRAMModel(energy=self.energy)

    # -- single NeRF render (full frame or sparse batch) ---------------------------

    def price_nerf(self, workload: FrameWorkload, variant: str) -> FrameCost:
        """Price one NeRF rendering pass (I + G + F) under a variant."""
        if variant not in VARIANTS:
            raise ValueError(f"unknown variant {variant!r}; one of {VARIANTS}")
        use_npu = variant != "gpu"
        use_gu = variant == "cicero"
        use_fs = variant in ("sparw_fs", "cicero")

        traffic = (workload.streaming_traffic if use_fs
                   else workload.baseline_traffic)
        dram_cost = self.dram.cost_of_bytes(traffic.streaming_bytes,
                                            traffic.random_bytes)

        t_index = self.gpu.indexing_time(workload)
        t_warp = self.gpu.warping_time(workload)

        if use_gu:
            gu_cost = self.gu.gather_cost(workload)
            t_gather_engine = gu_cost.time_s
            e_gather = gu_cost.energy_j
            gpu_busy = t_index + t_warp
        else:
            effective = workload
            if use_fs:
                # Streaming removes the random-DRAM latency penalty but the
                # GPU's banked buffers still suffer layout conflicts.
                effective = _with_traffic(workload, traffic)
            t_gather_engine = self.gpu.gathering_time(effective)
            e_gather = self.energy.sram_energy(workload.gather_bytes)
            gpu_busy = t_index + t_warp + t_gather_engine

        t_gather = max(t_gather_engine, dram_cost.time_s)

        if use_npu:
            t_compute = self.npu.computation_time(workload)
            e_compute = self.npu.computation_energy(workload)
        else:
            t_compute = self.gpu.computation_time(workload)
            e_compute = 0.0  # folded into GPU power-x-time below
            gpu_busy += t_compute

        e_gpu = gpu_busy * self.gpu.config.average_power_w
        e_rit = self.energy.sram_energy(2.0 * workload.rit_bytes)

        stage_times = {
            "indexing": t_index,
            "gathering": t_gather,
            "computation": t_compute,
            "warping": t_warp,
            "dram": dram_cost.time_s,
        }
        energy_parts = {
            "gpu": e_gpu,
            "compute": e_compute,
            "gather": e_gather,
            "dram": dram_cost.energy_j,
            "interconnect": e_rit,
        }
        total_time = t_index + t_warp + t_gather + t_compute
        total_energy = sum(energy_parts.values())
        return FrameCost(time_s=total_time, energy_j=total_energy,
                         stage_times=stage_times, energy_parts=energy_parts)

    # -- SPARW sequences (local rendering) -------------------------------------------

    def price_sparw_local(self, workloads: SparwWorkloads,
                          variant: str) -> FrameCost:
        """Average per-frame cost of a SPARW window rendered locally.

        Reference and target rendering contend for the same GPU/NPU, so the
        reference's cost is serialised and amortised over the window
        (Sec. VI-C's resource-contention observation).
        """
        target = self.price_nerf(workloads.target, variant)
        reference = self.price_nerf(workloads.reference, variant)
        return target.merge(reference.scaled(1.0 / max(workloads.window, 1)))

    def price_baseline_frame(self, full_frame: FrameWorkload,
                             variant: str = "baseline") -> FrameCost:
        """Cost of rendering every frame with full NeRF (no SPARW)."""
        return self.price_nerf(full_frame, variant)


def _with_traffic(workload: FrameWorkload, traffic) -> FrameWorkload:
    """Clone a workload with its baseline traffic replaced (for FS gather)."""
    clone = FrameWorkload(**{**workload.__dict__})
    clone.baseline_traffic = traffic
    return clone
