"""Gathering Unit (GU) model — the paper's hardware contribution (Sec. IV-C).

The GU replaces GPU feature gathering.  Its Vertex Feature Table (VFT) holds
one MVoxel in B single-ported-crossbar-free SRAM arrays (channel-major
layout), each with M ports; B x M reducers perform trilinear interpolation.
Per the paper: reading one ray sample's voxel takes 8 cycles (8 vertex
vectors), and M samples proceed in parallel — conflict-free by construction,
which tests verify against the banked-SRAM simulator.

Energy scales with VFT size: larger buffers cost more per access (bitline
capacitance), which produces the Fig. 23 sweep shape.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.layout.sram_layout import ChannelMajorLayout
from ..memsys.energy import DEFAULT_ENERGY, EnergyModel
from .workload import FrameWorkload

__all__ = ["GUConfig", "GUCost", "GatheringUnitModel"]


@dataclass(frozen=True)
class GUConfig:
    """Gathering Unit parameters (paper defaults from Sec. V)."""

    num_banks: int = 32
    ports_per_bank: int = 2
    vft_bytes: int = 32 * 1024
    rit_entries: int = 128
    rit_entry_bytes: int = 48
    clock_hz: float = 1.0e9
    # Relative SRAM energy vs the 32 KB reference point as a function of
    # capacity: E ~ (size/32KB)^alpha captures longer bitlines/wordlines.
    vft_reference_bytes: int = 32 * 1024
    vft_energy_exponent: float = 0.5
    # Below ~8 KB the periphery (sense amps, decoders) dominates and shrinking
    # further stops helping; modelled as an energy floor.
    vft_energy_floor: float = 0.9

    @property
    def rit_buffer_bytes(self) -> int:
        # Double-buffered RIT (two 6 KB halves at the defaults).
        return 2 * self.rit_entries * self.rit_entry_bytes


@dataclass
class GUCost:
    """Latency + energy of a GU gather pass."""

    cycles: int
    time_s: float
    energy_j: float
    sram_bytes: int


class GatheringUnitModel:
    """Prices Feature Gathering (G) on the GU."""

    def __init__(self, config: GUConfig | None = None,
                 energy: EnergyModel | None = None,
                 feature_dim: int = 16):
        self.config = config or GUConfig()
        self.energy = energy or DEFAULT_ENERGY
        self.layout = ChannelMajorLayout(
            num_banks=self.config.num_banks,
            ports_per_bank=self.config.ports_per_bank,
            feature_dim=feature_dim,
        )

    def _vft_energy_scale(self) -> float:
        ratio = self.config.vft_bytes / self.config.vft_reference_bytes
        return max(ratio ** self.config.vft_energy_exponent,
                   self.config.vft_energy_floor)

    def gather_cost(self, workload: FrameWorkload) -> GUCost:
        """Cycles/energy to gather+interpolate every sample's vertices."""
        samples = workload.num_samples
        vertices = max(int(round(workload.vertices_per_sample)), 1)
        cycles = self.layout.analytic_cycles(samples, vertices)
        time_s = cycles / self.config.clock_hz

        sram_bytes = workload.gather_bytes  # each vertex vector read once
        # RIT entries are written by DMA and read by address generation.
        if workload.rit_bytes:
            rit_bytes = 2 * workload.rit_bytes
        else:
            rit_bytes = 2 * samples * self.config.rit_entry_bytes
        energy_j = (self.energy.sram_energy(sram_bytes) * self._vft_energy_scale()
                    + self.energy.sram_energy(rit_bytes))
        return GUCost(cycles=cycles, time_s=time_s, energy_j=energy_j,
                      sram_bytes=sram_bytes)

    def area_overhead_mm2(self) -> float:
        """SRAM-dominated area estimate of the GU add-ons (Sec. V: ~0.048)."""
        kb = (self.config.vft_bytes + self.config.rit_buffer_bytes) / 1024.0
        # ~0.0011 mm^2 per KB of compiled SRAM at 12 nm, matching the paper's
        # 44 KB ~= 0.048 mm^2 accounting.
        return kb * 0.0011
