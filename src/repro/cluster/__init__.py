"""Open-loop cluster serving: arrivals, admission, placement, autoscaling.

Where :mod:`repro.engine` serves a *fixed* session set on one SoC, this
package simulates a *fleet*: sessions arrive over virtual time from a
seeded arrival process, an admission controller bounds per-worker queue
depth, a placement policy assigns each admitted session to a worker (the
``cache_affinity`` policy co-locates sessions sharing a workload
``cache_key`` on the worker whose reference cache already holds their
content), and each worker renders through its own multi-session engine
and prices frames on its own SoC model.  An optional autoscaler grows and
shrinks the fleet on load.  Entire runs are deterministic per seed.
"""

from .admission import (
    REJECT_NO_WORKERS,
    REJECT_QUEUE_FULL,
    AdmissionController,
    AdmissionStats,
)
from .arrivals import (
    ARRIVAL_KINDS,
    Arrival,
    deterministic_arrivals,
    diurnal_arrivals,
    load_arrival_trace,
    make_arrivals,
    poisson_arrivals,
    replay_arrivals,
    save_arrival_trace,
)
from .autoscale import Autoscaler, ScaleEvent
from .placement import (
    PLACEMENTS,
    CacheAffinityPlacement,
    LeastLoadedPlacement,
    RoundRobinPlacement,
    ShardAffinityPlacement,
    make_placement,
    rendezvous_score,
)
from .simulator import ClusterReport, ClusterSimulator, simulate_cluster
from .worker import PlacedSession, Worker

__all__ = [
    "REJECT_NO_WORKERS",
    "REJECT_QUEUE_FULL",
    "AdmissionController",
    "AdmissionStats",
    "ARRIVAL_KINDS",
    "Arrival",
    "deterministic_arrivals",
    "diurnal_arrivals",
    "load_arrival_trace",
    "make_arrivals",
    "poisson_arrivals",
    "replay_arrivals",
    "save_arrival_trace",
    "Autoscaler",
    "ScaleEvent",
    "PLACEMENTS",
    "CacheAffinityPlacement",
    "LeastLoadedPlacement",
    "RoundRobinPlacement",
    "ShardAffinityPlacement",
    "make_placement",
    "rendezvous_score",
    "ClusterReport",
    "ClusterSimulator",
    "simulate_cluster",
    "PlacedSession",
    "Worker",
]
