"""Reactive autoscaling: grow the fleet under load, shrink it when idle.

The autoscaler is evaluated at every simulator event (arrival or frame
completion) and reacts to *mean load per provisioned worker* — resident
sessions divided by live-plus-booting capacity, so a worker already on its
way up suppresses further scale-ups.  Scale-up pays a provisioning
latency (the new worker only starts taking sessions ``scale_up_latency_s``
after the decision); scale-down retires an idle worker immediately.  A
cooldown separates consecutive actions so one burst doesn't thrash the
fleet size.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ScaleEvent", "Autoscaler"]


@dataclass(frozen=True)
class ScaleEvent:
    """One autoscaler decision, for the cluster report's timeline."""

    time_s: float
    action: str  # "up_requested", "up_completed", or "down"
    workers: int  # live worker count after the action took effect


class Autoscaler:
    """Threshold autoscaler over queue depth, with scale-up latency.

    ``up_load`` is mean resident sessions per provisioned worker.
    Admission caps that mean at the controller's ``queue_limit``, so
    ``up_load`` must sit *below* the queue limit or scale-up is
    unreachable and overload is shed as rejects instead (the harness
    couples the two; direct constructors must too).
    """

    def __init__(self, min_workers: int = 1, max_workers: int = 8,
                 up_load: float = 2.0, down_load: float = 0.25,
                 scale_up_latency_s: float = 1.0, cooldown_s: float = 1.0):
        if min_workers < 1:
            raise ValueError("min_workers must be >= 1")
        if max_workers < min_workers:
            raise ValueError("max_workers must be >= min_workers")
        if down_load >= up_load:
            raise ValueError("down_load must be < up_load (hysteresis)")
        if scale_up_latency_s < 0.0 or cooldown_s < 0.0:
            raise ValueError("latencies must be >= 0")
        self.min_workers = min_workers
        self.max_workers = max_workers
        self.up_load = up_load
        self.down_load = down_load
        self.scale_up_latency_s = scale_up_latency_s
        self.cooldown_s = cooldown_s
        self.events: list = []
        self._last_action_s = float("-inf")

    def evaluate(self, now_s: float, live_workers: list, booting: int):
        """Decide at ``now_s``: ``("up", ready_time)``, ``("down", worker)``,
        or ``None``.

        ``live_workers`` are the fleet's live :class:`~.worker.Worker`
        objects; ``booting`` counts scale-ups still provisioning.
        """
        if now_s - self._last_action_s < self.cooldown_s:
            return None
        provisioned = len(live_workers) + booting
        if provisioned < 1:
            return None
        resident = sum(w.load for w in live_workers)
        mean_load = resident / provisioned
        if mean_load > self.up_load and provisioned < self.max_workers:
            self._last_action_s = now_s
            self.events.append(ScaleEvent(now_s, "up_requested",
                                          len(live_workers)))
            return ("up", now_s + self.scale_up_latency_s)
        if (mean_load < self.down_load and booting == 0
                and len(live_workers) > self.min_workers):
            # Retire the youngest idle worker (latest start, then spawn
            # order) so the fleet shrinks last-in-first-out.
            idle = [w for w in live_workers
                    if w.load == 0 and w.busy_until_s <= now_s]
            if idle:
                worker = max(idle, key=lambda w: (w.started_s, w.index))
                self._last_action_s = now_s
                self.events.append(ScaleEvent(now_s, "down",
                                              len(live_workers) - 1))
                return ("down", worker)
        return None

    def record_up_completed(self, now_s: float, live_count: int) -> None:
        """Log that a provisioned worker finished booting and took load."""
        self.events.append(ScaleEvent(now_s, "up_completed", live_count))
