"""Placement policies: which worker an admitted session lands on.

Policies see only the admission-eligible workers (live, queue not full),
always presented in stable ``worker_id`` order, and are fully
deterministic — the cluster simulator's reproducibility contract extends
through placement.

``cache_affinity`` is the cluster-level payoff of the shared reference
cache: it rendezvous-hashes the session's content-addressed
:meth:`~repro.workloads.WorkloadSpec.cache_key`, so sessions viewing the
same content co-locate on the worker whose ``REFERENCE_CACHE`` already
holds their reference renders — and, because rendezvous (highest-random-
weight) hashing scores every worker independently, affinity survives the
autoscaler growing or shrinking the fleet.
"""

from __future__ import annotations

import hashlib

__all__ = ["rendezvous_score", "RoundRobinPlacement",
           "LeastLoadedPlacement", "CacheAffinityPlacement",
           "ShardAffinityPlacement", "PLACEMENTS", "make_placement"]


def rendezvous_score(key: str, member: str) -> str:
    """Highest-random-weight score of ``member`` for ``key``.

    The single scoring function behind both :class:`CacheAffinityPlacement`
    and the sharded field tier's :class:`~repro.distribution.ShardMap`, so
    "the worker a session is affine to" and "the primary owner of its
    baked field" always agree.
    """
    return hashlib.sha1(f"{key}|{member}".encode()).hexdigest()


class RoundRobinPlacement:
    """Cycle over eligible workers in id order, one step per placement."""

    name = "round_robin"

    def __init__(self):
        self._next = 0

    def choose(self, cache_key: str | None, workers: list):
        """Cycle through the open workers in order."""
        worker = workers[self._next % len(workers)]
        self._next += 1
        return worker


class LeastLoadedPlacement:
    """Fewest resident sessions wins; ties fall back to worker id."""

    name = "least_loaded"

    def choose(self, cache_key: str | None, workers: list):
        """Pick the worker with the fewest resident sessions (ties by id)."""
        return min(workers, key=lambda w: (w.load, w.worker_id))


class CacheAffinityPlacement:
    """Rendezvous-hash the workload's cache key onto the fleet.

    Every eligible worker gets a score ``H(cache_key | worker_id)``; the
    highest score wins.  Sessions sharing a cache key therefore agree on
    a preferred worker (and on the fallback ranking when that worker is
    full or gone), without any shared mutable state.
    """

    name = "cache_affinity"

    @staticmethod
    def _score(cache_key: str, worker_id: str) -> str:
        return rendezvous_score(cache_key, worker_id)

    def choose(self, cache_key: str | None, workers: list):
        """Rendezvous-hash the content key onto the live fleet."""
        if cache_key is None:  # nothing to be affine to
            return LeastLoadedPlacement().choose(cache_key, workers)
        return max(workers, key=lambda w: self._score(cache_key, w.worker_id))


class ShardAffinityPlacement:
    """Load-first placement that breaks ties toward field holders.

    When a :class:`~repro.distribution.ShardedFieldStore` is attached
    (``self.store``, wired by the cluster simulator), the policy picks
    the least-loaded eligible worker, preferring — at equal load — one
    whose caches already hold the session's baked field (a free local
    hit instead of a shard transfer).  Load stays primary because the
    shard tier makes misses cheap: once any worker has baked a field,
    every other worker can transfer it in milliseconds, so chasing
    residency at the cost of queueing behind a busy holder is a bad
    trade.  Cold keys are also load-balanced — a bake seeds the
    rendezvous owner set wherever it runs.

    Without a store it degrades to :class:`CacheAffinityPlacement`'s
    rendezvous choice, so the policy is safe to select on un-sharded
    runs.
    """

    name = "shard_affinity"

    def __init__(self):
        self.store = None

    def choose(self, cache_key: str | None, workers: list):
        """Least-loaded eligible worker, holders first on ties."""
        if cache_key is None:
            return LeastLoadedPlacement().choose(cache_key, workers)
        if self.store is not None:
            holder_ids = self.store.holders(cache_key)
            return min(workers,
                       key=lambda w: (w.load, w.worker_id not in holder_ids,
                                      w.worker_id))
        return max(workers,
                   key=lambda w: rendezvous_score(cache_key, w.worker_id))


PLACEMENTS = {
    policy.name: policy
    for policy in (RoundRobinPlacement, LeastLoadedPlacement,
                   CacheAffinityPlacement, ShardAffinityPlacement)
}


def make_placement(name: str):
    """Placement policy instance by name (see :data:`PLACEMENTS`)."""
    try:
        return PLACEMENTS[name]()
    except KeyError:
        raise ValueError(f"unknown placement policy {name!r}; one of "
                         f"{tuple(sorted(PLACEMENTS))}") from None
