"""Placement policies: which worker an admitted session lands on.

Policies see only the admission-eligible workers (live, queue not full),
always presented in stable ``worker_id`` order, and are fully
deterministic — the cluster simulator's reproducibility contract extends
through placement.

``cache_affinity`` is the cluster-level payoff of the shared reference
cache: it rendezvous-hashes the session's content-addressed
:meth:`~repro.workloads.WorkloadSpec.cache_key`, so sessions viewing the
same content co-locate on the worker whose ``REFERENCE_CACHE`` already
holds their reference renders — and, because rendezvous (highest-random-
weight) hashing scores every worker independently, affinity survives the
autoscaler growing or shrinking the fleet.
"""

from __future__ import annotations

import hashlib

__all__ = ["RoundRobinPlacement", "LeastLoadedPlacement",
           "CacheAffinityPlacement", "PLACEMENTS", "make_placement"]


class RoundRobinPlacement:
    """Cycle over eligible workers in id order, one step per placement."""

    name = "round_robin"

    def __init__(self):
        self._next = 0

    def choose(self, cache_key: str | None, workers: list):
        """Cycle through the open workers in order."""
        worker = workers[self._next % len(workers)]
        self._next += 1
        return worker


class LeastLoadedPlacement:
    """Fewest resident sessions wins; ties fall back to worker id."""

    name = "least_loaded"

    def choose(self, cache_key: str | None, workers: list):
        """Pick the worker with the fewest resident sessions (ties by id)."""
        return min(workers, key=lambda w: (w.load, w.worker_id))


class CacheAffinityPlacement:
    """Rendezvous-hash the workload's cache key onto the fleet.

    Every eligible worker gets a score ``H(cache_key | worker_id)``; the
    highest score wins.  Sessions sharing a cache key therefore agree on
    a preferred worker (and on the fallback ranking when that worker is
    full or gone), without any shared mutable state.
    """

    name = "cache_affinity"

    @staticmethod
    def _score(cache_key: str, worker_id: str) -> str:
        return hashlib.sha1(f"{cache_key}|{worker_id}".encode()).hexdigest()

    def choose(self, cache_key: str | None, workers: list):
        """Rendezvous-hash the content key onto the live fleet."""
        if cache_key is None:  # nothing to be affine to
            return LeastLoadedPlacement().choose(cache_key, workers)
        return max(workers, key=lambda w: self._score(cache_key, w.worker_id))


PLACEMENTS = {
    policy.name: policy
    for policy in (RoundRobinPlacement, LeastLoadedPlacement,
                   CacheAffinityPlacement)
}


def make_placement(name: str):
    """Placement policy instance by name (see :data:`PLACEMENTS`)."""
    try:
        return PLACEMENTS[name]()
    except KeyError:
        raise ValueError(f"unknown placement policy {name!r}; one of "
                         f"{tuple(sorted(PLACEMENTS))}") from None
