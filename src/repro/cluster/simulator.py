"""Event-driven open-loop cluster simulation over many SoC workers.

The simulator owns a shared virtual clock and a single event heap:
arrivals enter from an arrival schedule, admission bounds per-worker
queue depth, a placement policy picks the worker, and each worker serves
its sessions' frame streams one priced frame at a time (costs from
:func:`~repro.hw.serving.price_session_frames` on the worker's SoC).  An
optional autoscaler grows/shrinks the fleet between events.

Everything is deterministic: the only randomness lives in the seeded
arrival schedule, events at equal times order by a fixed kind priority
then insertion sequence, and rendering itself is bit-deterministic — so
one seed reproduces an identical :class:`ClusterReport`.
"""

from __future__ import annotations

import heapq
from contextlib import nullcontext
from dataclasses import dataclass, field

from ..metrics.stats import mean_or_zero as _mean
from ..metrics.stats import percentile_or_zero as _percentile
from ..obs.runtime import current_metrics, current_tracer
from .admission import REJECT_QUEUE_FULL, AdmissionController
from .arrivals import make_arrivals
from .autoscale import Autoscaler
from .placement import make_placement
from .worker import Worker

__all__ = ["ClusterReport", "ClusterSimulator", "simulate_cluster"]

# Equal-time event ordering: a booted worker becomes placeable before the
# frame/arrival work at that instant, completions free workers before new
# arrivals are placed, and wakes run last (they only re-poll).
_P_WORKER_UP = 0
_P_FRAME_DONE = 1
_P_ARRIVAL = 2
_P_WAKE = 3


@dataclass
class ClusterReport:
    """Cluster-wide service metrics of one simulated run (JSON-able)."""

    placement: str
    arrivals: str
    seed: int
    queue_limit: int
    workers_initial: int
    workers_final: int
    arrivals_total: int
    admitted: int
    rejected: int
    reject_rate: float
    reject_reasons: dict
    completed_sessions: int
    total_frames: int
    total_references: int
    makespan_s: float
    aggregate_fps: float
    ttff_mean_s: float
    ttff_p95_s: float
    mean_latency_s: float
    p50_latency_s: float
    p95_latency_s: float
    p99_latency_s: float
    worst_latency_s: float
    mean_utilization: float
    total_busy_s: float
    total_energy_j: float
    ref_cache_hits: int
    ref_cache_misses: int
    ref_cache_hit_rate: float
    per_worker: list = field(default_factory=list)
    scale_events: list = field(default_factory=list)
    # Quality-governor accounting (defaults describe an ungoverned run).
    governor: str = "off"
    overflow_admissions: int = 0
    tier_transitions: int = 0
    mean_quality_level: float = 0.0
    quality_by_level: dict = field(default_factory=dict)
    governor_events: list = field(default_factory=list)
    # Sharded-field-tier accounting (repro.distribution): flat scalars —
    # catalog size, per-tier hit counters, hierarchy hit rate, and the
    # TTFF bake/transfer/queue split.  Empty on un-sharded runs so the
    # report (and its goldens) keeps its exact legacy shape.
    distribution: dict = field(default_factory=dict)

    def summary(self) -> dict:
        """Flat aggregate row for tables and ``BENCH_cluster.json``."""
        out = {
            "arrivals": self.arrivals,
            "placement": self.placement,
            "seed": self.seed,
            "workers_initial": self.workers_initial,
            "workers_final": self.workers_final,
            "arrivals_total": self.arrivals_total,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "reject_rate": self.reject_rate,
            "reject_queue_full": self.reject_reasons.get("queue_full", 0),
            "reject_no_workers": self.reject_reasons.get("no_workers", 0),
            "completed_sessions": self.completed_sessions,
            "total_frames": self.total_frames,
            "makespan_s": self.makespan_s,
            "aggregate_fps": self.aggregate_fps,
            "ttff_mean_ms": self.ttff_mean_s * 1e3,
            "ttff_p95_ms": self.ttff_p95_s * 1e3,
            "mean_latency_ms": self.mean_latency_s * 1e3,
            "p50_latency_ms": self.p50_latency_s * 1e3,
            "p95_latency_ms": self.p95_latency_s * 1e3,
            "p99_latency_ms": self.p99_latency_s * 1e3,
            "worst_latency_ms": self.worst_latency_s * 1e3,
            "mean_utilization": self.mean_utilization,
            "total_busy_s": self.total_busy_s,
            "total_energy_j": self.total_energy_j,
            "joules_per_frame": (self.total_energy_j / self.total_frames
                                 if self.total_frames else 0.0),
            "ref_cache_hits": self.ref_cache_hits,
            "ref_cache_misses": self.ref_cache_misses,
            "ref_cache_hit_rate": self.ref_cache_hit_rate,
            "scale_ups": sum(1 for e in self.scale_events
                             if e["action"] == "up_completed"),
            "scale_downs": sum(1 for e in self.scale_events
                               if e["action"] == "down"),
            "governor": self.governor,
            "overflow_admissions": self.overflow_admissions,
            "tier_transitions": self.tier_transitions,
            "mean_quality_level": self.mean_quality_level,
        }
        if self.distribution:
            out.update(self.distribution)
        return out


class ClusterSimulator:
    """Deterministic discrete-event fleet of :class:`~.worker.Worker`\\ s."""

    def __init__(self, config, workers: int = 4,
                 placement: str = "least_loaded", queue_limit: int = 4,
                 frames: int | None = None, seed: int = 0,
                 autoscaler: Autoscaler | None = None,
                 use_cache: bool = True,
                 worker_cache_entries: int = 256,
                 worker_cache_bytes: int = 64 << 20,
                 governor=None, backend: str | None = None,
                 engine_workers: int | None = None, field_store=None):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.config = config
        # Optional ShardedFieldStore (repro.distribution): workers pay
        # tiered field-acquisition costs at admission, placement policies
        # with a ``store`` attribute see shard residency, and the report
        # gains the ``distribution`` block.
        self.field_store = field_store
        # Kernel backend every spawned Worker renders with (results are
        # backend-independent for the exact backends).
        self.backend = backend
        self.engine_workers = engine_workers
        self.frames = frames
        self.seed = seed  # offsets spec trajectory seeds (with_overrides)
        self.placement = (make_placement(placement)
                          if isinstance(placement, str) else placement)
        if self.field_store is not None and hasattr(self.placement, "store"):
            self.placement.store = self.field_store
        self.admission = AdmissionController(queue_limit)
        self.autoscaler = autoscaler
        # Optional ClusterGovernor: pressure-scaled admission levels,
        # SLO-driven retuning of residents, and overflow admission.
        self.governor = governor
        self.governor_events: list = []
        self.use_cache = use_cache
        self.workers: list = []
        self._worker_seq = 0
        self._worker_cache_entries = worker_cache_entries
        self._worker_cache_bytes = worker_cache_bytes
        for _ in range(workers):
            self._spawn(0.0)
        self.workers_initial = workers
        self._booting = 0
        self._session_seq = 0
        self._event_seq = 0
        self._heap: list = []
        self._makespan = 0.0
        # Observability sinks, refreshed at run() so an activation made
        # after construction still captures the run; None = no-op hooks.
        self._tracer = None
        self._metrics = None

    # -- fleet -------------------------------------------------------------------

    def _spawn(self, now_s: float) -> Worker:
        worker = Worker(f"w{self._worker_seq:02d}", self.config,
                        started_s=now_s, index=self._worker_seq,
                        cache_entries=self._worker_cache_entries,
                        cache_bytes=self._worker_cache_bytes,
                        use_cache=self.use_cache, backend=self.backend,
                        engine_workers=self.engine_workers,
                        field_store=self.field_store)
        self._worker_seq += 1
        self.workers.append(worker)
        if self.field_store is not None:
            self.field_store.register_worker(worker.worker_id)
        return worker

    def _live(self) -> list:
        return [w for w in self.workers if w.live]

    # -- event machinery ---------------------------------------------------------

    def _push(self, time_s: float, priority: int, kind: str, payload) -> None:
        heapq.heappush(self._heap,
                       (time_s, priority, self._event_seq, kind, payload))
        self._event_seq += 1

    def _dispatch(self, worker: Worker, now_s: float) -> None:
        """Re-poll a worker; start a frame or schedule its next wake."""
        action, payload = worker.poll(now_s)
        if action == "serve":
            completion = worker.start_frame(payload, now_s)
            self._push(completion, _P_FRAME_DONE, "frame_done",
                       (worker, payload))
        elif action == "wait":
            self._push(payload, _P_WAKE, "wake", worker)

    def _autoscale(self, now_s: float) -> None:
        if self.autoscaler is None:
            return
        decision = self.autoscaler.evaluate(now_s, self._live(),
                                            self._booting)
        if decision is None:
            return
        action, payload = decision
        if action == "up":
            self._booting += 1
            self._push(payload, _P_WORKER_UP, "worker_up", None)
            if self._metrics is not None:
                self._metrics.inc("cluster.scale_up_requests")
            if self._tracer is not None:
                self._control_instant("scale.up_requested", "cluster",
                                      now_s, "autoscaler",
                                      {"ready_s": payload})
        else:
            payload.retire(now_s)
            if self.field_store is not None:
                # Deterministic rebalance: the retiree's replicas vanish
                # and surviving owners take over lazily on next miss.
                self.field_store.remove_worker(payload.worker_id)
            if self._metrics is not None:
                self._metrics.inc("cluster.scale_downs")
                self._metrics.set("cluster.workers", len(self._live()))
            if self._tracer is not None:
                self._control_instant("scale.down", "cluster", now_s,
                                      "autoscaler",
                                      {"worker": payload.worker_id})

    def _on_arrival(self, now_s: float, arrival) -> None:
        # Overrides change the spec's content hash, so placement and the
        # worker must both see the same effective spec.
        spec = arrival.spec.with_overrides(frames=self.frames,
                                           seed_offset=self.seed)
        if self._metrics is not None:
            self._metrics.inc("cluster.arrivals")
        if self._tracer is not None:
            self._control_instant("cluster.arrival", "cluster", now_s,
                                  "arrivals", {"spec": spec.name})
        eligible, reason = self.admission.eligible(self._live())
        if reason == REJECT_QUEUE_FULL and self.governor is not None:
            # Graceful shedding: degrade the least-loaded worker's
            # residents and take the newcomer into an overflow slot at
            # its deepest allowed rung, instead of rejecting it.
            worker = self.governor.overflow_target(self._live())
            if worker is not None:
                self._shed(worker, now_s)
                self._admit(worker, spec, now_s,
                            level=spec.max_quality_level,
                            action="overflow_admit")
                return
        if reason is not None:
            self.admission.record_reject(reason)
            if self._metrics is not None:
                self._metrics.inc("cluster.rejected")
            if self._tracer is not None:
                self._control_instant("cluster.reject", "cluster", now_s,
                                      "arrivals", {"spec": spec.name,
                                                   "reason": reason})
            return
        worker = self.placement.choose(spec.cache_key(self.config), eligible)
        level = (self.governor.admission_level(spec, worker)
                 if self.governor is not None else 0)
        self._admit(worker, spec, now_s, level=level,
                    action="degraded_admit" if level else None)

    def _admit(self, worker: Worker, spec, now_s: float, level: int,
               action: str | None) -> None:
        session_id = f"a{self._session_seq:04d}-{spec.name}"
        self._session_seq += 1
        if self._metrics is not None:
            self._metrics.inc("cluster.admitted")
        if self._tracer is not None:
            self._control_instant("cluster.admit", "cluster", now_s,
                                  "arrivals",
                                  {"session": session_id,
                                   "worker": worker.worker_id,
                                   "level": level})
            pid = self._tracer.process(f"worker {worker.worker_id}")
            self._tracer.instant(
                "cluster.place", "cluster", now_s * 1e6, pid,
                self._tracer.thread(pid, session_id),
                args={"session": session_id, "level": level})
        with self._worker_scope(worker, now_s):
            placed = worker.admit(session_id, spec, now_s, level=level)
        if placed.fetch_kind == "bake":
            # A cold bake leaves the worker busy with no frame in
            # flight; without this wake nothing would re-poll it once
            # the heap drains.  (Transfers keep the worker free, so the
            # ordinary dispatch below schedules their wake.)
            self._push(worker.busy_until_s, _P_WAKE, "wake", worker)
            if self._tracer is not None:
                self._control_instant(
                    "field.bake", "field", now_s, "field",
                    {"session": session_id, "bake_s": placed.fetch_s})
        elif placed.fetch_s > 0.0 and self._tracer is not None:
            self._control_instant(
                "field.transfer", "field", now_s, "field",
                {"session": session_id, "transfer_s": placed.fetch_s})
        self.admission.record_admit()
        if self.governor is not None:
            self.governor.register(session_id, spec, level)
            if action is not None:
                self._governor_event(now_s, action, session_id, worker,
                                     level)
        self._dispatch(worker, now_s)

    def _shed(self, worker: Worker, now_s: float) -> None:
        """Degrade every retunable resident of ``worker`` by one rung."""
        for placed in list(worker.sessions):
            target = min(placed.level + 1, placed.spec.max_quality_level)
            if target == placed.level:
                continue
            with self._worker_scope(worker, now_s):
                retuned = worker.retune_session(placed, target)
            if retuned:
                self.governor.governor.pin(placed.session_id, target)
                self._governor_event(now_s, "shed_degrade",
                                     placed.session_id, worker, target)

    def _governor_event(self, now_s: float, action: str, session_id: str,
                        worker: Worker, level: int) -> None:
        self.governor_events.append({
            "t": now_s, "action": action, "session": session_id,
            "worker": worker.worker_id, "level": level})
        if self._metrics is not None:
            self._metrics.inc("governor.cluster_events")
        if self._tracer is not None:
            self._control_instant(f"governor.{action}", "governor", now_s,
                                  "governor",
                                  {"session": session_id,
                                   "worker": worker.worker_id,
                                   "level": level})

    # -- observability ----------------------------------------------------------
    #
    # All read-only: instants/spans on the virtual clock plus counter and
    # histogram bumps.  Every hook is a None check when nothing is active,
    # and nothing here feeds back into scheduling, so traced runs stay
    # bit-identical to untraced runs (tests/obs/test_obs_parity.py).

    def _control_instant(self, name: str, cat: str, now_s: float,
                         thread: str, args: dict | None = None) -> None:
        tracer = self._tracer
        pid = tracer.process("cluster")
        tracer.instant(name, cat, now_s * 1e6, pid,
                       tracer.thread(pid, thread), args=args)

    def _worker_scope(self, worker: Worker, now_s: float):
        """Context routing engine trace spans into the worker's lane."""
        if self._tracer is None:
            return nullcontext()
        return self._tracer.scope(f"worker {worker.worker_id}",
                                  base_us=now_s * 1e6)

    def _trace_frame(self, worker: Worker, session, now_s: float) -> None:
        """Emit wait/serve spans for the frame completing at ``now_s``."""
        k = session.next_frame
        request_s = session.request_time(k)
        start_s = now_s - session.frame_costs[k]
        latency_s = max(now_s - request_s, 0.0)
        if self._metrics is not None:
            self._metrics.inc("cluster.frames")
            self._metrics.observe("cluster.frame_latency_s", latency_s)
            if k == 0:
                self._metrics.observe("cluster.ttff_s",
                                      max(now_s - session.arrival_s, 0.0))
        tracer = self._tracer
        if tracer is None:
            return
        pid = tracer.process(f"worker {worker.worker_id}")
        tid = tracer.thread(pid, session.session_id)
        args = {"session": session.session_id, "frame": k,
                "latency_ms": latency_s * 1e3}
        tracer.complete("frame.wait", "frame", request_s * 1e6,
                        max(start_s - request_s, 0.0) * 1e6, pid, tid,
                        args=args)
        tracer.complete("frame.serve", "frame", start_s * 1e6,
                        (now_s - start_s) * 1e6, pid, tid, args=args)

    # -- run ---------------------------------------------------------------------

    def run(self, arrivals: list, label: str = "trace") -> ClusterReport:
        """Play an arrival schedule to completion; returns the report.

        The report records the constructor's ``seed`` (the one that
        offset the specs), so a run is replayable from its own report.
        """
        self._tracer = current_tracer()
        self._metrics = current_metrics()
        if self._metrics is not None:
            self._metrics.set("cluster.workers", len(self._live()))
        for arrival in sorted(arrivals, key=lambda a: a.time_s):
            self._push(arrival.time_s, _P_ARRIVAL, "arrival", arrival)
        while self._heap:
            now_s, _, _, kind, payload = heapq.heappop(self._heap)
            if kind == "arrival":
                self._on_arrival(now_s, payload)
                self._autoscale(now_s)
            elif kind == "frame_done":
                worker, session = payload
                self._trace_frame(worker, session, now_s)
                worker.finish_frame(session, now_s)
                self._makespan = max(self._makespan, now_s)
                if self.governor is not None and not session.done:
                    old_level = session.level
                    new_level = self.governor.on_frame(
                        session.session_id, session.latencies_s[-1])
                    if new_level is not None:
                        with self._worker_scope(worker, now_s):
                            retuned = worker.retune_session(session,
                                                            new_level)
                        if retuned:
                            self._governor_event(
                                now_s,
                                "degrade" if new_level > old_level else
                                "recover", session.session_id, worker,
                                new_level)
                self._dispatch(worker, now_s)
                self._autoscale(now_s)
            elif kind == "worker_up":
                self._booting -= 1
                worker = self._spawn(now_s)
                self.autoscaler.record_up_completed(now_s,
                                                    len(self._live()))
                if self._metrics is not None:
                    self._metrics.inc("cluster.scale_ups")
                    self._metrics.set("cluster.workers",
                                      len(self._live()))
                if self._tracer is not None:
                    self._control_instant("scale.up_completed", "cluster",
                                          now_s, "autoscaler",
                                          {"worker": worker.worker_id})
            else:  # wake
                self._dispatch(payload, now_s)
        return self._report(label)

    # -- reporting ---------------------------------------------------------------

    def _report(self, label: str) -> ClusterReport:
        placed_sessions = [s for w in self.workers
                           for s in (w.completed + w.sessions)]
        latencies = [lat for s in placed_sessions for lat in s.latencies_s]
        ttff = [s.first_frame_s - s.arrival_s for s in placed_sessions
                if s.first_frame_s is not None]
        makespan = self._makespan
        per_worker = [w.stats_row(makespan) for w in self.workers]
        total_frames = sum(w.frames_served for w in self.workers)
        hits = sum(w.reference_cache.stats.hits for w in self.workers)
        misses = sum(w.reference_cache.stats.misses for w in self.workers)
        lookups = hits + misses
        stats = self.admission.stats
        scale_events = ([{"t": e.time_s, "action": e.action,
                          "workers": e.workers}
                         for e in self.autoscaler.events]
                        if self.autoscaler is not None else [])
        # Frame-weighted quality accounting: which ladder rung every
        # served frame rendered at, bucketed per workload name.
        quality_by_level: dict = {}
        level_frames = level_sum = 0
        for session in placed_sessions:
            buckets = quality_by_level.setdefault(session.spec.name, {})
            for level in session.frame_levels:
                buckets[level] = buckets.get(level, 0) + 1
                level_frames += 1
                level_sum += level
        distribution: dict = {}
        if self.field_store is not None:
            store = self.field_store
            served = [s for s in placed_sessions
                      if s.first_frame_s is not None]
            # TTFF decomposition: the acquisition cost each session paid
            # (bake or transfer) vs everything else (queueing + first
            # frame's own service time).
            bake = [s.fetch_s if s.fetch_kind == "bake" else 0.0
                    for s in served]
            transfer = [s.fetch_s if s.fetch_kind == "shard" else 0.0
                        for s in served]
            queue = [(s.first_frame_s - s.arrival_s) - s.fetch_s
                     for s in served]
            distribution = {
                "catalog": store.catalog_size,
                "zipf_s": (store.zipf_s
                           if store.zipf_s is not None else 0.0),
                **store.stats(),
                "ttff_bake_mean_ms": _mean(bake) * 1e3,
                "ttff_transfer_mean_ms": _mean(transfer) * 1e3,
                "ttff_queue_mean_ms": _mean(queue) * 1e3,
            }
        return ClusterReport(
            placement=self.placement.name,
            arrivals=label,
            seed=self.seed,
            queue_limit=self.admission.queue_limit,
            workers_initial=self.workers_initial,
            workers_final=len(self._live()),
            arrivals_total=stats.arrivals,
            admitted=stats.admitted,
            rejected=stats.rejected,
            reject_rate=stats.reject_rate,
            reject_reasons=dict(stats.rejected_by_reason),
            completed_sessions=sum(len(w.completed) for w in self.workers),
            total_frames=total_frames,
            total_references=sum(s.references for s in placed_sessions),
            makespan_s=makespan,
            aggregate_fps=total_frames / makespan if makespan > 0 else 0.0,
            ttff_mean_s=_mean(ttff),
            ttff_p95_s=_percentile(ttff, 95),
            mean_latency_s=_mean(latencies),
            p50_latency_s=_percentile(latencies, 50),
            p95_latency_s=_percentile(latencies, 95),
            p99_latency_s=_percentile(latencies, 99),
            worst_latency_s=max(latencies, default=0.0),
            mean_utilization=_mean([row["utilization"]
                                    for row in per_worker]),
            total_busy_s=sum(w.busy_s for w in self.workers),
            total_energy_j=sum(w.energy_served_j for w in self.workers),
            ref_cache_hits=hits,
            ref_cache_misses=misses,
            ref_cache_hit_rate=hits / lookups if lookups else 0.0,
            per_worker=per_worker,
            scale_events=scale_events,
            governor=(self.governor.mode if self.governor is not None
                      else "off"),
            overflow_admissions=(self.governor.overflow_admissions
                                 if self.governor is not None else 0),
            tier_transitions=sum(s.transitions for s in placed_sessions),
            mean_quality_level=(level_sum / level_frames
                                if level_frames else 0.0),
            quality_by_level=quality_by_level,
            governor_events=list(self.governor_events),
            distribution=distribution,
        )


def simulate_cluster(mix, config, arrivals: str = "poisson",
                     rate_hz: float = 1.0, duration_s: float = 10.0,
                     seed: int = 0, workers: int = 4,
                     placement: str = "least_loaded", queue_limit: int = 4,
                     frames: int | None = None,
                     autoscaler: Autoscaler | None = None,
                     use_cache: bool = True,
                     governor: str = "off", slo_fps: float | None = None,
                     trace=None, backend: str | None = None,
                     engine_workers: int | None = None,
                     catalog: int | None = None,
                     zipf: float | None = None,
                     replication: int | None = None,
                     field_store=None,
                     **arrival_params) -> ClusterReport:
    """One-call cluster run: generate arrivals, simulate, report.

    ``mix`` is any serve mix (``"vr-lego:3,dolly-chair"`` or ``(spec,
    count)`` pairs); ``arrivals`` picks the process (``replay`` reads
    ``trace``).  ``seed`` drives the arrival schedule *and* offsets the
    specs' trajectory seeds.  ``governor`` attaches the SLO quality
    governor (``"static"`` or ``"adaptive"``); ``slo_fps`` rewrites every
    workload's SLO up front (:func:`repro.workloads.apply_slo`), so the
    governor reads exactly one SLO source — the specs.  Same arguments,
    same seed, same report — bit for bit.

    ``catalog`` switches on the sharded field tier: the mix expands into
    that many content-distinct variants under a ``zipf``-skewed
    popularity law (seeded from ``seed``), served through a
    :class:`~repro.distribution.ShardedFieldStore` with ``replication``
    replicas per baked field.  A pre-built ``field_store`` (with a
    matching pre-expanded mix) can be passed instead — the experiment
    runner does this so it sees the variant specs too.
    """
    if slo_fps is not None:
        from ..workloads import apply_slo
        mix = apply_slo(mix, slo_fps)
    if catalog is not None:
        from ..distribution import expand_field_serving
        mix, field_store = expand_field_serving(
            mix, config, catalog, zipf=zipf, replication=replication,
            seed=seed)
    elif zipf is not None or replication is not None:
        raise ValueError("zipf/replication require catalog "
                         "(the sharded field tier)")
    if arrivals == "replay":
        arrival_params["trace"] = trace
    schedule = make_arrivals(arrivals, mix, rate_hz=rate_hz,
                             duration_s=duration_s, seed=seed,
                             **arrival_params)
    cluster_governor = None
    if governor != "off":
        from ..control import ClusterGovernor
        cluster_governor = ClusterGovernor(config, mode=governor,
                                           queue_limit=queue_limit)
    simulator = ClusterSimulator(config, workers=workers,
                                 placement=placement,
                                 queue_limit=queue_limit, frames=frames,
                                 seed=seed, autoscaler=autoscaler,
                                 use_cache=use_cache,
                                 governor=cluster_governor,
                                 backend=backend,
                                 engine_workers=engine_workers,
                                 field_store=field_store)
    return simulator.run(schedule, label=arrivals)
