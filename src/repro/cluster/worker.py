"""SoC workers: one multi-session engine + reference cache + frame queue.

A :class:`Worker` is the cluster's unit of capacity.  Admitting a session
renders its sequence through the worker's own
:class:`~repro.engine.MultiSessionEngine` — against the worker-local
reference cache, so co-located sessions of the same workload share
reference renders — and prices every frame on the worker's SoC with
:func:`~repro.hw.serving.price_session_frames`.  The priced frames then
flow through the virtual-time frame queue: each session requests frame
``k`` at ``arrival + k / fps_target`` (the open-loop stream a real viewer
generates), frames are served one at a time in order per session, and the
worker picks the oldest ready request first.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..engine import MultiSessionEngine
from ..hw.serving import session_frame_costs
from ..hw.soc import SoCModel
from ..workloads import SharedLRUCache

__all__ = ["PlacedSession", "Worker"]


@dataclass
class PlacedSession:
    """One admitted session's serving state on its worker."""

    session_id: str
    spec: object
    worker_id: str
    arrival_s: float
    frame_costs: list
    fps_target: float
    frame_energies: list = field(default_factory=list)
    references: int = 0
    next_frame: int = 0
    last_completion_s: float = 0.0
    first_frame_s: float | None = None
    latencies_s: list = field(default_factory=list)
    # Quality-governor state: current ladder rung, the rung each frame
    # was rendered at, which frames carried a new reference render (so a
    # retune can re-account its tail exactly), and retune count.
    level: int = 0
    frame_levels: list = field(default_factory=list)
    frame_refs: list = field(default_factory=list)
    transitions: int = 0
    # Which cache tier served this session's baked field and what it
    # cost on the virtual clock ("local"/0.0 when no field store is
    # attached) — feeds the report's TTFF bake/transfer/queue split.
    fetch_kind: str = "local"
    fetch_s: float = 0.0

    @property
    def done(self) -> bool:
        """True once every frame of the session has been served."""
        return self.next_frame >= len(self.frame_costs)

    def request_time(self, frame_index: int) -> float:
        """When the viewer asks for a frame: arrival + k at the target rate."""
        return self.arrival_s + frame_index / self.fps_target

    def ready_time(self, frame_index: int) -> float:
        """Earliest service time: requested, and the previous frame done."""
        return max(self.request_time(frame_index), self.last_completion_s)


class Worker:
    """One SoC's slice of the fleet: engine, reference cache, frame queue."""

    def __init__(self, worker_id: str, config, soc: SoCModel | None = None,
                 started_s: float = 0.0, index: int = 0,
                 cache_entries: int = 256, cache_bytes: int = 64 << 20,
                 use_cache: bool = True, backend: str | None = None,
                 engine_workers: int | None = None, field_store=None):
        self.worker_id = str(worker_id)
        self.config = config
        # Kernel backend for this worker's render engine (see
        # repro.backend); results are backend-independent for the exact
        # backends, so this only changes render wall-time.
        self.backend = backend
        self.engine_workers = engine_workers
        self.soc = soc or SoCModel(feature_dim=config.feature_dim)
        # The cache object always exists so stats report uniformly; with
        # use_cache=False it is simply never attached to the engine.
        self.reference_cache = SharedLRUCache(
            name=f"{self.worker_id}/references",
            max_entries=cache_entries, max_bytes=cache_bytes)
        self.use_cache = bool(use_cache)
        # Optional ShardedFieldStore (repro.distribution): admission then
        # pays tiered field-acquisition costs (local / shard transfer /
        # cold bake) before the first frame can be served.
        self.field_store = field_store
        self.started_s = float(started_s)
        self.index = int(index)  # spawn order (worker ids are for display)
        self.retired_s: float | None = None
        self.sessions: list = []  # resident (unfinished) PlacedSessions
        self.completed: list = []
        self.current: PlacedSession | None = None  # frame in flight
        self.busy_s = 0.0
        self.busy_until_s = float(started_s)
        self.frames_served = 0
        self.energy_served_j = 0.0
        self.sessions_admitted = 0

    # -- state -------------------------------------------------------------------

    @property
    def live(self) -> bool:
        """True while the worker can take and serve sessions."""
        return self.retired_s is None

    @property
    def load(self) -> int:
        """Resident-session count (the admission queue depth)."""
        return len(self.sessions)

    def retire(self, now_s: float) -> None:
        """Take the (idle) worker out of the fleet at ``now_s``."""
        if self.sessions:
            raise RuntimeError(f"cannot retire {self.worker_id!r} with "
                               f"{self.load} resident sessions")
        self.retired_s = float(now_s)

    # -- admission ---------------------------------------------------------------

    def _render(self, session_id: str, spec, level: int, poses=None):
        """Render (a slice of) a session's sequence on this worker's engine.

        Rendering goes through this worker's engine with the worker-local
        reference cache attached, so sessions sharing the spec's
        ``cache_key`` reuse each other's reference renders — the signal
        cache-affinity placement optimises for.  ``level`` picks the
        quality-ladder rung; ``poses`` restricts to a trajectory slice
        (mid-serve retunes re-render only the remaining frames).
        """
        from ..control.tiers import build_level_session
        engine_session = build_level_session(spec, session_id, self.config,
                                             level, poses=poses)
        MultiSessionEngine(
            [engine_session],
            reference_cache=(self.reference_cache if self.use_cache
                             else None),
            backend=self.backend,
            engine_workers=self.engine_workers).run()
        return engine_session

    def admit(self, session_id: str, spec, now_s: float,
              level: int = 0) -> PlacedSession:
        """Render + price one session's sequence and enqueue its frames.

        ``level`` is the quality-ladder rung the governor admits the
        session at (0 — the default — is bit-identical to ungoverned
        admission).

        With a field store attached, admission first acquires the spec's
        baked field through the cache hierarchy: a local hit is free, a
        shard-tier transfer delays only this session's first frame, and a
        cold bake additionally *occupies the worker* for the bake — the
        capacity cost that makes duplicated bakes hurt fleet-wide.
        """
        fetch_kind, fetch_s = "local", 0.0
        if self.field_store is not None:
            fetch_kind, fetch_s = self.field_store.acquire(
                self.worker_id, spec, now_s)
        engine_session = self._render(session_id, spec, level)
        costs = session_frame_costs(engine_session.result, self.soc,
                                    spec.variant)
        placed = PlacedSession(
            session_id=session_id, spec=spec, worker_id=self.worker_id,
            arrival_s=float(now_s),
            frame_costs=[c.time_s for c in costs],
            frame_energies=[c.energy_j for c in costs],
            fps_target=spec.fps_target,
            references=engine_session.result.num_references,
            last_completion_s=float(now_s),
            level=int(level), frame_levels=[int(level)] * len(costs),
            frame_refs=[r.new_reference
                        for r in engine_session.result.records],
            fetch_kind=fetch_kind, fetch_s=float(fetch_s))
        if fetch_kind == "bake":
            # Baking consumes this worker's capacity (it cannot serve
            # frames meanwhile); the session's frames unlock when the
            # bake lands.  The simulator schedules a wake at that time.
            ready = max(self.busy_until_s, float(now_s)) + fetch_s
            self.busy_s += fetch_s
            self.busy_until_s = ready
            placed.last_completion_s = ready
        elif fetch_s > 0.0:
            # A transfer delays only this session's first frame; the
            # worker stays free to serve other residents.
            placed.last_completion_s = float(now_s) + fetch_s
        if placed.done:  # zero-frame sequence: nothing to serve
            self.completed.append(placed)
        else:
            self.sessions.append(placed)
        self.sessions_admitted += 1
        return placed

    # -- governor retuning (mid-serve quality switches) ---------------------------

    def retune_session(self, placed: PlacedSession, level: int) -> int:
        """Re-render a resident session's remaining frames at a new rung.

        Frames already served (and the frame currently in flight, if this
        session owns it) keep their recorded costs and levels; everything
        after is re-rendered at ``level`` through the worker's engine —
        the re-render starts with a fresh reference, so the quality
        switch pays a realistic keyframe cost.  Returns the number of
        frames retuned (0 means nothing left to change).
        """
        start = placed.next_frame
        if self.current is placed:  # don't reprice an in-flight frame
            start += 1
        total = len(placed.frame_costs)
        if level == placed.level or start >= total:
            return 0
        # Any frames/seed overrides were already folded into the placed
        # spec at arrival time; the ladder never changes the trajectory,
        # so the original poses slice cleanly.
        poses = placed.spec.build_trajectory(self.config).poses
        poses = poses[:total][start:]
        engine_session = self._render(
            f"{placed.session_id}/l{level}@{start}", placed.spec, level,
            poses=poses)
        costs = session_frame_costs(engine_session.result, self.soc,
                                    placed.spec.variant)
        refs = [r.new_reference for r in engine_session.result.records]
        # The discarded tail's references leave the accounting with it.
        placed.references += sum(refs) - sum(placed.frame_refs[start:])
        placed.frame_costs[start:] = [c.time_s for c in costs]
        placed.frame_energies[start:] = [c.energy_j for c in costs]
        placed.frame_levels[start:] = [int(level)] * len(costs)
        placed.frame_refs[start:] = refs
        placed.level = int(level)
        placed.transitions += 1
        return len(costs)

    # -- frame service (driven by the simulator's event loop) --------------------

    def poll(self, now_s: float) -> tuple:
        """What this worker should do at ``now_s``.

        Returns ``("serve", session)`` when a frame is ready (oldest
        request first, ties by session id), ``("wait", wake_time_s)``
        when every pending frame's request lies in the future, or
        ``("idle", None)`` when busy, retired, or out of work.
        """
        if not self.live or self.busy_until_s > now_s or not self.sessions:
            return ("idle", None)
        ready_now = []
        earliest_future = None
        for session in self.sessions:
            k = session.next_frame
            ready = session.ready_time(k)
            if ready <= now_s:
                ready_now.append((session.request_time(k),
                                  session.session_id, session))
            elif earliest_future is None or ready < earliest_future:
                earliest_future = ready
        if ready_now:
            return ("serve", min(ready_now)[2])
        return ("wait", earliest_future)

    def start_frame(self, session: PlacedSession, now_s: float) -> float:
        """Begin serving the session's next frame; returns completion time."""
        cost = session.frame_costs[session.next_frame]
        completion = now_s + cost
        self.busy_s += cost
        self.busy_until_s = completion
        self.current = session
        return completion

    def finish_frame(self, session: PlacedSession, now_s: float) -> None:
        """Record a frame completion (latency vs. its request time)."""
        k = session.next_frame
        session.latencies_s.append(now_s - session.request_time(k))
        if k == 0:
            session.first_frame_s = now_s
        session.last_completion_s = now_s
        session.next_frame += 1
        self.frames_served += 1
        self.energy_served_j += session.frame_energies[k]
        self.current = None
        if session.done:
            self.sessions.remove(session)
            self.completed.append(session)

    # -- reporting ---------------------------------------------------------------

    def stats_row(self, makespan_s: float) -> dict:
        """Per-worker report row.

        Utilization is busy time over the worker's own *lifetime* within
        the run (boot to retirement, or to the run's makespan while
        live), so an autoscaled worker that was busy its whole short
        life reads as saturated rather than diluted by time it did not
        exist.
        """
        cache = self.reference_cache.stats
        end_s = self.retired_s if self.retired_s is not None else makespan_s
        lifetime_s = max(end_s - self.started_s, 0.0)
        row = {
            "worker": self.worker_id,
            "sessions": self.sessions_admitted,
            "frames": self.frames_served,
            "busy_s": self.busy_s,
            "energy_j": self.energy_served_j,
            "utilization": (self.busy_s / lifetime_s
                            if lifetime_s > 0 else 0.0),
            "ref_hits": cache.hits,
            "ref_misses": cache.misses,
            "ref_hit_rate": cache.hit_rate,
            "retired": not self.live,
        }
        if self.field_store is not None:
            # Tier counters appear only on sharded runs, so un-sharded
            # reports (and their goldens) keep their exact shape.
            row.update(self.field_store.worker_stats(self.worker_id))
        return row

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "live" if self.live else "retired"
        return (f"Worker({self.worker_id!r}, load={self.load}, "
                f"{self.frames_served} frames, {state})")
