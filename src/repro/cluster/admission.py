"""Admission control: bounded per-worker queues with reject-reason counters.

A worker's "queue" is its set of resident (unfinished) sessions; admission
caps that depth so an overloaded fleet sheds load at the front door instead
of letting every session's latency grow without bound.  Rejections are
counted by reason so a cluster report can distinguish *no capacity
provisioned* from *capacity saturated*.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["REJECT_NO_WORKERS", "REJECT_QUEUE_FULL", "AdmissionStats",
           "AdmissionController"]

REJECT_NO_WORKERS = "no_workers"  # zero live workers at arrival time
REJECT_QUEUE_FULL = "queue_full"  # every live worker at its queue limit


@dataclass
class AdmissionStats:
    """Front-door counters for one cluster run."""

    admitted: int = 0
    rejected_by_reason: dict = field(default_factory=dict)

    @property
    def rejected(self) -> int:
        """Total rejections across every reason."""
        return sum(self.rejected_by_reason.values())

    @property
    def arrivals(self) -> int:
        """Total admission decisions taken (admits + rejects)."""
        return self.admitted + self.rejected

    @property
    def reject_rate(self) -> float:
        """Rejections per arrival (0.0 before any arrival)."""
        return self.rejected / self.arrivals if self.arrivals else 0.0


class AdmissionController:
    """Admit-or-reject against a per-worker resident-session bound."""

    def __init__(self, queue_limit: int = 4):
        if queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        self.queue_limit = queue_limit
        self.stats = AdmissionStats()

    def eligible(self, workers: list) -> tuple:
        """``(eligible_workers, reject_reason)`` for one arrival.

        ``workers`` must already be filtered to live workers; an empty
        list means the fleet has no capacity at all.  Exactly one of the
        two results is meaningful: a non-empty eligible list with reason
        ``None``, or an empty list with the reject reason.
        """
        if not workers:
            return [], REJECT_NO_WORKERS
        open_workers = [w for w in workers if w.load < self.queue_limit]
        if not open_workers:
            return [], REJECT_QUEUE_FULL
        return open_workers, None

    def record_admit(self) -> None:
        """Count one admitted session."""
        self.stats.admitted += 1

    def record_reject(self, reason: str) -> None:
        """Count one rejection under ``reason`` (e.g. ``queue_full``)."""
        by_reason = self.stats.rejected_by_reason
        by_reason[reason] = by_reason.get(reason, 0) + 1
