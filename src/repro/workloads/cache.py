"""Shared cross-session artifact cache: bounded LRU with hit/miss stats.

The paper's SPARW pipeline reuses radiance *across frames*; at serving
scale the same idea applies *across sessions* — users viewing the same
workload share baked field tensors and reference renders instead of
recomputing them.  This module provides the content-addressed store behind
that sharing:

* :data:`FIELD_CACHE` — baked fields, occupancy grids, and renderers,
  keyed by (algorithm, scene, config scale).  Replaces the previously
  *unbounded* ``functools.lru_cache`` on ``build_renderer``, which grew
  without limit under many-scene serving.
* :data:`REFERENCE_CACHE` — full-frame SPARW reference
  :class:`~repro.nerf.renderer.RenderOutput` results, keyed by
  (workload-spec hash, pose hash, ray count).  The multi-session engine
  consults it so identical sessions render each reference once.

Entries are treated as immutable by every consumer; because rendering is
deterministic, serving a cached entry is bit-identical to recomputing it
(locked by ``tests/workloads/test_serve_cache_parity.py``).
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from ..obs.runtime import metric_inc

__all__ = [
    "CacheStats", "SharedLRUCache", "pose_hash",
    "FIELD_CACHE", "REFERENCE_CACHE", "cache_report", "reset_caches",
]


@dataclass
class CacheStats:
    """Cumulative counters for one shared cache."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits per lookup (0.0 before any lookup)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> "CacheStats":
        """An independent copy of the counters (for before/after deltas)."""
        return CacheStats(hits=self.hits, misses=self.misses,
                          insertions=self.insertions,
                          evictions=self.evictions)

    def since(self, earlier: "CacheStats") -> "CacheStats":
        """Counter deltas relative to an earlier :meth:`snapshot`."""
        return CacheStats(
            hits=self.hits - earlier.hits,
            misses=self.misses - earlier.misses,
            insertions=self.insertions - earlier.insertions,
            evictions=self.evictions - earlier.evictions,
        )


@dataclass
class _Entry:
    value: object
    size_bytes: int = 0


@dataclass
class SharedLRUCache:
    """Bounded LRU keyed by content-addressed tuples/strings.

    Bounded both by entry count and (optionally) by total payload bytes;
    whichever limit is hit first evicts least-recently-used entries.  An
    entry larger than ``max_bytes`` on its own is refused outright
    (counted as an insertion followed by an immediate eviction), so the
    byte bound is a strict invariant rather than a target.
    Values are returned by reference and must be treated as immutable.

    Thread safety: every public operation holds one reentrant lock, and
    :meth:`get_or_build` is additionally *single-flight* — concurrent
    callers missing on the same key run ``builder()`` exactly once and
    share its result.  Both matter because :data:`FIELD_CACHE` and
    :data:`REFERENCE_CACHE` are hit from the live frame server's worker
    threads (see :mod:`repro.server`), not just the single-threaded
    harness.
    """

    name: str = "cache"
    max_entries: int = 64
    max_bytes: int | None = None
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self):
        if self.max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        if self.max_bytes is not None and self.max_bytes < 1:
            raise ValueError("max_bytes must be >= 1 (or None)")
        self._entries: OrderedDict = OrderedDict()
        self._total_bytes = 0
        # RLock: put() calls _evict() with the lock already held.
        self._lock = threading.RLock()
        # key -> Event set when that key's in-flight build completes
        # (successfully or not); waiters re-check the cache afterwards.
        self._inflight: dict = {}

    # -- core ------------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key) -> bool:
        with self._lock:
            return key in self._entries

    @property
    def total_bytes(self) -> int:
        """Sum of the sizes of all live entries."""
        with self._lock:
            return self._total_bytes

    def get(self, key, default=None):
        """Lookup; counts a hit or miss and refreshes recency on hit."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                metric_inc(f"cache.{self.name}.misses")
                return default
            self._entries.move_to_end(key)
            self.stats.hits += 1
            metric_inc(f"cache.{self.name}.hits")
            return entry.value

    def put(self, key, value, size_bytes: int = 0) -> None:
        """Insert (or refresh) an entry, evicting LRU entries as needed.

        An entry that could never satisfy the byte bound on its own
        (``size_bytes > max_bytes``) is not retained: keeping it would
        leave ``total_bytes`` over the bound for as long as the entry
        stays hot, evicting everything else instead.
        """
        size_bytes = int(size_bytes)
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._total_bytes -= old.size_bytes
            self.stats.insertions += 1
            metric_inc(f"cache.{self.name}.insertions")
            if self.max_bytes is not None and size_bytes > self.max_bytes:
                self.stats.evictions += 1
                metric_inc(f"cache.{self.name}.evictions")
                metric_inc(f"cache.{self.name}.oversized")
                return
            self._entries[key] = _Entry(value=value, size_bytes=size_bytes)
            self._total_bytes += size_bytes
            self._evict()

    def get_or_build(self, key, builder, size_of=None):
        """Cached ``builder()`` call: the memoisation idiom of ``configs``.

        ``size_of(value)`` (optional) prices the entry for the byte
        bound.  Single-flight under concurrency: if another thread is
        already building ``key``, this call waits for that build and
        returns the cached result instead of building again.  If the
        in-flight build raises, one waiter takes over the build.
        """
        while True:
            with self._lock:
                entry = self._entries.get(key)
                if entry is not None:
                    self._entries.move_to_end(key)
                    self.stats.hits += 1
                    metric_inc(f"cache.{self.name}.hits")
                    return entry.value
                waiter = self._inflight.get(key)
                if waiter is None:
                    self._inflight[key] = done = threading.Event()
                    self.stats.misses += 1
                    metric_inc(f"cache.{self.name}.misses")
            if waiter is not None:
                waiter.wait()
                continue  # builder finished (or failed); re-check
            try:
                value = builder()
                size = int(size_of(value)) if size_of is not None else 0
                self.put(key, value, size_bytes=size)
                return value
            finally:
                with self._lock:
                    self._inflight.pop(key, None)
                done.set()

    def clear(self) -> None:
        """Drop every entry (counters keep their history)."""
        with self._lock:
            self._entries.clear()
            self._total_bytes = 0

    def _evict(self) -> None:
        # Callers hold self._lock.  Evicting down to a single entry is
        # enough for the byte bound: put() refuses entries larger than
        # max_bytes, so the newest entry always fits on its own.
        while (len(self._entries) > self.max_entries
               or (self.max_bytes is not None
                   and self._total_bytes > self.max_bytes
                   and len(self._entries) > 1)):
            _, entry = self._entries.popitem(last=False)
            self._total_bytes -= entry.size_bytes
            self.stats.evictions += 1
            metric_inc(f"cache.{self.name}.evictions")

    # -- reporting -------------------------------------------------------------

    def report(self, since: CacheStats | None = None) -> dict:
        """JSON-able stats row (optionally as a delta from a snapshot).

        Counters honour ``since``; ``entries``/``bytes`` are always the
        cache's *current* totals (they may include entries inserted
        before the snapshot — callers labelling the report per-run should
        say so).
        """
        with self._lock:
            stats = (self.stats.since(since) if since is not None
                     else self.stats)
            return {
                "hits": stats.hits,
                "misses": stats.misses,
                "insertions": stats.insertions,
                "evictions": stats.evictions,
                "hit_rate": stats.hit_rate,
                "entries": len(self._entries),
                "bytes": self._total_bytes,
            }


class _Missing:
    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<missing>"


_MISSING = _Missing()


def pose_hash(pose: np.ndarray) -> str:
    """Content hash of a camera pose (exact bytes, no tolerance)."""
    data = np.ascontiguousarray(np.asarray(pose, dtype=np.float64))
    return hashlib.sha1(data.tobytes()).hexdigest()


# Process-wide shared caches.  Field entries are few but heavy (baked
# tensors); reference entries are many but uniform (one RenderOutput per
# (spec, pose)), so that cache is additionally byte-bounded.
FIELD_CACHE = SharedLRUCache(name="fields", max_entries=48)
REFERENCE_CACHE = SharedLRUCache(name="references", max_entries=256,
                                 max_bytes=64 << 20)


def cache_report(field_since: CacheStats | None = None,
                 reference_since: CacheStats | None = None) -> dict:
    """Combined stats of the shared caches for serving reports."""
    return {
        "fields": FIELD_CACHE.report(since=field_since),
        "references": REFERENCE_CACHE.report(since=reference_since),
    }


def reset_caches() -> None:
    """Drop every shared cache entry and reset counters (test isolation)."""
    for cache in (FIELD_CACHE, REFERENCE_CACHE):
        cache.clear()
        cache.stats = CacheStats()
