"""Named workload registry and serve-mix resolution.

The registry is the run table behind ``cli workloads`` and
``cli serve --workload NAME[:N]``: a small set of curated heterogeneous
workloads (different scenes, trajectory shapes, algorithms, and quality
tiers) that can be mixed into one multi-session serve.  Duplicated entries
in a mix model *popular content*: every copy replays the identical
trajectory, which is exactly what the shared reference cache exploits.
"""

from __future__ import annotations

from .spec import WorkloadSpec

__all__ = [
    "WORKLOADS", "register_workload", "get_workload", "list_workloads",
    "parse_mix", "apply_slo", "build_mixed_sessions",
]


WORKLOADS: dict = {}


def register_workload(spec: WorkloadSpec, replace: bool = False
                      ) -> WorkloadSpec:
    """Add a spec to the registry under ``spec.name``."""
    if not replace and spec.name in WORKLOADS:
        raise ValueError(f"workload {spec.name!r} already registered")
    WORKLOADS[spec.name] = spec
    return spec


def get_workload(name: str) -> WorkloadSpec:
    """Look up a named builtin spec; raises KeyError listing valid names."""
    try:
        return WORKLOADS[name]
    except KeyError:
        known = ", ".join(sorted(WORKLOADS))
        raise KeyError(f"unknown workload {name!r}; one of: {known}") from None


def list_workloads() -> list:
    """Registry specs sorted by name."""
    return [WORKLOADS[name] for name in sorted(WORKLOADS)]


def parse_mix(mix) -> list:
    """Resolve a serve mix into ``[(spec, count), ...]``.

    ``mix`` is either a comma-joined string (``"vr-lego:3,dolly-chair"``),
    an iterable of ``NAME[:N]`` items, or an iterable of
    ``(WorkloadSpec, count)`` pairs (names in pairs resolve via the
    registry).  Repeated entries of the same spec merge by summing their
    counts, so ``"vr-lego,vr-lego:2"`` serves three copies.
    """
    if isinstance(mix, str):
        mix = [part for part in mix.split(",") if part.strip()]
    resolved = []
    for item in mix:
        if isinstance(item, tuple):
            spec, count = item
            if isinstance(spec, str):
                spec = get_workload(spec)
            count = int(count)
        else:
            name, _, count_str = str(item).strip().partition(":")
            if count_str:
                try:
                    count = int(count_str)
                except ValueError:
                    raise ValueError(
                        f"bad workload count in {item!r}; expected "
                        "NAME or NAME:N") from None
            else:
                count = 1
            spec = get_workload(name)
        if count < 1:
            raise ValueError(f"workload count must be >= 1, got {count} "
                             f"for {spec.name!r}")
        resolved.append((spec, count))
    if not resolved:
        raise ValueError("empty workload mix")
    # Merge repeats of the same spec (session ids are numbered per spec,
    # so a split mix would otherwise produce colliding ids).  Distinct
    # specs sharing a display name would collide too — reject those.
    merged: dict = {}
    for spec, count in resolved:
        merged[spec] = merged.get(spec, 0) + count
    names = [spec.name for spec in merged]
    if len(set(names)) != len(names):
        dupes = sorted({n for n in names if names.count(n) > 1})
        raise ValueError(f"mix contains different specs under the same "
                         f"name(s) {dupes}; session ids would collide")
    return list(merged.items())


def apply_slo(mix, slo_fps: float | None) -> list:
    """Resolve a mix and override every spec's ``slo_fps`` (the CLI's
    ``--slo``).

    ``None`` leaves the specs' own SLOs untouched.  Returns the usual
    ``[(spec, count), ...]`` pairs, so the result feeds straight into
    :func:`build_mixed_sessions` or the cluster arrival samplers.
    """
    import dataclasses
    resolved = parse_mix(mix)
    if slo_fps is None:
        return resolved
    if slo_fps <= 0.0:
        raise ValueError("slo_fps must be positive")
    return [(dataclasses.replace(spec, slo_fps=float(slo_fps)), count)
            for spec, count in resolved]


def build_mixed_sessions(mix, config, frames: int | None = None,
                         seed: int | None = None, build=None) -> list:
    """Engine sessions for a workload mix at a config scale.

    Copies of one spec are *identical* sessions (same trajectory, same
    reference poses) — many users consuming the same content — so their
    reference renders coalesce in the shared cache.  ``frames`` overrides
    every spec's sequence length (the CLI's ``--frames``).  ``seed``
    offsets every spec's trajectory seed (the CLI's ``--seed``), so
    stochastic trajectories resample reproducibly run to run; copies of a
    spec still share one derived seed and keep coalescing.  ``None``
    leaves the specs' own seeds untouched.

    ``build(spec, session_id, config)`` overrides session construction
    (default :meth:`WorkloadSpec.build_session`) — the static quality
    governor uses it to build sessions already pinned at their
    ``min_quality_tier`` rung.
    """
    if build is None:
        def build(spec, session_id, config):
            return spec.build_session(session_id, config)
    sessions = []
    for spec, count in parse_mix(mix):
        spec = spec.with_overrides(frames=frames, seed_offset=seed)
        for i in range(count):
            sessions.append(build(spec, f"{spec.name}-{i:02d}", config))
    return sessions


def _register_builtins() -> None:
    """Curated heterogeneous workloads (scene x trajectory x algorithm)."""
    builtins = [
        # The canonical VR viewing session of the paper's evaluation.
        WorkloadSpec.make("vr-lego", scene="lego", trajectory="orbit"),
        # Rotation-dominated head motion: high overlap, HMD-style deltas.
        # VR tolerates resolution loss badly, so it may only shed one rung.
        WorkloadSpec.make("vr-headshake", scene="lego",
                          trajectory="headshake", yaw_amplitude_deg=4.0,
                          min_quality_tier="reduced"),
        # Push-in with growing parallax; disocclusion at silhouettes.
        # Cinematic dolly: a looser SLO than its request rate.
        WorkloadSpec.make("dolly-chair", scene="chair", trajectory="dolly",
                          start_distance=4.0, end_distance=2.4,
                          slo_fps=24.0),
        # Seeded exploration of a specular-heavy scene.
        WorkloadSpec.make("walk-materials", scene="materials",
                          trajectory="random_walk", seed=7),
        # Same motion, different field families (distinct gather behaviour).
        WorkloadSpec.make("orbit-ngp", scene="lego", trajectory="orbit",
                          algorithm="instant_ngp"),
        WorkloadSpec.make("orbit-tensorf", scene="lego", trajectory="orbit",
                          algorithm="tensorf"),
        # Low-quality tier: half resolution/depth of the serving scale.
        WorkloadSpec.make("preview-ship", scene="ship", trajectory="orbit",
                          tier="preview"),
        # Sparse-capture real-world stand-in (1 FPS-style pose deltas).
        # Archival capture review: quality is the point, never degrade.
        WorkloadSpec.make("sparse-ignatius", scene="ignatius",
                          trajectory="orbit", window=6,
                          degrees_per_frame=15.0,
                          min_quality_tier="full"),
    ]
    for spec in builtins:
        register_workload(spec, replace=True)


_register_builtins()
