"""Declarative workload specifications: scene x trajectory x algorithm x tier.

A :class:`WorkloadSpec` is the single run-table row every harness entry
point consumes (the muBench-style idiom): the CLI resolves named specs from
the registry, ``harness.serve`` builds engine sessions from them,
``harness.figures`` routes figure configurations through them, and the
shared caches key artifacts by :meth:`WorkloadSpec.spec_hash`.

Specs are frozen/hashable and fully declarative — building the actual
renderer, trajectory, or session happens in the builder methods, which
resolve against an :class:`~repro.harness.configs.ExperimentConfig` scale
at call time.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass

from ..scenes.trajectory import (
    TRAJECTORY_KINDS,
    Trajectory,
    make_trajectory,
    trajectory_parameters,
)

__all__ = ["WorkloadSpec", "TIERS", "QUALITY_LEVELS"]

# Resolution/quality tiers.  "inherit" uses whatever config scale the
# harness is running at (--fast or default); the named tiers force a scale
# or derive a cheaper one, letting one serve mix heterogeneous qualities.
TIERS = ("inherit", "default", "fast", "preview")

# Degradation ladder the SLO governor moves sessions along, *relative to
# the spec's own tier*: "full" is the spec's native quality, each step
# down halves resolution and ray-march depth.  ``min_quality_tier`` names
# the lowest rung a governor may push this workload to ("full" forbids
# any degradation).
QUALITY_LEVELS = ("full", "reduced", "minimal")


@dataclass(frozen=True)
class WorkloadSpec:
    """One serving workload: what a user session renders and how.

    ``trajectory_params`` is a tuple of ``(key, value)`` pairs (kept as a
    tuple so specs stay hashable); :meth:`make` accepts them as kwargs.
    """

    name: str
    scene: str = "lego"
    algorithm: str = "directvoxgo"
    trajectory: str = "orbit"
    trajectory_params: tuple = ()
    frames: int | None = None
    window: int | None = None
    policy: str = "extrapolated"
    phi: float | None = None
    variant: str = "cicero"
    tier: str = "inherit"
    fps_target: float = 30.0
    seed: int = 0
    # Service-level objective: the frame rate the workload must sustain
    # before a governor starts trading quality for latency.  ``None``
    # falls back to ``fps_target`` (the rate the viewer requests frames
    # at), letting specs declare a looser SLO than their request rate.
    slo_fps: float | None = None
    # Lowest :data:`QUALITY_LEVELS` rung a governor may degrade this
    # workload to; "full" pins the spec at native quality forever.
    min_quality_tier: str = "minimal"

    @classmethod
    def make(cls, name: str, **kwargs) -> "WorkloadSpec":
        """Spec constructor taking trajectory params as plain kwargs."""
        fields = {f.name for f in dataclasses.fields(cls)}
        spec_kwargs = {k: v for k, v in kwargs.items() if k in fields}
        traj_kwargs = {k: v for k, v in kwargs.items() if k not in fields}
        if traj_kwargs:
            spec_kwargs["trajectory_params"] = tuple(
                sorted(traj_kwargs.items()))
        return cls(name=name, **spec_kwargs)

    def __post_init__(self):
        if self.trajectory not in TRAJECTORY_KINDS:
            known = ", ".join(sorted(TRAJECTORY_KINDS))
            raise ValueError(f"unknown trajectory {self.trajectory!r}; "
                             f"one of: {known}")
        # Fail at construction, not session-build time: a stray kwarg here
        # is either a generator-param typo or a misspelled spec field that
        # :meth:`make` routed into trajectory_params.
        accepted = trajectory_parameters(self.trajectory)
        # num_frames/seed come from the spec's own frames/seed fields.
        accepted.pop("num_frames", None)
        accepted.pop("seed", None)
        for key, _ in self.trajectory_params:
            if key not in accepted:
                raise ValueError(
                    f"trajectory {self.trajectory!r} does not accept "
                    f"parameter {key!r} (not a spec field either); "
                    f"known parameters: {sorted(accepted)}")
        if self.tier not in TIERS:
            raise ValueError(f"unknown tier {self.tier!r}; one of: {TIERS}")
        if self.min_quality_tier not in QUALITY_LEVELS:
            raise ValueError(
                f"unknown min_quality_tier {self.min_quality_tier!r}; "
                f"one of: {QUALITY_LEVELS}")
        if self.slo_fps is not None and self.slo_fps <= 0.0:
            raise ValueError("slo_fps must be positive (or None)")

    def with_overrides(self, frames: int | None = None,
                       seed_offset: int | None = None) -> "WorkloadSpec":
        """Spec with the harness-level overrides applied (one code path
        for ``--frames``/``--seed`` across serve and cluster).

        ``frames`` replaces the sequence length; ``seed_offset`` shifts
        the trajectory seed so stochastic trajectories resample
        reproducibly run to run — copies of one spec share the derived
        seed, so they keep coalescing in the shared caches.  Both
        overrides change :meth:`spec_hash` (and so ``cache_key``)
        consistently for every consumer.
        """
        changes = {}
        if frames is not None:
            changes["frames"] = int(frames)
        if seed_offset:
            changes["seed"] = self.seed + int(seed_offset)
        return dataclasses.replace(self, **changes) if changes else self

    # -- service-level objective --------------------------------------------------

    @property
    def effective_slo_fps(self) -> float:
        """The frame rate the SLO holds this workload to."""
        return self.fps_target if self.slo_fps is None else self.slo_fps

    @property
    def slo_latency_s(self) -> float:
        """Per-frame latency budget implied by the SLO frame rate."""
        return 1.0 / self.effective_slo_fps

    @property
    def max_quality_level(self) -> int:
        """Deepest :data:`QUALITY_LEVELS` index a governor may reach."""
        return QUALITY_LEVELS.index(self.min_quality_tier)

    # -- identity ---------------------------------------------------------------

    def spec_hash(self) -> str:
        """Stable content hash of every field except the display name."""
        payload = dataclasses.asdict(self)
        payload.pop("name")
        canonical = repr(sorted(payload.items()))
        return hashlib.sha1(canonical.encode()).hexdigest()[:16]

    def cache_key(self, config) -> str:
        """Content-addressed identity of this spec at a config scale.

        Sessions whose specs and resolved configs agree produce identical
        renderers and identical reference renders, so this string is the
        namespace half of every reference-cache key.
        """
        resolved = self.resolve_config(config)
        config_hash = hashlib.sha1(
            repr(dataclasses.astuple(resolved)).encode()).hexdigest()[:16]
        return f"{self.spec_hash()}/{config_hash}"

    # -- resolution against a config scale --------------------------------------

    def resolve_config(self, base):
        """The :class:`ExperimentConfig` this spec renders at."""
        from ..harness.configs import DEFAULT, FAST
        if self.tier == "inherit":
            return base
        if self.tier == "default":
            return DEFAULT
        if self.tier == "fast":
            return FAST
        # "preview": half-resolution, half-depth derivative of the base.
        return dataclasses.replace(
            base,
            image_size=max(32, base.image_size // 2),
            samples_per_ray=max(24, base.samples_per_ray // 2))

    def num_frames(self, config) -> int:
        """Sequence length: the spec's override or the config default."""
        return self.frames if self.frames is not None else config.num_frames

    def build_trajectory(self, config) -> Trajectory:
        """Deterministic trajectory at the resolved config scale.

        Orbit-family generators default their radius/step to the config's
        values so spec-built orbits are pose-identical to the figure
        harness's ground-truth trajectories.
        """
        config = self.resolve_config(config)
        params = dict(self.trajectory_params)
        if self.trajectory in ("orbit", "handheld"):
            params.setdefault("radius", config.orbit_radius)
            params.setdefault("degrees_per_frame", config.degrees_per_frame)
        return make_trajectory(self.trajectory, self.num_frames(config),
                               seed=self.seed, **params)

    # -- builders ---------------------------------------------------------------

    def build_renderer(self, config):
        """The (shared-cache-backed) NeRF renderer for this spec."""
        from ..harness.configs import build_renderer
        return build_renderer(self.algorithm, self.scene,
                              self.resolve_config(config))

    def build_sparw(self, config):
        """A fresh SPARW pipeline for one session of this workload."""
        from ..core.sparw.pipeline import SparwRenderer
        from ..harness.configs import make_camera
        resolved = self.resolve_config(config)
        window = self.window if self.window is not None else resolved.window
        return SparwRenderer(self.build_renderer(config),
                             make_camera(resolved), window=window,
                             policy=self.policy,
                             angle_threshold_deg=self.phi)

    def build_session(self, session_id: str, config):
        """A :class:`~repro.engine.RenderSession` serving this workload.

        The session carries the spec's content-addressed ``cache_key`` so
        the engine can answer its reference renders from the shared cache.
        """
        from ..engine.session import RenderSession
        trajectory = self.build_trajectory(config)
        return RenderSession(session_id, self.build_sparw(config),
                             trajectory.poses, fps_target=self.fps_target,
                             cache_key=self.cache_key(config),
                             workload=self)

    def run_solo(self, config):
        """Render this workload's sequence single-user (no engine, no cache)."""
        return self.build_sparw(config).render_sequence(
            self.build_trajectory(config).poses)

    def describe(self) -> dict:
        """Row for ``cli workloads`` listings."""
        return {
            "name": self.name,
            "scene": self.scene,
            "trajectory": self.trajectory,
            "algorithm": self.algorithm,
            "variant": self.variant,
            "tier": self.tier,
            "window": self.window if self.window is not None else "config",
            "frames": self.frames if self.frames is not None else "config",
            "policy": self.policy,
            "slo_fps": self.effective_slo_fps,
            "min_tier": self.min_quality_tier,
        }
