"""Unified workload layer: declarative specs, registry, and shared caches.

Every harness entry point (figure experiments, the serve CLI, the
multi-session engine) consumes workloads through this package:

* :class:`WorkloadSpec` — declarative scene x trajectory x algorithm x
  variant x quality-tier description of one user session.
* :mod:`~repro.workloads.registry` — named specs and serve-mix parsing
  (``vr-lego:3,dolly-chair:2``).
* :mod:`~repro.workloads.cache` — bounded content-addressed LRU caches
  shared across sessions: baked fields/renderers and SPARW reference
  renders, with hit/miss/eviction stats surfaced in serving reports.
"""

from .cache import (
    FIELD_CACHE,
    REFERENCE_CACHE,
    CacheStats,
    SharedLRUCache,
    cache_report,
    pose_hash,
    reset_caches,
)
from .registry import (
    WORKLOADS,
    apply_slo,
    build_mixed_sessions,
    get_workload,
    list_workloads,
    parse_mix,
    register_workload,
)
from .spec import QUALITY_LEVELS, TIERS, WorkloadSpec

__all__ = [
    "FIELD_CACHE",
    "REFERENCE_CACHE",
    "CacheStats",
    "SharedLRUCache",
    "cache_report",
    "pose_hash",
    "reset_caches",
    "WORKLOADS",
    "apply_slo",
    "build_mixed_sessions",
    "get_workload",
    "list_workloads",
    "parse_mix",
    "register_workload",
    "QUALITY_LEVELS",
    "TIERS",
    "WorkloadSpec",
]
