"""repro — a reproduction of Cicero (ISCA 2024).

Cicero accelerates neural rendering with three co-designed techniques:
sparse radiance warping (SPARW), fully-streaming memory-centric rendering,
and bank conflict-free SRAM interleaving via a Gathering Unit.  This package
implements the algorithms, the NeRF substrate they run on (three field
families over procedural scenes with an exact ray-traced ground truth), the
memory-system and SoC performance models, and a benchmark harness that
regenerates every figure of the paper's evaluation.

Quick start::

    from repro import harness
    rows = harness.EXPERIMENTS["fig07"]()
    harness.print_table(rows, title="Fig. 7 - frame overlap")
"""

from . import baselines, core, geometry, harness, hw, memsys, metrics, nerf, scenes

__version__ = "1.0.0"

__all__ = [
    "baselines",
    "core",
    "geometry",
    "harness",
    "hw",
    "memsys",
    "metrics",
    "nerf",
    "scenes",
    "__version__",
]
