"""Image-quality metrics: PSNR (the paper's metric) and helpers."""

from __future__ import annotations

import numpy as np

__all__ = ["mse", "psnr", "psnr_sequence", "mean_psnr"]


def mse(image_a: np.ndarray, image_b: np.ndarray,
        mask: np.ndarray | None = None) -> float:
    """Mean squared error between two images, optionally masked."""
    a = np.asarray(image_a, dtype=float)
    b = np.asarray(image_b, dtype=float)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    err = (a - b) ** 2
    if mask is not None:
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != a.shape[:2]:
            raise ValueError("mask must match image height x width")
        if not mask.any():
            return 0.0
        err = err[mask]
    return float(err.mean())


def psnr(image_a: np.ndarray, image_b: np.ndarray, peak: float = 1.0,
         mask: np.ndarray | None = None) -> float:
    """Peak signal-to-noise ratio in dB (returns +inf for identical images)."""
    error = mse(image_a, image_b, mask=mask)
    if error == 0.0:
        return float("inf")
    return float(10.0 * np.log10(peak**2 / error))


def psnr_sequence(frames_a: list, frames_b: list, peak: float = 1.0) -> list:
    """Per-frame PSNR between two equally long image sequences."""
    if len(frames_a) != len(frames_b):
        raise ValueError("sequences have different lengths")
    return [psnr(a, b, peak=peak) for a, b in zip(frames_a, frames_b)]


def mean_psnr(frames_a: list, frames_b: list, peak: float = 1.0) -> float:
    """PSNR of the pooled MSE over a sequence (robust to infinities)."""
    errors = [mse(a, b) for a, b in zip(frames_a, frames_b)]
    pooled = float(np.mean(errors)) if errors else 0.0
    if pooled == 0.0:
        return float("inf")
    return float(10.0 * np.log10(peak**2 / pooled))
