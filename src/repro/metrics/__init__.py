"""Quality and summary metrics."""

from .quality import mean_psnr, mse, psnr, psnr_sequence
from .stats import (
    arithmetic_mean,
    geometric_mean,
    mean_or_zero,
    normalize_to,
    percentile_or_zero,
    speedup,
)

__all__ = [
    "mean_psnr",
    "mse",
    "psnr",
    "psnr_sequence",
    "arithmetic_mean",
    "geometric_mean",
    "mean_or_zero",
    "normalize_to",
    "percentile_or_zero",
    "speedup",
]
