"""Summary statistics used by the benchmark harness."""

from __future__ import annotations

import numpy as np

__all__ = ["geometric_mean", "arithmetic_mean", "speedup", "normalize_to",
           "percentile_or_zero", "mean_or_zero"]


def percentile_or_zero(values, q: float) -> float:
    """Empty-safe percentile: latency tails of a run that served nothing.

    Shared by the serving and cluster reports so their p50/p95/p99
    columns can never drift apart in interpolation or empty handling.
    """
    values = list(values)
    return float(np.percentile(values, q)) if values else 0.0


def mean_or_zero(values) -> float:
    """Empty-safe arithmetic mean (reporting counterpart of the above)."""
    values = list(values)
    return float(np.mean(values)) if values else 0.0


def geometric_mean(values) -> float:
    """Geometric mean (the standard for speed-up aggregation)."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("geometric_mean of empty sequence")
    if (arr <= 0.0).any():
        raise ValueError("geometric_mean requires positive values")
    return float(np.exp(np.log(arr).mean()))


def arithmetic_mean(values) -> float:
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("arithmetic_mean of empty sequence")
    return float(arr.mean())


def speedup(baseline: float, candidate: float) -> float:
    """``baseline / candidate`` — >1 means the candidate is faster/cheaper."""
    if candidate <= 0.0:
        raise ValueError("candidate cost must be positive")
    return baseline / candidate


def normalize_to(values: dict, key: str) -> dict:
    """Divide every entry by ``values[key]`` (normalised-to-baseline plots)."""
    base = values[key]
    if base == 0.0:
        raise ValueError("cannot normalise to a zero baseline")
    return {k: v / base for k, v in values.items()}
