"""Summary statistics used by the benchmark harness."""

from __future__ import annotations

import numpy as np

__all__ = ["geometric_mean", "arithmetic_mean", "speedup", "normalize_to"]


def geometric_mean(values) -> float:
    """Geometric mean (the standard for speed-up aggregation)."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("geometric_mean of empty sequence")
    if (arr <= 0.0).any():
        raise ValueError("geometric_mean requires positive values")
    return float(np.exp(np.log(arr).mean()))


def arithmetic_mean(values) -> float:
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("arithmetic_mean of empty sequence")
    return float(arr.mean())


def speedup(baseline: float, candidate: float) -> float:
    """``baseline / candidate`` — >1 means the candidate is faster/cheaper."""
    if candidate <= 0.0:
        raise ValueError("candidate cost must be positive")
    return baseline / candidate


def normalize_to(values: dict, key: str) -> dict:
    """Divide every entry by ``values[key]`` (normalised-to-baseline plots)."""
    base = values[key]
    if base == 0.0:
        raise ValueError("cannot normalise to a zero baseline")
    return {k: v / base for k, v in values.items()}
