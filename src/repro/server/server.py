"""The asyncio frame server: real connections, one shared batched engine.

Architecture: the asyncio event loop owns the sockets and the protocol
state machine; one dedicated *engine-host* thread owns the existing
:class:`~repro.engine.MultiSessionEngine` and drives it round by round
(:meth:`~repro.engine.MultiSessionEngine.run_round`), so concurrent
connections batch their ray work into shared field evaluations and hit
the shared cross-session caches exactly like the simulated serving
paths — the rendering results are bit-identical to solo rendering
(locked by ``tests/server/test_server_parity.py``).  Session *builds*
(field baking through the thread-safe, single-flight
:data:`~repro.workloads.cache.FIELD_CACHE`) run on a small worker
thread pool so a cold-cache open never stalls the event loop or the
render rounds.

Wall-clock observability: each frame carries ``queue_s`` (time the
session spent waiting for its round) and ``render_s`` (its round's
render time); with a tracer attached the host additionally emits
``server.round``/``frame.serve`` spans in the same Chrome-trace schema
the virtual-clock layers use, timestamped on the real clock.
"""

from __future__ import annotations

import asyncio
import dataclasses
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from ..harness.configs import FAST
from ..obs.runtime import metric_inc, metric_observe
from ..workloads import get_workload
from ..workloads.cache import REFERENCE_CACHE
from .protocol import (
    PROTOCOL_SCHEMA,
    ProtocolError,
    frame_digest,
    read_message,
    write_message,
)

__all__ = ["ServerOptions", "FrameServer"]


@dataclass(frozen=True)
class ServerOptions:
    """Everything a :class:`FrameServer` needs beyond the config scale."""

    host: str = "127.0.0.1"
    port: int = 0  # 0: ephemeral (read FrameServer.port after start)
    use_cache: bool = True
    governor: str = "off"
    slo_fps: float | None = None
    backend: str | None = None
    engine_workers: int | None = None
    build_workers: int = 2  # session-build thread pool size
    max_sessions: int = 64  # admission cap across live connections

    def __post_init__(self):
        if not 0 <= self.port <= 65535:
            raise ValueError(f"port must be in 0..65535, got {self.port}")
        if self.build_workers < 1:
            raise ValueError("build_workers must be >= 1")
        if self.max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")


class _EngineHost:
    """One thread serving engine rounds for every live connection.

    Connections :meth:`admit` sessions (with a *sink* callable the host
    schedules onto the event loop with that session's freshly-completed
    frame payloads) and :meth:`retire` them on close.  The host blocks
    on a condition variable while nothing is runnable, so an idle
    server burns no CPU.
    """

    def __init__(self, engine, loop, tracer=None):
        self._engine = engine
        self._loop = loop
        self._cond = threading.Condition()
        self._sinks: dict = {}  # session_id -> callable(payloads, done)
        self._ready_s: dict = {}  # session_id -> perf_counter ready time
        self._stop = False
        self._tracer = tracer
        self.epoch_s = time.perf_counter()  # wall anchor for trace spans
        self._thread = threading.Thread(target=self._run,
                                        name="engine-host", daemon=True)

    # -- lifecycle (event-loop thread) -----------------------------------------

    def start(self) -> None:
        """Start the engine-host thread."""
        self._thread.start()

    def stop(self) -> None:
        """Wake the host thread and join it (idempotent)."""
        with self._cond:
            self._stop = True
            self._cond.notify_all()
        self._thread.join(timeout=30.0)

    @property
    def live_sessions(self) -> int:
        """Number of sessions currently admitted with an attached sink."""
        with self._cond:
            return len(self._sinks)

    def admit(self, session, sink) -> None:
        """Hand a built session to the engine; ``sink(payloads, done)``
        is invoked on the event loop per round that completed frames."""
        with self._cond:
            self._engine.admit(session)
            self._sinks[session.session_id] = sink
            self._ready_s[session.session_id] = time.perf_counter()
            self._cond.notify()

    def retire(self, session_id: str) -> None:
        """Stop serving (idempotent; late round results are dropped)."""
        with self._cond:
            try:
                self._engine.retire(session_id)
            except KeyError:
                pass
            self._sinks.pop(session_id, None)
            self._ready_s.pop(session_id, None)

    # -- the host thread --------------------------------------------------------

    def _runnable(self) -> bool:
        return any(not s.done for s in self._engine.sessions)

    def _run(self) -> None:
        with self._engine.serving():
            while True:
                with self._cond:
                    while not self._stop and not self._runnable():
                        # Timeout guards against a lost wakeup if an
                        # admit lands between the check and the wait.
                        self._cond.wait(timeout=0.05)
                    if self._stop:
                        return
                round_start = time.perf_counter()
                completed = self._engine.run_round()
                round_end = time.perf_counter()
                if completed:
                    self._dispatch(completed, round_start, round_end)

    def _dispatch(self, completed, round_start: float,
                  round_end: float) -> None:
        render_s = round_end - round_start
        self._trace_round(round_start, round_end, len(completed))
        for session, records in completed:
            session_id = session.session_id
            with self._cond:
                sink = self._sinks.get(session_id)
                ready_s = self._ready_s.get(session_id, round_start)
                self._ready_s[session_id] = round_end
            if sink is None:  # retired mid-round: drop the late frames
                continue
            queue_s = max(round_start - ready_s, 0.0)
            payloads = [{
                "type": "frame",
                "session": session_id,
                "index": record.frame_index,
                "new_reference": bool(record.new_reference),
                "digest": frame_digest(record.frame),
                "queue_s": queue_s,
                "render_s": render_s,
                "t_server_s": round_end - self.epoch_s,
            } for record in records]
            self._trace_frames(session_id, records, ready_s, round_end)
            metric_inc("server.frames", len(payloads))
            metric_observe("server.frame_render_s", render_s)
            done = session.done
            self._loop.call_soon_threadsafe(sink, payloads, done)

    # -- wall-clock tracing ------------------------------------------------------

    def _trace_round(self, round_start: float, round_end: float,
                     sessions: int) -> None:
        tracer = self._tracer
        if tracer is None:
            return
        pid = tracer.process("server")
        tracer.complete(
            "server.round", "server",
            (round_start - self.epoch_s) * 1e6,
            (round_end - round_start) * 1e6,
            pid, tracer.thread(pid, "rounds"),
            args={"sessions": sessions})

    def _trace_frames(self, session_id: str, records, ready_s: float,
                      round_end: float) -> None:
        tracer = self._tracer
        if tracer is None:
            return
        pid = tracer.process("server")
        tid = tracer.thread(pid, session_id)
        tracer.complete(
            "frame.serve", "frame", (ready_s - self.epoch_s) * 1e6,
            (round_end - ready_s) * 1e6, pid, tid,
            args={"session": session_id, "frames": len(records),
                  "first_index": records[0].frame_index})


class FrameServer:
    """JSON-lines frame server over TCP (see :mod:`.protocol`).

    One session per connection: the client opens with a registered
    :class:`~repro.workloads.WorkloadSpec` name, the server builds the
    session on the worker pool, admits it into the shared engine, and
    streams frame messages until the trajectory completes (``done``)
    or the client closes early (``close``/EOF → ``closed``).
    """

    def __init__(self, config=None, options: ServerOptions | None = None,
                 tracer=None):
        self.config = FAST if config is None else config
        self.options = options or ServerOptions()
        self.tracer = tracer
        self._server: asyncio.AbstractServer | None = None
        self._host_thread: _EngineHost | None = None
        self._build_pool: ThreadPoolExecutor | None = None
        self._session_seq = 0
        self._governor = None
        self.connections_total = 0

    # -- lifecycle --------------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` after :meth:`start`)."""
        if self._server is None:
            raise RuntimeError("server not started")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> "FrameServer":
        """Bind the socket and start the engine-host thread."""
        from ..engine import MultiSessionEngine
        options = self.options
        if options.governor != "off":
            from ..control import EngineGovernor
            from ..hw.soc import SoCModel
            self._governor = EngineGovernor(
                self.config, mode=options.governor,
                soc=SoCModel(feature_dim=self.config.feature_dim))
        engine = MultiSessionEngine(
            [], reference_cache=(REFERENCE_CACHE if options.use_cache
                                 else None),
            governor=self._governor, backend=options.backend,
            engine_workers=options.engine_workers)
        loop = asyncio.get_running_loop()
        self._host_thread = _EngineHost(engine, loop, tracer=self.tracer)
        self._build_pool = ThreadPoolExecutor(
            max_workers=options.build_workers,
            thread_name_prefix="session-build")
        self._server = await asyncio.start_server(
            self._handle, host=options.host, port=options.port)
        self._host_thread.start()
        return self

    async def serve_forever(self) -> None:
        """Block serving connections until cancelled."""
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        """Close the socket, stop the engine host, release the pool."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._host_thread is not None:
            self._host_thread.stop()
        if self._build_pool is not None:
            self._build_pool.shutdown(wait=False)

    # -- connection handling ----------------------------------------------------

    def _resolve_spec(self, message: dict):
        """The session spec an ``open`` message asks for (validated)."""
        name = message.get("workload")
        if not isinstance(name, str):
            raise ProtocolError("open needs a string 'workload' name")
        spec = get_workload(name)  # KeyError lists valid names
        frames = message.get("frames")
        if frames is not None and (not isinstance(frames, int)
                                   or frames < 1):
            raise ProtocolError("open 'frames' must be a positive int")
        seed = message.get("seed")
        if seed is not None and not isinstance(seed, int):
            raise ProtocolError("open 'seed' must be an int")
        if self.options.slo_fps is not None:
            spec = dataclasses.replace(spec,
                                       slo_fps=float(self.options.slo_fps))
        return spec.with_overrides(frames=frames, seed_offset=seed)

    def _build_session(self, spec, session_id: str):
        """Build one engine session (runs on the build pool)."""
        if self.options.governor == "static":
            from ..control import build_level_session
            return build_level_session(spec, session_id, self.config,
                                       spec.max_quality_level)
        return spec.build_session(session_id, self.config)

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        self.connections_total += 1
        metric_inc("server.connections")
        session_id = None
        host = self._host_thread
        try:
            write_message(writer, {
                "type": "hello", "server": "repro-frame-server",
                "schema": PROTOCOL_SCHEMA})
            await writer.drain()
            try:
                message = await read_message(reader)
            except ProtocolError as exc:
                await self._fail(writer, str(exc))
                return
            if message is None:
                return
            if message["type"] != "open":
                await self._fail(
                    writer, f"expected 'open', got {message['type']!r}")
                return
            try:
                spec = self._resolve_spec(message)
            except (ProtocolError, KeyError) as exc:
                await self._fail(writer, str(exc.args[0]))
                return
            if host.live_sessions >= self.options.max_sessions:
                await self._fail(
                    writer,
                    f"at capacity ({self.options.max_sessions} sessions)")
                return
            self._session_seq += 1
            session_id = f"{spec.name}#{self._session_seq:04d}"
            loop = asyncio.get_running_loop()
            session = await loop.run_in_executor(
                self._build_pool, self._build_session, spec, session_id)

            queue: asyncio.Queue = asyncio.Queue()

            def sink(payloads, done):
                """Queue a round's frames (runs on the event loop)."""
                queue.put_nowait(("frames", payloads, done))

            host.admit(session, sink)
            write_message(writer, {
                "type": "opened", "session": session_id,
                "workload": spec.name, "frames": session.num_frames})
            await writer.drain()
            closer = asyncio.ensure_future(
                self._watch_close(reader, queue))
            try:
                await self._stream(writer, queue, session_id)
            finally:
                closer.cancel()
        except (ConnectionResetError, BrokenPipeError,
                asyncio.IncompleteReadError):
            pass  # peer vanished; retirement below cleans up
        finally:
            if session_id is not None:
                host.retire(session_id)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _watch_close(self, reader, queue) -> None:
        """Turn a client ``close`` (or EOF) into a queue sentinel."""
        try:
            while True:
                message = await read_message(reader)
                if message is None or message["type"] == "close":
                    queue.put_nowait(("closed", None, True))
                    return
                # Any other mid-stream message is a protocol error.
                queue.put_nowait(("bad", message["type"], True))
                return
        except ProtocolError:
            queue.put_nowait(("bad", "unparseable", True))
        except asyncio.CancelledError:
            raise

    async def _stream(self, writer, queue, session_id: str) -> None:
        """Forward queued frame payloads until done/closed."""
        delivered = 0
        while True:
            kind, payloads, done = await queue.get()
            if kind == "frames":
                for payload in payloads:
                    write_message(writer, payload)
                delivered += len(payloads)
                await writer.drain()
                if done:
                    write_message(writer, {
                        "type": "done", "session": session_id,
                        "frames": delivered})
                    await writer.drain()
                    return
            elif kind == "closed":
                write_message(writer, {
                    "type": "closed", "session": session_id,
                    "frames_delivered": delivered})
                await writer.drain()
                return
            else:  # "bad": protocol violation mid-stream
                await self._fail(
                    writer, f"unexpected mid-stream message {payloads!r}")
                return

    @staticmethod
    async def _fail(writer, message: str) -> None:
        write_message(writer, {"type": "error", "message": message})
        try:
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
