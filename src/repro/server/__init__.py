"""Real async serving front-end: frame server, load generator, reconcile.

Everything else in this repository runs on a virtual clock inside one
process.  This package stands up an *actual service* so the serving
claims can be checked against wall-clock behaviour:

* :mod:`.protocol` — the JSON-lines-over-TCP frame protocol (one
  session per connection).
* :mod:`.server` — the asyncio :class:`FrameServer`, backed by the
  existing :class:`~repro.engine.MultiSessionEngine` running in a
  dedicated worker thread (so concurrent connections batch their ray
  work and share the cross-session reference cache, exactly like the
  simulated paths).
* :mod:`.loadgen` — an open-loop load-generator client replaying the
  *same* seeded arrival processes as :mod:`repro.cluster.arrivals`
  against a live server, measuring wall-clock TTFF and frame-latency
  quantiles into ``BENCH_realserve.json``.
* :mod:`.reconcile` — diffs those measured quantiles against a matched
  ``simulate_cluster`` prediction for the same mix/rate/seed; the
  sim-vs-real gap report is the headline artifact.
"""

from .loadgen import LoadgenOptions, loadgen_schedule, run_loadgen
from .protocol import PROTOCOL_SCHEMA, frame_digest, read_message, write_message
from .reconcile import reconcile_report
from .server import FrameServer, ServerOptions

__all__ = [
    "PROTOCOL_SCHEMA",
    "FrameServer",
    "ServerOptions",
    "LoadgenOptions",
    "frame_digest",
    "loadgen_schedule",
    "read_message",
    "reconcile_report",
    "run_loadgen",
    "write_message",
]
