"""JSON-lines frame protocol: one session per TCP connection.

Every message is a single JSON object on its own ``\\n``-terminated
line (UTF-8), small enough to stay human-debuggable with ``nc``.  The
conversation is strictly one session per connection:

* server → client on connect: ``{"type": "hello", "schema": 1, ...}``
* client → server: ``{"type": "open", "workload": NAME,
  "frames": N?, "seed": S?}``
* server → client: ``{"type": "opened", "session": ID, ...}`` then one
  ``{"type": "frame", ...}`` per rendered frame, then
  ``{"type": "done", ...}``.
* client → server at any point: ``{"type": "close"}`` — the server
  stops streaming, retires the session, and answers
  ``{"type": "closed", "frames_delivered": n}``.
* server → client on any protocol error: ``{"type": "error",
  "message": ...}`` followed by connection close.

Frames carry server-side wall-clock ``queue_s``/``render_s``
timestamps plus a content ``digest`` — the SHA-256 of the frame's
exact image+depth bytes — so clients can assert bit-identical parity
with solo rendering without shipping pixel arrays.
"""

from __future__ import annotations

import hashlib
import json

import numpy as np

__all__ = ["PROTOCOL_SCHEMA", "MAX_MESSAGE_BYTES", "ProtocolError",
           "frame_digest", "read_message", "write_message"]

PROTOCOL_SCHEMA = 1

# One JSON line never carries pixel data, so anything near this bound is
# a framing bug (or a hostile peer), not a legitimate message.
MAX_MESSAGE_BYTES = 1 << 20


class ProtocolError(ValueError):
    """A malformed or out-of-sequence protocol message."""


def frame_digest(frame) -> str:
    """SHA-256 over a frame's exact image+depth bytes.

    Matches the digest the parity tests compute for solo-rendered
    frames: equal digests mean bit-identical pixels and depth.
    """
    digest = hashlib.sha256()
    for plane in (frame.image, frame.depth):
        digest.update(np.ascontiguousarray(
            np.asarray(plane, dtype=np.float64)).tobytes())
    return digest.hexdigest()


def encode_message(message: dict) -> bytes:
    """One protocol message as its wire bytes (JSON line)."""
    return (json.dumps(message, separators=(",", ":"),
                       allow_nan=False) + "\n").encode()


def write_message(writer, message: dict) -> None:
    """Serialise ``message`` onto an asyncio ``StreamWriter``.

    The caller decides when to ``await writer.drain()``; frames are
    written eagerly so a slow reader exerts backpressure through drain.
    """
    writer.write(encode_message(message))


async def read_message(reader) -> dict | None:
    """Read one message from an asyncio ``StreamReader``.

    Returns ``None`` on clean EOF (peer closed the connection).  Raises
    :class:`ProtocolError` on oversized lines, non-JSON payloads, or
    payloads that are not an object with a string ``type``.
    """
    try:
        line = await reader.readline()
    except (ConnectionResetError, BrokenPipeError):
        return None
    except ValueError:
        # readline itself rejects lines beyond the stream's buffer
        # limit (64 KiB by default) before our own bound applies.
        raise ProtocolError(
            "message exceeds the line-length limit") from None
    if not line:
        return None
    if len(line) > MAX_MESSAGE_BYTES:
        raise ProtocolError(f"message exceeds {MAX_MESSAGE_BYTES} bytes")
    try:
        message = json.loads(line)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"bad JSON line: {exc}") from None
    if not isinstance(message, dict) or not isinstance(
            message.get("type"), str):
        raise ProtocolError(
            f"message must be an object with a string 'type', got "
            f"{message!r}")
    return message
