"""Sim-vs-real reconciliation: the paper's virtual clock meets the wall.

Everything upstream of this module predicts serving behaviour on a
virtual clock; the loadgen measures the same mix/rate/seed on the real
one.  :func:`reconcile_report` runs a matched single-worker
``simulate_cluster`` prediction (the live :class:`~.server.FrameServer`
is one shared engine, i.e. one worker) and pairs every measured
wall-clock quantile with its predicted counterpart.  The per-metric
gap table is the headline artifact: a roughly constant ``ratio``
column means the simulator's *shape* is right and only its absolute
time unit (virtual cost units vs wall seconds on this machine) differs;
a ratio that diverges on the tail quantiles flags queueing behaviour
the simulator is not modelling.
"""

from __future__ import annotations

__all__ = ["RECONCILE_METRICS", "reconcile_report"]

# Measured/predicted pairs share the cluster report's *_ms key names.
RECONCILE_METRICS = ("ttff_mean_ms", "ttff_p95_ms", "p50_latency_ms",
                     "p95_latency_ms", "p99_latency_ms")


def reconcile_report(measured: dict, config, use_cache: bool = True,
                     governor: str = "off",
                     slo_fps: float | None = None,
                     backend: str | None = None) -> dict:
    """Pair a loadgen summary with its matched simulator prediction.

    ``measured`` is the summary :func:`~.loadgen.run_loadgen` returned
    (its mix/arrivals/rate/duration/seed/frames fields pin down the
    arrival schedule); the remaining arguments must mirror how the live
    server was configured so the simulated engine renders the same
    sessions.  Returns a strict-JSON dict whose ``rows`` pair every
    measured quantile with the prediction (``gap_ms``,  ``ratio``).
    """
    from ..cluster.simulator import simulate_cluster

    report = simulate_cluster(
        measured["mix"], config,
        arrivals=measured["arrivals"],
        rate_hz=measured["rate_hz"],
        duration_s=measured["duration_s"],
        seed=measured["seed"],
        workers=1,  # the live server is one shared engine
        queue_limit=max(measured["sessions_total"], 1),
        frames=measured.get("frames"),
        trace=measured.get("arrival_trace"),
        use_cache=use_cache, governor=governor, slo_fps=slo_fps,
        backend=backend)
    predicted = report.summary()
    rows = []
    for metric in RECONCILE_METRICS:
        measured_ms = float(measured[metric])
        predicted_ms = float(predicted[metric])
        rows.append({
            "metric": metric,
            "measured_ms": measured_ms,
            "predicted_ms": predicted_ms,
            "gap_ms": measured_ms - predicted_ms,
            "ratio": (measured_ms / predicted_ms
                      if predicted_ms > 0.0 else None),
        })
    return {
        "kind": "reconcile",
        "mix": measured["mix"],
        "arrivals": measured["arrivals"],
        "rate_hz": measured["rate_hz"],
        "duration_s": measured["duration_s"],
        "seed": measured["seed"],
        "frames": measured.get("frames"),
        "time_scale": measured.get("time_scale", 1.0),
        "sessions_measured": measured["sessions_total"],
        "sessions_predicted": predicted["arrivals_total"],
        "frames_measured": measured["frames_total"],
        "frames_predicted": predicted["total_frames"],
        "rows": rows,
    }
