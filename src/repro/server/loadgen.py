"""Open-loop load generator: seeded arrivals replayed over real sockets.

The generator replays the *same* seeded arrival processes the cluster
simulator consumes (:func:`repro.cluster.arrivals.make_arrivals`)
against a live :class:`~repro.server.FrameServer` — open loop, so a
session's connection opens at its scheduled wall time regardless of how
the server is keeping up, exactly matching the simulator's arrival
semantics.  Each arrival becomes one TCP connection running one
session; the client records wall-clock TTFF and per-frame latencies
using the simulator's request-time convention (frame ``k`` of a session
arriving at ``t0`` is *requested* at ``t0 + k / fps_target``), so the
measured quantiles and a matched ``simulate_cluster`` prediction
answer the same question.

Determinism: the schedule (arrival times + workload names) is a pure
function of ``(arrivals, mix, rate_hz, duration_s, seed)``; two runs
with the same seed issue identical request schedules (the wall-clock
*measurements* naturally vary).
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass

from ..cluster.arrivals import make_arrivals
from ..metrics.stats import mean_or_zero, percentile_or_zero
from ..obs.runtime import metric_inc
from .protocol import ProtocolError, read_message, write_message

__all__ = ["LoadgenOptions", "loadgen_schedule", "run_loadgen"]


@dataclass(frozen=True)
class LoadgenOptions:
    """One load-generation run (mirrors ``simulate_cluster`` knobs)."""

    mix: str = "vr-lego:4,dolly-chair:2,vr-headshake:1"
    arrivals: str = "poisson"
    rate_hz: float = 2.0
    duration_s: float = 4.0
    seed: int = 0
    frames: int | None = None  # per-session frame-count override
    time_scale: float = 1.0  # wall seconds per virtual second
    arrival_trace: str | None = None  # for arrivals="replay"
    connect_timeout_s: float = 30.0

    def __post_init__(self):
        if not self.time_scale > 0.0:
            raise ValueError(
                f"time_scale must be > 0, got {self.time_scale}")


def loadgen_schedule(options: LoadgenOptions) -> list:
    """The seeded arrival schedule this run replays (deterministic).

    Returns :class:`~repro.cluster.arrivals.Arrival` objects in virtual
    seconds; :func:`run_loadgen` maps virtual time ``t`` to wall time
    ``start + t * time_scale``.
    """
    params = ({"trace": options.arrival_trace}
              if options.arrivals == "replay" else {})
    return make_arrivals(options.arrivals, options.mix,
                         rate_hz=options.rate_hz,
                         duration_s=options.duration_s,
                         seed=options.seed, **params)


async def _run_session(host: str, port: int, arrival, options:
                       LoadgenOptions, start_wall: float) -> dict:
    """Open one connection at its scheduled time; measure its frames."""
    target_wall = start_wall + arrival.time_s * options.time_scale
    delay = target_wall - time.perf_counter()
    if delay > 0.0:
        await asyncio.sleep(delay)
    fps = float(arrival.spec.fps_target)
    record = {
        "workload": arrival.spec.name,
        "scheduled_s": arrival.time_s,
        "start_skew_s": time.perf_counter() - target_wall,
        "status": "ok",
        "frames": 0,
        "ttff_s": None,
        "latencies_s": [],
        "digests": [],
    }
    try:
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port),
            timeout=options.connect_timeout_s)
    except (OSError, asyncio.TimeoutError) as exc:
        record["status"] = f"connect_failed: {exc}"
        metric_inc("loadgen.connect_failed")
        return record
    try:
        hello = await read_message(reader)
        if hello is None or hello["type"] != "hello":
            record["status"] = "bad_hello"
            return record
        open_message = {"type": "open", "workload": arrival.spec.name,
                        "seed": options.seed}
        if options.frames is not None:
            open_message["frames"] = options.frames
        write_message(writer, open_message)
        await writer.drain()
        opened = await read_message(reader)
        if opened is None or opened["type"] != "opened":
            reason = "server_hung_up" if opened is None else (
                opened.get("message", opened["type"])
                if opened["type"] == "error"
                else f"unexpected_message: {opened['type']}")
            record["status"] = str(reason)
            return record
        while True:
            message = await read_message(reader)
            if message is None:
                record["status"] = "server_hung_up"
                return record
            kind = message["type"]
            if kind == "frame":
                now = time.perf_counter()
                index = record["frames"]
                # Simulator convention: frame k is requested at
                # t0 + k / fps_target (scaled with the timeline).
                request_wall = (target_wall
                                + index / fps * options.time_scale)
                record["latencies_s"].append(
                    max(now - request_wall, 0.0) / options.time_scale)
                if index == 0:
                    record["ttff_s"] = (max(now - target_wall, 0.0)
                                        / options.time_scale)
                record["frames"] += 1
                record["digests"].append(message["digest"])
                metric_inc("loadgen.frames")
            elif kind == "done":
                return record
            elif kind == "error":
                record["status"] = f"server_error: {message['message']}"
                return record
            else:
                record["status"] = f"unexpected_message: {kind}"
                return record
    except ProtocolError as exc:
        record["status"] = f"protocol_error: {exc}"
        return record
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


async def run_loadgen(host: str, port: int,
                      options: LoadgenOptions) -> dict:
    """Replay the seeded schedule against a live server; measure it.

    Returns a strict-JSON-safe summary: the request ``schedule`` (for
    determinism checks), per-session records, and aggregate wall-clock
    quantiles in the cluster report's units (``*_ms`` keys, virtual
    seconds when ``time_scale != 1``).
    """
    schedule = loadgen_schedule(options)
    start_wall = time.perf_counter()
    sessions = await asyncio.gather(*[
        _run_session(host, port, arrival, options, start_wall)
        for arrival in schedule])
    elapsed_s = time.perf_counter() - start_wall
    ok = [s for s in sessions if s["status"] == "ok"]
    latencies = [lat for s in ok for lat in s["latencies_s"]]
    ttff = [s["ttff_s"] for s in ok if s["ttff_s"] is not None]
    return {
        "mix": options.mix,
        "arrivals": options.arrivals,
        "rate_hz": options.rate_hz,
        "duration_s": options.duration_s,
        "seed": options.seed,
        "frames": options.frames,
        "time_scale": options.time_scale,
        "arrival_trace": options.arrival_trace,
        "schedule": [{"t": a.time_s, "workload": a.spec.name}
                     for a in schedule],
        "sessions": sessions,
        "sessions_total": len(sessions),
        "sessions_ok": len(ok),
        "frames_total": sum(s["frames"] for s in sessions),
        "elapsed_wall_s": elapsed_s,
        "ttff_mean_ms": mean_or_zero(ttff) * 1e3,
        "ttff_p95_ms": percentile_or_zero(ttff, 95) * 1e3,
        "p50_latency_ms": percentile_or_zero(latencies, 50) * 1e3,
        "p95_latency_ms": percentile_or_zero(latencies, 95) * 1e3,
        "p99_latency_ms": percentile_or_zero(latencies, 99) * 1e3,
    }
