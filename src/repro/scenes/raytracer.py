"""Ground-truth sphere-tracing renderer.

Renders a :class:`~repro.scenes.scene.Scene` exactly by marching rays through
its SDF.  This is the reproduction's stand-in for the paper's captured
datasets: it provides *reference images* for PSNR and *depth maps* for
SPARW's point-cloud conversion (which the paper obtained from photogrammetry
meshes / depth buffers).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..geometry.camera import PinholeCamera

__all__ = ["Frame", "RayTracer"]


@dataclass
class Frame:
    """A rendered frame: color image, z-depth map, hit mask, and the pose.

    ``depth`` is the metric distance along the camera z axis; misses (void /
    background pixels) carry ``+inf`` depth — SPARW's depth test uses this to
    skip sparse NeRF rendering on void pixels.
    """

    image: np.ndarray  # (H, W, 3) float in [0, 1]
    depth: np.ndarray  # (H, W) z-depth, +inf at misses
    hit: np.ndarray  # (H, W) bool
    c2w: np.ndarray  # (4, 4)

    @property
    def resolution(self) -> tuple[int, int]:
        return self.depth.shape


class RayTracer:
    """Sphere tracer with fixed iteration budget and distance threshold."""

    def __init__(self, scene, max_steps: int = 96, hit_eps: float = 1e-3,
                 max_distance: float = 30.0):
        self.scene = scene
        self.max_steps = max_steps
        self.hit_eps = hit_eps
        self.max_distance = max_distance

    # -- core marching -------------------------------------------------------

    def trace(self, origins: np.ndarray, directions: np.ndarray
              ) -> tuple[np.ndarray, np.ndarray]:
        """March rays; return (t, hit) with t the distance along each ray."""
        origins = np.asarray(origins, dtype=float).reshape(-1, 3)
        directions = np.asarray(directions, dtype=float).reshape(-1, 3)
        n = origins.shape[0]
        t = np.zeros(n)
        alive = np.ones(n, dtype=bool)
        hit = np.zeros(n, dtype=bool)

        for _ in range(self.max_steps):
            if not alive.any():
                break
            points = origins[alive] + t[alive, None] * directions[alive]
            dist = self.scene.distance(points)
            newly_hit = dist < self.hit_eps
            alive_idx = np.nonzero(alive)[0]
            hit[alive_idx[newly_hit]] = True
            t[alive] += np.maximum(dist, self.hit_eps * 0.5)
            overshot = t[alive] > self.max_distance
            still = ~(newly_hit | overshot)
            alive[alive_idx] = still
        return t, hit

    def shade_hits(self, origins: np.ndarray, directions: np.ndarray,
                   t: np.ndarray, hit: np.ndarray) -> np.ndarray:
        """Colors for all rays: shaded hit points, background for misses."""
        colors = self.scene.background(directions)
        if hit.any():
            points = origins[hit] + t[hit, None] * directions[hit]
            normals = self.scene.normals(points)
            colors[hit] = self.scene.shade(points, normals, directions[hit])
        return colors

    # -- frame rendering -------------------------------------------------------

    def render(self, camera: PinholeCamera) -> Frame:
        """Render a full frame (color + depth) from ``camera``."""
        origins, directions = camera.generate_rays()
        flat_o = origins.reshape(-1, 3)
        flat_d = directions.reshape(-1, 3)
        t, hit = self.trace(flat_o, flat_d)
        colors = self.shade_hits(flat_o, flat_d, t, hit)

        height, width = camera.height, camera.width
        image = colors.reshape(height, width, 3)
        # Convert ray-distance to z-depth: project the hit point onto the
        # camera's forward axis so depth matches the pinhole model.
        forward = camera.c2w[:3, 2]
        z = t * (flat_d @ forward)
        depth = np.where(hit, z, np.inf).reshape(height, width)
        return Frame(image=image, depth=depth,
                     hit=hit.reshape(height, width), c2w=camera.c2w.copy())

    def render_pixels(self, camera: PinholeCamera, pixel_ids: np.ndarray
                      ) -> tuple[np.ndarray, np.ndarray]:
        """Render a sparse set of pixels; returns (colors, z_depth)."""
        pixel_ids = np.asarray(pixel_ids, dtype=np.int64)
        v, u = np.divmod(pixel_ids, camera.width)
        origins, directions = camera.rays_for_pixels(u + 0.5, v + 0.5)
        t, hit = self.trace(origins, directions)
        colors = self.shade_hits(origins.reshape(-1, 3),
                                 directions.reshape(-1, 3), t, hit)
        forward = camera.c2w[:3, 2]
        z = np.where(hit, t * (directions.reshape(-1, 3) @ forward), np.inf)
        return colors, z
