"""Camera trajectories: orbits, handheld paths, and FPS resampling.

Trajectory statistics drive SPARW's behaviour: the inter-frame pose delta
determines frame overlap (Fig. 7), disocclusion rate, and the warping-angle
distribution (Fig. 26).  The paper contrasts high-temporal-resolution capture
(30 FPS, small deltas — VR-like) with the sparse 1 FPS Tanks-and-Temples
sampling; :func:`resample_fps` reproduces exactly that knob.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..geometry.transforms import look_at

__all__ = ["Trajectory", "orbit_trajectory", "handheld_trajectory", "resample_fps"]


@dataclass
class Trajectory:
    """A sequence of camera-to-world poses sampled at a fixed frame rate."""

    poses: list  # list of (4, 4) ndarray
    fps: float = 30.0
    name: str = "trajectory"

    def __len__(self) -> int:
        return len(self.poses)

    def __getitem__(self, idx):
        return self.poses[idx]

    @property
    def frame_interval(self) -> float:
        """Seconds between consecutive frames (delta-t in Eq. 5)."""
        return 1.0 / self.fps


def orbit_trajectory(
    num_frames: int,
    radius: float = 3.2,
    height: float = 0.8,
    target=(0.0, 0.0, 0.0),
    degrees_per_frame: float = 0.5,
    start_angle_deg: float = 0.0,
    fps: float = 30.0,
) -> Trajectory:
    """Smooth orbit around ``target`` — the canonical VR-viewing motion.

    ``degrees_per_frame`` controls the inter-frame camera delta.  At 30 FPS a
    comfortable head-turn of ~15 deg/s gives 0.5 deg/frame, which produces
    the >98% frame overlap the paper measures on Synthetic-NeRF.
    """
    target = np.asarray(target, dtype=float)
    poses = []
    for i in range(num_frames):
        angle = np.radians(start_angle_deg + degrees_per_frame * i)
        eye = target + np.array([
            radius * np.cos(angle), height, radius * np.sin(angle)])
        poses.append(look_at(eye, target))
    return Trajectory(poses=poses, fps=fps, name=f"orbit_{degrees_per_frame}dpf")


def handheld_trajectory(
    num_frames: int,
    radius: float = 3.2,
    height: float = 0.8,
    target=(0.0, 0.0, 0.0),
    degrees_per_frame: float = 0.5,
    jitter_translation: float = 0.01,
    jitter_target: float = 0.01,
    seed: int = 0,
    fps: float = 30.0,
) -> Trajectory:
    """Orbit with smooth random jitter, imitating a handheld capture.

    The jitter is a low-pass-filtered random walk, so consecutive poses stay
    close (as real captures do) while the path is not perfectly circular.
    """
    rng = np.random.default_rng(seed)
    target = np.asarray(target, dtype=float)

    def smooth_noise(n: int, scale: float) -> np.ndarray:
        raw = rng.normal(scale=scale, size=(n + 8, 3))
        kernel = np.ones(9) / 9.0
        out = np.stack([np.convolve(raw[:, k], kernel, mode="valid") for k in range(3)], axis=1)
        return out[:n]

    eye_noise = smooth_noise(num_frames, jitter_translation * 6.0)
    tgt_noise = smooth_noise(num_frames, jitter_target * 6.0)

    poses = []
    for i in range(num_frames):
        angle = np.radians(degrees_per_frame * i)
        eye = target + np.array([
            radius * np.cos(angle), height, radius * np.sin(angle)]) + eye_noise[i]
        poses.append(look_at(eye, target + tgt_noise[i]))
    return Trajectory(poses=poses, fps=fps, name="handheld")


def resample_fps(trajectory: Trajectory, target_fps: float) -> Trajectory:
    """Downsample a trajectory to a lower frame rate by frame dropping.

    Keeps every ``round(fps / target_fps)``-th pose — the paper's "1 FPS
    Tanks-and-Temples sequence" versus the raw 30 FPS video (Fig. 25).
    """
    if target_fps > trajectory.fps:
        raise ValueError("can only downsample (target_fps <= trajectory fps)")
    stride = max(1, int(round(trajectory.fps / target_fps)))
    poses = trajectory.poses[::stride]
    return Trajectory(poses=poses, fps=trajectory.fps / stride,
                      name=f"{trajectory.name}@{target_fps:g}fps")
