"""Camera trajectories: orbits, handheld paths, and FPS resampling.

Trajectory statistics drive SPARW's behaviour: the inter-frame pose delta
determines frame overlap (Fig. 7), disocclusion rate, and the warping-angle
distribution (Fig. 26).  The paper contrasts high-temporal-resolution capture
(30 FPS, small deltas — VR-like) with the sparse 1 FPS Tanks-and-Temples
sampling; :func:`resample_fps` reproduces exactly that knob.

Beyond the paper's orbits, this module provides a family of deterministic
generators (dolly, VR head shake, seeded random walk, pose-log replay) behind
the :func:`make_trajectory` registry, so the serving layer can mix
heterogeneous user motions from declarative workload specs.
"""

from __future__ import annotations

import inspect
import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..geometry.transforms import look_at

__all__ = [
    "Trajectory", "orbit_trajectory", "handheld_trajectory",
    "dolly_trajectory", "headshake_trajectory", "random_walk_trajectory",
    "replay_trajectory", "save_pose_log", "load_pose_log",
    "TRAJECTORY_KINDS", "make_trajectory", "trajectory_parameters",
    "resample_fps",
]


@dataclass
class Trajectory:
    """A sequence of camera-to-world poses sampled at a fixed frame rate."""

    poses: list  # list of (4, 4) ndarray
    fps: float = 30.0
    name: str = "trajectory"

    def __len__(self) -> int:
        return len(self.poses)

    def __getitem__(self, idx):
        return self.poses[idx]

    @property
    def frame_interval(self) -> float:
        """Seconds between consecutive frames (delta-t in Eq. 5)."""
        return 1.0 / self.fps


def orbit_trajectory(
    num_frames: int,
    radius: float = 3.2,
    height: float = 0.8,
    target=(0.0, 0.0, 0.0),
    degrees_per_frame: float = 0.5,
    start_angle_deg: float = 0.0,
    fps: float = 30.0,
) -> Trajectory:
    """Smooth orbit around ``target`` — the canonical VR-viewing motion.

    ``degrees_per_frame`` controls the inter-frame camera delta.  At 30 FPS a
    comfortable head-turn of ~15 deg/s gives 0.5 deg/frame, which produces
    the >98% frame overlap the paper measures on Synthetic-NeRF.
    """
    target = np.asarray(target, dtype=float)
    poses = []
    for i in range(num_frames):
        angle = np.radians(start_angle_deg + degrees_per_frame * i)
        eye = target + np.array([
            radius * np.cos(angle), height, radius * np.sin(angle)])
        poses.append(look_at(eye, target))
    return Trajectory(poses=poses, fps=fps, name=f"orbit_{degrees_per_frame}dpf")


def handheld_trajectory(
    num_frames: int,
    radius: float = 3.2,
    height: float = 0.8,
    target=(0.0, 0.0, 0.0),
    degrees_per_frame: float = 0.5,
    jitter_translation: float = 0.01,
    jitter_target: float = 0.01,
    seed: int = 0,
    fps: float = 30.0,
) -> Trajectory:
    """Orbit with smooth random jitter, imitating a handheld capture.

    The jitter is a low-pass-filtered random walk, so consecutive poses stay
    close (as real captures do) while the path is not perfectly circular.
    """
    rng = np.random.default_rng(seed)
    target = np.asarray(target, dtype=float)

    def smooth_noise(n: int, scale: float) -> np.ndarray:
        raw = rng.normal(scale=scale, size=(n + 8, 3))
        kernel = np.ones(9) / 9.0
        out = np.stack([np.convolve(raw[:, k], kernel, mode="valid") for k in range(3)], axis=1)
        return out[:n]

    eye_noise = smooth_noise(num_frames, jitter_translation * 6.0)
    tgt_noise = smooth_noise(num_frames, jitter_target * 6.0)

    poses = []
    for i in range(num_frames):
        angle = np.radians(degrees_per_frame * i)
        eye = target + np.array([
            radius * np.cos(angle), height, radius * np.sin(angle)]) + eye_noise[i]
        poses.append(look_at(eye, target + tgt_noise[i]))
    return Trajectory(poses=poses, fps=fps, name="handheld")


def dolly_trajectory(
    num_frames: int,
    start_distance: float = 4.0,
    end_distance: float = 2.0,
    height: float = 0.8,
    target=(0.0, 0.0, 0.0),
    azimuth_deg: float = 0.0,
    fps: float = 30.0,
) -> Trajectory:
    """Straight push-in (or pull-out) toward ``target`` along one azimuth.

    Dolly moves stress SPARW differently from orbits: the warp field is
    mostly radial scaling, overlap stays high, but disocclusion concentrates
    at silhouette edges as parallax grows.
    """
    if num_frames < 1:
        raise ValueError("num_frames must be >= 1")
    target = np.asarray(target, dtype=float)
    angle = np.radians(azimuth_deg)
    direction = np.array([np.cos(angle), 0.0, np.sin(angle)])
    distances = np.linspace(start_distance, end_distance, num_frames)
    poses = [look_at(target + direction * d + np.array([0.0, height, 0.0]),
                     target)
             for d in distances]
    return Trajectory(poses=poses, fps=fps,
                      name=f"dolly_{start_distance:g}to{end_distance:g}")


def headshake_trajectory(
    num_frames: int,
    radius: float = 3.2,
    height: float = 0.8,
    target=(0.0, 0.0, 0.0),
    azimuth_deg: float = 0.0,
    yaw_amplitude_deg: float = 4.0,
    period_frames: float = 24.0,
    sway: float = 0.02,
    fps: float = 30.0,
) -> Trajectory:
    """VR-style head shake: a seated viewer scanning left and right.

    The eye stays (almost) put — a small sinusoidal sway models neck
    motion — while the gaze target oscillates laterally, producing the
    rotation-dominated pose deltas typical of head-mounted displays.
    """
    if num_frames < 1:
        raise ValueError("num_frames must be >= 1")
    if period_frames <= 0.0:
        raise ValueError("period_frames must be positive")
    target = np.asarray(target, dtype=float)
    angle = np.radians(azimuth_deg)
    back = np.array([np.cos(angle), 0.0, np.sin(angle)])
    lateral = np.array([-np.sin(angle), 0.0, np.cos(angle)])
    eye0 = target + back * radius + np.array([0.0, height, 0.0])
    # Gaze swing wide enough that yaw_amplitude_deg is the peak yaw angle.
    swing = radius * np.tan(np.radians(yaw_amplitude_deg))

    poses = []
    for i in range(num_frames):
        phase = 2.0 * np.pi * i / period_frames
        eye = eye0 + lateral * (sway * np.sin(phase))
        gaze = target + lateral * (swing * np.sin(phase))
        poses.append(look_at(eye, gaze))
    return Trajectory(poses=poses, fps=fps,
                      name=f"headshake_{yaw_amplitude_deg:g}deg")


def random_walk_trajectory(
    num_frames: int,
    seed: int = 0,
    target=(0.0, 0.0, 0.0),
    radius: float = 3.2,
    min_radius: float = 2.2,
    max_radius: float = 4.2,
    height: float = 0.8,
    step_scale: float = 0.04,
    fps: float = 30.0,
) -> Trajectory:
    """Seeded smooth random walk around ``target``, gaze locked on it.

    The eye performs a low-pass-filtered random walk constrained to a
    spherical shell ``[min_radius, max_radius]``, modelling an exploring
    user.  Fully deterministic in ``seed``.
    """
    if num_frames < 1:
        raise ValueError("num_frames must be >= 1")
    if not (0.0 < min_radius <= radius <= max_radius):
        raise ValueError("need 0 < min_radius <= radius <= max_radius")
    rng = np.random.default_rng(seed)
    target = np.asarray(target, dtype=float)

    steps = rng.normal(scale=step_scale, size=(num_frames, 3))
    # Low-pass the steps so consecutive poses stay close (real motion has
    # momentum; white-noise steps would thrash the warp).
    kernel = np.ones(5) / 5.0
    padded = np.concatenate([np.zeros((4, 3)), steps], axis=0)
    smooth = np.stack([np.convolve(padded[:, k], kernel, mode="valid")
                       for k in range(3)], axis=1)

    eye = target + np.array([radius, height, 0.0])
    poses = []
    for i in range(num_frames):
        eye = eye + smooth[i]
        offset = eye - target
        dist = float(np.linalg.norm(offset))
        clamped = float(np.clip(dist, min_radius, max_radius))
        if dist > 0.0 and clamped != dist:
            eye = target + offset * (clamped / dist)
        poses.append(look_at(eye, target))
    return Trajectory(poses=poses, fps=fps, name=f"walk_seed{seed}")


def replay_trajectory(poses, fps: float = 30.0,
                      name: str = "replay") -> Trajectory:
    """Trajectory from an explicit pose sequence (e.g. a recorded session)."""
    poses = [np.asarray(p, dtype=float) for p in poses]
    for pose in poses:
        if pose.shape != (4, 4):
            raise ValueError(f"poses must be (4, 4) matrices, got {pose.shape}")
    return Trajectory(poses=poses, fps=fps, name=name)


def save_pose_log(trajectory: Trajectory, path) -> Path:
    """Persist a trajectory as a JSON pose log; returns the path.

    JSON floats round-trip exactly (shortest-repr), so
    ``load_pose_log(save_pose_log(t, p))`` reproduces ``t`` bit-for-bit.
    """
    path = Path(path)
    payload = {
        "schema": 1,
        "name": trajectory.name,
        "fps": trajectory.fps,
        "poses": [np.asarray(p, dtype=float).tolist()
                  for p in trajectory.poses],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def load_pose_log(path) -> Trajectory:
    """Load a trajectory saved by :func:`save_pose_log`."""
    payload = json.loads(Path(path).read_text())
    return replay_trajectory(payload["poses"], fps=float(payload["fps"]),
                             name=str(payload.get("name", "replay")))


def _replay_from_log(num_frames: int, seed: int = 0, pose_log=None,
                     fps: float | None = None) -> Trajectory:
    if pose_log is None:
        raise ValueError("replay trajectories need a pose_log=PATH parameter")
    trajectory = load_pose_log(pose_log)
    if num_frames > len(trajectory):
        raise ValueError(
            f"pose log {pose_log!r} has {len(trajectory)} poses, "
            f"{num_frames} requested")
    return Trajectory(poses=trajectory.poses[:num_frames],
                      fps=fps if fps is not None else trajectory.fps,
                      name=trajectory.name)


# Generator registry: each builder takes num_frames first; builders with a
# ``seed`` parameter receive it, deterministic ones never see it.  None of
# them accepts **kwargs, so unknown parameters fail loudly (and the
# workload layer can validate spec params against these signatures).
TRAJECTORY_KINDS = {
    "orbit": orbit_trajectory,
    "handheld": handheld_trajectory,
    "dolly": dolly_trajectory,
    "headshake": headshake_trajectory,
    "random_walk": random_walk_trajectory,
    "replay": _replay_from_log,
}


def trajectory_parameters(kind: str) -> dict:
    """Signature parameters of a registered generator (for validation)."""
    try:
        builder = TRAJECTORY_KINDS[kind]
    except KeyError:
        known = ", ".join(sorted(TRAJECTORY_KINDS))
        raise KeyError(f"unknown trajectory kind {kind!r}; "
                       f"one of: {known}") from None
    return dict(inspect.signature(builder).parameters)


def make_trajectory(kind: str, num_frames: int, seed: int = 0,
                    **params) -> Trajectory:
    """Build a trajectory by registry name — the workload layer's entry point.

    All generators are deterministic given ``(kind, num_frames, seed,
    params)``, which is what makes trajectory-derived cache keys (and the
    bit-parity of cached serving) possible.  Unknown ``params`` raise
    ``TypeError`` for every kind, including ``replay``.
    """
    builder = TRAJECTORY_KINDS.get(kind)
    if builder is None:
        known = ", ".join(sorted(TRAJECTORY_KINDS))
        raise KeyError(f"unknown trajectory kind {kind!r}; "
                       f"one of: {known}")
    if "seed" in trajectory_parameters(kind):
        params["seed"] = seed
    return builder(num_frames, **params)


def resample_fps(trajectory: Trajectory, target_fps: float) -> Trajectory:
    """Downsample a trajectory to a lower frame rate by frame dropping.

    Keeps every ``round(fps / target_fps)``-th pose — the paper's "1 FPS
    Tanks-and-Temples sequence" versus the raw 30 FPS video (Fig. 25).
    """
    if target_fps > trajectory.fps:
        raise ValueError("can only downsample (target_fps <= trajectory fps)")
    stride = max(1, int(round(trajectory.fps / target_fps)))
    poses = trajectory.poses[::stride]
    return Trajectory(poses=poses, fps=trajectory.fps / stride,
                      name=f"{trajectory.name}@{target_fps:g}fps")
