"""Scene library: procedural stand-ins for the paper's datasets.

The paper evaluates on Synthetic-NeRF (eight object scenes), Unbounded-360
(Bonsai) and Tanks-and-Temples (Ignatius).  We cannot ship those captures, so
this module provides deterministic procedural scenes with matching *roles*:

* ``SYNTHETIC_SCENES`` — eight bounded object-centric scenes with mostly
  diffuse materials (where SPARW's radiance approximation holds well).
* ``bonsai_like()`` / ``ignatius_like()`` — two scenes with ground planes and
  noticeable specular components, standing in for the real-world captures
  where warping quality degrades at low temporal resolution (Sec. VI-F).
"""

from __future__ import annotations

import numpy as np

from .scene import (
    DirectionalLight,
    Material,
    Scene,
    SceneObject,
    checker_albedo,
    noise_albedo,
    solid_albedo,
    stripe_albedo,
)
from .sdf import Box, Cylinder, Sphere, Torus

__all__ = [
    "lego_like", "chair_like", "drums_like", "ficus_like",
    "hotdog_like", "materials_like", "mic_like", "ship_like",
    "bonsai_like", "ignatius_like",
    "SYNTHETIC_SCENES", "REAL_WORLD_SCENES", "get_scene",
]

_BOUNDS = (np.array([-1.5, -1.5, -1.5]), np.array([1.5, 1.5, 1.5]))


def lego_like() -> Scene:
    """Blocky stacked-brick object (stands in for *lego*)."""
    objects = [
        SceneObject(Box(center=[0.0, -0.55, 0.0], half_size=[0.9, 0.12, 0.6]),
                    Material(albedo=checker_albedo([0.85, 0.75, 0.2], [0.75, 0.6, 0.12], 0.14)),
                    name="base"),
        SceneObject(Box(center=[-0.3, -0.2, 0.0], half_size=[0.45, 0.22, 0.45]),
                    Material(albedo=noise_albedo([0.8, 0.25, 0.15], 0.2, 9.0, seed=21)), name="body"),
        SceneObject(Box(center=[0.35, 0.05, 0.0], half_size=[0.28, 0.45, 0.28]),
                    Material(albedo=noise_albedo([0.25, 0.45, 0.8], 0.2, 9.0, seed=22)), name="tower"),
        SceneObject(Cylinder(center=[-0.3, 0.15, 0.0], radius=0.12, half_height=0.14),
                    Material(albedo=solid_albedo([0.9, 0.8, 0.2])), name="stud"),
    ]
    return Scene(objects=objects, bounds=_BOUNDS, name="lego")


def chair_like() -> Scene:
    """Seat + backrest + four legs (stands in for *chair*)."""
    legs = [
        SceneObject(Box(center=[x, -0.75, z], half_size=[0.06, 0.45, 0.06]),
                    Material(albedo=solid_albedo([0.45, 0.28, 0.15])), name=f"leg{i}")
        for i, (x, z) in enumerate([(-0.45, -0.45), (0.45, -0.45), (-0.45, 0.45), (0.45, 0.45)])
    ]
    objects = legs + [
        SceneObject(Box(center=[0.0, -0.25, 0.0], half_size=[0.55, 0.07, 0.55]),
                    Material(albedo=stripe_albedo([0.6, 0.4, 0.2], [0.45, 0.28, 0.14], 0, 0.1)),
                    name="seat"),
        SceneObject(Box(center=[0.0, 0.35, -0.5], half_size=[0.55, 0.55, 0.06]),
                    Material(albedo=stripe_albedo([0.62, 0.42, 0.22], [0.48, 0.3, 0.15], 1, 0.12)),
                    name="back"),
    ]
    return Scene(objects=objects, bounds=_BOUNDS, name="chair")


def drums_like() -> Scene:
    """Cylinders of varying radii (stands in for *drums*)."""
    objects = [
        SceneObject(Cylinder(center=[-0.5, -0.35, 0.2], radius=0.4, half_height=0.28),
                    Material(albedo=solid_albedo([0.75, 0.2, 0.2]), specular=0.15), name="kick"),
        SceneObject(Cylinder(center=[0.45, -0.2, -0.3], radius=0.3, half_height=0.18),
                    Material(albedo=solid_albedo([0.85, 0.85, 0.88]), specular=0.3), name="snare"),
        SceneObject(Cylinder(center=[0.35, 0.25, 0.45], radius=0.24, half_height=0.12),
                    Material(albedo=solid_albedo([0.9, 0.75, 0.3]), specular=0.4,
                             shininess=64.0), name="cymbal"),
        SceneObject(Box(center=[0.0, -0.8, 0.0], half_size=[1.1, 0.08, 1.1]),
                    Material(albedo=checker_albedo([0.4, 0.4, 0.45], [0.28, 0.28, 0.33], 0.16)),
                    name="riser"),
    ]
    return Scene(objects=objects, bounds=_BOUNDS, name="drums")


def ficus_like() -> Scene:
    """Pot + trunk + leafy blobs (stands in for *ficus*)."""
    rng = np.random.default_rng(7)
    leaves = []
    for i in range(6):
        center = np.array([rng.uniform(-0.45, 0.45), rng.uniform(0.15, 0.8),
                           rng.uniform(-0.45, 0.45)])
        leaves.append(SceneObject(
            Sphere(center=center, radius=rng.uniform(0.18, 0.3)),
            Material(albedo=noise_albedo([0.2, 0.55, 0.2], 0.22, 9.0, seed=i)),
            name=f"leaf{i}"))
    objects = leaves + [
        SceneObject(Cylinder(center=[0.0, -0.15, 0.0], radius=0.07, half_height=0.55),
                    Material(albedo=solid_albedo([0.4, 0.26, 0.13])), name="trunk"),
        SceneObject(Cylinder(center=[0.0, -0.8, 0.0], radius=0.35, half_height=0.2),
                    Material(albedo=solid_albedo([0.65, 0.35, 0.25])), name="pot"),
    ]
    return Scene(objects=objects, bounds=_BOUNDS, name="ficus")


def hotdog_like() -> Scene:
    """Plate + two elongated shapes (stands in for *hotdog*)."""
    objects = [
        SceneObject(Cylinder(center=[0.0, -0.6, 0.0], radius=0.95, half_height=0.06),
                    Material(albedo=checker_albedo([0.92, 0.92, 0.95], [0.8, 0.8, 0.86], 0.15), specular=0.2),
                    name="plate"),
        SceneObject(Sphere(center=[-0.25, -0.38, 0.0], radius=0.22).scaled(1.0),
                    Material(albedo=solid_albedo([0.8, 0.45, 0.2])), name="bun_a"),
        SceneObject(Sphere(center=[0.25, -0.38, 0.0], radius=0.22),
                    Material(albedo=solid_albedo([0.8, 0.45, 0.2])), name="bun_b"),
        SceneObject(Torus(center=[0.0, -0.3, 0.0], major=0.45, minor=0.1),
                    Material(albedo=solid_albedo([0.7, 0.25, 0.12]), specular=0.1),
                    name="sausage"),
    ]
    return Scene(objects=objects, bounds=_BOUNDS, name="hotdog")


def materials_like() -> Scene:
    """Grid of spheres with varying specular strength (stands in for *materials*).

    This is intentionally the most view-dependent synthetic scene: it bounds
    the quality loss of the diffuse-reuse assumption in SPARW.
    """
    objects = []
    speculars = [0.0, 0.15, 0.35, 0.6]
    for i, spec in enumerate(speculars):
        x = -0.75 + 0.5 * i
        objects.append(SceneObject(
            Sphere(center=[x, -0.2, 0.0], radius=0.22),
            Material(albedo=solid_albedo([0.6, 0.3 + 0.1 * i, 0.7 - 0.12 * i]),
                     specular=spec, shininess=48.0),
            name=f"sphere{i}"))
    objects.append(SceneObject(
        Box(center=[0.0, -0.55, 0.0], half_size=[1.2, 0.08, 0.7]),
        Material(albedo=checker_albedo([0.8, 0.8, 0.8], [0.25, 0.25, 0.25], 0.15)),
        name="table"))
    return Scene(objects=objects, bounds=_BOUNDS, name="materials")


def mic_like() -> Scene:
    """Sphere on a thin stand (stands in for *mic*)."""
    objects = [
        SceneObject(Sphere(center=[0.0, 0.45, 0.0], radius=0.32),
                    Material(albedo=noise_albedo([0.6, 0.6, 0.65], 0.25, 11.0, seed=3),
                             specular=0.25), name="head"),
        SceneObject(Cylinder(center=[0.0, -0.2, 0.0], radius=0.05, half_height=0.45),
                    Material(albedo=solid_albedo([0.3, 0.3, 0.32])), name="stand"),
        SceneObject(Cylinder(center=[0.0, -0.7, 0.0], radius=0.4, half_height=0.07),
                    Material(albedo=solid_albedo([0.25, 0.25, 0.28])), name="base"),
    ]
    return Scene(objects=objects, bounds=_BOUNDS, name="mic")


def ship_like() -> Scene:
    """Hull + masts above a reflective 'water' slab (stands in for *ship*)."""
    objects = [
        SceneObject(Box(center=[0.0, -0.45, 0.0], half_size=[0.85, 0.18, 0.3]),
                    Material(albedo=solid_albedo([0.5, 0.33, 0.18])), name="hull"),
        SceneObject(Cylinder(center=[-0.25, 0.15, 0.0], radius=0.04, half_height=0.5),
                    Material(albedo=solid_albedo([0.45, 0.3, 0.16])), name="mast_a"),
        SceneObject(Cylinder(center=[0.35, 0.05, 0.0], radius=0.035, half_height=0.4),
                    Material(albedo=solid_albedo([0.45, 0.3, 0.16])), name="mast_b"),
        SceneObject(Box(center=[0.0, -0.72, 0.0], half_size=[1.3, 0.06, 1.3]),
                    Material(albedo=noise_albedo([0.15, 0.3, 0.5], 0.18, 8.0, seed=11),
                             specular=0.5, shininess=24.0), name="water"),
    ]
    return Scene(objects=objects, bounds=_BOUNDS, name="ship")


def bonsai_like() -> Scene:
    """Indoor-style unbounded scene (stands in for Unbounded-360 *Bonsai*)."""
    objects = [
        SceneObject(Cylinder(center=[0.0, -0.55, 0.0], radius=0.45, half_height=0.12),
                    Material(albedo=solid_albedo([0.55, 0.3, 0.2]), specular=0.2),
                    name="pot"),
        SceneObject(Sphere(center=[0.0, 0.15, 0.0], radius=0.45),
                    Material(albedo=noise_albedo([0.25, 0.5, 0.22], 0.24, 10.0, seed=5)),
                    name="canopy"),
        SceneObject(Cylinder(center=[0.0, -0.25, 0.0], radius=0.07, half_height=0.3),
                    Material(albedo=solid_albedo([0.38, 0.25, 0.14])), name="trunk"),
        SceneObject(Box(center=[0.0, -0.78, 0.0], half_size=[1.35, 0.1, 1.35]),
                    Material(albedo=checker_albedo([0.75, 0.7, 0.62], [0.58, 0.53, 0.46], 0.18),
                             specular=0.35, shininess=20.0), name="table"),
    ]
    return Scene(objects=objects, bounds=_BOUNDS, name="bonsai")


def ignatius_like() -> Scene:
    """Outdoor statue scene (stands in for Tanks-and-Temples *Ignatius*)."""
    objects = [
        SceneObject(Sphere(center=[0.0, 0.35, 0.0], radius=0.28),
                    Material(albedo=solid_albedo([0.35, 0.32, 0.3]), specular=0.45,
                             shininess=16.0), name="head"),
        SceneObject(Box(center=[0.0, -0.15, 0.0], half_size=[0.3, 0.35, 0.2]),
                    Material(albedo=noise_albedo([0.38, 0.35, 0.32], 0.16, 9.0, seed=9),
                             specular=0.4, shininess=16.0), name="torso"),
        SceneObject(Box(center=[0.0, -0.62, 0.0], half_size=[0.45, 0.14, 0.45]),
                    Material(albedo=solid_albedo([0.5, 0.48, 0.45])), name="plinth"),
        SceneObject(Box(center=[0.0, -0.82, 0.0], half_size=[1.35, 0.08, 1.35]),
                    Material(albedo=checker_albedo([0.55, 0.52, 0.48], [0.43, 0.41, 0.38], 0.2)),
                    name="ground"),
    ]
    lights = [
        DirectionalLight(direction=[-0.4, -1.0, -0.2], intensity=1.0),
        DirectionalLight(direction=[0.8, -0.3, 0.4], color=[0.95, 0.9, 0.85], intensity=0.35),
    ]
    return Scene(objects=objects, lights=lights, bounds=_BOUNDS, name="ignatius")


SYNTHETIC_SCENES = {
    "lego": lego_like,
    "chair": chair_like,
    "drums": drums_like,
    "ficus": ficus_like,
    "hotdog": hotdog_like,
    "materials": materials_like,
    "mic": mic_like,
    "ship": ship_like,
}

REAL_WORLD_SCENES = {
    "bonsai": bonsai_like,
    "ignatius": ignatius_like,
}


def get_scene(name: str) -> Scene:
    """Build a scene by name from either suite."""
    if name in SYNTHETIC_SCENES:
        return SYNTHETIC_SCENES[name]()
    if name in REAL_WORLD_SCENES:
        return REAL_WORLD_SCENES[name]()
    known = sorted(SYNTHETIC_SCENES) + sorted(REAL_WORLD_SCENES)
    raise KeyError(f"unknown scene {name!r}; known scenes: {known}")
