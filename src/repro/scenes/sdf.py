"""Signed-distance-field primitives and CSG combinators.

The procedural scenes that stand in for Synthetic-NeRF / Tanks-and-Temples
are built from these analytic SDFs.  Having exact geometry gives the
reproduction an exact ground truth: the sphere-tracing renderer in
:mod:`repro.scenes.raytracer` produces reference images and depth maps, and
the NeRF fields in :mod:`repro.nerf` are baked from the same SDFs.

All primitives implement ``distance(points) -> (N,)`` for (N, 3) inputs, and
are vectorised NumPy throughout.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "SDF",
    "Sphere",
    "Box",
    "Torus",
    "Plane",
    "Cylinder",
    "Union",
    "Intersection",
    "Subtraction",
    "SmoothUnion",
    "Translated",
    "Scaled",
    "estimate_normals",
]


class SDF:
    """Base class for signed distance fields."""

    def distance(self, points: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    # CSG sugar -------------------------------------------------------------

    def __or__(self, other: "SDF") -> "SDF":
        return Union([self, other])

    def __and__(self, other: "SDF") -> "SDF":
        return Intersection([self, other])

    def __sub__(self, other: "SDF") -> "SDF":
        return Subtraction(self, other)

    def translated(self, offset) -> "SDF":
        return Translated(self, np.asarray(offset, dtype=float))

    def scaled(self, factor: float) -> "SDF":
        return Scaled(self, float(factor))


@dataclass
class Sphere(SDF):
    """Sphere of ``radius`` centred at ``center``."""

    center: np.ndarray = field(default_factory=lambda: np.zeros(3))
    radius: float = 1.0

    def distance(self, points: np.ndarray) -> np.ndarray:
        return np.linalg.norm(points - np.asarray(self.center), axis=-1) - self.radius


@dataclass
class Box(SDF):
    """Axis-aligned box with half-extents ``half_size`` centred at ``center``."""

    center: np.ndarray = field(default_factory=lambda: np.zeros(3))
    half_size: np.ndarray = field(default_factory=lambda: np.ones(3))

    def distance(self, points: np.ndarray) -> np.ndarray:
        q = np.abs(points - np.asarray(self.center)) - np.asarray(self.half_size)
        outside = np.linalg.norm(np.maximum(q, 0.0), axis=-1)
        inside = np.minimum(q.max(axis=-1), 0.0)
        return outside + inside


@dataclass
class Torus(SDF):
    """Torus in the xz-plane: major radius ``major``, tube radius ``minor``."""

    center: np.ndarray = field(default_factory=lambda: np.zeros(3))
    major: float = 1.0
    minor: float = 0.25

    def distance(self, points: np.ndarray) -> np.ndarray:
        p = points - np.asarray(self.center)
        ring = np.sqrt(p[..., 0] ** 2 + p[..., 2] ** 2) - self.major
        return np.sqrt(ring**2 + p[..., 1] ** 2) - self.minor


@dataclass
class Plane(SDF):
    """Half-space below the plane ``dot(normal, p) = offset``."""

    normal: np.ndarray = field(default_factory=lambda: np.array([0.0, 1.0, 0.0]))
    offset: float = 0.0

    def __post_init__(self):
        normal = np.asarray(self.normal, dtype=float)
        self.normal = normal / np.linalg.norm(normal)

    def distance(self, points: np.ndarray) -> np.ndarray:
        return points @ self.normal - self.offset


@dataclass
class Cylinder(SDF):
    """Finite vertical (y-axis) cylinder."""

    center: np.ndarray = field(default_factory=lambda: np.zeros(3))
    radius: float = 0.5
    half_height: float = 1.0

    def distance(self, points: np.ndarray) -> np.ndarray:
        p = points - np.asarray(self.center)
        radial = np.sqrt(p[..., 0] ** 2 + p[..., 2] ** 2) - self.radius
        axial = np.abs(p[..., 1]) - self.half_height
        q = np.stack([radial, axial], axis=-1)
        outside = np.linalg.norm(np.maximum(q, 0.0), axis=-1)
        inside = np.minimum(q.max(axis=-1), 0.0)
        return outside + inside


@dataclass
class Union(SDF):
    """CSG union: minimum of child distances."""

    children: list

    def distance(self, points: np.ndarray) -> np.ndarray:
        dists = [child.distance(points) for child in self.children]
        return np.minimum.reduce(dists)


@dataclass
class Intersection(SDF):
    """CSG intersection: maximum of child distances."""

    children: list

    def distance(self, points: np.ndarray) -> np.ndarray:
        dists = [child.distance(points) for child in self.children]
        return np.maximum.reduce(dists)


@dataclass
class Subtraction(SDF):
    """CSG subtraction: ``base`` minus ``cut``."""

    base: SDF
    cut: SDF

    def distance(self, points: np.ndarray) -> np.ndarray:
        return np.maximum(self.base.distance(points), -self.cut.distance(points))


@dataclass
class SmoothUnion(SDF):
    """Polynomial smooth-min union with blend radius ``k``."""

    a: SDF
    b: SDF
    k: float = 0.1

    def distance(self, points: np.ndarray) -> np.ndarray:
        da = self.a.distance(points)
        db = self.b.distance(points)
        h = np.clip(0.5 + 0.5 * (db - da) / self.k, 0.0, 1.0)
        return db * (1.0 - h) + da * h - self.k * h * (1.0 - h)


@dataclass
class Translated(SDF):
    """Child SDF rigidly translated by ``offset``."""

    child: SDF
    offset: np.ndarray

    def distance(self, points: np.ndarray) -> np.ndarray:
        return self.child.distance(points - self.offset)


@dataclass
class Scaled(SDF):
    """Child SDF uniformly scaled about the origin."""

    child: SDF
    factor: float

    def distance(self, points: np.ndarray) -> np.ndarray:
        return self.child.distance(points / self.factor) * self.factor


def estimate_normals(sdf: SDF, points: np.ndarray, eps: float = 1e-4) -> np.ndarray:
    """Central-difference surface normals of an SDF at ``points``."""
    points = np.asarray(points, dtype=float)
    offsets = np.eye(3) * eps
    grads = np.stack(
        [
            sdf.distance(points + offsets[i]) - sdf.distance(points - offsets[i])
            for i in range(3)
        ],
        axis=-1,
    )
    norms = np.linalg.norm(grads, axis=-1, keepdims=True)
    norms = np.where(norms < 1e-12, 1.0, norms)
    return grads / norms
