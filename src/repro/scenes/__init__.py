"""Procedural scenes, ground-truth ray tracer, and camera trajectories."""

from .library import (
    REAL_WORLD_SCENES,
    SYNTHETIC_SCENES,
    bonsai_like,
    get_scene,
    ignatius_like,
)
from .raytracer import Frame, RayTracer
from .scene import DirectionalLight, Material, Scene, SceneObject
from .sdf import SDF, Box, Cylinder, Plane, Sphere, Torus
from .trajectory import (
    TRAJECTORY_KINDS,
    Trajectory,
    dolly_trajectory,
    handheld_trajectory,
    headshake_trajectory,
    load_pose_log,
    make_trajectory,
    orbit_trajectory,
    random_walk_trajectory,
    replay_trajectory,
    resample_fps,
    save_pose_log,
)

__all__ = [
    "REAL_WORLD_SCENES",
    "SYNTHETIC_SCENES",
    "bonsai_like",
    "get_scene",
    "ignatius_like",
    "Frame",
    "RayTracer",
    "DirectionalLight",
    "Material",
    "Scene",
    "SceneObject",
    "SDF",
    "Box",
    "Cylinder",
    "Plane",
    "Sphere",
    "Torus",
    "TRAJECTORY_KINDS",
    "Trajectory",
    "dolly_trajectory",
    "handheld_trajectory",
    "headshake_trajectory",
    "load_pose_log",
    "make_trajectory",
    "orbit_trajectory",
    "random_walk_trajectory",
    "replay_trajectory",
    "resample_fps",
    "save_pose_log",
]
