"""Scene description: SDF geometry + materials + lights.

A :class:`Scene` is the single source of truth for an experiment: the
ground-truth sphere tracer renders it exactly, and the NeRF fields are baked
from its density/albedo so that rendering-quality comparisons (PSNR) are
meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from .sdf import SDF, estimate_normals

__all__ = ["Material", "SceneObject", "DirectionalLight", "Scene",
           "checker_albedo", "stripe_albedo", "solid_albedo", "noise_albedo"]


def solid_albedo(color) -> Callable[[np.ndarray], np.ndarray]:
    """Constant albedo."""
    color = np.asarray(color, dtype=float)

    def fn(points: np.ndarray) -> np.ndarray:
        return np.broadcast_to(color, points.shape[:-1] + (3,)).copy()

    return fn


def checker_albedo(color_a, color_b, scale: float = 1.0) -> Callable[[np.ndarray], np.ndarray]:
    """3D checkerboard albedo with cell size ``scale``."""
    color_a = np.asarray(color_a, dtype=float)
    color_b = np.asarray(color_b, dtype=float)

    def fn(points: np.ndarray) -> np.ndarray:
        cells = np.floor(points / scale).astype(np.int64).sum(axis=-1)
        pick = (cells % 2 == 0)[..., None]
        return np.where(pick, color_a, color_b)

    return fn


def stripe_albedo(color_a, color_b, axis: int = 0, scale: float = 0.5) -> Callable[[np.ndarray], np.ndarray]:
    """Striped albedo along one axis."""
    color_a = np.asarray(color_a, dtype=float)
    color_b = np.asarray(color_b, dtype=float)

    def fn(points: np.ndarray) -> np.ndarray:
        bands = np.floor(points[..., axis] / scale).astype(np.int64)
        pick = (bands % 2 == 0)[..., None]
        return np.where(pick, color_a, color_b)

    return fn


def noise_albedo(base_color, amplitude: float = 0.3, frequency: float = 2.0,
                 seed: int = 0) -> Callable[[np.ndarray], np.ndarray]:
    """Smooth pseudo-random color variation (sum of random sinusoids).

    Deterministic in ``seed``; differentiable and band-limited so baked grids
    can represent it without aliasing artifacts dominating PSNR.
    """
    rng = np.random.default_rng(seed)
    base_color = np.asarray(base_color, dtype=float)
    dirs = rng.normal(size=(3, 4, 3))
    phases = rng.uniform(0.0, 2.0 * np.pi, size=(3, 4))

    def fn(points: np.ndarray) -> np.ndarray:
        out = np.broadcast_to(base_color, points.shape[:-1] + (3,)).copy()
        for channel in range(3):
            wobble = np.zeros(points.shape[:-1])
            for k in range(4):
                wobble += np.sin(frequency * points @ dirs[channel, k] + phases[channel, k])
            out[..., channel] = np.clip(out[..., channel] + amplitude * wobble / 4.0, 0.0, 1.0)
        return out

    return fn


@dataclass
class Material:
    """Surface material: spatially varying albedo plus Blinn-Phong specular.

    ``specular == 0`` gives a perfectly diffuse (Lambertian) surface — the
    regime where SPARW's radiance approximation is exact.  Non-zero specular
    makes radiance view-dependent, which is what stresses warping on the
    "real-world" scenes (Sec. VI-F of the paper).
    """

    albedo: Callable[[np.ndarray], np.ndarray] = field(default_factory=lambda: solid_albedo([0.8, 0.8, 0.8]))
    specular: float = 0.0
    shininess: float = 32.0


@dataclass
class SceneObject:
    """A geometry (SDF) with its material and a debug name."""

    sdf: SDF
    material: Material = field(default_factory=Material)
    name: str = "object"


@dataclass
class DirectionalLight:
    """Directional light with unit direction pointing *from* the light."""

    direction: np.ndarray
    color: np.ndarray = field(default_factory=lambda: np.ones(3))
    intensity: float = 1.0

    def __post_init__(self):
        direction = np.asarray(self.direction, dtype=float)
        self.direction = direction / np.linalg.norm(direction)
        self.color = np.asarray(self.color, dtype=float)


def _default_background(directions: np.ndarray) -> np.ndarray:
    """Soft vertical sky gradient used when a scene doesn't override it."""
    t = np.clip(0.5 * (1.0 - directions[..., 1]), 0.0, 1.0)[..., None]
    horizon = np.array([0.85, 0.88, 0.95])
    zenith = np.array([0.35, 0.45, 0.70])
    return (1.0 - t) * zenith + t * horizon


@dataclass
class Scene:
    """A renderable scene: objects, lights, bounds, and a background.

    ``bounds`` is the (min, max) AABB that NeRF fields cover; rays are only
    sampled inside it.  ``bounded`` scenes (the synthetic suite) have all
    geometry inside the box; "unbounded" scenes additionally mark background
    pixels as infinite-depth voids.
    """

    objects: list
    lights: list = field(default_factory=lambda: [
        DirectionalLight(direction=[-0.5, -1.0, -0.3], intensity=0.9),
        DirectionalLight(direction=[0.7, -0.4, 0.5], color=[1.0, 0.95, 0.9], intensity=0.45),
    ])
    bounds: tuple = (np.array([-1.5, -1.5, -1.5]), np.array([1.5, 1.5, 1.5]))
    ambient: float = 0.25
    background: Callable[[np.ndarray], np.ndarray] = _default_background
    name: str = "scene"

    def __post_init__(self):
        lo, hi = self.bounds
        self.bounds = (np.asarray(lo, dtype=float), np.asarray(hi, dtype=float))

    # -- geometry queries ---------------------------------------------------

    def distance(self, points: np.ndarray) -> np.ndarray:
        """Signed distance to the nearest object surface."""
        dists = [obj.sdf.distance(points) for obj in self.objects]
        return np.minimum.reduce(dists)

    def object_index(self, points: np.ndarray) -> np.ndarray:
        """Index of the nearest object per point."""
        dists = np.stack([obj.sdf.distance(points) for obj in self.objects], axis=-1)
        return np.argmin(dists, axis=-1)

    def normals(self, points: np.ndarray) -> np.ndarray:
        """Surface normals of the combined field."""
        combined = _CombinedSDF(self)
        return estimate_normals(combined, points)

    # -- volumetric density (for NeRF baking) --------------------------------

    def density(self, points: np.ndarray, sharpness: float = 40.0,
                max_density: float = 120.0) -> np.ndarray:
        """Soft occupancy derived from the SDF.

        ``sigma(x) = max_density * sigmoid(-sharpness * d(x))`` — solid inside
        the surface, a thin soft shell at the boundary so that trilinear
        interpolation of a baked grid reconstructs the surface smoothly.
        """
        d = self.distance(points)
        return max_density / (1.0 + np.exp(np.clip(sharpness * d, -40.0, 40.0)))

    # -- shading --------------------------------------------------------------

    def albedo(self, points: np.ndarray) -> np.ndarray:
        """Albedo of the nearest object at each point."""
        points = np.asarray(points, dtype=float)
        flat = points.reshape(-1, 3)
        idx = self.object_index(flat)
        out = np.zeros_like(flat)
        for i, obj in enumerate(self.objects):
            mask = idx == i
            if mask.any():
                out[mask] = obj.material.albedo(flat[mask])
        return out.reshape(points.shape)

    def shade(self, points: np.ndarray, normals: np.ndarray,
              view_dirs: np.ndarray) -> np.ndarray:
        """Blinn-Phong radiance leaving ``points`` toward ``-view_dirs``.

        ``view_dirs`` point from camera toward the surface.  Diffuse shading
        is view-independent; the specular lobe adds the view dependence that
        the baked NeRF fields approximate with spherical harmonics.
        """
        points = np.asarray(points, dtype=float)
        flat_p = points.reshape(-1, 3)
        flat_n = np.asarray(normals, dtype=float).reshape(-1, 3)
        flat_v = np.asarray(view_dirs, dtype=float).reshape(-1, 3)
        idx = self.object_index(flat_p)

        color = np.zeros_like(flat_p)
        for i, obj in enumerate(self.objects):
            mask = idx == i
            if not mask.any():
                continue
            albedo = obj.material.albedo(flat_p[mask])
            shaded = self.ambient * albedo
            for light in self.lights:
                ndotl = np.clip(-flat_n[mask] @ light.direction, 0.0, 1.0)
                shaded = shaded + albedo * light.color * (light.intensity * ndotl)[..., None]
                if obj.material.specular > 0.0:
                    half = -(light.direction + flat_v[mask])
                    half_norm = np.linalg.norm(half, axis=-1, keepdims=True)
                    half = half / np.where(half_norm < 1e-12, 1.0, half_norm)
                    spec = np.clip((flat_n[mask] * half).sum(axis=-1), 0.0, 1.0)
                    spec = spec ** obj.material.shininess
                    shaded = shaded + obj.material.specular * light.intensity * (
                        light.color * spec[..., None])
            color[mask] = shaded
        return np.clip(color, 0.0, 1.0).reshape(points.shape)

    def diffuse_radiance(self, points: np.ndarray) -> np.ndarray:
        """View-independent part of the radiance (used for grid baking)."""
        points = np.asarray(points, dtype=float)
        flat_p = points.reshape(-1, 3)
        normals = self.normals(flat_p)
        idx = self.object_index(flat_p)
        color = np.zeros_like(flat_p)
        for i, obj in enumerate(self.objects):
            mask = idx == i
            if not mask.any():
                continue
            albedo = obj.material.albedo(flat_p[mask])
            shaded = self.ambient * albedo
            for light in self.lights:
                ndotl = np.clip(-normals[mask] @ light.direction, 0.0, 1.0)
                shaded = shaded + albedo * light.color * (light.intensity * ndotl)[..., None]
            color[mask] = shaded
        return np.clip(color, 0.0, 1.0).reshape(points.shape)


class _CombinedSDF(SDF):
    """Adapter exposing a Scene's min-distance as a single SDF."""

    def __init__(self, scene: Scene):
        self._scene = scene

    def distance(self, points: np.ndarray) -> np.ndarray:
        return self._scene.distance(points)
