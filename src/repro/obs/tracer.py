"""Structured event tracer exporting Chrome Trace Event JSON.

The tracer records what the serving stack *did* — engine rounds, frame
lifecycles, governor transitions, cache hits, pool dispatches, cluster
events — as spans and instants on the run's virtual clock, then writes
the standard Trace Event format that ``chrome://tracing`` and Perfetto
load directly.

Lane model (matching the issue contract): **pids are workers** (one
process lane per cluster worker, plus a ``cluster`` lane for the
control plane and a ``soc``/``engine`` lane for single-machine serve
runs) and **tids are sessions** (plus bookkeeping threads like
``rounds`` or ``governor``).  Lanes are registered lazily via
:meth:`Tracer.process` / :meth:`Tracer.thread`, which also emit the
``process_name`` / ``thread_name`` metadata events viewers use for
labels.

Timestamps are microseconds (the format's native unit).  Cluster and
serve layers have real virtual clocks (seconds → us).  Engine rounds
have no clock of their own, so engine spans run on a synthetic *work
clock*: 1 ray of rendering work = :data:`WORK_US_PER_RAY` us.  A
worker admitting a session renders it whole at one virtual instant, so
its engine spans are drawn as a short work-clock burst starting at the
admit time — ordering and relative widths are faithful, absolute
engine durations are work units, not seconds.

Recording never mutates measured state and allocates only appended
dicts, so traced runs stay bit-identical to untraced runs.
"""

from __future__ import annotations

from contextlib import contextmanager
from pathlib import Path

__all__ = ["Tracer", "WORK_US_PER_RAY"]

# Synthetic engine work clock: 1 ray = 1 ns of trace time.  Engine
# rounds at FAST scale render ~1e4-1e6 rays, mapping to 10 us - 1 ms
# spans — wide enough to inspect, narrow enough to sit believably
# inside a cluster admit instant.
WORK_US_PER_RAY = 1e-3


class Tracer:
    """Collects Trace Event dicts; write once at end of run.

    Use :meth:`process`/:meth:`thread` to get stable integer lane ids
    for labels, :meth:`complete` for spans, :meth:`instant` for point
    events, and :meth:`scope` to tell nested layers (the engine inside
    a cluster worker) which pid and clock offset to emit under.
    """

    def __init__(self):
        self._events: list[dict] = []
        self._pids: dict[str, int] = {}
        self._tids: dict[tuple[int, str], int] = {}
        # (pid, base_us) stack pushed by scope(); lets the engine emit
        # into whichever worker lane admitted it without plumbing the
        # tracer through every constructor.
        self._scopes: list[tuple[int, float]] = []

    def __len__(self) -> int:
        return len(self._events)

    # -- lanes -----------------------------------------------------------------

    def process(self, label: str) -> int:
        """Stable pid for ``label``; registers viewer metadata once."""
        pid = self._pids.get(label)
        if pid is None:
            pid = self._pids[label] = len(self._pids) + 1
            self._events.append({
                "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                "args": {"name": label},
            })
        return pid

    def thread(self, pid: int, label: str) -> int:
        """Stable tid for ``label`` within ``pid``; metadata once."""
        key = (pid, label)
        tid = self._tids.get(key)
        if tid is None:
            tid = self._tids[key] = sum(
                1 for p, _ in self._tids if p == pid) + 1
            self._events.append({
                "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
                "args": {"name": label},
            })
        return tid

    # -- events ----------------------------------------------------------------

    def complete(self, name: str, cat: str, ts_us: float, dur_us: float,
                 pid: int, tid: int, args: dict | None = None) -> None:
        """Record a complete ("X") span at [ts_us, ts_us + dur_us]."""
        event = {
            "name": name, "cat": cat, "ph": "X",
            "ts": float(ts_us), "dur": max(float(dur_us), 0.0),
            "pid": pid, "tid": tid,
        }
        if args:
            event["args"] = args
        self._events.append(event)

    def instant(self, name: str, cat: str, ts_us: float,
                pid: int, tid: int, args: dict | None = None) -> None:
        """Record an instant ("i") event at ``ts_us``."""
        event = {
            "name": name, "cat": cat, "ph": "i", "s": "t",
            "ts": float(ts_us), "pid": pid, "tid": tid,
        }
        if args:
            event["args"] = args
        self._events.append(event)

    # -- scoping ---------------------------------------------------------------

    @contextmanager
    def scope(self, label: str, base_us: float = 0.0):
        """Route nested layers' events into the ``label`` process lane.

        The cluster simulator wraps each ``worker.admit`` in
        ``tracer.scope(f"worker {id}", base_us=now_s * 1e6)`` so the
        engine's work-clock spans land inside that worker's lane at the
        admit instant.
        """
        pid = self.process(label)
        self._scopes.append((pid, float(base_us)))
        try:
            yield pid
        finally:
            self._scopes.pop()

    def current_scope(self, default_label: str = "engine"):
        """(pid, base_us) of the innermost scope, or a fresh default lane."""
        if self._scopes:
            return self._scopes[-1]
        return self.process(default_label), 0.0

    # -- export ----------------------------------------------------------------

    def to_payload(self) -> dict:
        """The Trace Event JSON object (``{"traceEvents": [...]}``)."""
        return {"traceEvents": list(self._events),
                "displayTimeUnit": "ms"}

    def write(self, path: str | Path) -> Path:
        """Write strict Trace Event JSON to ``path``; returns the path."""
        from ..harness.reporting import safe_json_dumps

        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(safe_json_dumps(self.to_payload()) + "\n")
        return path
