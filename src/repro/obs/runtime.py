"""Activation backbone shared by timer sections, tracing, and metrics.

One module-global :class:`Observation` (timer + tracer + metrics, each
optional) is the sole coupling point between product code and
observability.  Library layers call the guarded helpers here
(:func:`section`, :func:`metric_inc`, :func:`metric_observe`,
:func:`metric_set`, :func:`current_tracer`); each one is a single
global read plus a ``None`` check when nothing is active, so the
disabled fast path costs nothing measurable (bounded by
``tests/obs/test_obs_runtime.py`` the same way the timer overhead test
bounds ``perf.timer``).

The harness activates one :class:`Observation` per run::

    obs = Observation(tracer=Tracer(), metrics=MetricsRegistry())
    with activate(obs):
        run_serve(...)
    obs.tracer.write(path)

``perf.timer.activate`` now routes through here too, so one
activation drives section timing, tracing, and metrics together.

This module deliberately imports nothing from ``repro`` — it sits
below every instrumented layer.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any

__all__ = ["Observation", "activate", "current", "current_tracer",
           "current_metrics", "section", "metric_inc", "metric_observe",
           "metric_set"]


@dataclass
class Observation:
    """The bundle of sinks one ``activate()`` turns on.

    Any field may be ``None``; helpers for that facet stay no-ops.
    Typed ``Any`` to keep this module import-free — in practice
    ``timer`` is a :class:`repro.perf.timer.Timer`, ``tracer`` a
    :class:`repro.obs.tracer.Tracer`, and ``metrics`` a
    :class:`repro.obs.metrics.MetricsRegistry`.
    """

    timer: Any = None
    tracer: Any = None
    metrics: Any = None


_ACTIVE: Observation | None = None


class _NullSection:
    """Do-nothing context manager returned when no timer is active."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_SECTION = _NullSection()


@contextmanager
def activate(obs: Observation):
    """Make ``obs`` the active observation for the dynamic extent.

    Nests: the previous observation (if any) is restored on exit.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = obs
    try:
        yield obs
    finally:
        _ACTIVE = previous


def current() -> Observation | None:
    """The active observation, or ``None``."""
    return _ACTIVE


def current_tracer():
    """The active tracer, or ``None`` (the disabled fast path)."""
    obs = _ACTIVE
    return obs.tracer if obs is not None else None


def current_metrics():
    """The active metrics registry, or ``None``."""
    obs = _ACTIVE
    return obs.metrics if obs is not None else None


def section(name: str):
    """Context manager timing ``name`` on the active timer (else no-op)."""
    obs = _ACTIVE
    if obs is None or obs.timer is None:
        return _NULL_SECTION
    return obs.timer.section(name)


def metric_inc(name: str, amount: int = 1) -> None:
    """Bump counter ``name`` on the active registry (else no-op)."""
    obs = _ACTIVE
    if obs is not None and obs.metrics is not None:
        obs.metrics.inc(name, amount)


def metric_observe(name: str, value: float) -> None:
    """Observe ``value`` into histogram ``name`` (else no-op)."""
    obs = _ACTIVE
    if obs is not None and obs.metrics is not None:
        obs.metrics.observe(name, value)


def metric_set(name: str, value: float) -> None:
    """Set gauge ``name`` to ``value`` (else no-op)."""
    obs = _ACTIVE
    if obs is not None and obs.metrics is not None:
        obs.metrics.set(name, value)
