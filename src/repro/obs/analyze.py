"""Offline trace analyzer: diagnose a run from its trace artifact alone.

``cli trace analyze PATH`` loads a Chrome Trace Event JSON written by
:class:`repro.obs.tracer.Tracer` and reports:

* a per-category event census (how many spans/instants of each kind),
* the **critical path per frame** — for every served frame, how long it
  waited (request → render start) versus rendered/served (start →
  delivery), ranked so the worst offenders surface first,
* **round occupancy** — engine-round span statistics (rays, requests,
  cache hits per round),
* the **governor timeline** — every rung transition in clock order,
* the **top-N slowest spans** overall.

All pure functions over the parsed payload, so tests drive them with
synthetic events and the CLI is a thin formatter on top.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

__all__ = ["load_trace", "analyze_trace", "format_analysis", "main"]

DEFAULT_TOP = 10


def load_trace(path: str | Path) -> list[dict]:
    """Parse a Trace Event JSON file into its event list.

    Accepts both the object form (``{"traceEvents": [...]}`` — what the
    tracer writes) and the bare-array form the viewers also load.
    Raises ``ValueError`` on anything else.
    """
    payload = json.loads(Path(path).read_text())
    if isinstance(payload, dict):
        events = payload.get("traceEvents")
    elif isinstance(payload, list):
        events = payload
    else:
        events = None
    if not isinstance(events, list):
        raise ValueError(
            f"{path}: not a Trace Event JSON (expected a traceEvents "
            "array or a bare event array)")
    for event in events:
        if not isinstance(event, dict) or "ph" not in event:
            raise ValueError(f"{path}: malformed trace event: {event!r}")
    return events


def _lane_labels(events: list[dict]):
    """(pid → process label, (pid, tid) → thread label) from metadata."""
    processes, threads = {}, {}
    for event in events:
        if event.get("ph") != "M":
            continue
        label = (event.get("args") or {}).get("name")
        if event.get("name") == "process_name":
            processes[event.get("pid")] = label
        elif event.get("name") == "thread_name":
            threads[(event.get("pid"), event.get("tid"))] = label
    return processes, threads


def _lane(event: dict, processes: dict, threads: dict) -> str:
    pid, tid = event.get("pid"), event.get("tid")
    process = processes.get(pid, f"pid {pid}")
    thread = threads.get((pid, tid), f"tid {tid}")
    return f"{process}/{thread}"


def analyze_trace(events: list[dict], top: int = DEFAULT_TOP) -> dict:
    """Summarise a trace; returns JSON-able tables.

    Keys: ``categories`` (event census), ``frames`` (per-frame critical
    path, slowest first, at most ``top``), ``frames_total``, ``rounds``
    (engine-round occupancy stats), ``governor`` (transition timeline),
    ``slowest`` (top-``top`` spans by duration).
    """
    if top <= 0:
        raise ValueError("top must be positive")
    processes, threads = _lane_labels(events)

    categories: dict[str, dict] = {}
    spans, rounds = [], []
    waits: dict[tuple, dict] = {}
    frames, governor = [], []
    for event in events:
        phase = event.get("ph")
        if phase == "M":
            continue
        cat = event.get("cat", "?")
        census = categories.setdefault(cat, {"cat": cat, "spans": 0,
                                             "instants": 0})
        census["spans" if phase == "X" else "instants"] += 1

        name = event.get("name")
        args = event.get("args") or {}
        ts = float(event.get("ts", 0.0))
        if phase == "X":
            duration = float(event.get("dur", 0.0))
            spans.append((duration, ts, name, cat,
                          _lane(event, processes, threads)))
            if name == "engine.round":
                rounds.append(args)
            elif name == "frame.wait":
                key = (event.get("pid"), event.get("tid"),
                       args.get("frame"))
                waits[key] = {"ts": ts, "dur": duration}
            elif name == "frame.serve":
                key = (event.get("pid"), event.get("tid"),
                       args.get("frame"))
                wait = waits.get(key)
                wait_ms = (wait["dur"] / 1e3) if wait else 0.0
                serve_ms = duration / 1e3
                frames.append({
                    "lane": _lane(event, processes, threads),
                    "session": args.get("session"),
                    "frame": args.get("frame"),
                    "wait_ms": wait_ms,
                    "serve_ms": serve_ms,
                    "latency_ms": wait_ms + serve_ms,
                    # The critical path is whichever leg dominated the
                    # delivered latency: queueing or rendering.
                    "critical": "wait" if wait_ms > serve_ms else "serve",
                })
        elif cat == "governor":
            governor.append({
                "ts_ms": ts / 1e3,
                "event": name,
                "lane": _lane(event, processes, threads),
                **{str(k): v for k, v in args.items()},
            })

    frames.sort(key=lambda row: -row["latency_ms"])
    governor.sort(key=lambda row: row["ts_ms"])
    spans.sort(key=lambda item: -item[0])

    round_stats = {"rounds": len(rounds)}
    if rounds:
        for field in ("rays", "requests", "cache_hits"):
            values = [float(r.get(field, 0)) for r in rounds]
            round_stats[f"total_{field}"] = sum(values)
            round_stats[f"mean_{field}"] = sum(values) / len(values)
            round_stats[f"max_{field}"] = max(values)

    return {
        "categories": sorted(categories.values(),
                             key=lambda row: row["cat"]),
        "frames": frames[:top],
        "frames_total": len(frames),
        "rounds": round_stats,
        "governor": governor,
        "slowest": [{"span": name, "cat": cat, "lane": lane,
                     "ts_ms": ts / 1e3, "dur_ms": duration / 1e3}
                    for duration, ts, name, cat, lane in spans[:top]],
    }


def format_analysis(analysis: dict) -> str:
    """Render an :func:`analyze_trace` result for the terminal."""
    from ..harness.reporting import format_table

    blocks = [format_table(analysis["categories"],
                           title="event census by category")]
    if analysis["frames"]:
        blocks.append(format_table(
            analysis["frames"],
            title=f"slowest frames (of {analysis['frames_total']}; "
                  "critical = dominant leg)"))
    blocks.append(format_table([analysis["rounds"]],
                               title="engine round occupancy"))
    if analysis["governor"]:
        blocks.append(format_table(analysis["governor"],
                                   title="governor timeline"))
    if analysis["slowest"]:
        blocks.append(format_table(analysis["slowest"],
                                   title="slowest spans"))
    return "\n\n".join(blocks)


def main(path: str | Path, top: int = DEFAULT_TOP) -> int:
    """Analyze ``path`` and print the report; returns an exit code."""
    try:
        events = load_trace(path)
        analysis = analyze_trace(events, top=top)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"trace analyze: {exc}", file=sys.stderr)
        return 2
    print(format_analysis(analysis))
    return 0
