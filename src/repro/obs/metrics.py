"""Counters, gauges, and fixed-bucket latency histograms.

A :class:`MetricsRegistry` is the numeric half of the observability
backbone (:mod:`repro.obs`): product layers bump named counters, set
gauges, and observe latencies into histograms, and the harness
snapshots the whole registry into every ``BENCH_*.json`` artifact under
a ``metrics`` key.  Everything is plain accumulation — recording a
metric never touches the quantity being measured, so instrumented runs
stay bit-identical to uninstrumented ones.

Histograms use *fixed* bucket boundaries (a 1-2-5 ladder spanning
100 us to 100 s by default) so snapshots from different runs are
mergeable/comparable bucket by bucket; p50/p95/p99/p99.9 are estimated
by linear interpolation inside the winning bucket and clamped to the
observed min/max, so every quantile of a non-empty histogram is finite.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left

__all__ = ["DEFAULT_LATENCY_BOUNDS", "Counter", "Gauge", "Histogram",
           "MetricsRegistry", "QUANTILES"]

# 1-2-5 ladder (seconds): wide enough for per-frame latencies at every
# scale the harness simulates, fixed so any two snapshots share buckets.
DEFAULT_LATENCY_BOUNDS = (
    0.0001, 0.0002, 0.0005,
    0.001, 0.002, 0.005,
    0.01, 0.02, 0.05,
    0.1, 0.2, 0.5,
    1.0, 2.0, 5.0,
    10.0, 20.0, 50.0, 100.0,
)

# The tail summary every histogram snapshot carries (keys are the
# artifact field names).
QUANTILES = (("p50", 50.0), ("p95", 95.0), ("p99", 99.0),
             ("p99.9", 99.9))


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = str(name)
        self.value = 0

    def add(self, amount: int = 1) -> None:
        """Increase the counter (negative amounts are rejected)."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r}: cannot add {amount}")
        self.value += int(amount)


class Gauge:
    """A point-in-time float (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = str(name)
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current value of the measured quantity."""
        self.value = float(value)


class Histogram:
    """Fixed-bucket distribution with interpolated tail quantiles.

    ``bounds`` are the ascending bucket upper edges; observations above
    the last edge land in an overflow bucket whose effective upper edge
    is the observed maximum (keeping every quantile finite).

    Non-finite observations (NaN/inf) are dropped and counted in
    ``dropped`` instead of folded in: a NaN would land via
    ``bisect_left``'s undefined ordering and poison ``min_value``/
    ``max_value``, making :meth:`snapshot` fail the strict-JSON
    (``allow_nan=False``) artifact write.
    """

    __slots__ = ("name", "bounds", "counts", "count", "total",
                 "min_value", "max_value", "dropped")

    def __init__(self, name: str, bounds=DEFAULT_LATENCY_BOUNDS):
        bounds = tuple(float(b) for b in bounds)
        if not bounds or any(b2 <= b1 for b1, b2
                             in zip(bounds, bounds[1:])):
            raise ValueError("bounds must be a non-empty ascending tuple")
        self.name = str(name)
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # [+1 overflow bucket]
        self.count = 0
        self.total = 0.0
        self.min_value = 0.0
        self.max_value = 0.0
        self.dropped = 0  # non-finite observations rejected

    def observe(self, value: float) -> None:
        """Fold one sample into the distribution (non-finite: dropped)."""
        value = float(value)
        if not math.isfinite(value):
            self.dropped += 1
            return
        if self.count == 0:
            self.min_value = self.max_value = value
        else:
            self.min_value = min(self.min_value, value)
            self.max_value = max(self.max_value, value)
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        """Mean observed value (0.0 before any sample)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, pct: float) -> float:
        """Estimated value at ``pct`` (linear inside the winning bucket).

        0.0 before any sample; always finite and clamped to the
        observed [min, max] otherwise.
        """
        if self.count == 0:
            return 0.0
        target = pct / 100.0 * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= target:
                lower = (self.bounds[index - 1] if index > 0
                         else self.min_value)
                upper = (self.bounds[index] if index < len(self.bounds)
                         else self.max_value)
                fraction = (target - cumulative) / bucket_count
                estimate = lower + (upper - lower) * max(fraction, 0.0)
                return min(max(estimate, self.min_value), self.max_value)
            cumulative += bucket_count
        return self.max_value

    def snapshot(self) -> dict:
        """JSON-able summary: count/sum/min/max/mean + tail quantiles.

        ``buckets`` maps each *non-empty* bucket's upper edge (``"inf"``
        for the overflow bucket) to its count, so artifacts stay small
        when most buckets are empty.
        """
        edges = [str(b) for b in self.bounds] + ["inf"]
        row = {
            "count": self.count,
            "sum": self.total,
            "min": self.min_value,
            "max": self.max_value,
            "mean": self.mean,
            "buckets": {edge: count
                        for edge, count in zip(edges, self.counts)
                        if count},
        }
        if self.dropped:
            row["dropped"] = self.dropped
        for key, pct in QUANTILES:
            row[key] = self.percentile(pct)
        return row


class MetricsRegistry:
    """Named counters/gauges/histograms behind one snapshot call.

    Recording (``inc``/``set``/``observe``) and the get-or-create
    accessors are guarded by one lock, so worker threads of the live
    frame server can bump shared metrics without losing updates (a bare
    ``value += n`` is a read-modify-write race under threads).  The
    individual metric objects stay lock-free for single-threaded use.
    """

    def __init__(self):
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return (len(self.counters) + len(self.gauges)
                + len(self.histograms))

    # -- get-or-create accessors ----------------------------------------------

    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (created on first use)."""
        counter = self.counters.get(name)
        if counter is None:
            with self._lock:
                counter = self.counters.setdefault(name, Counter(name))
        return counter

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name`` (created on first use)."""
        gauge = self.gauges.get(name)
        if gauge is None:
            with self._lock:
                gauge = self.gauges.setdefault(name, Gauge(name))
        return gauge

    def histogram(self, name: str,
                  bounds=DEFAULT_LATENCY_BOUNDS) -> Histogram:
        """The histogram called ``name`` (created on first use).

        ``bounds`` only applies at creation; later calls reuse the
        existing histogram unchanged.
        """
        histogram = self.histograms.get(name)
        if histogram is None:
            with self._lock:
                histogram = self.histograms.setdefault(
                    name, Histogram(name, bounds))
        return histogram

    # -- recording shorthands --------------------------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        """Bump counter ``name`` by ``amount`` (thread-safe)."""
        counter = self.counter(name)
        with self._lock:
            counter.add(amount)

    def set(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (thread-safe)."""
        gauge = self.gauge(name)
        with self._lock:
            gauge.set(value)

    def observe(self, name: str, value: float) -> None:
        """Fold ``value`` into histogram ``name`` (thread-safe)."""
        histogram = self.histogram(name)
        with self._lock:
            histogram.observe(value)

    # -- reporting -------------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-able state of every metric, sorted by name."""
        return {
            "counters": {name: c.value
                         for name, c in sorted(self.counters.items())},
            "gauges": {name: g.value
                       for name, g in sorted(self.gauges.items())},
            "histograms": {name: h.snapshot()
                           for name, h in sorted(self.histograms.items())},
        }
