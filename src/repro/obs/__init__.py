"""Unified observability: timer sections + event tracing + metrics.

One :func:`activate` call (taking an :class:`Observation` bundling an
optional :class:`~repro.perf.timer.Timer`, :class:`Tracer`, and
:class:`MetricsRegistry`) turns on every instrumented layer at once;
with nothing active, every hook is a no-op bounded by the overhead
tests.  See ``docs/observability.md`` for the trace schema and metric
key reference.
"""

from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .runtime import (Observation, activate, current, current_metrics,
                      current_tracer, metric_inc, metric_observe,
                      metric_set, section)
from .tracer import Tracer, WORK_US_PER_RAY

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "Observation", "activate", "current", "current_metrics",
    "current_tracer", "metric_inc", "metric_observe", "metric_set",
    "section", "Tracer", "WORK_US_PER_RAY",
]
