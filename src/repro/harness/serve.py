"""Multi-session serving experiment: N users, one SoC, batched rendering.

Builds N viewing sessions from declarative :class:`WorkloadSpec`\\ s —
either a named mix (``--workload vr-lego:3 --workload dolly-chair``) or the
legacy scene/algorithm cycling — serves them through the batched
:class:`~repro.engine.MultiSessionEngine` with the shared cross-session
reference cache attached, and prices the result with the aggregate
throughput model.  This is the workload behind
``python -m repro.harness.cli serve``.
"""

from __future__ import annotations

from ..engine import MultiSessionEngine, make_scheduler
from ..hw.serving import aggregate_serving
from ..hw.soc import SoCModel
from ..workloads import (
    FIELD_CACHE,
    REFERENCE_CACHE,
    WorkloadSpec,
    apply_slo,
    build_mixed_sessions,
    cache_report,
)
from .configs import DEFAULT, ExperimentConfig
from .pricing import frame_economics

__all__ = ["legacy_mix", "build_sessions", "run_serve"]


def legacy_mix(num_sessions: int, scene_names: tuple = ("lego",),
               algorithm: str = "directvoxgo",
               frames: int | None = None,
               window: int | None = None,
               fps_target: float = 30.0) -> list:
    """The pre-workload-registry serve shape as a list of (spec, count).

    N sessions cycling over ``scene_names``, each on its own orbit with
    start angles spread around the circle so every user sees different
    content (no two sessions share reference renders — the cache-free
    worst case the workload registry's duplicated mixes contrast with).
    """
    if num_sessions < 1:
        raise ValueError("num_sessions must be >= 1")
    mix = []
    for i in range(num_sessions):
        scene = scene_names[i % len(scene_names)]
        spec = WorkloadSpec.make(
            f"user{i:02d}-{scene}", scene=scene, algorithm=algorithm,
            trajectory="orbit", frames=frames, window=window,
            fps_target=fps_target,
            start_angle_deg=360.0 * i / num_sessions)
        mix.append((spec, 1))
    return mix


def build_sessions(config: ExperimentConfig, num_sessions: int,
                   scene_names: tuple = ("lego",),
                   algorithm: str = "directvoxgo",
                   frames: int | None = None,
                   window: int | None = None,
                   fps_target: float = 30.0) -> list:
    """Engine sessions for the legacy scene-cycling serve shape."""
    return build_mixed_sessions(
        legacy_mix(num_sessions, scene_names=scene_names,
                   algorithm=algorithm, frames=frames, window=window,
                   fps_target=fps_target),
        config)


def run_serve(config: ExperimentConfig = DEFAULT, sessions: int = 8,
              scheduler: str = "round_robin", variant: str = "cicero",
              frames: int | None = None, scene_names: tuple = ("lego",),
              algorithm: str = "directvoxgo",
              workloads=None, use_cache: bool = True,
              seed: int | None = None, governor: str = "off",
              slo_fps: float | None = None,
              ray_budget: int | None = None,
              backend: str | None = None,
              engine_workers: int | None = None) -> tuple:
    """Serve concurrent users; returns (per-session rows, summary).

    ``backend`` selects the kernel backend for the run (see
    :mod:`repro.backend`); ``engine_workers`` sizes the ``parallel``
    backend's pool.  Serving output is bit-identical across ``numpy``
    and ``parallel``.

    ``workloads`` selects a named mix (``"vr-lego:3,dolly-chair"``, a list
    of ``NAME[:N]`` items, or ``(spec, count)`` pairs); when ``None`` the
    legacy ``sessions``/``scene_names``/``algorithm`` cycling is used.
    ``use_cache`` attaches the process-global, byte-bounded reference
    cache (serving stays bit-identical either way; only the work
    changes).  Because the cache outlives the run, repeating a serve in
    one process re-serves its references from the cache — legacy-path
    runs, whose sessions are all distinct, only benefit from this
    cross-run reuse.  ``seed`` offsets every spec's trajectory seed (the
    CLI's ``--seed``) so stochastic trajectories resample reproducibly.

    ``governor`` attaches the engine-layer SLO quality governor
    (``static``/``adaptive``; ``slo_fps`` overrides every workload's SLO)
    and, together with ``ray_budget``, splits the per-round ray budget by
    the governor's weights so lagging sessions pull a larger share.

    The scheduler choice also picks the matching within-round service
    order for the latency simulation: round-robin serves in arrival order,
    deadline serves shortest-job-first to shave the tail.
    """
    if workloads is not None:
        mix = workloads
    else:
        mix = legacy_mix(sessions, scene_names=scene_names,
                         algorithm=algorithm)
    # One SLO source: rewrite the specs, then everything (governor
    # included) reads spec.slo_latency_s.
    mix = apply_slo(mix, slo_fps)
    field_before = FIELD_CACHE.stats.snapshot()
    reference_before = REFERENCE_CACHE.stats.snapshot()

    engine_governor = None
    build = None
    if governor != "off":
        from ..control import EngineGovernor, build_level_session
        engine_governor = EngineGovernor(
            config, mode=governor,
            soc=SoCModel(feature_dim=config.feature_dim))
        if governor == "static":
            # Static pinning happens at build time, so even the first
            # frame renders at the min_quality_tier rung.
            def build(spec, session_id, config):
                return build_level_session(spec, session_id, config,
                                           spec.max_quality_level)
    built = build_mixed_sessions(mix, config, frames=frames, seed=seed,
                                 build=build)
    engine = MultiSessionEngine(
        built, scheduler=make_scheduler(scheduler),
        ray_budget=ray_budget,
        reference_cache=REFERENCE_CACHE if use_cache else None,
        governor=engine_governor, backend=backend,
        engine_workers=engine_workers)
    result = engine.run()

    # Per-session variants: each spec prices under its own SoC variant
    # (the legacy path keeps the caller's single variant).  Every session
    # carries its spec, so the mapping never depends on build order.
    session_variants = {
        s.session_id: (s.workload.variant if workloads is not None
                       and s.workload is not None else variant)
        for s in built}

    soc = SoCModel(feature_dim=config.feature_dim)
    order = "sjf" if scheduler == "deadline" else "arrival"
    report = aggregate_serving(
        {s.session_id: s.result for s in result.sessions},
        soc=soc, variant=variant, order=order,
        variants=session_variants,
        cache_stats=cache_report(field_since=field_before,
                                 reference_since=reference_before))

    rows = []
    for session, stats in zip(result.sessions, report.per_session):
        row = {
            "session": stats.session_id,
            "frames": stats.frames,
            "references": stats.references,
            "disoccluded": session.result.mean_disoccluded_fraction(),
            "solo_fps": stats.solo_fps,
            "utilization": stats.utilization,
            "mean_latency_ms": stats.mean_latency_s * 1e3,
            "p95_latency_ms": stats.p95_latency_s * 1e3,
        }
        if engine_governor is not None:
            row["quality_level"] = session.quality_level
        rows.append(row)
    batch = result.batch
    ref_cache = report.cache["references"]
    variants_used = sorted({session_variants.get(s.session_id, variant)
                            for s in result.sessions})
    summary = {
        "sessions": report.num_sessions,
        "scheduler": scheduler,
        "variant": (variants_used[0] if len(variants_used) == 1
                    else "mixed"),
        "cache_enabled": use_cache,
        "total_frames": report.total_frames,
        "aggregate_fps": report.aggregate_fps,
        "mean_latency_ms": report.mean_latency_s * 1e3,
        "p50_latency_ms": report.p50_latency_s * 1e3,
        "p95_latency_ms": report.p95_latency_s * 1e3,
        "p99_latency_ms": report.p99_latency_s * 1e3,
        "worst_latency_ms": report.worst_latency_s * 1e3,
        # $/frame prices the serialized SoC makespan: one shared SoC is
        # occupied end-to-end while the batch drains.
        **frame_economics(report.total_frames, report.total_energy_j,
                          report.makespan_s),
        "nerf_calls": batch.nerf_calls,
        "requests_per_call": batch.requests_per_call,
        "total_rays": batch.total_rays,
        "mean_batch_rays": batch.mean_batch_rays,
        "max_batch_rays": batch.max_batch_rays,
        "rounds": batch.rounds,
        "ref_cache_hits": ref_cache["hits"],
        "ref_cache_misses": ref_cache["misses"],
        "ref_cache_hit_rate": ref_cache["hit_rate"],
        "ref_cache_evictions": ref_cache["evictions"],
        "cache": report.cache,
    }
    if engine_governor is not None:
        summary.update(engine_governor.summary())
        summary["ray_budget"] = ray_budget
    return rows, summary
