"""Multi-session serving experiment: N users, one SoC, batched rendering.

Builds N viewing sessions (each its own orbit trajectory around a scene),
serves them through the batched :class:`~repro.engine.MultiSessionEngine`,
and prices the result with the aggregate throughput model — the workload
behind ``python -m repro.harness.cli serve``.
"""

from __future__ import annotations

from ..core.sparw.pipeline import SparwRenderer
from ..engine import MultiSessionEngine, RenderSession, make_scheduler
from ..hw.serving import aggregate_serving
from ..hw.soc import SoCModel
from ..scenes.trajectory import orbit_trajectory
from .configs import DEFAULT, ExperimentConfig, build_renderer, make_camera

__all__ = ["build_sessions", "run_serve"]


def build_sessions(config: ExperimentConfig, num_sessions: int,
                   scene_names: tuple = ("lego",),
                   algorithm: str = "directvoxgo",
                   frames: int | None = None,
                   window: int | None = None,
                   fps_target: float = 30.0) -> list:
    """N sessions cycling over ``scene_names``, each on its own orbit.

    Sessions viewing the same scene share one (cached) renderer, so the
    engine batches their ray work into shared field queries; start angles
    are spread around the orbit so every user sees different content.
    """
    if num_sessions < 1:
        raise ValueError("num_sessions must be >= 1")
    frames = config.num_frames if frames is None else int(frames)
    window = config.window if window is None else int(window)
    sessions = []
    for i in range(num_sessions):
        scene = scene_names[i % len(scene_names)]
        renderer = build_renderer(algorithm, scene, config)
        trajectory = orbit_trajectory(
            frames, radius=config.orbit_radius,
            degrees_per_frame=config.degrees_per_frame,
            start_angle_deg=360.0 * i / num_sessions)
        sparw = SparwRenderer(renderer, make_camera(config), window=window)
        sessions.append(RenderSession(f"user{i:02d}-{scene}", sparw,
                                      trajectory.poses,
                                      fps_target=fps_target))
    return sessions


def run_serve(config: ExperimentConfig = DEFAULT, sessions: int = 8,
              scheduler: str = "round_robin", variant: str = "cicero",
              frames: int | None = None, scene_names: tuple = ("lego",),
              algorithm: str = "directvoxgo") -> tuple:
    """Serve ``sessions`` concurrent users; returns (per-session rows, summary).

    The scheduler choice also picks the matching within-round service order
    for the latency simulation: round-robin serves in arrival order,
    deadline serves shortest-job-first to shave the tail.
    """
    built = build_sessions(config, sessions, scene_names=scene_names,
                           algorithm=algorithm, frames=frames)
    engine = MultiSessionEngine(built, scheduler=make_scheduler(scheduler))
    result = engine.run()

    soc = SoCModel(feature_dim=config.feature_dim)
    order = "sjf" if scheduler == "deadline" else "arrival"
    report = aggregate_serving(
        {s.session_id: s.result for s in result.sessions},
        soc=soc, variant=variant, order=order)

    rows = []
    for session, stats in zip(result.sessions, report.per_session):
        rows.append({
            "session": stats.session_id,
            "frames": stats.frames,
            "references": stats.references,
            "disoccluded": session.result.mean_disoccluded_fraction(),
            "solo_fps": stats.solo_fps,
            "mean_latency_ms": stats.mean_latency_s * 1e3,
            "p95_latency_ms": stats.p95_latency_s * 1e3,
        })
    batch = result.batch
    summary = {
        "sessions": report.num_sessions,
        "scheduler": scheduler,
        "variant": variant,
        "total_frames": report.total_frames,
        "aggregate_fps": report.aggregate_fps,
        "mean_latency_ms": report.mean_latency_s * 1e3,
        "p95_latency_ms": report.p95_latency_s * 1e3,
        "worst_latency_ms": report.worst_latency_s * 1e3,
        "nerf_calls": batch.nerf_calls,
        "requests_per_call": batch.requests_per_call,
        "mean_batch_rays": batch.mean_batch_rays,
        "max_batch_rays": batch.max_batch_rays,
        "rounds": batch.rounds,
    }
    return rows, summary
