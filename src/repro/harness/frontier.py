"""Quality-vs-throughput frontier sweep behind ``cli frontier``.

Sweeps offered load (arrival rate) across the governor modes and reports,
per (mode, rate) cell, what the cluster traded: admitted rate, tail frame
latency, and frame-weighted mean probe PSNR.  ``off`` can only queue or
reject, ``static`` buys throughput by pinning every workload at its
minimum tier, and ``adaptive`` walks the frontier between them —
degrading exactly when load demands it.

The sweep is a factorial experiment: every (mode, rate) cell is a
:class:`~.runconfig.RunConfig` executed through
:func:`~.runner.execute_cell`, the same engine behind ``cli experiment``
— so a checked-in table with the same axes reproduces these rows bit for
bit.  Every run shares one seed and mix, so cells differ only in the
knob under study; the rows land in ``BENCH_frontier.json``.
"""

from __future__ import annotations

from ..control import GOVERNOR_MODES
from .configs import DEFAULT, ExperimentConfig
from .runconfig import RunConfig

__all__ = ["DEFAULT_FRONTIER_RATES", "run_frontier"]

# Light / saturated / overloaded against the default small fleet: session
# residency is frames/fps_target seconds, so tens of arrivals per second
# are needed before admission queues fill at test scales.
DEFAULT_FRONTIER_RATES = (8.0, 24.0, 72.0)


def run_frontier(config: ExperimentConfig = DEFAULT, mix=None,
                 rates=DEFAULT_FRONTIER_RATES, duration_s: float = 1.0,
                 workers: int = 1, placement: str = "least_loaded",
                 queue_limit: int = 2,
                 frames: int | None = 3, seed: int = 0,
                 modes=GOVERNOR_MODES,
                 slo_fps: float | None = None,
                 use_cache: bool = True) -> tuple:
    """Sweep (governor mode x offered load); returns (rows, summary).

    One row per cell: offered/admitted counts, reject rate, p99 frame
    latency, mean quality level, probe mean-PSNR, and the J/frame and
    $/frame economics columns.  The summary pairs each mode's aggregate
    admitted rate with its mean PSNR — the frontier the governor is
    supposed to bend.
    """
    from .runner import execute_cell  # deferred: runner builds on harness
    rates = tuple(float(r) for r in rates)
    if not rates or any(r <= 0 for r in rates):
        raise ValueError("rates must be a non-empty tuple of positive "
                         "arrival rates")
    modes = tuple(modes)
    for mode in modes:
        if mode not in GOVERNOR_MODES:
            raise ValueError(f"unknown governor mode {mode!r}; "
                             f"one of {GOVERNOR_MODES}")
    base = RunConfig(
        mode="cluster",
        workloads=mix if isinstance(mix, str) else None,
        arrivals="poisson", duration_s=duration_s, workers=workers,
        placement=placement, queue_limit=queue_limit, frames=frames,
        seed=seed, slo_fps=slo_fps, use_cache=use_cache)
    mix_override = (mix if mix is not None and not isinstance(mix, str)
                    else None)
    rows = []
    mix_label = ""
    per_mode: dict = {}
    for mode in modes:
        for rate in rates:
            cell = base.with_updates(governor=mode, rate_hz=rate,
                                     label=f"governor={mode},rate_hz={rate}")
            result = execute_cell(cell, config=config, mix=mix_override)
            rows.append(result.row)
            mix_label = result.mix_label
            bucket = per_mode.setdefault(mode, {"offered": 0, "admitted": 0,
                                                "psnr_sum": 0.0, "cells": 0})
            bucket["offered"] += result.row["offered"]
            bucket["admitted"] += result.row["admitted"]
            bucket["psnr_sum"] += result.row["mean_psnr"]
            bucket["cells"] += 1
    summary = {
        "mix": mix_label,
        "rates_hz": list(rates),
        "duration_s": duration_s,
        "workers": workers,
        "placement": placement,
        "queue_limit": queue_limit,
        "seed": seed,
        "slo_fps": slo_fps,
        "modes": list(modes),
    }
    for mode, bucket in per_mode.items():
        offered = bucket["offered"]
        summary[f"{mode}_admitted_rate"] = (bucket["admitted"] / offered
                                            if offered else 0.0)
        summary[f"{mode}_mean_psnr"] = bucket["psnr_sum"] / bucket["cells"]
    return rows, summary
