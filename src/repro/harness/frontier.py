"""Quality-vs-throughput frontier sweep behind ``cli frontier``.

Sweeps offered load (arrival rate) across the governor modes and reports,
per (mode, rate) cell, what the cluster traded: admitted rate, tail frame
latency, and frame-weighted mean probe PSNR.  ``off`` can only queue or
reject, ``static`` buys throughput by pinning every workload at its
minimum tier, and ``adaptive`` walks the frontier between them —
degrading exactly when load demands it.  Every run shares one seed and
mix, so cells differ only in the knob under study; the rows land in
``BENCH_frontier.json``.
"""

from __future__ import annotations

from ..cluster import simulate_cluster
from ..control import GOVERNOR_MODES
from ..workloads import apply_slo
from .cluster import DEFAULT_CLUSTER_MIX, quality_summary
from .configs import DEFAULT, ExperimentConfig

__all__ = ["DEFAULT_FRONTIER_RATES", "run_frontier"]

# Light / saturated / overloaded against the default small fleet: session
# residency is frames/fps_target seconds, so tens of arrivals per second
# are needed before admission queues fill at test scales.
DEFAULT_FRONTIER_RATES = (8.0, 24.0, 72.0)


def run_frontier(config: ExperimentConfig = DEFAULT, mix=None,
                 rates=DEFAULT_FRONTIER_RATES, duration_s: float = 1.0,
                 workers: int = 1, placement: str = "least_loaded",
                 queue_limit: int = 2,
                 frames: int | None = 3, seed: int = 0,
                 modes=GOVERNOR_MODES,
                 slo_fps: float | None = None,
                 use_cache: bool = True) -> tuple:
    """Sweep (governor mode x offered load); returns (rows, summary).

    One row per cell: offered/admitted counts, reject rate, p99 frame
    latency, mean quality level, and probe mean-PSNR.  The summary pairs
    each mode's aggregate admitted rate with its mean PSNR — the frontier
    the governor is supposed to bend.
    """
    rates = tuple(float(r) for r in rates)
    if not rates or any(r <= 0 for r in rates):
        raise ValueError("rates must be a non-empty tuple of positive "
                         "arrival rates")
    modes = tuple(modes)
    for mode in modes:
        if mode not in GOVERNOR_MODES:
            raise ValueError(f"unknown governor mode {mode!r}; "
                             f"one of {GOVERNOR_MODES}")
    resolved_mix = apply_slo(mix if mix is not None else DEFAULT_CLUSTER_MIX,
                             slo_fps)
    rows = []
    per_mode: dict = {}
    for mode in modes:
        for rate in rates:
            report = simulate_cluster(
                resolved_mix, config, arrivals="poisson", rate_hz=rate,
                duration_s=duration_s, seed=seed, workers=workers,
                placement=placement, queue_limit=queue_limit,
                frames=frames, governor=mode, slo_fps=slo_fps,
                use_cache=use_cache)
            quality = quality_summary(resolved_mix, config, report)
            offered = report.arrivals_total
            row = {
                "governor": mode,
                "offered_rate_hz": rate,
                "offered": offered,
                "admitted": report.admitted,
                "admitted_rate": (report.admitted / offered
                                  if offered else 0.0),
                "reject_rate": report.reject_rate,
                "p99_latency_ms": report.p99_latency_s * 1e3,
                "mean_latency_ms": report.mean_latency_s * 1e3,
                "aggregate_fps": report.aggregate_fps,
                "mean_quality_level": report.mean_quality_level,
                "tier_transitions": report.tier_transitions,
                "overflow_admissions": report.overflow_admissions,
                "mean_psnr": quality["mean_psnr"],
                "min_workload_psnr": quality["min_workload_psnr"],
                "quality_floor_ok": quality["quality_floor_ok"],
            }
            rows.append(row)
            bucket = per_mode.setdefault(mode, {"offered": 0, "admitted": 0,
                                                "psnr_sum": 0.0, "cells": 0})
            bucket["offered"] += offered
            bucket["admitted"] += report.admitted
            bucket["psnr_sum"] += quality["mean_psnr"]
            bucket["cells"] += 1
    summary = {
        "mix": ",".join(f"{spec.name}:{count}"
                        for spec, count in resolved_mix),
        "rates_hz": list(rates),
        "duration_s": duration_s,
        "workers": workers,
        "placement": placement,
        "queue_limit": queue_limit,
        "seed": seed,
        "slo_fps": slo_fps,
        "modes": list(modes),
    }
    for mode, bucket in per_mode.items():
        offered = bucket["offered"]
        summary[f"{mode}_admitted_rate"] = (bucket["admitted"] / offered
                                            if offered else 0.0)
        summary[f"{mode}_mean_psnr"] = bucket["psnr_sum"] / bucket["cells"]
    return rows, summary
