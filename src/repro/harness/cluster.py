"""Open-loop cluster serving experiment behind ``cli cluster``.

Thin adapter over the experiment runner: :func:`run_cluster` describes
one cluster run as a :class:`~.runconfig.RunConfig` cell and delegates
to :func:`~.runner.execute_cell`, which owns the arrival-schedule /
autoscaler / simulator glue (and the frame-economics columns) for every
harness surface.  This module keeps the cluster-surface specifics: the
default popularity-skewed mix and the probe-PSNR quality accounting.
"""

from __future__ import annotations

from .configs import DEFAULT, ExperimentConfig
from .runconfig import RunConfig

__all__ = ["DEFAULT_CLUSTER_MIX", "run_cluster", "quality_summary"]

# Popularity-skewed default: over half the arrivals share the vr-lego
# cache key, so co-locating them (cache_affinity) visibly beats spreading
# them (round_robin) on the cluster-wide reference-cache hit rate.
DEFAULT_CLUSTER_MIX = "vr-lego:4,dolly-chair:2,vr-headshake:1"


def run_cluster(config: ExperimentConfig = DEFAULT, mix=None,
                arrivals: str = "poisson", rate_hz: float = 1.0,
                duration_s: float = 10.0, workers: int = 4,
                placement: str = "least_loaded", queue_limit: int = 4,
                frames: int | None = None, seed: int = 0, trace=None,
                use_cache: bool = True,
                autoscale: bool = False, min_workers: int | None = None,
                max_workers: int | None = None,
                scale_up_latency_s: float = 1.0,
                governor: str = "off",
                slo_fps: float | None = None,
                catalog: int | None = None,
                zipf: float | None = None,
                replication: int | None = None) -> tuple:
    """Simulate open-loop cluster serving; returns (per-worker rows, summary).

    ``mix`` is any serve mix (``None`` uses :data:`DEFAULT_CLUSTER_MIX`);
    ``arrivals``/``rate_hz``/``duration_s``/``seed`` parameterise the
    arrival schedule (``replay`` reads ``trace`` instead).  With
    ``autoscale`` the fleet starts at ``workers`` and moves between
    ``min_workers`` (default 1) and ``max_workers`` (default 2x the
    initial fleet) with ``scale_up_latency_s`` of provisioning delay.
    ``governor`` attaches the SLO quality governor (``static`` or
    ``adaptive``; ``slo_fps`` overrides every spec's SLO), adding probe
    mean-PSNR quality accounting to the summary.  ``catalog`` switches
    on the sharded field tier: the mix expands into that many
    content-distinct variants under a ``zipf``-skewed popularity law,
    served through a replicated shard map (``replication`` replicas per
    baked field; see :mod:`repro.distribution`).  Runs are
    deterministic per seed.
    """
    from .runner import execute_cell  # deferred: runner builds on this module
    cell = RunConfig(
        mode="cluster",
        workloads=mix if isinstance(mix, str) else None,
        arrivals=arrivals, rate_hz=rate_hz, duration_s=duration_s,
        workers=workers, placement=placement, queue_limit=queue_limit,
        frames=frames, seed=seed, arrival_trace=trace, use_cache=use_cache,
        autoscale=autoscale, min_workers=min_workers,
        max_workers=max_workers, scale_up_latency_s=scale_up_latency_s,
        governor=governor, slo_fps=slo_fps,
        catalog=catalog, zipf=zipf, replication=replication)
    result = execute_cell(
        cell, config=config,
        mix=mix if mix is not None and not isinstance(mix, str) else None)
    return result.rows, result.summary


def quality_summary(resolved_mix, config, report) -> dict:
    """Probe-PSNR quality accounting of a governed cluster report.

    ``mean_psnr`` is the frame-weighted mean probe PSNR over every served
    frame (at the ladder rung it actually rendered at);
    ``min_workload_psnr`` is the worst per-workload mean, and
    ``quality_floor_ok`` asserts the governor's contract — every
    workload's served mean stayed at or above the floor implied by its
    ``min_quality_tier``.
    """
    from ..control import mean_psnr_of_levels, quality_floor
    specs = {spec.name: spec for spec, _ in resolved_mix}
    per_workload = {}
    total = weighted = 0
    floor_ok = True
    for name, buckets in sorted(report.quality_by_level.items()):
        spec = specs[name]
        frames = sum(buckets.values())
        if not frames:
            continue
        psnr = mean_psnr_of_levels(spec, config, buckets)
        per_workload[name] = psnr
        floor_ok &= psnr >= quality_floor(spec, config) - 1e-9
        total += frames
        weighted += psnr * frames
    return {
        "mean_psnr": weighted / total if total else 0.0,
        "min_workload_psnr": min(per_workload.values(), default=0.0),
        "quality_floor_ok": floor_ok,
        "psnr_per_workload": per_workload,
    }
