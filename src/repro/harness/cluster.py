"""Open-loop cluster serving experiment behind ``cli cluster``.

Glues the :mod:`repro.cluster` simulator to the harness surface: resolves
the workload mix (default: a scene-skewed popular-content mix, the shape
cache-affinity placement exploits), builds the arrival schedule and
optional autoscaler from CLI-level knobs, and shapes the
:class:`~repro.cluster.ClusterReport` into the (rows, summary) pair every
harness experiment returns — rows per worker, summary for
``BENCH_cluster.json``.
"""

from __future__ import annotations

from ..cluster import Autoscaler, simulate_cluster
from ..workloads import apply_slo
from .configs import DEFAULT, ExperimentConfig

__all__ = ["DEFAULT_CLUSTER_MIX", "run_cluster", "quality_summary"]

# Popularity-skewed default: over half the arrivals share the vr-lego
# cache key, so co-locating them (cache_affinity) visibly beats spreading
# them (round_robin) on the cluster-wide reference-cache hit rate.
DEFAULT_CLUSTER_MIX = "vr-lego:4,dolly-chair:2,vr-headshake:1"


def run_cluster(config: ExperimentConfig = DEFAULT, mix=None,
                arrivals: str = "poisson", rate_hz: float = 1.0,
                duration_s: float = 10.0, workers: int = 4,
                placement: str = "least_loaded", queue_limit: int = 4,
                frames: int | None = None, seed: int = 0, trace=None,
                use_cache: bool = True,
                autoscale: bool = False, min_workers: int | None = None,
                max_workers: int | None = None,
                scale_up_latency_s: float = 1.0,
                governor: str = "off",
                slo_fps: float | None = None) -> tuple:
    """Simulate open-loop cluster serving; returns (per-worker rows, summary).

    ``mix`` is any serve mix (``None`` uses :data:`DEFAULT_CLUSTER_MIX`);
    ``arrivals``/``rate_hz``/``duration_s``/``seed`` parameterise the
    arrival schedule (``replay`` reads ``trace`` instead).  With
    ``autoscale`` the fleet starts at ``workers`` and moves between
    ``min_workers`` (default 1) and ``max_workers`` (default 2x the
    initial fleet) with ``scale_up_latency_s`` of provisioning delay.
    ``governor`` attaches the SLO quality governor (``static`` or
    ``adaptive``; ``slo_fps`` overrides every spec's SLO), adding probe
    mean-PSNR quality accounting to the summary.  Runs are deterministic
    per seed.
    """
    resolved_mix = apply_slo(mix if mix is not None else DEFAULT_CLUSTER_MIX,
                             slo_fps)
    autoscaler = None
    if autoscale:
        floor = 1 if min_workers is None else min_workers
        ceiling = 2 * workers if max_workers is None else max_workers
        # The autoscaler only moves the fleet between the bounds — it
        # never provisions up to a floor above the initial fleet, and a
        # ceiling below it would start the run permanently over limit —
        # so the initial size must sit inside them.
        if not floor <= workers <= ceiling:
            raise ValueError(
                f"initial workers ({workers}) must lie within "
                f"min_workers..max_workers ({floor}..{ceiling})")
        # Admission caps mean load per worker at queue_limit, so the
        # scale-up threshold must sit below it or tight queues would shed
        # every overload as rejects without ever growing the fleet.
        up_load = min(2.0, 0.5 * queue_limit)
        autoscaler = Autoscaler(
            min_workers=floor, max_workers=ceiling,
            up_load=up_load, down_load=min(0.25, up_load / 2),
            scale_up_latency_s=scale_up_latency_s)
    report = simulate_cluster(
        resolved_mix, config, arrivals=arrivals, rate_hz=rate_hz,
        duration_s=duration_s, seed=seed, workers=workers,
        placement=placement, queue_limit=queue_limit, frames=frames,
        autoscaler=autoscaler, use_cache=use_cache, trace=trace,
        governor=governor)
    summary = report.summary()
    summary["scale_events"] = report.scale_events
    if governor != "off":
        summary["governor_events"] = report.governor_events
        summary.update(quality_summary(resolved_mix, config, report))
    return list(report.per_worker), summary


def quality_summary(resolved_mix, config, report) -> dict:
    """Probe-PSNR quality accounting of a governed cluster report.

    ``mean_psnr`` is the frame-weighted mean probe PSNR over every served
    frame (at the ladder rung it actually rendered at);
    ``min_workload_psnr`` is the worst per-workload mean, and
    ``quality_floor_ok`` asserts the governor's contract — every
    workload's served mean stayed at or above the floor implied by its
    ``min_quality_tier``.
    """
    from ..control import mean_psnr_of_levels, quality_floor
    specs = {spec.name: spec for spec, _ in resolved_mix}
    per_workload = {}
    total = weighted = 0
    floor_ok = True
    for name, buckets in sorted(report.quality_by_level.items()):
        spec = specs[name]
        frames = sum(buckets.values())
        if not frames:
            continue
        psnr = mean_psnr_of_levels(spec, config, buckets)
        per_workload[name] = psnr
        floor_ok &= psnr >= quality_floor(spec, config) - 1e-9
        total += frames
        weighted += psnr * frames
    return {
        "mean_psnr": weighted / total if total else 0.0,
        "min_workload_psnr": min(per_workload.values(), default=0.0),
        "quality_floor_ok": floor_ok,
        "psnr_per_workload": per_workload,
    }
